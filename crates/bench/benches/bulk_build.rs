//! Bulk build vs the incremental path, at 20× the scale the rest of
//! the bench suite uses (DBLP, `scale 1.0` ≈ 20k documents — well past
//! the 10× floor the acceptance criteria name).
//!
//! Three comparisons, the first two *asserted* (JSON rows are checked
//! in code, not just printed):
//!
//! * **Build throughput** — `BulkBuilder` (streaming parse → sorted
//!   runs → k-way merge → immutable segments) vs the buffer-pool
//!   path (`PrixEngine::build` + save: B⁺-trees grown page-at-a-time
//!   through the pool). Bulk must be ≥ 3× faster per document.
//! * **Cold-query I/O** — the paper's DBLP workload against each
//!   freshly reopened database. The segment path's logical reads
//!   (4 KiB blocks through the per-segment caches) must cost strictly
//!   fewer bytes than the buffer-pool path's logical page reads, with
//!   identical match counts.
//! * **Ingest-path rate** (informational) — `prix add`-style
//!   document-at-a-time inserts into the built database, the only
//!   incremental option when a corpus arrives over time. Bulk must
//!   beat it ≥ 3× too (it wins by orders of magnitude; the row mostly
//!   documents *why* the bulk loader exists).
//!
//! Document-at-a-time insertion cannot absorb an arbitrary corpus
//! from scratch: dynamic virtual-trie scopes are sized from the base
//! build, and 20k unseen DBLP values exhaust any constant-α headroom
//! (`scope underflow`). The honest incremental baseline for *corpus*
//! construction is therefore the buffer-pool build.

use std::time::{Duration, Instant};

use prix_core::{BulkBuilder, EngineConfig, LabelingMode, PrixEngine};
use prix_datagen::{queries::queries_for, Dataset};
use prix_testkit::bench::{Harness, Opts};
use prix_xml::{write_document, Collection};

const SCALE: f64 = 1.0; // 20× the suite's standard 0.05
const PAGE_BYTES: u64 = 8192;
const SEG_BLOCK_BYTES: u64 = 4096;

fn corpus(scale: f64, seed: u64) -> Vec<String> {
    let c = prix_datagen::generate(Dataset::Dblp, scale, seed);
    c.iter()
        .map(|(_, t)| write_document(t, c.symbols()))
        .collect()
}

fn cfg(path: std::path::PathBuf) -> EngineConfig {
    EngineConfig {
        path: Some(path),
        labeling: LabelingMode::Dynamic { alpha: 4 },
        ..Default::default()
    }
}

/// The buffer-pool path: parse everything, build the B⁺-trees through
/// the pool, save. Returns after the engine shut down cleanly.
fn pool_build(db: std::path::PathBuf, docs: &[String]) {
    let mut c = Collection::new();
    for d in docs {
        c.add_xml(d).unwrap();
    }
    let mut e = PrixEngine::build(c, cfg(db)).unwrap();
    e.save().unwrap();
}

/// The bulk path: stream documents through the external-merge-sort
/// segment builder and commit the manifest.
fn bulk_build(db: std::path::PathBuf, docs: &[String]) {
    let mut b = BulkBuilder::new(cfg(db)).unwrap();
    for d in docs {
        b.add_xml(d).unwrap();
    }
    drop(b.finish().unwrap());
}

/// Cold workload over a freshly reopened database: totals of
/// (pool logical page reads, segment block reads, segment block
/// fetches, matches).
fn cold_workload(db: &std::path::Path) -> (u64, u64, u64, usize) {
    let mut e = PrixEngine::reopen(db, 2000).unwrap();
    let (mut lr, mut sbr, mut sbf, mut matches) = (0u64, 0u64, 0u64, 0usize);
    for pq in queries_for(Dataset::Dblp) {
        let q = e.parse_query(pq.xpath).unwrap();
        let out = e.query(&q).unwrap();
        lr += out.io.logical_reads;
        sbr += out.io.seg_block_reads;
        sbf += out.io.seg_block_fetches;
        matches += out.matches.len();
    }
    (lr, sbr, sbf, matches)
}

fn main() {
    let mut h = Harness::from_args("bulk_build");
    let tmp = std::env::temp_dir().join(format!("prix-bulkbench-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();

    let docs = corpus(SCALE, 42);
    let n_docs = docs.len();

    // Timed builds for the JSON trend lines.
    h.set_opts(Opts {
        warmup: 1,
        samples: 3,
    });
    h.bench("build/bulk_20x", || {
        bulk_build(tmp.join("bulk.prix"), &docs);
    });
    h.bench("build/pool_20x", || {
        pool_build(tmp.join("pool.prix"), &docs);
    });
    h.set_opts(Opts {
        warmup: 1,
        samples: 5,
    });
    h.bench("cold_query/segments_20x", || {
        std::hint::black_box(cold_workload(&tmp.join("bulk.prix")));
    });
    h.bench("cold_query/pool_20x", || {
        std::hint::black_box(cold_workload(&tmp.join("pool.prix")));
    });

    // The throughput assertion uses the harness *medians* (warmed,
    // multi-sample), not a single-shot pair: one cold run of either
    // path can swing ±50% on page-cache state alone.
    let median_of = |reports: &[prix_testkit::bench::Report], name: &str| -> Duration {
        reports
            .iter()
            .find(|r| r.name.ends_with(name))
            .unwrap_or_else(|| panic!("bench {name} did not run"))
            .median
    };
    let bulk_t = median_of(h.reports(), "build/bulk_20x");
    let pool_t = median_of(h.reports(), "build/pool_20x");
    h.finish();
    let speedup = pool_t.as_secs_f64() / bulk_t.as_secs_f64();

    let (pool_lr, pool_sbr, _, pool_matches) = cold_workload(&tmp.join("pool.prix"));
    let (seg_lr, seg_sbr, seg_sbf, seg_matches) = cold_workload(&tmp.join("bulk.prix"));
    assert_eq!(pool_sbr, 0, "pool path read segment blocks");
    let pool_bytes = pool_lr * PAGE_BYTES;
    let seg_bytes = seg_lr * PAGE_BYTES + seg_sbr * SEG_BLOCK_BYTES;

    // Ingest-path rate: document-at-a-time into the built database
    // (full vocabulary, so dynamic scopes have headroom).
    let fresh = corpus(0.01, 43);
    let mut e = PrixEngine::reopen(tmp.join("pool.prix"), 2000).unwrap();
    let t0 = Instant::now();
    let mut accepted = 0usize;
    for d in &fresh {
        if e.insert_document(d).is_ok() {
            accepted += 1;
        }
    }
    e.save().unwrap();
    let insert_t = t0.elapsed();
    drop(e);

    let rows = [
        format!(
            r#"  {{"case":"build_20x","docs":{n_docs},"bulk_ms":{},"pool_ms":{},"bulk_docs_per_s":{:.0},"pool_docs_per_s":{:.0},"speedup":{speedup:.2}}}"#,
            bulk_t.as_millis(),
            pool_t.as_millis(),
            n_docs as f64 / bulk_t.as_secs_f64(),
            n_docs as f64 / pool_t.as_secs_f64(),
        ),
        format!(
            r#"  {{"case":"cold_io_20x","pool_logical_pages":{pool_lr},"seg_logical_pages":{seg_lr},"seg_block_reads":{seg_sbr},"seg_block_fetches":{seg_sbf},"pool_bytes":{pool_bytes},"seg_bytes":{seg_bytes},"matches":{seg_matches}}}"#,
        ),
        format!(
            r#"  {{"case":"ingest_path","docs":{accepted},"insert_ms":{},"insert_docs_per_s":{:.0}}}"#,
            insert_t.as_millis(),
            accepted as f64 / insert_t.as_secs_f64().max(1e-9),
        ),
    ];
    println!("[\n{}\n]", rows.join(",\n"));

    // The acceptance criteria, asserted on the rows above.
    assert!(
        speedup >= 3.0,
        "bulk build must be >= 3x the incremental path per document, got {speedup:.2}x \
         (bulk {bulk_t:?}, pool {pool_t:?} over {n_docs} docs)"
    );
    assert_eq!(
        seg_matches, pool_matches,
        "segment and pool paths disagree on the workload's matches"
    );
    assert!(
        seg_sbr > 0,
        "bulk-built database did not answer through segments"
    );
    assert!(
        seg_bytes < pool_bytes,
        "cold-query logical reads through segments ({seg_bytes} bytes: {seg_lr} pages + \
         {seg_sbr} blocks) must cost strictly less than the buffer-pool path \
         ({pool_bytes} bytes: {pool_lr} pages)"
    );
    if accepted > 0 {
        let insert_rate = accepted as f64 / insert_t.as_secs_f64();
        let bulk_rate = n_docs as f64 / bulk_t.as_secs_f64();
        assert!(
            bulk_rate >= 3.0 * insert_rate,
            "bulk build must be >= 3x the document-at-a-time insert rate, \
             got {bulk_rate:.0} vs {insert_rate:.0} docs/s"
        );
    }

    std::fs::remove_dir_all(&tmp).unwrap();
}
