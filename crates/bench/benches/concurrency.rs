//! Concurrent query throughput: `PrixEngine::query_batch` at 1, 2, and
//! 4 worker threads over a warm sharded buffer pool. The single-mutex
//! pool serialized every page touch, so multi-threaded batches used to
//! run at single-thread speed; the sharded pool lets page accesses on
//! different shards proceed in parallel.
//!
//! NOTE: the speedup is hardware-bound. On a single-core host (some CI
//! containers) all thread counts run at the same speed plus scheduling
//! overhead — the printed `available_parallelism` makes that visible.

use prix_core::{EngineConfig, PrixEngine, TwigQuery};
use prix_datagen::{generate, queries::queries_for, Dataset};
use prix_testkit::bench::{Harness, Opts};

fn bench_query_batch(h: &mut Harness) {
    h.set_opts(Opts::samples(10));
    let collection = generate(Dataset::Dblp, 0.5, 17);
    let mut engine = PrixEngine::build(collection, EngineConfig::default()).unwrap();
    let queries: Vec<TwigQuery> = queries_for(Dataset::Dblp)
        .into_iter()
        .map(|pq| engine.parse_query(pq.xpath).unwrap())
        .collect();
    // Replicate the query set so each batch carries enough work to
    // amortize thread startup, then warm the pool once.
    let batch: Vec<TwigQuery> = (0..16).flat_map(|_| queries.iter().cloned()).collect();
    engine.query_batch(&batch, 1).unwrap();

    for threads in [1usize, 2, 4] {
        let engine = &engine;
        let batch = &batch;
        h.bench(&format!("query_batch_{threads}_threads"), move || {
            let out = engine.query_batch(batch, threads).unwrap();
            std::hint::black_box(out.len());
        });
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("concurrency bench: available_parallelism = {cores}");
    let mut h = Harness::from_args("concurrency");
    bench_query_batch(&mut h);
    h.finish();
}
