//! Cost-based engine routing pays off: on a skewed collection there is
//! a query class where the planner picks a non-PRIX engine and that
//! engine beats forced PRIX on wall clock — and a selective path class
//! where PRIX stays the right answer. Both claims are asserted in code,
//! not eyeballed; the JSON (`--json PATH`) records the medians.
//!
//! The skew: `//needle//hay` drives PRIX's subsequence filter through
//! every `hay` trie position (the common leaf is the first LPS symbol),
//! while TwigStackXB drills down from the ~rare `needle` stream and
//! skips almost the entire `hay` stream.

use std::sync::Arc;

use prix_core::index::{IndexError, Result as CoreResult};
use prix_core::{
    AltProvider, EngineChoice, EngineConfig, EngineId, ExecOpts, PrixEngine, QueryEngine,
};
use prix_storage::{BufferPool, Pager};
use prix_testkit::bench::{Harness, Opts, Report};
use prix_twigstack::{Substrate, TwigStackEngine};
use prix_vist::VistEngine;
use prix_xml::Collection;

struct BenchAlts {
    vist: Arc<dyn QueryEngine>,
    twigstack: Arc<dyn QueryEngine>,
    twigstack_xb: Arc<dyn QueryEngine>,
}

impl BenchAlts {
    fn build(collection: &Collection) -> BenchAlts {
        let collection = Arc::new(collection.clone());
        let vist_pool = Arc::new(BufferPool::new(Pager::in_memory(), 4096));
        let vist = VistEngine::build(vist_pool, Arc::clone(&collection)).unwrap();
        let ts_pool = Arc::new(BufferPool::new(Pager::in_memory(), 4096));
        let sub = Arc::new(Substrate::build(ts_pool, &collection).unwrap());
        BenchAlts {
            vist: Arc::new(vist),
            twigstack: Arc::new(TwigStackEngine::twigstack(Arc::clone(&sub))),
            twigstack_xb: Arc::new(TwigStackEngine::twigstack_xb(sub)),
        }
    }
}

impl AltProvider for BenchAlts {
    fn alt_engine(&self, id: EngineId) -> CoreResult<Arc<dyn QueryEngine>> {
        match id {
            EngineId::Vist => Ok(Arc::clone(&self.vist)),
            EngineId::TwigStack => Ok(Arc::clone(&self.twigstack)),
            EngineId::TwigStackXb => Ok(Arc::clone(&self.twigstack_xb)),
            EngineId::PrixRp | EngineId::PrixEp => {
                Err(IndexError::Unsupported("not an alternative engine".into()))
            }
        }
    }
}

/// ~1200 documents full of `hay`, a `needle` ancestor in one of 40.
/// Each `hay` sits in a pseudo-randomly chosen wrapper so document
/// structures do not collapse onto shared trie paths — with heavy
/// prefix sharing PRIX's position scan would be artificially cheap and
/// there would be nothing to route away from.
fn skewed_collection() -> Collection {
    let mut c = Collection::new();
    for i in 0..1200usize {
        let mut xml = String::from("<root>");
        if i % 40 == 0 {
            xml.push_str("<needle><hay>v</hay><hay>v</hay></needle>");
        }
        for j in 0..40usize {
            let w = (i
                .wrapping_mul(2654435761)
                .wrapping_add(j.wrapping_mul(40503))
                >> 7)
                % 29;
            xml.push_str(&format!("<w{w}><hay>v</hay></w{w}>"));
        }
        xml.push_str("</root>");
        c.add_xml(&xml).unwrap();
    }
    c
}

fn median_of(reports: &[Report], name: &str) -> std::time::Duration {
    reports
        .iter()
        .find(|r| r.name.ends_with(name))
        .unwrap_or_else(|| panic!("no report named {name}"))
        .median
}

fn main() {
    let engine = PrixEngine::build(skewed_collection(), EngineConfig::default()).unwrap();
    let alts = BenchAlts::build(engine.collection());
    let mut syms = engine.collection().symbols().clone();
    let opts = ExecOpts::new();

    // (class, xpath, expect_prix): the planner's chosen engine is
    // asserted per class before timing anything.
    let classes = [
        ("rare_ancestor", "//needle//hay", false),
        ("selective_path", "/root/needle", true),
    ];

    let mut h = Harness::from_args("engine_routing");
    h.set_opts(Opts {
        warmup: 2,
        samples: 15,
    });

    let mut chosen_labels = Vec::new();
    for (class, xpath, expect_prix) in classes {
        let q = prix_core::parse_xpath(xpath, &mut syms).unwrap();
        let routed = engine.query_routed(&q, &opts, None, &alts).unwrap();
        let chosen = routed.report.chosen;
        assert!(
            !routed.outcome.matches.is_empty(),
            "{class}: empty result set measures nothing"
        );
        assert_eq!(
            chosen.is_prix(),
            expect_prix,
            "{class}: planner chose {}\n{}",
            chosen.label(),
            routed.report.render()
        );
        chosen_labels.push((class, chosen.label()));

        h.bench(&format!("{class}/routed"), || {
            let r = engine.query_routed(&q, &opts, None, &alts).unwrap();
            std::hint::black_box(r.outcome.matches.len());
        });
        h.bench(&format!("{class}/forced_prix"), || {
            let r = engine
                .query_routed(&q, &opts, Some(EngineChoice::Prix), &alts)
                .unwrap();
            std::hint::black_box(r.outcome.matches.len());
        });
        h.bench(&format!("{class}/forced_{}", chosen.label()), || {
            let r = engine
                .query_routed(&q, &opts, Some(EngineChoice::Forced(chosen)), &alts)
                .unwrap();
            std::hint::black_box(r.outcome.matches.len());
        });
    }

    // Acceptance: on the rare-ancestor class the planner left PRIX for
    // a reason — the engine it chose is measurably faster.
    let alt_label = chosen_labels[0].1;
    let alt_t = median_of(h.reports(), &format!("rare_ancestor/forced_{alt_label}"));
    let prix_t = median_of(h.reports(), "rare_ancestor/forced_prix");
    println!(
        "rare_ancestor: planner chose {alt_label}: {:?} vs forced PRIX {:?} ({:.1}x)",
        alt_t,
        prix_t,
        prix_t.as_secs_f64() / alt_t.as_secs_f64().max(1e-9),
    );
    assert!(
        alt_t < prix_t,
        "planner chose {alt_label} but it did not win: {alt_t:?} vs PRIX {prix_t:?}"
    );
    h.finish();
}
