//! End-to-end query latency for every engine on the paper's workload —
//! the Criterion companion to Figure 6 / Tables 4–9 (run
//! `run_experiments` for the cold-cache page-count versions).

use criterion::{criterion_group, criterion_main, Criterion};

use prix_bench::Workbench;
use prix_datagen::{queries::queries_for, Dataset};

fn bench_dataset(c: &mut Criterion, ds: Dataset, scale: f64) {
    let mut wb = Workbench::setup(ds, scale, 42);
    let queries = queries_for(ds);
    let mut g = c.benchmark_group(format!("engines_{}", ds.name().to_lowercase()));
    g.sample_size(10);
    for pq in queries {
        g.bench_function(format!("{}_all_engines", pq.id), |b| {
            b.iter(|| {
                let row = wb.run_query(pq.id, pq.xpath);
                std::hint::black_box(row.prix.matches)
            })
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_dataset(c, Dataset::Dblp, 0.05);
    bench_dataset(c, Dataset::Swissprot, 0.05);
    bench_dataset(c, Dataset::Treebank, 0.05);
}

criterion_group!(engine_benches, benches);
criterion_main!(engine_benches);
