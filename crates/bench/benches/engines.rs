//! End-to-end query latency for every engine on the paper's workload —
//! the timing companion to Figure 6 / Tables 4–9 (run `run_experiments`
//! for the cold-cache page-count versions).

use prix_bench::Workbench;
use prix_datagen::{queries::queries_for, Dataset};
use prix_testkit::bench::{Harness, Opts};

fn bench_dataset(h: &mut Harness, ds: Dataset, scale: f64) {
    let mut wb = Workbench::setup(ds, scale, 42);
    let queries = queries_for(ds);
    h.set_opts(Opts {
        warmup: 1,
        samples: 10,
    });
    for pq in queries {
        let name = format!("{}/{}_all_engines", ds.name().to_lowercase(), pq.id);
        h.bench(&name, || {
            let row = wb.run_query(pq.id, pq.xpath);
            std::hint::black_box(row.prix.matches);
        });
    }
}

fn main() {
    let mut h = Harness::from_args("engines");
    bench_dataset(&mut h, Dataset::Dblp, 0.05);
    bench_dataset(&mut h, Dataset::Swissprot, 0.05);
    bench_dataset(&mut h, Dataset::Treebank, 0.05);
    h.finish();
}
