//! Subsequence-matching phase ablations (paper §5.3–§5.4):
//! MaxGap pruning on vs off (Theorem 4), and exact vs dynamic virtual
//! trie labeling (§5.2.1).

use criterion::{criterion_group, criterion_main, Criterion};

use prix_core::index::ExecOpts;
use prix_core::{EngineConfig, LabelingMode, PrixEngine};
use prix_datagen::{generate, Dataset};

fn bench_maxgap_ablation(c: &mut Criterion) {
    let collection = generate(Dataset::Treebank, 0.1, 5);
    let mut engine = PrixEngine::build(collection, EngineConfig::default()).unwrap();
    // Q8: the query the paper uses to showcase MaxGap (§6.4.2).
    let q8 = engine.parse_query("//NP[./RBR_OR_JJR]/PP").unwrap();
    let q9 = engine.parse_query("//NP/PP/NP[./NNS_OR_NN][./NN]").unwrap();
    let mut g = c.benchmark_group("maxgap_ablation");
    g.sample_size(20);
    for (name, q) in [("q8", &q8), ("q9", &q9)] {
        g.bench_function(format!("{name}_with_maxgap"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    engine
                        .query_opts(
                            q,
                            &ExecOpts {
                                use_maxgap: true,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                        .matches
                        .len(),
                )
            })
        });
        g.bench_function(format!("{name}_coarse_maxgap"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    engine
                        .query_opts(
                            q,
                            &ExecOpts {
                                use_maxgap: true,
                                use_fine_maxgap: false,
                            },
                        )
                        .unwrap()
                        .matches
                        .len(),
                )
            })
        });
        g.bench_function(format!("{name}_without_maxgap"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    engine
                        .query_opts(
                            q,
                            &ExecOpts {
                                use_maxgap: false,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                        .matches
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_labeling_modes(c: &mut Criterion) {
    let collection = generate(Dataset::Dblp, 0.05, 6);
    let mut g = c.benchmark_group("trie_labeling");
    g.sample_size(10);
    g.bench_function("build_exact", |b| {
        b.iter(|| {
            let e = PrixEngine::build(collection.clone(), EngineConfig::default()).unwrap();
            std::hint::black_box(e.rp_index().unwrap().build_stats().trie_nodes)
        })
    });
    g.bench_function("build_dynamic_alpha3", |b| {
        b.iter(|| {
            let cfg = EngineConfig {
                labeling: LabelingMode::Dynamic { alpha: 3 },
                ..Default::default()
            };
            let e = PrixEngine::build(collection.clone(), cfg).unwrap();
            std::hint::black_box(e.rp_index().unwrap().build_stats().underflows)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_maxgap_ablation, bench_labeling_modes);
criterion_main!(benches);
