//! Subsequence-matching phase ablations (paper §5.3–§5.4):
//! MaxGap pruning on vs off (Theorem 4), and exact vs dynamic virtual
//! trie labeling (§5.2.1).

use prix_core::index::ExecOpts;
use prix_core::{EngineConfig, LabelingMode, PrixEngine};
use prix_datagen::{generate, Dataset};
use prix_testkit::bench::{Harness, Opts};

fn bench_maxgap_ablation(h: &mut Harness) {
    let collection = generate(Dataset::Treebank, 0.1, 5);
    let mut engine = PrixEngine::build(collection, EngineConfig::default()).unwrap();
    // Q8: the query the paper uses to showcase MaxGap (§6.4.2).
    let q8 = engine.parse_query("//NP[./RBR_OR_JJR]/PP").unwrap();
    let q9 = engine.parse_query("//NP/PP/NP[./NNS_OR_NN][./NN]").unwrap();
    h.set_opts(Opts::samples(20));
    for (name, q) in [("q8", &q8), ("q9", &q9)] {
        h.bench(&format!("maxgap/{name}_with_maxgap"), || {
            std::hint::black_box(
                engine
                    .query_opts(q, &ExecOpts::new())
                    .unwrap()
                    .matches
                    .len(),
            );
        });
        h.bench(&format!("maxgap/{name}_coarse_maxgap"), || {
            std::hint::black_box(
                engine
                    .query_opts(q, &ExecOpts::new().without_fine_maxgap())
                    .unwrap()
                    .matches
                    .len(),
            );
        });
        h.bench(&format!("maxgap/{name}_without_maxgap"), || {
            std::hint::black_box(
                engine
                    .query_opts(q, &ExecOpts::new().without_maxgap())
                    .unwrap()
                    .matches
                    .len(),
            );
        });
    }
}

fn bench_labeling_modes(h: &mut Harness) {
    let collection = generate(Dataset::Dblp, 0.05, 6);
    h.set_opts(Opts {
        warmup: 1,
        samples: 10,
    });
    h.bench("labeling/build_exact", || {
        let e = PrixEngine::build(collection.clone(), EngineConfig::default()).unwrap();
        std::hint::black_box(e.rp_index().unwrap().build_stats().trie_nodes);
    });
    h.bench("labeling/build_dynamic_alpha3", || {
        let cfg = EngineConfig {
            labeling: LabelingMode::Dynamic { alpha: 3 },
            ..Default::default()
        };
        let e = PrixEngine::build(collection.clone(), cfg).unwrap();
        std::hint::black_box(e.rp_index().unwrap().build_stats().underflows);
    });
}

fn main() {
    let mut h = Harness::from_args("filtering");
    bench_maxgap_ablation(&mut h);
    bench_labeling_modes(&mut h);
    h.finish();
}
