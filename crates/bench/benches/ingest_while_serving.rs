//! Online ingest vs. query latency: the snapshot-isolation tradeoff.
//!
//! Two experiments over a [`SharedEngine`]:
//!
//! * **Query latency under ingest** — the same structural query sampled
//!   many times (each sample = one pinned-snapshot query, so the
//!   report's median/p99 are the query's p50/p99) with zero writers and
//!   then with one background writer continuously publishing batches.
//!   Snapshot isolation promises readers never block on the writer;
//!   the gap between the two distributions is the price actually paid
//!   (version-chain lookups, epoch pinning, allocator pressure).
//!
//! * **Ingest throughput, batched vs one-at-a-time** — 16 documents
//!   ingested as a single batch (one WAL group commit, one epoch
//!   publish) vs 16 single-document batches (16 commits, 16 epochs).
//!   The batch path amortizes the commit barrier exactly like group
//!   commit amortizes fsync.
//!
//! Run with `--json PATH` (or `PRIX_BENCH_JSON=PATH`) for
//! machine-readable output, like every suite in this directory.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use prix_core::{EngineConfig, LabelingMode, PrixEngine, SharedEngine};
use prix_testkit::bench::{Harness, Opts};
use prix_testkit::TestRng;
use prix_xml::Collection;

/// Small documents over a fixed vocabulary; dynamic labeling with slack
/// so ingested documents keep fitting the base build's trie scopes.
fn doc_xml(rng: &mut TestRng) -> String {
    let mid = *rng.pick(&["b", "c"]);
    let leaf = *rng.pick(&["x", "y", "z"]);
    let val = rng.below(6);
    match rng.below(3) {
        0 => format!("<a><{mid}><{leaf}>v{val}</{leaf}></{mid}></a>"),
        1 => format!("<a><{mid}><{leaf}>v{val}</{leaf}></{mid}><d/></a>"),
        _ => format!("<a><d/><{mid}><{leaf}>v{val}</{leaf}></{mid}></a>"),
    }
}

fn build_shared(rng: &mut TestRng, docs: usize) -> SharedEngine {
    let mut coll = Collection::new();
    for _ in 0..docs {
        coll.add_xml(&doc_xml(rng)).expect("base doc");
    }
    let engine = PrixEngine::build(
        coll,
        EngineConfig {
            labeling: LabelingMode::Dynamic { alpha: 4 },
            ..Default::default()
        },
    )
    .expect("build engine");
    SharedEngine::new(engine)
}

/// One pinned-snapshot query; the measured unit for the latency runs.
fn one_query(shared: &SharedEngine, xpath: &str) {
    let snap = shared.snapshot();
    let q = snap.parse_query(xpath).expect("parse");
    let out = snap.query(&q).expect("query");
    std::hint::black_box(out.matches.len());
}

fn bench_query_latency(h: &mut Harness, rng: &mut TestRng) {
    // Enough samples that p99 is a real tail, not the max.
    let opts = Opts {
        warmup: 50,
        samples: 500,
    };
    let xpath = "//a/b/y";

    let shared = build_shared(rng, 200);
    h.bench_with_opts("query_latency_0_writers", opts, || {
        one_query(&shared, xpath)
    });

    // Same distribution with one writer publishing batches the whole
    // time. Readers pin snapshots and must not block on the writer.
    let shared = Arc::new(build_shared(rng, 200));
    let stop = Arc::new(AtomicBool::new(false));
    let ingested = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        let mut wrng = TestRng::from_seed(0xB13C_0001);
        std::thread::spawn(move || {
            let mut batches = 0u64;
            while !stop.load(Ordering::Acquire) {
                let batch: Vec<String> = (0..4).map(|_| doc_xml(&mut wrng)).collect();
                shared.ingest(&batch).expect("ingest");
                batches += 1;
            }
            batches
        })
    };
    h.bench_with_opts("query_latency_1_writer", opts, || one_query(&shared, xpath));
    stop.store(true, Ordering::Release);
    let batches = ingested.join().expect("writer thread");
    eprintln!(
        "  (writer published {batches} batches / {} documents during the run; \
         final epoch {})",
        batches * 4,
        shared.epoch()
    );
}

fn bench_ingest_throughput(h: &mut Harness, rng: &mut TestRng) {
    h.set_opts(Opts {
        warmup: 2,
        samples: 12,
    });
    let docs: Vec<String> = (0..16).map(|_| doc_xml(rng)).collect();

    // Fresh engine per sample: ingest grows the index, so reusing one
    // engine would measure ever-larger trees.
    let mut seed = 0xB13C_0100u64;
    let mut fresh = move || {
        seed += 1;
        build_shared(&mut TestRng::from_seed(seed), 50)
    };

    {
        let docs = docs.clone();
        h.bench_with_setup("ingest_16_docs_one_batch", &mut fresh, move |shared| {
            let report = shared.ingest(&docs).expect("ingest");
            std::hint::black_box(report.epoch);
        });
    }
    {
        let docs = docs.clone();
        h.bench_with_setup("ingest_16_docs_one_at_a_time", &mut fresh, move |shared| {
            let mut epoch = 0;
            for d in &docs {
                let report = shared.ingest(std::slice::from_ref(d)).expect("ingest");
                epoch = report.epoch;
            }
            std::hint::black_box(epoch);
        });
    }
}

fn main() {
    let mut h = Harness::from_args("ingest_while_serving");
    let mut rng = TestRng::from_seed(0xB13C_0000);
    bench_query_latency(&mut h, &mut rng);
    bench_ingest_throughput(&mut h, &mut rng);
    h.finish();
}
