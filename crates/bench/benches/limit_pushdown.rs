//! Limit pushdown on the streaming executor: latency and Disk-IO for
//! `limit ∈ {1, 10, ∞}` on a high-fanout collection where `//a/b` has
//! thousands of matches spread over many distinct trie paths.
//!
//! The point being measured: with a limit, the `CandidateCursor` stops
//! the trie descent as soon as enough matches streamed out, so both
//! wall clock *and* page reads shrink with the limit. The final JSON
//! line reports the per-limit work counters (the Disk-IO story the
//! paper tells in §6.4 for its own plots).

use prix_core::index::ExecOpts;
use prix_core::{EngineConfig, PrixEngine};
use prix_testkit::bench::{Harness, Opts};
use prix_xml::Collection;

/// Every document gets a different shape (varying padding fanout), so
/// documents do not collapse onto shared trie paths and the descent
/// must keep working to find more matches.
fn high_fanout_collection(docs: usize) -> Collection {
    let mut c = Collection::new();
    for i in 0..docs {
        let mut xml = String::from("<r>");
        for p in 0..(i % 11) {
            xml.push_str(&format!("<p{p}>x</p{p}>"));
        }
        for _ in 0..(1 + i % 5) {
            xml.push_str("<a><b>v</b></a>");
        }
        xml.push_str("</r>");
        c.add_xml(&xml).unwrap();
    }
    c
}

fn main() {
    let engine = PrixEngine::build(high_fanout_collection(2000), EngineConfig::default()).unwrap();
    let mut syms = engine.collection().symbols().clone();
    let q = prix_core::parse_xpath("//a/b", &mut syms).unwrap();

    let cases: [(&str, ExecOpts); 3] = [
        ("limit_1", ExecOpts::new().with_limit(1)),
        ("limit_10", ExecOpts::new().with_limit(10)),
        ("unlimited", ExecOpts::new()),
    ];

    let mut h = Harness::from_args("limit_pushdown");
    h.set_opts(Opts {
        warmup: 2,
        samples: 20,
    });
    for (name, opts) in &cases {
        h.bench(&format!("query/{name}"), || {
            std::hint::black_box(engine.query_opts(&q, opts).unwrap().matches.len());
        });
    }
    h.finish();

    // One cold-cache run per limit for the Disk-IO numbers; the strict
    // ordering is this bench's acceptance check.
    let mut rows = Vec::new();
    let mut reads = Vec::new();
    for (name, opts) in &cases {
        engine.clear_cache().unwrap();
        let out = engine.query_opts(&q, opts).unwrap();
        reads.push(out.io.logical_reads);
        rows.push(format!(
            r#"  {{"case":"{name}","matches":{},"truncated":{},"range_queries":{},"nodes_scanned":{},"logical_reads":{},"physical_reads":{}}}"#,
            out.matches.len(),
            out.truncated,
            out.stats.range_queries,
            out.stats.nodes_scanned,
            out.io.logical_reads,
            out.io.physical_reads,
        ));
    }
    println!("[\n{}\n]", rows.join(",\n"));
    assert!(
        reads[0] < reads[1] && reads[1] < reads[2],
        "limit pushdown must read strictly fewer pages: {reads:?}"
    );
}
