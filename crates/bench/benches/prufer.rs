//! Tree-to-sequence transformation throughput (paper §3.1, §5.6):
//! Regular vs Extended Prüfer construction, and the inverse transform.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use prix_datagen::{generate, Dataset};
use prix_prufer::{reconstruct, PruferSeq};

fn bench_construction(c: &mut Criterion) {
    let collection = generate(Dataset::Swissprot, 0.05, 1);
    let dummy = prix_xml::Sym(u32::MAX - 1);
    let mut g = c.benchmark_group("prufer_construction");
    g.sample_size(20);
    g.bench_function("regular_all_docs", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (_, t) in collection.iter() {
                total += PruferSeq::regular(t).len();
            }
            std::hint::black_box(total)
        })
    });
    g.bench_function("extended_all_docs", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (_, t) in collection.iter() {
                total += PruferSeq::extended(t, dummy).len();
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let collection = generate(Dataset::Treebank, 0.05, 2);
    let seqs: Vec<(PruferSeq, Vec<(prix_xml::Sym, u32)>)> = collection
        .iter()
        .map(|(_, t)| (PruferSeq::regular(t), t.leaves()))
        .collect();
    let mut g = c.benchmark_group("prufer_reconstruction");
    g.sample_size(20);
    g.bench_function("shape_from_nps", |b| {
        b.iter(|| {
            for (s, _) in &seqs {
                std::hint::black_box(reconstruct::shape_from_nps(&s.nps).unwrap());
            }
        })
    });
    g.bench_function("full_tree", |b| {
        b.iter_batched(
            || (),
            |_| {
                for (s, leaves) in &seqs {
                    std::hint::black_box(
                        reconstruct::tree_from_sequences(&s.lps, &s.nps, leaves).unwrap(),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_construction, bench_reconstruction);
criterion_main!(benches);
