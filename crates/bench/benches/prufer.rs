//! Tree-to-sequence transformation throughput (paper §3.1, §5.6):
//! Regular vs Extended Prüfer construction, and the inverse transform.

use prix_datagen::{generate, Dataset};
use prix_prufer::{reconstruct, PruferSeq};
use prix_testkit::bench::{Harness, Opts};

fn bench_construction(h: &mut Harness) {
    let collection = generate(Dataset::Swissprot, 0.05, 1);
    let dummy = prix_xml::Sym(u32::MAX - 1);
    h.set_opts(Opts::samples(20));
    h.bench("construction/regular_all_docs", || {
        let mut total = 0usize;
        for (_, t) in collection.iter() {
            total += PruferSeq::regular(t).len();
        }
        std::hint::black_box(total);
    });
    h.bench("construction/extended_all_docs", || {
        let mut total = 0usize;
        for (_, t) in collection.iter() {
            total += PruferSeq::extended(t, dummy).len();
        }
        std::hint::black_box(total);
    });
}

fn bench_reconstruction(h: &mut Harness) {
    let collection = generate(Dataset::Treebank, 0.05, 2);
    let seqs: Vec<(PruferSeq, Vec<(prix_xml::Sym, u32)>)> = collection
        .iter()
        .map(|(_, t)| (PruferSeq::regular(t), t.leaves()))
        .collect();
    h.set_opts(Opts::samples(20));
    h.bench("reconstruction/shape_from_nps", || {
        for (s, _) in &seqs {
            std::hint::black_box(reconstruct::shape_from_nps(&s.nps).unwrap());
        }
    });
    h.bench("reconstruction/full_tree", || {
        for (s, leaves) in &seqs {
            std::hint::black_box(reconstruct::tree_from_sequences(&s.lps, &s.nps, leaves).unwrap());
        }
    });
}

fn main() {
    let mut h = Harness::from_args("prufer");
    bench_construction(&mut h);
    bench_reconstruction(&mut h);
    h.finish();
}
