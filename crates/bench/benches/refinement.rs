//! Refinement-phase cost (paper §4.2–§4.4, Algorithm 2): the
//! connectedness / gap / frequency / leaf checks over real candidate
//! sets produced by the in-memory matcher.

use prix_core::scan::scan_matches;
use prix_datagen::{generate, Dataset};
use prix_prufer::{
    check_connectedness, check_frequency_consistency, check_gap_consistency, refine_match,
    subsequence_positions, EdgeKind, PruferSeq, RefineCtx,
};
use prix_testkit::bench::{Harness, Opts};
use prix_xml::Sym;

fn bench_phases(h: &mut Harness) {
    // A mid-size TREEBANK sentence and a query with many candidate
    // subsequences: NP chains match all over the place.
    let collection = generate(Dataset::Treebank, 0.05, 8);
    let syms = collection.symbols();
    let np = syms.lookup("NP").unwrap();
    let s_tag = syms.lookup("S").unwrap();
    // Pick the deepest document for a worst-case candidate set.
    let (_, doc) = collection
        .iter()
        .max_by_key(|(_, t)| t.max_depth())
        .unwrap();
    let doc_seq = PruferSeq::regular(doc);
    // Query LPS [NP, NP, S]-ish: assemble from a chain query.
    let query_lps = vec![np, np, s_tag];
    let query_nps = vec![2u32, 3, 4];
    let candidates = subsequence_positions(&query_lps, &doc_seq.lps, 5000);
    assert!(!candidates.is_empty(), "need candidates to refine");
    let edges = vec![EdgeKind::Child; 3];
    let leaves: Vec<(Sym, u32)> = Vec::new();
    let doc_leaves = doc.leaves();

    fn ctx_for<'a>(
        pos: &'a [u32],
        doc_nps: &'a [u32],
        query_nps: &'a [u32],
        edges: &'a [EdgeKind],
        leaves: &'a [(Sym, u32)],
        doc_leaves: &'a [(Sym, u32)],
        doc_lps: &'a [Sym],
    ) -> RefineCtx<'a> {
        RefineCtx {
            doc_nps,
            query_nps,
            positions: pos,
            edges,
            query_leaves: leaves,
            doc_leaves,
            doc_lps,
            skip_leaf_check: true,
        }
    }
    h.set_opts(Opts::samples(30));
    h.bench("phases/connectedness", || {
        let mut pass = 0;
        for pos in &candidates {
            pass += check_connectedness(&ctx_for(
                pos,
                &doc_seq.nps,
                &query_nps,
                &edges,
                &leaves,
                &doc_leaves,
                &doc_seq.lps,
            )) as usize;
        }
        std::hint::black_box(pass);
    });
    h.bench("phases/gap_consistency", || {
        let mut pass = 0;
        for pos in &candidates {
            pass += check_gap_consistency(&ctx_for(
                pos,
                &doc_seq.nps,
                &query_nps,
                &edges,
                &leaves,
                &doc_leaves,
                &doc_seq.lps,
            )) as usize;
        }
        std::hint::black_box(pass);
    });
    h.bench("phases/frequency_consistency", || {
        let mut pass = 0;
        for pos in &candidates {
            pass += check_frequency_consistency(&ctx_for(
                pos,
                &doc_seq.nps,
                &query_nps,
                &edges,
                &leaves,
                &doc_leaves,
                &doc_seq.lps,
            )) as usize;
        }
        std::hint::black_box(pass);
    });
    h.bench("phases/all_phases", || {
        let mut pass = 0;
        for pos in &candidates {
            pass += refine_match(&ctx_for(
                pos,
                &doc_seq.nps,
                &query_nps,
                &edges,
                &leaves,
                &doc_leaves,
                &doc_seq.lps,
            )) as usize;
        }
        std::hint::black_box(pass);
    });
}

fn bench_scan_matcher(h: &mut Harness) {
    let mut collection = generate(Dataset::Dblp, 0.02, 9);
    let dummy = collection.intern("\u{1}d");
    let mut syms = collection.symbols().clone();
    let q = prix_core::parse_xpath("//www[./editor]/url", &mut syms).unwrap();
    h.set_opts(Opts::samples(10));
    h.bench("scan_matcher/dblp_q2_full_scan", || {
        std::hint::black_box(scan_matches(&collection, &q, dummy).len());
    });
}

fn main() {
    let mut h = Harness::from_args("refinement");
    bench_phases(&mut h);
    bench_scan_matcher(&mut h);
    h.finish();
}
