//! Closed-loop HTTP load generator for the serving layer.
//!
//! Starts a real `prix-server` on an ephemeral port over a synthetic
//! DBLP collection, then measures requests through the full stack
//! (TCP connect → parse → engine → JSON → response) with N client
//! threads each issuing a fixed number of requests per sample. The
//! testkit harness reports median/p95 per sample, so
//! `sample / (clients * requests)` is the per-request latency and
//! `(clients * requests) / sample` the requests/sec — future PRs track
//! these numbers.
//!
//! Two client modes exercise the connection lifecycle:
//!
//! * **close-per-request** — one TCP connect per request with
//!   `Connection: close`, the pre-keep-alive behaviour;
//! * **keep-alive** — one persistent connection per client thread,
//!   responses framed by `Content-Length`.
//!
//! After the harness runs, the bench asserts the two acceptance
//! properties directly: keep-alive beats close-per-request by ≥ 5× at
//! 8 clients, and a repeated-query run is served from the result cache
//! (hit ratio > 0.9, bit-identical bodies) until an ingest advances
//! the epoch and invalidates it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use prix_core::{EngineConfig, PrixEngine};
use prix_datagen::{queries::queries_for, Dataset};
use prix_server::{Server, ServerConfig, ServerHandle};
use prix_testkit::bench::{Harness, Opts};

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(raw.as_bytes()).expect("send");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("recv");
    assert!(buf.starts_with("HTTP/1.1 200"), "bad response: {buf}");
    buf
}

fn get(addr: SocketAddr, target: &str) -> String {
    request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: prix\r\nConnection: close\r\n\r\n"),
    )
}

/// One persistent connection speaking keep-alive: requests go out
/// without `Connection: close`, responses come back framed by
/// `Content-Length` so the socket can be reused immediately.
struct KeepAliveConn {
    r: BufReader<TcpStream>,
}

impl KeepAliveConn {
    fn connect(addr: SocketAddr) -> Self {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.set_nodelay(true).unwrap();
        KeepAliveConn {
            r: BufReader::new(s),
        }
    }

    /// Sends one GET and reads one framed response body.
    fn get(&mut self, target: &str) -> String {
        self.send(target, 1);
        self.read_one()
    }

    /// Writes `n` back-to-back GETs without waiting for responses
    /// (bounded pipelining — the server answers them in order).
    fn send(&mut self, target: &str, n: usize) {
        let one = format!("GET {target} HTTP/1.1\r\nHost: prix\r\n\r\n");
        self.r
            .get_ref()
            .write_all(one.repeat(n).as_bytes())
            .expect("send");
    }

    /// Reads one framed response off the socket.
    fn read_one(&mut self) -> String {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            let n = self.r.read_line(&mut line).expect("read header");
            assert!(n > 0, "server closed mid-response: {head:?}");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        assert!(head.starts_with("HTTP/1.1 200"), "bad response: {head}");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                if k.eq_ignore_ascii_case("content-length") {
                    v.trim().parse().ok()
                } else {
                    None
                }
            })
            .expect("no Content-Length");
        let mut body = vec![0u8; content_length];
        self.r.read_exact(&mut body).expect("read body");
        String::from_utf8(body).expect("utf-8 body")
    }
}

/// `clients` threads each run `per_client` GETs of `target`, one
/// fresh connection per request (`Connection: close`).
fn closed_loop(addr: SocketAddr, target: &str, clients: usize, per_client: usize) {
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                for _ in 0..per_client {
                    std::hint::black_box(get(addr, target));
                }
            });
        }
    });
}

/// `clients` threads each run `per_client` GETs of `target` down one
/// persistent keep-alive connection, pipelined `depth` requests at a
/// time (`depth = 1` is plain request/response keep-alive).
fn keep_alive_loop(
    addr: SocketAddr,
    target: &str,
    clients: usize,
    per_client: usize,
    depth: usize,
) {
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                let mut conn = KeepAliveConn::connect(addr);
                let mut left = per_client;
                while left > 0 {
                    let burst = depth.min(left);
                    conn.send(target, burst);
                    for _ in 0..burst {
                        std::hint::black_box(conn.read_one());
                    }
                    left -= burst;
                }
            });
        }
    });
}

fn start_server() -> ServerHandle {
    let collection = prix_datagen::generate(Dataset::Dblp, 0.02, 42);
    let engine = PrixEngine::build(collection, EngineConfig::default()).expect("build engine");
    Server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_depth: 128,
            // The epoch-advance acceptance check ingests one document.
            ingest: true,
            // Keep a chatty bench client on one connection throughout.
            max_requests_per_conn: 1_000_000,
            ..Default::default()
        },
    )
    .expect("start server")
}

/// Pulls `prix_cache_hit_ratio{cache="result"}` out of a /metrics body.
fn result_hit_ratio(metrics: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(r#"prix_cache_hit_ratio{cache="result"}"#))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("no result-cache hit-ratio gauge")
}

fn main() {
    let handle = start_server();
    let addr = handle.addr();
    // A value-free structural query (RPIndex) from the Table 3
    // workload; urlencode the brackets.
    let q2 = "/query?xp=%2F%2Fwww%5B.%2Feditor%5D%2Furl";
    let batch_body: String = queries_for(Dataset::Dblp)
        .iter()
        .filter(|q| !q.has_values)
        .map(|q| format!("{}\n", q.xpath))
        .collect();
    let batch = format!(
        "POST /batch HTTP/1.1\r\nHost: prix\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{batch_body}",
        batch_body.len()
    );

    let mut h = Harness::from_args("server_throughput");
    h.set_opts(Opts {
        warmup: 2,
        samples: 10,
    });
    // Pure HTTP overhead: no engine work.
    h.bench("healthz_x64_1client", || {
        closed_loop(addr, "/healthz", 1, 64)
    });
    // Engine-bound query path, serial vs concurrent closed loops.
    h.bench("query_x64_1client", || closed_loop(addr, q2, 1, 64));
    h.bench("query_x64_4clients", || closed_loop(addr, q2, 4, 16));
    h.bench("query_x64_8clients", || closed_loop(addr, q2, 8, 8));
    // The same loads on persistent connections: no connect per request,
    // plus a pipelined variant (16 requests in flight per client).
    h.bench("query_keepalive_x64_1client", || {
        keep_alive_loop(addr, q2, 1, 64, 1)
    });
    h.bench("query_keepalive_x64_8clients", || {
        keep_alive_loop(addr, q2, 8, 8, 1)
    });
    h.bench("query_pipelined16_x64_8clients", || {
        keep_alive_loop(addr, q2, 8, 8, 16)
    });
    // The batch endpoint amortizes HTTP per query.
    h.bench("batch_structural_x8", || {
        for _ in 0..8 {
            std::hint::black_box(request(addr, &batch));
        }
    });
    h.finish();

    // Acceptance: at 8 clients, keep-alive (with bounded pipelining,
    // 16 requests in flight per client) must deliver >= 5x the
    // requests/sec of close-per-request. Measured outside the harness
    // so the ratio is over one long run, not per-sample medians.
    let per_client = 200;
    let t = Instant::now();
    closed_loop(addr, q2, 8, per_client);
    let close_elapsed = t.elapsed();
    let t = Instant::now();
    keep_alive_loop(addr, q2, 8, per_client, 16);
    let ka_elapsed = t.elapsed();
    let speedup = close_elapsed.as_secs_f64() / ka_elapsed.as_secs_f64();
    println!(
        "keepalive_speedup_8clients {speedup:.2}x (close {:.1}ms, keep-alive {:.1}ms for {} reqs)",
        close_elapsed.as_secs_f64() * 1e3,
        ka_elapsed.as_secs_f64() * 1e3,
        8 * per_client,
    );
    assert!(
        speedup >= 5.0,
        "keep-alive must be >= 5x close-per-request at 8 clients, got {speedup:.2}x"
    );

    // Acceptance: the repeated-query traffic above was served from the
    // result cache — high hit ratio and bit-identical bodies — until an
    // ingest publishes a new epoch, which must invalidate it.
    let mut conn = KeepAliveConn::connect(addr);
    let first = conn.get(q2);
    for _ in 0..31 {
        assert_eq!(conn.get(q2), first, "cache hit must be bit-identical");
    }
    let ratio = result_hit_ratio(&get(addr, "/metrics"));
    println!("result_cache_hit_ratio {ratio:.4}");
    assert!(ratio > 0.9, "expected hit ratio > 0.9, got {ratio}");
    let doc = "<dblp><www><editor>bench</editor><url>invalidate</url></www></dblp>";
    let ingest = request(
        addr,
        &format!(
            "POST /documents HTTP/1.1\r\nHost: prix\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{doc}",
            doc.len()
        ),
    );
    assert!(ingest.contains(r#""accepted":1"#), "{ingest}");
    let after = conn.get(q2);
    assert_ne!(after, first, "epoch advance must invalidate the cache");
    println!("epoch_invalidation ok");

    // Show that the bench traffic moved the server-side histograms
    // (the acceptance check for /metrics under load).
    let metrics = get(addr, "/metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("prix_http_request_duration_seconds_count")
            || l.starts_with("prix_bufferpool_hit_ratio")
            || l.starts_with("prix_http_requests_total")
            || l.starts_with("prix_cache_")
    }) {
        println!("{line}");
    }
    handle.shutdown().expect("graceful shutdown");
}
