//! Closed-loop HTTP load generator for the serving layer.
//!
//! Starts a real `prix-server` on an ephemeral port over a synthetic
//! DBLP collection, then measures requests through the full stack
//! (TCP connect → parse → engine → JSON → response) with N client
//! threads each issuing a fixed number of requests per sample. The
//! testkit harness reports median/p95 per sample, so
//! `sample / (clients * requests)` is the per-request latency and
//! `(clients * requests) / sample` the requests/sec — future PRs track
//! these numbers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use prix_core::{EngineConfig, PrixEngine};
use prix_datagen::{queries::queries_for, Dataset};
use prix_server::{Server, ServerConfig, ServerHandle};
use prix_testkit::bench::{Harness, Opts};

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(raw.as_bytes()).expect("send");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("recv");
    assert!(buf.starts_with("HTTP/1.1 200"), "bad response: {buf}");
    buf
}

fn get(addr: SocketAddr, target: &str) -> String {
    request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: prix\r\n\r\n"),
    )
}

/// `clients` threads each run `per_client` GETs of `target`.
fn closed_loop(addr: SocketAddr, target: &str, clients: usize, per_client: usize) {
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                for _ in 0..per_client {
                    std::hint::black_box(get(addr, target));
                }
            });
        }
    });
}

fn start_server() -> ServerHandle {
    let collection = prix_datagen::generate(Dataset::Dblp, 0.02, 42);
    let engine = PrixEngine::build(collection, EngineConfig::default()).expect("build engine");
    Server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_depth: 128,
            ..Default::default()
        },
    )
    .expect("start server")
}

fn main() {
    let handle = start_server();
    let addr = handle.addr();
    // A value-free structural query (RPIndex) from the Table 3
    // workload; urlencode the brackets.
    let q2 = "/query?xp=%2F%2Fwww%5B.%2Feditor%5D%2Furl";
    let batch_body: String = queries_for(Dataset::Dblp)
        .iter()
        .filter(|q| !q.has_values)
        .map(|q| format!("{}\n", q.xpath))
        .collect();
    let batch = format!(
        "POST /batch HTTP/1.1\r\nHost: prix\r\nContent-Length: {}\r\n\r\n{batch_body}",
        batch_body.len()
    );

    let mut h = Harness::from_args("server_throughput");
    h.set_opts(Opts {
        warmup: 2,
        samples: 10,
    });
    // Pure HTTP overhead: no engine work.
    h.bench("healthz_x64_1client", || {
        closed_loop(addr, "/healthz", 1, 64)
    });
    // Engine-bound query path, serial vs concurrent closed loops.
    h.bench("query_x64_1client", || closed_loop(addr, q2, 1, 64));
    h.bench("query_x64_4clients", || closed_loop(addr, q2, 4, 16));
    h.bench("query_x64_8clients", || closed_loop(addr, q2, 8, 8));
    // The batch endpoint amortizes HTTP per query.
    h.bench("batch_structural_x8", || {
        for _ in 0..8 {
            std::hint::black_box(request(addr, &batch));
        }
    });
    h.finish();

    // Show that the bench traffic moved the server-side histograms
    // (the acceptance check for /metrics under load).
    let metrics = get(addr, "/metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("prix_http_request_duration_seconds_count")
            || l.starts_with("prix_bufferpool_hit_ratio")
            || l.starts_with("prix_http_requests_total")
    }) {
        println!("{line}");
    }
    handle.shutdown().expect("graceful shutdown");
}
