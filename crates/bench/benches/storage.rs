//! Storage-substrate microbenchmarks: B+-tree inserts, lookups, range
//! scans, bulk loads, and buffer-pool behaviour.

use std::ops::Bound;
use std::sync::Arc;

use prix_storage::bptree::encode_u64_be;
use prix_storage::{BPlusTree, BufferPool, Pager};
use prix_testkit::bench::{Harness, Opts};

fn pool(cap: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Pager::in_memory(), cap))
}

fn bench_bptree(h: &mut Harness) {
    h.set_opts(Opts::samples(10));
    h.bench_with_setup(
        "insert_10k_random",
        || pool(256),
        |p| {
            let mut t = BPlusTree::create(p).unwrap();
            let mut x: u64 = 1;
            for _ in 0..10_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t.insert(&encode_u64_be(x), &x.to_le_bytes()).unwrap();
            }
            std::hint::black_box(t.root());
        },
    );
    h.bench_with_setup(
        "bulk_load_100k",
        || {
            (
                pool(256),
                (0..100_000u64)
                    .map(|i| (encode_u64_be(i).to_vec(), i.to_le_bytes().to_vec()))
                    .collect::<Vec<_>>(),
            )
        },
        |(p, entries)| {
            let t = BPlusTree::bulk_load(p, entries, 0.9).unwrap();
            std::hint::black_box(t.root());
        },
    );
    // Shared tree for read benches.
    let p = pool(1024);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..100_000u64)
        .map(|i| (encode_u64_be(i).to_vec(), i.to_le_bytes().to_vec()))
        .collect();
    let t = BPlusTree::bulk_load(Arc::clone(&p), entries, 0.9).unwrap();
    {
        let mut i = 0u64;
        h.bench("point_get_warm", || {
            i = (i * 31 + 7) % 100_000;
            std::hint::black_box(t.get(&encode_u64_be(i)).unwrap());
        });
    }
    h.bench("range_scan_1k", || {
        let mut n = 0;
        t.scan(
            Bound::Included(&encode_u64_be(50_000)),
            Bound::Excluded(&encode_u64_be(51_000)),
            |_, _| {
                n += 1;
                true
            },
        )
        .unwrap();
        std::hint::black_box(n);
    });
    {
        let mut i = 0u64;
        h.bench("point_get_cold", || {
            p.clear().unwrap();
            i = (i * 31 + 7) % 100_000;
            std::hint::black_box(t.get(&encode_u64_be(i)).unwrap());
        });
    }
}

fn main() {
    let mut h = Harness::from_args("bptree");
    bench_bptree(&mut h);
    h.finish();
}
