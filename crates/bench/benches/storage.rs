//! Storage-substrate microbenchmarks: B+-tree inserts, lookups, range
//! scans, bulk loads, and buffer-pool behaviour.

use std::ops::Bound;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use prix_storage::bptree::encode_u64_be;
use prix_storage::{BPlusTree, BufferPool, Pager};

fn pool(cap: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Pager::in_memory(), cap))
}

fn bench_bptree(c: &mut Criterion) {
    let mut g = c.benchmark_group("bptree");
    g.sample_size(10);
    g.bench_function("insert_10k_random", |b| {
        b.iter_batched(
            || pool(256),
            |p| {
                let mut t = BPlusTree::create(p).unwrap();
                let mut x: u64 = 1;
                for _ in 0..10_000 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    t.insert(&encode_u64_be(x), &x.to_le_bytes()).unwrap();
                }
                std::hint::black_box(t.root())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("bulk_load_100k", |b| {
        b.iter_batched(
            || {
                (
                    pool(256),
                    (0..100_000u64)
                        .map(|i| (encode_u64_be(i).to_vec(), i.to_le_bytes().to_vec()))
                        .collect::<Vec<_>>(),
                )
            },
            |(p, entries)| {
                let t = BPlusTree::bulk_load(p, entries, 0.9).unwrap();
                std::hint::black_box(t.root())
            },
            BatchSize::SmallInput,
        )
    });
    // Shared tree for read benches.
    let p = pool(1024);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..100_000u64)
        .map(|i| (encode_u64_be(i).to_vec(), i.to_le_bytes().to_vec()))
        .collect();
    let t = BPlusTree::bulk_load(Arc::clone(&p), entries, 0.9).unwrap();
    g.bench_function("point_get_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 31 + 7) % 100_000;
            std::hint::black_box(t.get(&encode_u64_be(i)).unwrap())
        })
    });
    g.bench_function("range_scan_1k", |b| {
        b.iter(|| {
            let mut n = 0;
            t.scan(
                Bound::Included(&encode_u64_be(50_000)),
                Bound::Excluded(&encode_u64_be(51_000)),
                |_, _| {
                    n += 1;
                    true
                },
            )
            .unwrap();
            std::hint::black_box(n)
        })
    });
    g.bench_function("point_get_cold", |b| {
        let mut i = 0u64;
        b.iter(|| {
            p.clear().unwrap();
            i = (i * 31 + 7) % 100_000;
            std::hint::black_box(t.get(&encode_u64_be(i)).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bptree);
criterion_main!(benches);
