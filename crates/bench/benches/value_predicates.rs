//! Value-predicate pushdown vs. structural-match-then-post-filter.
//!
//! On the shop scenario (uniform prices in [10, 1000)), `//item[price
//! < T]` sweeps selectivity ~1% / ~10% / ~50%. The predicate path
//! probes the value index, intersects the candidate documents before
//! refinement, and verifies positionally; the baseline runs the same
//! twig without predicates and filters the matches client-side (the
//! only option without a value index). At low selectivity the probe
//! skips refinement for ~99% of the candidates, so the predicate path
//! must do strictly fewer page reads and finish faster — and a
//! `--limit` compounds the gap, because the filtered stream stops
//! after k verified matches while the baseline still pays for the
//! full structural answer.
//!
//! The final JSON table records matches, page reads, and valix
//! counters per case; the inequalities at the bottom are this bench's
//! acceptance checks.

use prix_core::index::ExecOpts;
use prix_core::{EngineConfig, PrixEngine, TwigMatch, TwigQuery};
use prix_datagen::values::{generate, ShopConfig};
use prix_testkit::bench::{Harness, Opts, Report};

/// Client-side post-filter: keep the matches whose predicate-node
/// images have a satisfying leaf child (exactly what the executor's
/// positional verification checks).
fn post_filter(engine: &PrixEngine, q: &TwigQuery, matches: &mut Vec<TwigMatch>) {
    let syms = engine.collection().symbols();
    matches.retain(|m| {
        q.preds().iter().all(|p| {
            let img = m.embedding[(q.tree().postorder(p.node) - 1) as usize];
            let tree = engine.collection().doc(m.doc);
            let node = tree.node_at(img);
            tree.children(node)
                .iter()
                .any(|&c| tree.is_leaf(c) && p.accepts(syms.name(tree.label(c))))
        })
    });
}

fn median_ns(reports: &[Report], suffix: &str) -> u128 {
    reports
        .iter()
        .find(|r| r.name.ends_with(suffix))
        .unwrap_or_else(|| panic!("no report for {suffix}"))
        .median
        .as_nanos()
}

fn main() {
    let collection = generate(&ShopConfig {
        records: 6000,
        seed: 42,
    });
    let engine = PrixEngine::build(collection, EngineConfig::default()).unwrap();
    let mut syms = engine.collection().symbols().clone();
    let mut parse = |s: &str| prix_core::parse_xpath(s, &mut syms).unwrap();

    // Uniform prices in [10, 1000) put these thresholds at ~1%, ~10%,
    // and ~50% selectivity.
    let sweep: [(&str, f64); 3] = [
        ("sel_1pct", 20.0),
        ("sel_10pct", 109.0),
        ("sel_50pct", 505.0),
    ];
    let queries: Vec<(&str, TwigQuery)> = sweep
        .iter()
        .map(|&(name, t)| (name, parse(&format!("//item[price < {t}]"))))
        .collect();

    let mut h = Harness::from_args("value_predicates");
    h.set_opts(Opts {
        warmup: 2,
        samples: 15,
    });
    for (name, q) in &queries {
        let bare = q.without_preds();
        h.bench(&format!("{name}/predicate"), || {
            std::hint::black_box(engine.query(q).unwrap().matches.len());
        });
        h.bench(&format!("{name}/post_filter"), || {
            let mut out = engine.query(&bare).unwrap();
            post_filter(&engine, q, &mut out.matches);
            std::hint::black_box(out.matches.len());
        });
    }
    // Limit pushdown at the selective end: the filtered stream stops at
    // k verified matches; the baseline must still drain the structural
    // answer before it can filter and truncate.
    let (_, selective) = &queries[0];
    let bare = selective.without_preds();
    for k in [1usize, 10] {
        let opts = ExecOpts::new().with_limit(k);
        h.bench(&format!("limit_{k}/predicate"), || {
            std::hint::black_box(engine.query_opts(selective, &opts).unwrap().matches.len());
        });
        h.bench(&format!("limit_{k}/post_filter"), || {
            let mut out = engine.query(&bare).unwrap();
            post_filter(&engine, selective, &mut out.matches);
            out.matches.truncate(k);
            std::hint::black_box(out.matches.len());
        });
    }

    let pred_med = median_ns(h.reports(), "sel_1pct/predicate");
    let base_med = median_ns(h.reports(), "sel_1pct/post_filter");
    let pred_lim_med = median_ns(h.reports(), "limit_10/predicate");
    let base_lim_med = median_ns(h.reports(), "limit_10/post_filter");
    h.finish();

    // Cold-cache runs for the Disk-IO story.
    let mut rows = Vec::new();
    let mut cold = |name: &str, q: &TwigQuery, opts: &ExecOpts, filter_with: Option<&TwigQuery>| {
        engine.clear_cache().unwrap();
        let mut out = engine.query_opts(q, opts).unwrap();
        if let Some(fq) = filter_with {
            post_filter(&engine, fq, &mut out.matches);
            if let Some(k) = opts.limit {
                out.matches.truncate(k);
            }
        }
        rows.push(format!(
            r#"  {{"case":"{name}","matches":{},"logical_reads":{},"physical_reads":{},"valix_probes":{},"valix_postings":{},"pred_skipped":{}}}"#,
            out.matches.len(),
            out.io.logical_reads,
            out.io.physical_reads,
            out.stats.valix_probes,
            out.stats.valix_postings,
            out.stats.pred_skipped,
        ));
        (out.matches.len(), out.io.logical_reads)
    };
    let unlimited = ExecOpts::new();
    let mut pairs = Vec::new();
    for (name, q) in &queries {
        let bare = q.without_preds();
        let (n_pred, r_pred) = cold(&format!("{name}/predicate"), q, &unlimited, None);
        // The baseline's reads are those of the structural query; the
        // post-filter itself touches only the in-memory collection.
        let (n_base, r_base) = cold(&format!("{name}/post_filter"), &bare, &unlimited, Some(q));
        assert_eq!(n_pred, n_base, "{name}: identical answers both ways");
        pairs.push((*name, r_pred, r_base));
    }
    let lim = ExecOpts::new().with_limit(10);
    let (_, r_pred_lim) = cold("limit_10/predicate", selective, &lim, None);
    engine.clear_cache().unwrap();
    let mut out = engine.query(&bare).unwrap();
    let r_base_lim = out.io.logical_reads;
    post_filter(&engine, selective, &mut out.matches);
    out.matches.truncate(10);
    rows.push(format!(
        r#"  {{"case":"limit_10/post_filter","matches":{},"logical_reads":{r_base_lim},"physical_reads":{},"valix_probes":0,"valix_postings":0,"pred_skipped":0}}"#,
        out.matches.len(),
        out.io.physical_reads,
    ));
    println!("[\n{}\n]", rows.join(",\n"));

    // Acceptance: at ~1% selectivity the predicate path beats
    // match-then-filter on both page reads and median latency, and the
    // limit widens the page-read gap (the baseline cannot push a limit
    // below the post-filter, so its cost is flat while the predicate
    // path's shrinks).
    let (_, r_pred_1, r_base_1) = pairs[0];
    assert!(
        r_pred_1 < r_base_1,
        "1% predicate must read strictly fewer pages: {r_pred_1} vs {r_base_1}"
    );
    assert!(
        pred_med < base_med,
        "1% predicate must have lower median latency: {pred_med}ns vs {base_med}ns"
    );
    assert!(
        pred_lim_med < base_lim_med,
        "limit 10: predicate must stay faster: {pred_lim_med}ns vs {base_lim_med}ns"
    );
    assert!(
        r_pred_lim <= r_pred_1 && r_pred_lim < r_base_lim,
        "limit 10: predicate reads must not grow ({r_pred_lim} vs unlimited {r_pred_1}) and must undercut the baseline ({r_base_lim})"
    );
    let gap_unlimited = r_base_1 as f64 / r_pred_1.max(1) as f64;
    let gap_limited = r_base_lim as f64 / r_pred_lim.max(1) as f64;
    assert!(
        gap_limited >= gap_unlimited,
        "the limit must compound the page-read gap: {gap_limited:.2}x vs {gap_unlimited:.2}x"
    );
}
