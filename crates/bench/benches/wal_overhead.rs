//! Durability price tags: what the write-ahead log costs on ingest,
//! and what recovery costs after a crash.
//!
//! Two measurements:
//!
//! * `ingest/*` — build + incremental insert + save on a file-backed
//!   engine, WAL on vs `--no-wal`. The WAL run pays the group-commit
//!   fsync discipline (5 barriers per save) and one log append per
//!   committed page; the no-WAL run writes pages directly.
//! * `recover/k*` — crash recovery at the storage layer with a log
//!   holding K committed page images (the state right after the commit
//!   fsync, before any page write landed). Recovery replays all K
//!   frames; its cost is proportional to the log length and nothing
//!   else — the bound the recovery state machine promises.
//!
//! The JSON rows report replayed frames, WAL bytes, and the recovery
//! wall clock per K.

use std::time::Instant;

use prix_core::{EngineConfig, LabelingMode, PrixEngine};
use prix_storage::{recover, MemStore, Pager, RawStore, Wal, PAGE_SIZE};
use prix_testkit::bench::{Harness, Opts};
use prix_xml::Collection;

fn docs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("<a><b><x>v{}</x></b><d/></a>", i % 7))
        .collect()
}

/// One full ingest: build a base engine in `dir`, insert 32 documents,
/// save. Returns after the engine (and its pool) shut down cleanly.
fn ingest(dir: &std::path::Path, wal: bool) {
    let base = docs(8);
    let mut c = Collection::new();
    for d in &base {
        c.add_xml(d).unwrap();
    }
    let mut e = PrixEngine::build(
        c,
        EngineConfig {
            path: Some(dir.join("db.prix")),
            buffer_pages: 64,
            labeling: LabelingMode::Dynamic { alpha: 4 },
            wal,
            ..Default::default()
        },
    )
    .unwrap();
    for d in docs(32) {
        e.insert_document(&d).unwrap();
    }
    e.save().unwrap();
}

/// A post-crash image pair: a durable pager at epoch 1 plus a WAL whose
/// commit (K pages, epoch 2) is fsynced but whose page writes never
/// happened — the worst case recovery must redo in full.
fn crashed_image(k: usize) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let db = MemStore::new();
    let sum = MemStore::new();
    let wal_store = MemStore::new();
    let pager = Pager::create_durable(Box::new(db.clone()), Box::new(sum.clone())).unwrap();
    let mut wal = Wal::create(Box::new(wal_store.clone()), pager.epoch(), pager.stats()).unwrap();
    let mut images = Vec::with_capacity(k);
    for i in 0..k {
        let id = pager.allocate().unwrap();
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page[0] = i as u8;
        page[PAGE_SIZE - 1] = (i >> 8) as u8;
        images.push((id, page));
    }
    pager.sync().unwrap();
    wal.append_commit_batch(&images, pager.epoch() + 1).unwrap();
    wal.sync().unwrap();
    (db.snapshot(), sum.snapshot(), wal_store.snapshot())
}

/// Replays one crashed image; returns (replayed frames, WAL bytes).
fn recover_once(image: &(Vec<u8>, Vec<u8>, Vec<u8>)) -> (u64, u64) {
    let db = Box::new(MemStore::from_bytes(image.0.clone()));
    let sum = Box::new(MemStore::from_bytes(image.1.clone()));
    let wal: Box<dyn RawStore> = Box::new(MemStore::from_bytes(image.2.clone()));
    let pager = Pager::open_durable(db, sum).unwrap();
    let stats = pager.stats();
    let (_, report) = recover(&pager, wal, stats).unwrap();
    (report.replayed_frames, report.wal_bytes)
}

fn main() {
    let mut h = Harness::from_args("wal_overhead");
    h.set_opts(Opts {
        warmup: 1,
        samples: 10,
    });

    let tmp = std::env::temp_dir().join(format!("prix-walbench-{}", std::process::id()));
    for (name, wal) in [("wal", true), ("no_wal", false)] {
        let dir = tmp.join(name);
        h.bench(&format!("ingest/{name}"), || {
            std::fs::create_dir_all(&dir).unwrap();
            ingest(&dir, wal);
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    let ks = [16usize, 64, 256, 1024];
    let images: Vec<_> = ks.iter().map(|&k| crashed_image(k)).collect();
    for (&k, image) in ks.iter().zip(&images) {
        h.bench(&format!("recover/k{k}"), || {
            std::hint::black_box(recover_once(image));
        });
    }
    h.finish();

    // JSON rows: recovery work is exactly the log contents.
    let mut rows = Vec::new();
    let mut wal_bytes = Vec::new();
    for (&k, image) in ks.iter().zip(&images) {
        let start = Instant::now();
        let (frames, bytes) = recover_once(image);
        let us = start.elapsed().as_micros();
        assert_eq!(frames, k as u64, "recovery must replay every page frame");
        wal_bytes.push(bytes);
        rows.push(format!(
            r#"  {{"case":"recover_k{k}","frames":{frames},"wal_bytes":{bytes},"recover_us":{us}}}"#
        ));
    }
    println!("[\n{}\n]", rows.join(",\n"));
    assert!(
        wal_bytes.windows(2).all(|w| w[0] < w[1]),
        "WAL length must grow with K: {wal_bytes:?}"
    );
}
