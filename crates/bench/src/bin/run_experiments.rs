//! Regenerates every table and figure of the PRIX paper's evaluation.
//!
//! ```text
//! run_experiments [--scale S] [--seed N] [--json PATH] [--only T2,T4,F6,...]
//! ```
//!
//! * Table 2 — dataset statistics
//! * Table 3 — queries and twig-match counts
//! * Figure 6 — elapsed time, all queries × all engines
//! * Tables 4–6 — PRIX vs ViST (DBLP / SWISSPROT / TREEBANK)
//! * Table 7 — TwigStack vs TwigStackXB (DBLP)
//! * Tables 8–9 — PRIX vs TwigStackXB
//!
//! Absolute numbers differ from the paper's 2004 testbed; the expected
//! reproduction is the *shape*: who wins, by what rough factor, where
//! the crossovers sit (see EXPERIMENTS.md).

use std::collections::BTreeSet;

use prix_bench::{
    render_figure6, render_prix_vs_vist, render_prix_vs_xb, render_ts_vs_xb, rows_to_json,
    QueryRow, Workbench,
};
use prix_datagen::{paper_queries, queries::queries_for, Dataset};

struct Args {
    scale: f64,
    seed: u64,
    json: Option<String>,
    only: Option<BTreeSet<String>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.25,
        seed: 42,
        json: None,
        only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number")
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--only" => {
                args.only = Some(
                    it.next()
                        .expect("--only needs a list like T2,T4,F6")
                        .split(',')
                        .map(|s| s.trim().to_uppercase())
                        .collect(),
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: run_experiments [--scale S] [--seed N] [--json PATH] [--only T2,T4,F6]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

fn wanted(only: &Option<BTreeSet<String>>, key: &str) -> bool {
    only.as_ref().is_none_or(|s| s.contains(key))
}

fn main() {
    let args = parse_args();
    println!(
        "# PRIX experiment run (scale {}, seed {})",
        args.scale, args.seed
    );

    let mut all_rows: Vec<QueryRow> = Vec::new();
    let mut report = String::new();

    let mut table2 = String::from(
        "\n## Table 2 — datasets\n\n\
         | Dataset | Size (MiB) | Elements | Attributes | Max depth | Sequences |\n\
         |---------|-----------:|---------:|-----------:|----------:|----------:|\n",
    );
    let mut table3 = String::from(
        "\n## Table 3 — queries\n\n\
         | Query | XPath | Dataset | Matches (paper) | Matches (measured) |\n\
         |-------|-------|---------|----------------:|-------------------:|\n",
    );

    for ds in Dataset::all() {
        eprintln!("building {ds} at scale {} ...", args.scale);
        let mut wb = Workbench::setup(ds, args.scale, args.seed);
        let st = wb.stats();
        table2.push_str(&format!(
            "| {} | {:.1} | {} | {} | {} | {} |\n",
            ds,
            st.size_mib(),
            st.elements,
            st.attributes,
            st.max_depth,
            st.sequences
        ));
        for pq in queries_for(ds) {
            eprintln!("  running {} ...", pq.id);
            let row = wb.run_query(pq.id, pq.xpath);
            table3.push_str(&format!(
                "| {} | `{}` | {} | {} | {} |\n",
                pq.id, pq.xpath, ds, pq.expected_matches, row.prix.matches
            ));
            all_rows.push(row);
        }
    }

    let rows = |ids: &[&str]| -> Vec<QueryRow> {
        ids.iter()
            .map(|id| {
                all_rows
                    .iter()
                    .find(|r| r.id == *id)
                    .unwrap_or_else(|| panic!("row {id} missing"))
                    .clone()
            })
            .collect()
    };

    if wanted(&args.only, "T2") {
        report.push_str(&table2);
    }
    if wanted(&args.only, "T3") {
        report.push_str(&table3);
    }
    if wanted(&args.only, "F6") {
        report.push_str(&render_figure6(&all_rows));
    }
    if wanted(&args.only, "T4") {
        report.push_str(&render_prix_vs_vist(
            "Table 4 — DBLP: PRIX vs ViST",
            &rows(&["Q1", "Q2", "Q3"]),
        ));
    }
    if wanted(&args.only, "T5") {
        report.push_str(&render_prix_vs_vist(
            "Table 5 — SWISSPROT: PRIX vs ViST",
            &rows(&["Q4", "Q5", "Q6"]),
        ));
    }
    if wanted(&args.only, "T6") {
        report.push_str(&render_prix_vs_vist(
            "Table 6 — TREEBANK: PRIX vs ViST",
            &rows(&["Q7", "Q8", "Q9"]),
        ));
    }
    if wanted(&args.only, "T7") {
        report.push_str(&render_ts_vs_xb(
            "Table 7 — DBLP: TwigStack vs TwigStackXB",
            &rows(&["Q1", "Q2", "Q3"]),
        ));
    }
    if wanted(&args.only, "T8") {
        report.push_str(&render_prix_vs_xb(
            "Table 8 — PRIX vs TwigStackXB (comparable cases)",
            &rows(&["Q1", "Q5", "Q7"]),
        ));
    }
    if wanted(&args.only, "T9") {
        report.push_str(&render_prix_vs_xb(
            "Table 9 — PRIX vs TwigStackXB (PRIX wins)",
            &rows(&["Q2", "Q6", "Q8"]),
        ));
    }

    // §7 future work: "explore the behavior of the PRIX system for
    // different query characteristics such as the cardinality of result
    // sets". A sweep of DBLP queries ordered by result cardinality.
    if wanted(&args.only, "SWEEP") {
        eprintln!("running cardinality sweep ...");
        let mut wb = Workbench::setup(Dataset::Dblp, args.scale, args.seed);
        let sweep_queries: Vec<(&str, &str)> = vec![
            ("S1", r#"//title[text()="Semantic Analysis Patterns"]"#),
            ("S2", r#"//inproceedings[./author="Jim Gray"]"#),
            ("S3", "//www[./editor]/url"),
            ("S4", "//book/publisher"),
            ("S5", "//phdthesis/author"),
            ("S6", r#"//article[./journal="TODS"]"#),
            ("S7", "//article[./editor]/url"),
            ("S8", "//inproceedings[./booktitle]/year"),
            ("S9", "//inproceedings/author"),
        ];
        let mut rows: Vec<QueryRow> = sweep_queries
            .iter()
            .map(|(id, xp)| wb.run_query(id, xp))
            .collect();
        rows.sort_by_key(|r| r.prix.matches);
        report.push_str(
            "\n## Cardinality sweep (paper §7 future work) — DBLP, sorted by result size\n\n",
        );
        report.push_str(
            "| Query | Matches | PRIX time | PRIX IO | TwigStackXB time | TwigStackXB IO |\n",
        );
        report.push_str(
            "|-------|--------:|-----------|--------:|------------------|---------------:|\n",
        );
        for r in &rows {
            report.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.id,
                r.prix.matches,
                prix_bench::fmt_secs(r.prix.seconds),
                r.prix.pages,
                prix_bench::fmt_secs(r.twigstackxb.seconds),
                r.twigstackxb.pages,
            ));
        }
        all_rows.extend(rows);
    }

    println!("{report}");

    // Sanity line: every measured count equals Table 3.
    let mut ok = true;
    for pq in paper_queries() {
        let row = all_rows.iter().find(|r| r.id == pq.id).unwrap();
        if row.prix.matches != pq.expected_matches || row.expected != pq.expected_matches {
            println!(
                "!! {}: expected {} matches, PRIX found {}, oracle {}",
                pq.id, pq.expected_matches, row.prix.matches, row.expected
            );
            ok = false;
        }
    }
    println!(
        "\nresult counts vs Table 3: {}",
        if ok {
            "ALL MATCH"
        } else {
            "MISMATCH (see above)"
        }
    );

    if let Some(path) = args.json {
        std::fs::write(&path, rows_to_json(&all_rows)).expect("write json");
        println!("wrote {path}");
    }
}
