//! Benchmark harness reproducing the PRIX paper's evaluation (§6).
//!
//! [`Workbench::setup`] builds, for one dataset, everything §6.1
//! describes: the PRIX engine (RPIndex + EPIndex), the ViST index, and
//! the TwigStack substrate (streams + XB-trees), all over 8 KiB-page
//! stores with 2000-page buffer pools. [`Workbench::run_query`] then
//! executes one XPath query on every engine from a cold cache and
//! reports wall-clock time, physical page reads (the paper's "Disk IO"
//! columns), and result counts.
//!
//! The `run_experiments` binary drives this to regenerate every table
//! and figure; see DESIGN.md §3 for the experiment index.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prix_core::{naive, EngineConfig, PrixEngine};
use prix_datagen::{generate, Dataset};
use prix_storage::{BufferPool, Pager};
use prix_twigstack::{encode_collection, Algorithm, StreamStore, TwigJoin, XbTree};
use prix_vist::VistIndex;
use prix_xml::{CollectionStats, Sym};

/// One engine's measurement for one query.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Physical pages read from a cold cache (the "Disk IO" column).
    pub pages: u64,
    /// Twig matches reported (for ViST: *verified* matches; its native
    /// candidate count is in [`QueryRow::vist_candidates`]).
    pub matches: u64,
}

/// All engines' measurements for one query.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Query id ("Q1".."Q9" or ad hoc).
    pub id: String,
    /// XPath text.
    pub xpath: String,
    /// PRIX (the paper's system; index picked by the §5.6 optimizer).
    pub prix: Measurement,
    /// Which PRIX index answered ("RPIndex"/"EPIndex").
    pub prix_index: String,
    /// ViST (native subsequence matching).
    pub vist: Measurement,
    /// ViST native candidate documents (includes false alarms).
    pub vist_candidates: u64,
    /// ViST false alarms removed by verification.
    pub vist_false_alarms: u64,
    /// TwigStack (plain streams).
    pub twigstack: Measurement,
    /// TwigStackXB (XB-tree skipping).
    pub twigstackxb: Measurement,
    /// Ground truth from the naive oracle.
    pub expected: u64,
}

/// A fully built benchmark environment for one dataset.
pub struct Workbench {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Scale factor used.
    pub scale: f64,
    prix: PrixEngine,
    vist: VistIndex,
    vist_pool: Arc<BufferPool>,
    streams: StreamStore,
    xb: HashMap<Sym, XbTree>,
    ts_pool: Arc<BufferPool>,
}

impl Workbench {
    /// Generates the dataset and builds every engine.
    pub fn setup(dataset: Dataset, scale: f64, seed: u64) -> Self {
        let collection = generate(dataset, scale, seed);

        let vist_pool = Arc::new(BufferPool::new(Pager::in_memory(), 2000));
        let vist = VistIndex::build(Arc::clone(&vist_pool), &collection)
            .expect("ViST build cannot fail on in-memory pager");

        let ts_pool = Arc::new(BufferPool::new(Pager::in_memory(), 2000));
        let raw = encode_collection(&collection);
        let streams = StreamStore::build(Arc::clone(&ts_pool), &raw)
            .expect("stream build cannot fail on in-memory pager");
        let mut xb = HashMap::new();
        for (&sym, elems) in &raw {
            xb.insert(
                sym,
                XbTree::build(Arc::clone(&ts_pool), elems).expect("XB build"),
            );
        }

        let prix = PrixEngine::build(collection, EngineConfig::default())
            .expect("PRIX build cannot fail on in-memory pager");

        Workbench {
            dataset,
            scale,
            prix,
            vist,
            vist_pool,
            streams,
            xb,
            ts_pool,
        }
    }

    /// Table 2 statistics of the generated collection.
    pub fn stats(&self) -> CollectionStats {
        self.prix.collection().stats()
    }

    /// The PRIX engine (for direct experimentation).
    pub fn prix(&self) -> &PrixEngine {
        &self.prix
    }

    /// Mutable PRIX engine access (query parsing interns symbols).
    pub fn prix_mut(&mut self) -> &mut PrixEngine {
        &mut self.prix
    }

    /// Runs `xpath` on all four engines from cold caches.
    pub fn run_query(&mut self, id: &str, xpath: &str) -> QueryRow {
        let q = self
            .prix
            .parse_query(xpath)
            .unwrap_or_else(|e| panic!("bad query {id}: {e}"));
        let expected = naive::naive_count(self.prix.collection(), &q) as u64;

        // PRIX.
        self.prix.clear_cache().expect("cache clear");
        let out = self.prix.query(&q).expect("prix query");
        let prix = Measurement {
            seconds: out.elapsed.as_secs_f64(),
            pages: out.io.physical_reads,
            matches: out.matches.len() as u64,
        };

        // ViST: time the native matching only (verification is our
        // correctness add-on, not part of ViST).
        self.vist_pool.clear().expect("cache clear");
        let before = self.vist_pool.snapshot();
        let start = Instant::now();
        let vist_out = self
            .vist
            .execute(&q, self.prix.collection())
            .expect("vist query");
        // Native phase I/O is everything up to verification, which does
        // no storage reads (it walks the in-memory collection).
        let vist_elapsed = start.elapsed();
        let vist_io = self.vist_pool.snapshot().since(&before);
        let vist = Measurement {
            seconds: vist_elapsed.as_secs_f64(),
            pages: vist_io.physical_reads,
            matches: vist_out.verified_matches,
        };

        // TwigStack.
        self.ts_pool.clear().expect("cache clear");
        let before = self.ts_pool.snapshot();
        let start = Instant::now();
        let ts = TwigJoin::new(&self.streams)
            .execute(&q, Algorithm::TwigStack)
            .expect("twigstack");
        let twigstack = Measurement {
            seconds: start.elapsed().as_secs_f64(),
            pages: self.ts_pool.snapshot().since(&before).physical_reads,
            matches: ts.stats.matches,
        };

        // TwigStackXB.
        self.ts_pool.clear().expect("cache clear");
        let before = self.ts_pool.snapshot();
        let start = Instant::now();
        let xb = TwigJoin::with_xbtrees(&self.streams, &self.xb)
            .execute(&q, Algorithm::TwigStackXB)
            .expect("twigstackxb");
        let twigstackxb = Measurement {
            seconds: start.elapsed().as_secs_f64(),
            pages: self.ts_pool.snapshot().since(&before).physical_reads,
            matches: xb.stats.matches,
        };

        QueryRow {
            id: id.to_string(),
            xpath: xpath.to_string(),
            prix,
            prix_index: self
                .prix
                .pick_index(&q)
                .map(|i| i.kind().to_string())
                .unwrap_or_else(|_| "-".into()),
            vist,
            vist_candidates: vist_out.stats.candidates,
            vist_false_alarms: vist_out.stats.false_alarms,
            twigstack,
            twigstackxb,
            expected,
        }
    }
}

/// Formats seconds the way the paper's tables do.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.000_1 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Renders a PRIX-vs-ViST table (the shape of Tables 4–6).
pub fn render_prix_vs_vist(title: &str, rows: &[QueryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    out.push_str("| Query | PRIX time | PRIX IO | ViST time | ViST IO | matches |\n");
    out.push_str("|-------|-----------|---------|-----------|---------|---------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} pages | {} | {} pages | {} |\n",
            r.id,
            fmt_secs(r.prix.seconds),
            r.prix.pages,
            fmt_secs(r.vist.seconds),
            r.vist.pages,
            r.prix.matches,
        ));
    }
    out
}

/// Renders a TwigStack-vs-TwigStackXB table (the shape of Table 7).
pub fn render_ts_vs_xb(title: &str, rows: &[QueryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    out.push_str("| Query | TwigStack time | TwigStack IO | TwigStackXB time | TwigStackXB IO |\n");
    out.push_str("|-------|----------------|--------------|------------------|----------------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} pages | {} | {} pages |\n",
            r.id,
            fmt_secs(r.twigstack.seconds),
            r.twigstack.pages,
            fmt_secs(r.twigstackxb.seconds),
            r.twigstackxb.pages,
        ));
    }
    out
}

/// Renders a PRIX-vs-TwigStackXB table (the shape of Tables 8–9).
pub fn render_prix_vs_xb(title: &str, rows: &[QueryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    out.push_str("| Query | PRIX time | PRIX IO | TwigStackXB time | TwigStackXB IO |\n");
    out.push_str("|-------|-----------|---------|------------------|----------------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} pages | {} | {} pages |\n",
            r.id,
            fmt_secs(r.prix.seconds),
            r.prix.pages,
            fmt_secs(r.twigstackxb.seconds),
            r.twigstackxb.pages,
        ));
    }
    out
}

/// Renders the Figure 6 series: elapsed time per query per engine.
pub fn render_figure6(rows: &[QueryRow]) -> String {
    let mut out = String::new();
    out.push_str("\n## Figure 6 — elapsed time per query (seconds)\n\n");
    out.push_str("| Query | PRIX | ViST | TwigStack | TwigStackXB |\n");
    out.push_str("|-------|------|------|-----------|-------------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.5} | {:.5} | {:.5} | {:.5} |\n",
            r.id, r.prix.seconds, r.vist.seconds, r.twigstack.seconds, r.twigstackxb.seconds,
        ));
    }
    out
}

/// Serializes rows to JSON (hand-rolled: the workspace is dependency-free
/// by design — see README "Building offline"; fields are numeric or
/// simple strings).
pub fn rows_to_json(rows: &[QueryRow]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn m(v: &Measurement) -> String {
        format!(
            r#"{{"seconds":{},"pages":{},"matches":{}}}"#,
            v.seconds, v.pages, v.matches
        )
    }
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"{{"id":"{}","xpath":"{}","prix":{},"prix_index":"{}","vist":{},"vist_candidates":{},"vist_false_alarms":{},"twigstack":{},"twigstackxb":{},"expected":{}}}"#,
                esc(&r.id),
                esc(&r.xpath),
                m(&r.prix),
                esc(&r.prix_index),
                m(&r.vist),
                r.vist_candidates,
                r.vist_false_alarms,
                m(&r.twigstack),
                m(&r.twigstackxb),
                r.expected
            )
        })
        .collect();
    format!("[\n  {}\n]\n", body.join(",\n  "))
}

/// A `Duration` helper for ad hoc timing: median of `n` runs of `f`.
/// (The bench binaries use `prix_testkit::bench::Harness`, which also
/// reports p95; this stays for quick one-off measurements in tests.)
pub fn median_duration(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_datagen::queries::queries_for;

    #[test]
    fn workbench_runs_the_dblp_workload() {
        let mut wb = Workbench::setup(Dataset::Dblp, 0.025, 11);
        for pq in queries_for(Dataset::Dblp) {
            let row = wb.run_query(pq.id, pq.xpath);
            assert_eq!(row.prix.matches, pq.expected_matches, "{}", pq.id);
            assert_eq!(row.vist.matches, pq.expected_matches, "{}", pq.id);
            assert_eq!(row.twigstack.matches, pq.expected_matches, "{}", pq.id);
            assert_eq!(row.twigstackxb.matches, pq.expected_matches, "{}", pq.id);
            assert_eq!(row.expected, pq.expected_matches, "{}", pq.id);
            assert!(row.prix.pages > 0, "{}: cold run must read pages", pq.id);
        }
    }

    #[test]
    fn tables_render() {
        let mut wb = Workbench::setup(Dataset::Dblp, 0.025, 3);
        let row = wb.run_query("Q2", "//www[./editor]/url");
        let t = render_prix_vs_vist("Table", std::slice::from_ref(&row));
        assert!(t.contains("Q2"));
        let t = render_ts_vs_xb("Table", std::slice::from_ref(&row));
        assert!(t.contains("pages"));
        let t = render_prix_vs_xb("Table", std::slice::from_ref(&row));
        assert!(t.contains("PRIX"));
        let t = render_figure6(&[row]);
        assert!(t.contains("Figure 6"));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.00000012).contains("µs"));
        assert!(fmt_secs(0.012).contains("ms"));
        assert!(fmt_secs(1.5).contains("s"));
    }
}
