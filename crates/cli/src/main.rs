//! `prix` — command-line interface for the PRIX XML index.
//!
//! ```text
//! prix index  <out.prix> <file.xml>...    build a database from XML files
//! prix query  <db.prix>  "<xpath>"        run a twig query
//! prix serve  <db.prix>  [--addr H:P] [--ingest]
//!                                         serve queries over HTTP; with
//!                                         --ingest, POST /documents too
//! prix stats  <db.prix>                   show index statistics
//! prix fsck   <db.prix>                   verify checksums + recovery state
//! prix gen    <dataset> <dir> [--scale S] [--seed N]
//!                                         write a synthetic corpus as XML
//! ```
//!
//! Each `<file.xml>` becomes one document of the collection. Queries use
//! the XPath subset of the paper (Table 3): `/`, `//`, `*` steps,
//! attribute steps, and `[...]` predicates with optional `="value"`.
//!
//! Exit codes: 0 success, 1 runtime failure (bad database, query
//! error, ...), 2 usage error (unknown subcommand, missing flags) — the
//! usage text goes to stderr in that case.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use prix_core::plan::{AltProvider, EngineChoice, EngineId, QueryEngine};
use prix_core::{EngineConfig, ExecOpts, LabelingMode, PrixEngine};
use prix_server::{Server, ServerConfig};
use prix_storage::{BufferPool, Pager};
use prix_xml::{write_document, Collection};

const USAGE: &str = "usage:\n  prix index [--bulk] [--run-mem-mb N] [--split] [--no-wal] [--alpha N] <out.prix> <file.xml>...\n  prix query <db.prix> \"<xpath>\" [--unordered] [--limit N] [--engine prix|prix_rp|prix_ep|vist|twigstack|twigstackxb]\n  prix serve <db.prix> [--addr HOST:PORT] [--ingest] [--threads N] [--queue N] [--buffer-pages N] [--batch-threads N] [--max-conns N] [--result-cache-entries N] [--idle-timeout-ms N] [--compact-after N] [--no-wal]\n  prix stats <db.prix>\n  prix segments <db.prix> [--verify]\n  prix compact <db.prix> [--run-mem-mb N]\n  prix fsck <db.prix>\n  prix explain <db.prix> \"<xpath>\"\n  prix add <db.prix> <file.xml>...\n  prix gen <dblp|swissprot|treebank|shop> <dir> [--scale S] [--seed N]";

/// A CLI failure: usage errors exit 2 (with the usage text on stderr),
/// runtime errors exit 1.
enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("index") => cmd_index(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("segments") => cmd_segments(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("add") => cmd_add(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        None => Err(usage_err("no command given")),
        Some(other) => Err(usage_err(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_index(args: &[String]) -> Result<(), CliError> {
    let mut split = false;
    let mut wal = true;
    let mut bulk = false;
    let mut run_mem_bytes = prix_core::DEFAULT_RUN_MEM_BYTES;
    let mut labeling = LabelingMode::Exact;
    let mut args = args;
    loop {
        match args {
            [flag, rest @ ..] if flag == "--split" => {
                split = true;
                args = rest;
            }
            [flag, rest @ ..] if flag == "--no-wal" => {
                wal = false;
                args = rest;
            }
            [flag, rest @ ..] if flag == "--bulk" => {
                bulk = true;
                args = rest;
            }
            [flag, n, rest @ ..] if flag == "--run-mem-mb" => {
                let mb: usize = n
                    .parse()
                    .map_err(|_| usage_err("--run-mem-mb needs a positive integer"))?;
                if mb == 0 {
                    return Err(usage_err("--run-mem-mb needs a positive integer"));
                }
                run_mem_bytes = mb << 20;
                args = rest;
            }
            // Dynamic labeling leaves trie-scope headroom so `prix add`
            // and `serve --ingest` can accept documents later; exact
            // labeling (the default) packs scopes tight and rejects
            // most inserts.
            [flag, n, rest @ ..] if flag == "--alpha" => {
                let alpha: usize = n
                    .parse()
                    .map_err(|_| usage_err("--alpha needs a positive integer"))?;
                if alpha == 0 {
                    return Err(usage_err("--alpha needs a positive integer"));
                }
                labeling = LabelingMode::Dynamic { alpha };
                args = rest;
            }
            _ => break,
        }
    }
    let [out, files @ ..] = args else {
        return Err(usage_err(
            "index needs <out.prix> and at least one <file.xml>",
        ));
    };
    if files.is_empty() {
        return Err(usage_err("index needs at least one <file.xml>"));
    }
    let cfg = EngineConfig {
        path: Some(PathBuf::from(out)),
        wal,
        labeling,
        ..Default::default()
    };
    if bulk {
        // Streaming path: each document goes straight through the
        // external-merge-sort segment builder; the collection is never
        // materialized in memory.
        let mut builder =
            prix_core::BulkBuilder::new_mem(cfg, run_mem_bytes).map_err(|e| e.to_string())?;
        for f in files {
            let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
            if split {
                builder
                    .add_xml_split(&text)
                    .map_err(|e| format!("{f}: {e}"))?;
            } else {
                builder.add_xml(&text).map_err(|e| format!("{f}: {e}"))?;
            }
        }
        let docs = builder.doc_count();
        let engine = builder.finish().map_err(|e| e.to_string())?;
        println!(
            "bulk-indexed {} documents into {out} (generation {})",
            docs,
            engine.generation()
        );
        for s in engine.segment_manifest() {
            println!(
                "  segment {}: kind {}, docs {}..{}",
                s.suffix,
                seg_kind_name(s.kind),
                s.doc_base,
                s.doc_base + s.n_docs
            );
        }
        return Ok(());
    }
    let mut collection = Collection::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        if split {
            // One monolithic export (like the real DBLP file): each
            // child of the root becomes its own document.
            collection
                .add_xml_split(&text)
                .map_err(|e| format!("{f}: {e}"))?;
        } else {
            collection.add_xml(&text).map_err(|e| format!("{f}: {e}"))?;
        }
    }
    let stats = collection.stats();
    let mut engine = PrixEngine::build(collection, cfg).map_err(|e| e.to_string())?;
    engine.save().map_err(|e| e.to_string())?;
    println!(
        "indexed {} documents ({} elements, {} values) into {out}",
        stats.sequences, stats.elements, stats.values
    );
    print_index_stats(&engine);
    Ok(())
}

/// Lazily-built ViST/TwigStack engines for `prix query --engine`: the
/// collection is reconstructed out of the RP index on first use, then
/// indexed into in-memory substrates (same data path as the server's
/// per-epoch cache).
struct CliAlts<'a> {
    engine: &'a PrixEngine,
    built: std::sync::Mutex<Option<CliBuilt>>,
}

struct CliBuilt {
    vist: std::sync::Arc<dyn QueryEngine>,
    twigstack: std::sync::Arc<dyn QueryEngine>,
    twigstack_xb: std::sync::Arc<dyn QueryEngine>,
}

impl AltProvider for CliAlts<'_> {
    fn alt_engine(
        &self,
        id: EngineId,
    ) -> prix_core::index::Result<std::sync::Arc<dyn QueryEngine>> {
        use std::sync::Arc;
        let mut built = self.built.lock().unwrap_or_else(|e| e.into_inner());
        if built.is_none() {
            let collection = Arc::new(self.engine.reconstruct_collection()?);
            let vist_pool = Arc::new(BufferPool::new(Pager::in_memory(), 4096));
            let vist = prix_vist::VistEngine::build(vist_pool, Arc::clone(&collection))
                .map_err(prix_core::index::IndexError::Storage)?;
            let ts_pool = Arc::new(BufferPool::new(Pager::in_memory(), 4096));
            let sub = Arc::new(
                prix_twigstack::Substrate::build(ts_pool, &collection)
                    .map_err(prix_core::index::IndexError::Storage)?,
            );
            *built = Some(CliBuilt {
                vist: Arc::new(vist),
                twigstack: Arc::new(prix_twigstack::TwigStackEngine::twigstack(Arc::clone(&sub))),
                twigstack_xb: Arc::new(prix_twigstack::TwigStackEngine::twigstack_xb(sub)),
            });
        }
        let b = built.as_ref().unwrap();
        match id {
            EngineId::Vist => Ok(Arc::clone(&b.vist)),
            EngineId::TwigStack => Ok(Arc::clone(&b.twigstack)),
            EngineId::TwigStackXb => Ok(Arc::clone(&b.twigstack_xb)),
            EngineId::PrixRp | EngineId::PrixEp => Err(prix_core::index::IndexError::Unsupported(
                "PRIX runs on its own indexes".into(),
            )),
        }
    }
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let [db, xpath, rest @ ..] = args else {
        return Err(usage_err("query needs <db.prix> and \"<xpath>\""));
    };
    if db.starts_with("--") || xpath.starts_with("--") {
        return Err(usage_err(
            "query needs <db.prix> and \"<xpath>\" before any flags",
        ));
    }
    let mut unordered = false;
    let mut forced: Option<EngineChoice> = None;
    let mut opts = ExecOpts::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--unordered" => unordered = true,
            "--limit" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--limit needs an integer"))?;
                // --limit 0 means unlimited, matching the server.
                opts = if n == 0 {
                    opts.without_limit()
                } else {
                    opts.with_limit(n)
                };
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--engine needs a value"))?;
                forced = Some(EngineChoice::parse(v).ok_or_else(|| {
                    usage_err(format!(
                        "unknown engine `{v}` (expected prix, prix_rp, prix_ep, vist, twigstack, or twigstackxb)"
                    ))
                })?);
            }
            other => return Err(usage_err(format!("unknown query flag `{other}`"))),
        }
    }
    if unordered && forced.is_some() {
        return Err(usage_err(
            "--engine cannot be combined with --unordered (arrangement matching is PRIX-only)",
        ));
    }
    let mut engine = PrixEngine::reopen(db, 2000).map_err(|e| e.to_string())?;
    let q = engine.parse_query(xpath).map_err(|e| e.to_string())?;
    let out = if unordered {
        engine
            .query_unordered_opts(&q, &opts)
            .map_err(|e| e.to_string())?
    } else {
        let alts = CliAlts {
            engine: &engine,
            built: std::sync::Mutex::new(None),
        };
        engine
            .query_routed(&q, &opts, forced, &alts)
            .map_err(|e| e.to_string())?
            .outcome
    };
    println!(
        "{} match(es){} via {} ({}) in {:?} ({} pages read, {} range queries, {} candidates)",
        out.matches.len(),
        if out.truncated {
            " (truncated by --limit)"
        } else {
            ""
        },
        out.engine.label(),
        out.index_used,
        out.elapsed,
        out.io.physical_reads,
        out.stats.range_queries,
        out.stats.candidates
    );
    println!(
        "io: {} pages read, {} pages written, {} fsyncs",
        out.io.physical_reads, out.io.physical_writes, out.io.fsyncs
    );
    println!("epoch: {}", engine.epoch());
    println!(
        "stages: filter {:?}, refine {:?}, project {:?}",
        out.stats.filter_time, out.stats.refine_time, out.stats.project_time
    );
    for m in out.matches.iter().take(50) {
        println!("  doc {} -> nodes {:?}", m.doc, m.embedding);
    }
    if out.matches.len() > 50 {
        println!("  ... and {} more", out.matches.len() - 50);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let [db, rest @ ..] = args else {
        return Err(usage_err("serve needs <db.prix>"));
    };
    if db.starts_with("--") {
        return Err(usage_err("serve needs <db.prix> before any flags"));
    }
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7140".to_string(),
        ..Default::default()
    };
    let mut buffer_pages = 2000usize;
    let mut wal = true;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| usage_err(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--addr" => cfg.addr = val("--addr")?.clone(),
            "--ingest" => cfg.ingest = true,
            "--no-wal" => wal = false,
            "--threads" => {
                cfg.threads = val("--threads")?
                    .parse()
                    .map_err(|_| usage_err("--threads needs an integer"))?
            }
            "--queue" => {
                cfg.queue_depth = val("--queue")?
                    .parse()
                    .map_err(|_| usage_err("--queue needs an integer"))?
            }
            "--buffer-pages" => {
                buffer_pages = val("--buffer-pages")?
                    .parse()
                    .map_err(|_| usage_err("--buffer-pages needs an integer"))?
            }
            "--batch-threads" => {
                cfg.batch_threads = val("--batch-threads")?
                    .parse()
                    .map_err(|_| usage_err("--batch-threads needs an integer"))?
            }
            "--max-conns" => {
                cfg.max_connections = val("--max-conns")?
                    .parse()
                    .map_err(|_| usage_err("--max-conns needs an integer"))?
            }
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(
                    val("--read-timeout-ms")?
                        .parse()
                        .map_err(|_| usage_err("--read-timeout-ms needs an integer"))?,
                )
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(
                    val("--idle-timeout-ms")?
                        .parse()
                        .map_err(|_| usage_err("--idle-timeout-ms needs an integer"))?,
                )
            }
            "--result-cache-entries" => {
                cfg.result_cache_entries = val("--result-cache-entries")?
                    .parse()
                    .map_err(|_| usage_err("--result-cache-entries needs an integer"))?
            }
            "--compact-after" => {
                let n: usize = val("--compact-after")?
                    .parse()
                    .map_err(|_| usage_err("--compact-after needs a positive integer"))?;
                if n == 0 {
                    return Err(usage_err("--compact-after needs a positive integer"));
                }
                cfg.compact_after = Some(n);
            }
            other => return Err(usage_err(format!("unknown serve flag `{other}`"))),
        }
    }
    let engine = PrixEngine::reopen_opts(db, buffer_pages, wal).map_err(|e| e.to_string())?;
    let handle = Server::start(engine, cfg).map_err(|e| format!("cannot start server: {e}"))?;
    // The smoke script parses this line to find the ephemeral port;
    // keep its shape stable.
    println!("listening on http://{}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait().map_err(|e| format!("shutdown failed: {e}"))?;
    println!("shutdown complete");
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let [db, xpath] = args else {
        return Err(usage_err("explain needs <db.prix> and \"<xpath>\""));
    };
    let mut engine = PrixEngine::reopen(db, 2000).map_err(|e| e.to_string())?;
    let q = engine.parse_query(xpath).map_err(|e| e.to_string())?;
    print!("{}", engine.explain(&q).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_add(args: &[String]) -> Result<(), CliError> {
    let [db, files @ ..] = args else {
        return Err(usage_err("add needs <db.prix> and at least one <file.xml>"));
    };
    if files.is_empty() {
        return Err(usage_err("add needs at least one <file.xml>"));
    }
    let mut engine = PrixEngine::reopen(db, 2000).map_err(|e| e.to_string())?;
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        let id = engine
            .insert_document(&text)
            .map_err(|e| format!("{f}: {e}"))?;
        println!("added {f} as doc {id}");
    }
    engine.save().map_err(|e| e.to_string())?;
    println!("committed at epoch {}", engine.epoch());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let [db] = args else {
        return Err(usage_err("stats needs <db.prix>"));
    };
    let engine = PrixEngine::reopen(db, 2000).map_err(|e| e.to_string())?;
    print_index_stats(&engine);
    Ok(())
}

fn seg_kind_name(kind: u8) -> &'static str {
    match kind {
        prix_core::SEG_KIND_RP => "rp",
        prix_core::SEG_KIND_EP => "ep",
        _ => "?",
    }
}

fn cmd_segments(args: &[String]) -> Result<(), CliError> {
    let (db, verify) = match args {
        [db] => (db, false),
        [db, flag] if flag == "--verify" => (db, true),
        _ => return Err(usage_err("segments needs <db.prix> [--verify]")),
    };
    let engine = PrixEngine::reopen(db, 256).map_err(|e| e.to_string())?;
    println!(
        "generation {}: {} segment(s), {} segment doc(s), {} mutable doc(s)",
        engine.generation(),
        engine.segment_manifest().len(),
        engine.segment_docs(),
        engine.mutable_docs()
    );
    for s in engine.segment_manifest() {
        println!(
            "  segment {}: kind {}, docs {}..{}",
            s.suffix,
            seg_kind_name(s.kind),
            s.doc_base,
            s.doc_base + s.n_docs
        );
    }
    if verify {
        for (suffix, check) in engine.verify_segments().map_err(|e| e.to_string())? {
            println!(
                "  verified {suffix}: {} blocks, {} tag entries, {} doc entries, {} records ok",
                check.blocks, check.tag_entries, check.doc_entries, check.records
            );
        }
        println!("segments: clean");
    }
    Ok(())
}

fn cmd_compact(args: &[String]) -> Result<(), CliError> {
    let mut run_mem_bytes = prix_core::DEFAULT_RUN_MEM_BYTES;
    let (db, rest) = match args {
        [db, rest @ ..] => (db, rest),
        _ => return Err(usage_err("compact needs <db.prix>")),
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--run-mem-mb" => {
                let mb: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--run-mem-mb needs a positive integer"))?;
                if mb == 0 {
                    return Err(usage_err("--run-mem-mb needs a positive integer"));
                }
                run_mem_bytes = mb << 20;
            }
            other => return Err(usage_err(format!("unknown compact flag `{other}`"))),
        }
    }
    let mut engine = PrixEngine::reopen(db, 2000).map_err(|e| e.to_string())?;
    let before = engine.mutable_docs();
    if !engine
        .compact_with(run_mem_bytes)
        .map_err(|e| e.to_string())?
    {
        println!("nothing to compact (no mutable documents)");
        return Ok(());
    }
    println!(
        "compacted {} document(s) into generation {}",
        before,
        engine.generation()
    );
    for s in engine.segment_manifest() {
        println!(
            "  segment {}: kind {}, docs {}..{}",
            s.suffix,
            seg_kind_name(s.kind),
            s.doc_base,
            s.doc_base + s.n_docs
        );
    }
    Ok(())
}

fn cmd_fsck(args: &[String]) -> Result<(), CliError> {
    let [db] = args else {
        return Err(usage_err("fsck needs <db.prix>"));
    };
    // A manifest that references a missing or corrupt segment file makes
    // this reopen fail — fsck refuses such databases outright.
    let engine = PrixEngine::reopen(db, 256).map_err(|e| e.to_string())?;
    match engine.recovery() {
        Some(rep) if rep.unclean_shutdown => println!(
            "recovery: unclean shutdown; replayed {} frame(s) to {} page(s) from {} WAL byte(s)",
            rep.replayed_frames, rep.replayed_pages, rep.wal_bytes
        ),
        Some(_) => println!("recovery: clean shutdown, nothing to replay"),
        None => {
            return Err(CliError::Runtime(
                "database has no checksum sidecar (indexed with --no-wal); nothing to verify"
                    .into(),
            ))
        }
    }
    let (verified, skipped) = engine.verify_checksums().map_err(|e| e.to_string())?;
    println!("pages: {verified} verified, {skipped} never written");
    if engine.generation() > 0 {
        for (suffix, check) in engine.verify_segments().map_err(|e| e.to_string())? {
            println!(
                "segment {suffix}: {} blocks, {} tag entries, {} doc entries, {} records ok",
                check.blocks, check.tag_entries, check.doc_entries, check.records
            );
        }
    }
    match engine.valix() {
        Some(vx) => {
            let (nums, strs) = vx.verify().map_err(|e| e.to_string())?;
            println!("valix: {nums} numeric posting(s), {strs} string posting(s) ok");
        }
        None => println!("valix: none"),
    }
    for name in unknown_siblings(db) {
        println!("sibling {name}: not part of this database (ignored)");
    }
    println!("fsck: clean");
    Ok(())
}

/// Files next to `<db>` that share its name prefix but match none of
/// the engine's file-naming patterns. fsck reports them (a stray
/// editor backup, a half-copied segment) instead of crashing on or
/// silently blessing them.
fn unknown_siblings(db: &str) -> Vec<String> {
    let path = std::path::Path::new(db);
    let Some(base) = path.file_name().and_then(|n| n.to_str()) else {
        return Vec::new();
    };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut unknown: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|name| name.starts_with(base) && !known_db_suffix(&name[base.len()..]))
        .collect();
    unknown.sort();
    unknown
}

/// Whether `suffix` (the part after the database name) is one the
/// engine itself writes: the page file, its WAL/checksum sidecars, the
/// manifest, or a generation's files (`.gN`, `.gN.sum`, `.gN.wal`,
/// `.gN.rp.seg`, `.gN.ep.seg`).
fn known_db_suffix(suffix: &str) -> bool {
    let rest = match suffix {
        "" | ".sum" | ".wal" | ".seg" => return true,
        s => match s.strip_prefix(".g") {
            Some(r) => r,
            None => return false,
        },
    };
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return false;
    }
    matches!(
        &rest[digits..],
        "" | ".sum" | ".wal" | ".rp.seg" | ".ep.seg"
    )
}

fn print_index_stats(engine: &PrixEngine) {
    for (name, idx) in [
        ("RPIndex", engine.rp_index()),
        ("EPIndex", engine.ep_index()),
    ] {
        if let Some(idx) = idx {
            let b = idx.build_stats();
            println!(
                "{name}: {} docs, {} trie nodes, {} paths (best shared by {}), total seq len {}",
                idx.doc_count(),
                b.trie_nodes,
                b.trie_paths,
                b.max_path_sharing,
                b.total_seq_len
            );
        }
    }
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    use prix_datagen::Dataset;
    let (dataset, dir, rest) = match args {
        [ds, dir, rest @ ..] => (ds, dir, rest),
        _ => {
            return Err(usage_err(
                "gen needs <dblp|swissprot|treebank|shop> and <dir>",
            ))
        }
    };
    // `shop` (the value-predicate scenario) lives outside the Table 2
    // trio and is generated through its own config below.
    let dataset = match dataset.as_str() {
        "dblp" => Some(Dataset::Dblp),
        "swissprot" => Some(Dataset::Swissprot),
        "treebank" => Some(Dataset::Treebank),
        "shop" => None,
        other => return Err(usage_err(format!("unknown dataset `{other}`"))),
    };
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--scale needs a number"))?
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--seed needs an integer"))?
            }
            other => return Err(usage_err(format!("unknown flag `{other}`"))),
        }
    }
    let collection = match dataset {
        Some(ds) => prix_datagen::generate(ds, scale, seed),
        None => {
            prix_datagen::values::generate(&prix_datagen::values::ShopConfig::scaled(scale, seed))
        }
    };
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    for (id, tree) in collection.iter() {
        let xml = write_document(tree, collection.symbols());
        std::fs::write(dir.join(format!("doc{id:06}.xml")), xml).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} documents ({} elements) to {}",
        collection.len(),
        collection.stats().elements,
        dir.display()
    );
    Ok(())
}
