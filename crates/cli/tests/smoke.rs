//! CLI contract smoke tests: usage errors are consistent (usage text
//! on stderr, exit code 2) across every subcommand, runtime failures
//! exit 1, and the happy path works end to end.

use std::process::{Command, Output};

fn prix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prix"))
        .args(args)
        .output()
        .expect("run prix binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_usage_error(args: &[&str]) {
    let out = prix(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {}",
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("usage:"), "{args:?} stderr lacks usage: {err}");
    assert!(err.contains("error:"), "{args:?} stderr lacks error: {err}");
    assert!(
        out.stdout.is_empty(),
        "{args:?} usage error must not write to stdout"
    );
}

#[test]
fn usage_errors_are_consistent_across_subcommands() {
    // Unknown subcommand and no subcommand at all.
    assert_usage_error(&["frobnicate"]);
    assert_usage_error(&[]);
    // Missing required arguments, every subcommand.
    assert_usage_error(&["index"]);
    assert_usage_error(&["index", "out.prix"]); // no input files
    assert_usage_error(&["query", "db.prix"]); // no xpath
    assert_usage_error(&["query", "db.prix", "//a", "--limit"]); // flag missing value
    assert_usage_error(&["query", "db.prix", "//a", "--limit", "x"]); // non-integer
    assert_usage_error(&["query", "db.prix", "//a", "--bogus"]); // unknown flag
    assert_usage_error(&["serve"]); // no db
    assert_usage_error(&["serve", "--addr", "127.0.0.1:0"]); // flag where db belongs
    assert_usage_error(&["serve", "db.prix", "--threads"]); // flag missing value
    assert_usage_error(&["serve", "db.prix", "--bogus"]); // unknown flag
    assert_usage_error(&["stats"]);
    assert_usage_error(&["fsck"]); // no db
    assert_usage_error(&["fsck", "a.prix", "b.prix"]); // too many args
    assert_usage_error(&["explain", "db.prix"]);
    assert_usage_error(&["add", "db.prix"]); // no input files
    assert_usage_error(&["gen", "dblp"]); // no dir
    assert_usage_error(&["gen", "nosuch", "/tmp/x"]); // unknown dataset
}

#[test]
fn help_goes_to_stdout_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = prix(&[flag]);
        assert_eq!(out.status.code(), Some(0), "{flag}");
        let text = String::from_utf8_lossy(&out.stdout);
        for cmd in [
            "index", "query", "serve", "stats", "fsck", "explain", "add", "gen",
        ] {
            assert!(text.contains(cmd), "help lacks `{cmd}`: {text}");
        }
        assert!(out.stderr.is_empty(), "{flag} must not write to stderr");
    }
}

#[test]
fn runtime_failures_exit_one() {
    // A well-formed invocation that fails at runtime (no such file).
    let out = prix(&["stats", "/nonexistent/definitely-not-a.prix"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("error:"), "{err}");
    assert!(
        !err.contains("usage:"),
        "runtime errors must not dump usage: {err}"
    );
}

#[test]
fn index_query_roundtrip_works() {
    let dir = std::env::temp_dir().join(format!("prix-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("doc.xml");
    std::fs::write(
        &xml,
        "<dblp><www><editor>E</editor><url>u</url></www></dblp>",
    )
    .unwrap();
    let xml2 = dir.join("doc2.xml");
    std::fs::write(
        &xml2,
        "<dblp><www><editor>F</editor><url>v</url></www></dblp>",
    )
    .unwrap();
    let db = dir.join("db.prix");

    let out = prix(&[
        "index",
        db.to_str().unwrap(),
        xml.to_str().unwrap(),
        xml2.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "index: {}", stderr(&out));

    let out = prix(&["query", db.to_str().unwrap(), "//www[./editor]/url"]);
    assert_eq!(out.status.code(), Some(0), "query: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 match(es)"), "{text}");
    assert!(text.contains("stages: filter"), "{text}");

    // --limit pushes the cap into the executor; with more matches than
    // the cap the output is flagged truncated.
    let out = prix(&["query", db.to_str().unwrap(), "//www/url", "--limit", "1"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "query --limit: {}",
        stderr(&out)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("1 match(es) (truncated by --limit)"),
        "{text}"
    );

    // The query output surfaces write-path I/O counters.
    assert!(text.contains("pages written"), "{text}");
    assert!(text.contains("fsyncs"), "{text}");

    // Predicate XPath goes straight through the same query path: only
    // the www whose editor leaf equals "E" survives.
    let out = prix(&["query", db.to_str().unwrap(), "//www[editor = \"E\"]/url"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "predicate query: {}",
        stderr(&out)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 match(es)"), "{text}");

    // fsck on a cleanly saved durable database reports clean, verifies
    // the value index, and reports (without failing on) stray sibling
    // files that merely share the database's name prefix.
    std::fs::write(dir.join("db.prix.stray"), b"not ours").unwrap();
    let out = prix(&["fsck", db.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "fsck: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovery: clean shutdown"), "{text}");
    assert!(text.contains("valix:"), "{text}");
    assert!(
        text.contains("sibling db.prix.stray: not part of this database"),
        "{text}"
    );
    assert!(text.contains("fsck: clean"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `index --alpha N` (dynamic labeling) leaves trie-scope headroom, so
/// a later `prix add` actually accepts the document, reports its commit
/// epoch, and the next query both sees the document and names a later
/// epoch.
#[test]
fn alpha_index_then_add_advances_the_epoch() {
    let dir = std::env::temp_dir().join(format!("prix-cli-alpha-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("doc.xml");
    std::fs::write(
        &xml,
        "<dblp><www><editor>E</editor><url>u</url></www></dblp>",
    )
    .unwrap();
    let more = dir.join("more.xml");
    std::fs::write(
        &more,
        "<dblp><www><editor>F</editor><url>v</url></www></dblp>",
    )
    .unwrap();
    let db = dir.join("db.prix");

    let out = prix(&[
        "index",
        "--alpha",
        "4",
        db.to_str().unwrap(),
        xml.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "index: {}", stderr(&out));

    let epoch_of = |text: &str, key: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(key))
            .unwrap_or_else(|| panic!("no `{key}` line in: {text}"))
            .trim()
            .parse()
            .unwrap()
    };

    let out = prix(&["query", db.to_str().unwrap(), "//www[./editor]/url"]);
    assert_eq!(out.status.code(), Some(0), "query: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 match(es)"), "{text}");
    let before = epoch_of(&text, "epoch:");

    let out = prix(&["add", db.to_str().unwrap(), more.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "add: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    let committed = epoch_of(&text, "committed at epoch");
    assert!(
        committed > before,
        "add must commit at a later epoch ({committed} vs {before})"
    );

    let out = prix(&["query", db.to_str().unwrap(), "//www[./editor]/url"]);
    assert_eq!(out.status.code(), Some(0), "query: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 match(es)"), "{text}");
    assert!(
        epoch_of(&text, "epoch:") >= committed,
        "query must serve at or past the add's epoch: {text}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_wal_index_roundtrip_and_fsck_refusal() {
    let dir = std::env::temp_dir().join(format!("prix-cli-nowal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("doc.xml");
    std::fs::write(&xml, "<a><b>v</b></a>").unwrap();
    let db = dir.join("db.prix");

    let out = prix(&[
        "index",
        "--no-wal",
        db.to_str().unwrap(),
        xml.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "index --no-wal: {}",
        stderr(&out)
    );
    assert!(
        !db.with_file_name("db.prix.sum").exists(),
        "--no-wal must not create a checksum sidecar"
    );

    let out = prix(&["query", db.to_str().unwrap(), "//a/b"]);
    assert_eq!(out.status.code(), Some(0), "query: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 match(es)"));

    // fsck has nothing to verify on a legacy database: runtime error.
    let out = prix(&["fsck", db.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "fsck: {}", stderr(&out));
    assert!(
        stderr(&out).contains("no checksum sidecar"),
        "{}",
        stderr(&out)
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
