//! Branch arrangements for unordered twig matching (paper §5.7).
//!
//! PRIX finds *ordered* matches; to find unordered ones, "Prüfer
//! sequences for different arrangements of the branches of the query
//! twig should be constructed and tested". This module enumerates the
//! distinct arrangements (permutations of every node's child list),
//! deduplicating structurally identical ones so `a(b,b)` yields one
//! arrangement rather than two.

use std::collections::HashSet;

use prix_prufer::EdgeKind;
use prix_xml::{NodeId, PostNum, XmlTree};

use crate::query::TwigQuery;

/// Error when a query has too many arrangements to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyArrangements {
    /// The limit that was exceeded.
    pub limit: usize,
}

impl std::fmt::Display for TooManyArrangements {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query has more than {} branch arrangements; unordered matching refused",
            self.limit
        )
    }
}

impl std::error::Error for TooManyArrangements {}

/// One arrangement: the rearranged query plus the mapping from its
/// postorder numbers back to the base query's postorder numbers.
pub struct Arrangement {
    /// The rearranged twig.
    pub query: TwigQuery,
    /// `base_of[arr_post - 1]` = base-query postorder number.
    pub base_of: Vec<PostNum>,
}

/// Enumerates the distinct branch arrangements of `q` (the identity
/// arrangement first). Fails if more than `limit` would be produced.
///
/// "Since the number of twig branches in a query is usually small, only
/// a small number of configurations need to be tested." (§5.7)
pub fn arrangements(q: &TwigQuery, limit: usize) -> Result<Vec<Arrangement>, TooManyArrangements> {
    let tree = q.tree();
    // child_orders[node] = list of permutations of that node's children.
    let mut assignments: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(tree.len());
    let mut total: usize = 1;
    for node in tree.nodes() {
        let kids = tree.children(node).to_vec();
        let perms = permutations(&kids);
        total = total.saturating_mul(perms.len());
        if total > limit.saturating_mul(8) {
            // Even before dedup this is hopeless.
            return Err(TooManyArrangements { limit });
        }
        assignments.push(perms);
    }

    // Cartesian product over nodes, building each arrangement.
    let mut out: Vec<Arrangement> = Vec::new();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut choice = vec![0usize; tree.len()];
    loop {
        let arr = build_arrangement(q, &choice, &assignments);
        if seen.insert(signature(&arr.query)) {
            out.push(arr);
            if out.len() > limit {
                return Err(TooManyArrangements { limit });
            }
        }
        // Next choice vector (odometer).
        let mut i = 0;
        loop {
            if i == choice.len() {
                // Identity arrangement is choice == [0, ...], generated
                // first because permutations() yields identity first.
                return Ok(out);
            }
            choice[i] += 1;
            if choice[i] < assignments[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn build_arrangement(
    q: &TwigQuery,
    choice: &[usize],
    assignments: &[Vec<Vec<NodeId>>],
) -> Arrangement {
    let base = q.tree();
    let mut tree = XmlTree::with_root(base.label(base.root()), base.kind(base.root()));
    let mut edges = vec![q.edge_of_id(base.root())];
    // new id -> base id
    let mut base_id_of: Vec<NodeId> = vec![base.root()];
    // base id -> new id
    let mut new_id_of = vec![0 as NodeId; base.len()];
    // Preorder construction with permuted child lists.
    let mut stack: Vec<NodeId> = vec![base.root()];
    while let Some(b) = stack.pop() {
        let order = &assignments[b as usize][choice[b as usize]];
        for &child in order.iter().rev() {
            stack.push(child);
        }
        if b != base.root() {
            let parent_new = new_id_of[base.parent(b).unwrap() as usize];
            let id = tree.add_child(parent_new, base.label(b), base.kind(b));
            new_id_of[b as usize] = id;
            base_id_of.push(b);
            edges.push(q.edge_of_id(b));
        }
    }
    tree.seal();
    let mut base_of = vec![0 as PostNum; tree.len()];
    for (new_id, &b) in base_id_of.iter().enumerate() {
        base_of[(tree.postorder(new_id as NodeId) - 1) as usize] = base.postorder(b);
    }
    Arrangement {
        query: TwigQuery::new(tree, edges, q.is_absolute()),
        base_of,
    }
}

/// Structural signature used to deduplicate arrangements: preorder
/// sequence of (label, kind, edge, depth).
fn signature(q: &TwigQuery) -> Vec<u64> {
    let tree = q.tree();
    let mut sig = Vec::with_capacity(tree.len() * 2);
    // Iterative preorder with explicit depth.
    let mut stack: Vec<(NodeId, u32)> = vec![(tree.root(), 0)];
    while let Some((node, depth)) = stack.pop() {
        let edge_code: u64 = match q.edge_of_id(node) {
            EdgeKind::Child => 0,
            EdgeKind::Descendant => 1,
            EdgeKind::Exactly(k) => 2 + k as u64,
        };
        sig.push(
            (tree.label(node).0 as u64) << 32
                | (depth as u64) << 8
                | edge_code << 1
                | (tree.kind(node) == prix_xml::NodeKind::Text) as u64,
        );
        for &c in tree.children(node).iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    sig
}

fn permutations(items: &[NodeId]) -> Vec<Vec<NodeId>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    let mut work = items.to_vec();
    permute(&mut work, 0, &mut out);
    out
}

fn permute(work: &mut Vec<NodeId>, k: usize, out: &mut Vec<Vec<NodeId>>) {
    if k == work.len() {
        out.push(work.clone());
        return;
    }
    for i in k..work.len() {
        work.swap(k, i);
        permute(work, k + 1, out);
        work.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use prix_xml::SymbolTable;

    #[test]
    fn path_query_has_one_arrangement() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("//a/b/c", &mut syms).unwrap();
        let arrs = arrangements(&q, 100).unwrap();
        assert_eq!(arrs.len(), 1);
        assert_eq!(arrs[0].base_of, vec![1, 2, 3]);
    }

    #[test]
    fn two_branches_give_two_arrangements() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("//P[./Q]/R", &mut syms).unwrap();
        let arrs = arrangements(&q, 100).unwrap();
        assert_eq!(arrs.len(), 2);
        // First is the identity.
        assert_eq!(arrs[0].query.display(&syms), "P(Q,R)");
        assert_eq!(arrs[1].query.display(&syms), "P(R,Q)");
        // base_of maps the flipped arrangement back: in the flipped twig
        // R is postorder 1 and base R was postorder 2.
        assert_eq!(arrs[1].base_of, vec![2, 1, 3]);
    }

    #[test]
    fn identical_branches_deduplicate() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("//P[./Q]/Q", &mut syms).unwrap();
        let arrs = arrangements(&q, 100).unwrap();
        assert_eq!(arrs.len(), 1, "swapping identical branches is a no-op");
    }

    #[test]
    fn values_distinguish_branches() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath(r#"//Ref[./Author="A"][./Author="B"]"#, &mut syms).unwrap();
        let arrs = arrangements(&q, 100).unwrap();
        assert_eq!(arrs.len(), 2);
    }

    #[test]
    fn three_branches_give_six() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("//e[./a][./b]/c", &mut syms).unwrap();
        let arrs = arrangements(&q, 100).unwrap();
        assert_eq!(arrs.len(), 6);
    }

    #[test]
    fn limit_is_enforced() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("//e[./a][./b][./c][./d]/f", &mut syms).unwrap();
        assert!(arrangements(&q, 10).is_err()); // 5! = 120 > 10
        assert_eq!(arrangements(&q, 200).unwrap().len(), 120);
    }

    #[test]
    fn nested_branching_multiplies() {
        let mut syms = SymbolTable::new();
        // Two branching nodes with two children each: 4 arrangements.
        let q = parse_xpath("//r[./x]/s[./y]/z", &mut syms).unwrap();
        let arrs = arrangements(&q, 100).unwrap();
        assert_eq!(arrs.len(), 4);
    }

    #[test]
    fn edges_and_kinds_survive_rearrangement() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath(r#"//P[.//Q]/R[./s="v"]"#, &mut syms).unwrap();
        for arr in arrangements(&q, 100).unwrap() {
            let t = arr.query.tree();
            // Same node multiset: labels with edges.
            let mut base_sig: Vec<(u32, EdgeKind)> = (0..q.tree().len() as u32)
                .map(|id| (q.tree().label(id).0, q.edge_of_id(id)))
                .collect();
            let mut arr_sig: Vec<(u32, EdgeKind)> = (0..t.len() as u32)
                .map(|id| (t.label(id).0, arr.query.edge_of_id(id)))
                .collect();
            base_sig.sort_by_key(|x| (x.0, edge_rank(x.1)));
            arr_sig.sort_by_key(|x| (x.0, edge_rank(x.1)));
            assert_eq!(base_sig, arr_sig);
        }
    }

    fn edge_rank(e: EdgeKind) -> u32 {
        match e {
            EdgeKind::Child => 0,
            EdgeKind::Descendant => 1,
            EdgeKind::Exactly(k) => 2 + k,
        }
    }
}
