//! The PRIX engine: both indexes plus the §5.6 query optimizer.
//!
//! "In the PRIX system, both RPIndex and EPIndex can coexist. A query
//! optimizer can choose either of the indexes based on the presence or
//! absence of values in twig queries." [`PrixEngine::query`] implements
//! exactly that routing, and [`PrixEngine::query_unordered`] adds the
//! §5.7 branch-arrangement loop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prix_storage::{
    recover, BufferPool, FileSegEnv, FileStore, IoScope, IoSnapshot, IoStats, Manifest,
    ManifestSegment, MemSegEnv, Pager, RawStore, RecordId, RecordStore, RecoveryReport,
    SegmentCheck, SegmentEnv, SegmentReader, Wal, PAGE_SIZE, SEG_KIND_EP, SEG_KIND_RP,
};
use prix_xml::{Collection, PostNum, Sym, SymbolTable};

use crate::arrange::arrangements;
use crate::index::{ExecOpts, IndexError, IndexKind, PrixIndex, QueryStats, Result, TwigMatch};
use crate::plan::{
    AltProvider, EngineChoice, EngineId, Planner, PlannerStats, PrixBackend, Routed, Router,
};
use crate::query::TwigQuery;
use crate::trie::LabelingMode;
use crate::valix::{PredEval, Valix, ValixEntry};
use crate::xpath::{parse_xpath, XPathError};

/// Version of the catalog-page layout written by [`PrixEngine::save`].
/// [`PrixEngine::reopen`] refuses newer versions rather than misreading
/// an unknown layout, but still accepts [`MIN_CATALOG_VERSION`].
///
/// History: v1 ended after the dummy symbol; v2 appended the
/// arrangement limit; v3 appended the length-prefixed planner
/// statistics blob; v4 appended the valix metadata record id after the
/// blob (0 = no value index).
const CATALOG_VERSION: u32 = 4;

/// Oldest catalog version [`PrixEngine::reopen`] still reads. A v2
/// database opens with empty planner statistics (the planner relearns
/// from traffic); a v3 database opens without a value index (predicate
/// queries fall back to verification-only). Both are rewritten as v4 on
/// the next save.
const MIN_CATALOG_VERSION: u32 = 2;

/// Byte offset of the planner-stats blob (u32 length + payload) in the
/// catalog page, right after the v2 fields.
const CATALOG_STATS_OFF: usize = 44;

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffer-pool capacity in pages (paper default: 2000, §6.1).
    pub buffer_pages: usize,
    /// Virtual-trie labeling mode.
    pub labeling: LabelingMode,
    /// Backing file; `None` = in-memory pager.
    pub path: Option<PathBuf>,
    /// Build the Regular-Prüfer index.
    pub build_rp: bool,
    /// Build the Extended-Prüfer index.
    pub build_ep: bool,
    /// Cap on unordered branch arrangements.
    pub arrangement_limit: usize,
    /// Write-ahead logging for file-backed engines: pages evicted
    /// before a [`PrixEngine::save`] spill to the log instead of the
    /// database file, and every save is a group commit (WAL fsync
    /// before any page write), so a crash at any instant leaves either
    /// the previous save or the new one — never a torn mixture.
    /// Ignored for in-memory engines. Default `true`; disable to
    /// measure the logging overhead (`--no-wal`).
    pub wal: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            buffer_pages: 2000,
            labeling: LabelingMode::Exact,
            path: None,
            build_rp: true,
            build_ep: true,
            arrangement_limit: 720,
            wal: true,
        }
    }
}

/// The raw byte stores a durable engine lives on: the page file, its
/// checksum sidecar, and the write-ahead log. Normally these are the
/// files `<db>`, `<db>.sum`, and `<db>.wal`, but any [`RawStore`]
/// works — the crash-recovery harness passes fault-injecting in-memory
/// stores through [`PrixEngine::build_on`] / [`PrixEngine::reopen_on`].
pub struct EngineStores {
    /// The page file.
    pub db: Box<dyn RawStore>,
    /// Per-page CRC sidecar (`<db>.sum`). `None` = legacy non-durable
    /// layout.
    pub sum: Option<Box<dyn RawStore>>,
    /// Write-ahead log (`<db>.wal`). Must be `Some` iff `sum` is.
    pub wal: Option<Box<dyn RawStore>>,
}

/// `<db>` → `<db>.sum` / `<db>.wal`: sidecar paths are formed by
/// appending to the full file name, so they sit next to the database
/// whatever its extension.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// One immutable segment tier: the RP/EP segment pair covering global
/// document ids `[doc_base, doc_base + n_docs)`. Queries descend every
/// tier and the mutable delta; tiers never change after publication, so
/// snapshots clone them for free (the indexes inside are segment-backed
/// and internally shared).
#[derive(Clone)]
pub(crate) struct SegTier {
    pub(crate) rp: Option<PrixIndex>,
    pub(crate) ep: Option<PrixIndex>,
    pub(crate) doc_base: u32,
    pub(crate) n_docs: u32,
}

/// One tier's index pair as seen by the shared query paths: the same
/// `(rp, ep)` shape [`pick_index_from`] routes over.
pub(crate) type TierRefs<'a> = (Option<&'a PrixIndex>, Option<&'a PrixIndex>);

/// Builds the tier list a query descends: segments in ascending
/// `doc_base` order, then the mutable delta. The mutable tier joins
/// only when it has documents (or when there is nothing else): an
/// empty delta would re-run every trie descent for zero candidates,
/// and — worse — flip the conservative truncation flag for limited
/// queries. Omitting it keeps a freshly bulk-built or just-compacted
/// engine bit-identical to a single-tier engine over the same
/// documents, which is the property the `bulk_equals_incremental`
/// suite pins.
pub(crate) fn collect_tiers<'a>(
    segments: &'a [SegTier],
    rp: Option<&'a PrixIndex>,
    ep: Option<&'a PrixIndex>,
) -> Vec<TierRefs<'a>> {
    let mut tiers: Vec<TierRefs<'a>> = segments
        .iter()
        .map(|t| (t.rp.as_ref(), t.ep.as_ref()))
        .collect();
    let mutable_docs = rp.or(ep).map_or(0, |i| i.doc_count());
    if tiers.is_empty() || mutable_docs > 0 {
        tiers.push((rp, ep));
    }
    tiers
}

/// Everything a query execution reports.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The twig occurrences (deduplicated embeddings).
    pub matches: Vec<TwigMatch>,
    /// Filter/refinement counters.
    pub stats: QueryStats,
    /// Which index answered the query.
    pub index_used: IndexKind,
    /// I/O performed *by this query* (pages read = the paper's
    /// "Disk IO" column when the pool started cold). Attributed via a
    /// per-thread [`IoScope`], so it stays exact even when other
    /// queries run concurrently on the same buffer pool.
    pub io: IoSnapshot,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// `true` when execution stopped at [`ExecOpts::limit`] without
    /// proving the result set was drained; more matches *may* exist
    /// (conservative — no probing for the next match is done).
    pub truncated: bool,
    /// Which engine produced this outcome. PRIX paths derive it from
    /// `index_used`; routed alternative engines set their own id.
    pub engine: EngineId,
}

/// An indexed XML database: the collection, its RP/EP indexes, and a
/// shared buffer pool.
pub struct PrixEngine {
    collection: Collection,
    pool: Arc<BufferPool>,
    rp: Option<PrixIndex>,
    ep: Option<PrixIndex>,
    dummy: Sym,
    arrangement_limit: usize,
    /// Record store holding engine-level catalog records (the symbol
    /// table); kept open across saves so repeated saves append into the
    /// same data page instead of allocating a fresh one each time.
    catalog_store: Option<RecordStore>,
    /// Last symbol-table record written, with its exact serialized
    /// bytes: an unchanged table is not re-appended on the next save.
    saved_syms: Option<(RecordId, Vec<u8>)>,
    /// What crash recovery did when this engine was reopened; `None`
    /// for freshly built engines and clean reopens of legacy files.
    recovery: Option<RecoveryReport>,
    /// Immutable segment tiers in ascending `doc_base` order (empty for
    /// a never-segmented engine).
    segments: Vec<SegTier>,
    /// The manifest rows behind `segments`, kept verbatim for
    /// compaction (which appends to them) and `prix segments`.
    manifest_segments: Vec<ManifestSegment>,
    /// Where segment/manifest/mutable-generation files live. File
    /// engines resolve suffixes against the database path; in-memory
    /// and harness engines use an in-memory map.
    seg_env: Arc<dyn SegmentEnv>,
    /// Segment-block I/O counters. One instance for the engine's whole
    /// life: compaction swaps buffer pools (and their page counters)
    /// but `/metrics` totals must not reset.
    seg_stats: Arc<IoStats>,
    /// Manifest generation; 0 = no manifest has ever been written.
    generation: u64,
    /// File-name suffix of the live mutable generation (`""` = the
    /// base database file; compaction moves to `".g{N}"`).
    mutable_suffix: String,
    /// Pool capacity in pages; compaction builds the replacement
    /// mutable generation with the same capacity.
    buffer_pages: usize,
    /// Labeling mode for fresh mutable generations.
    labeling: LabelingMode,
    /// The cost-based planner's statistics, shared (via `Arc`) with
    /// every snapshot so observations from served queries feed back
    /// into later plans. Persisted in the catalog (v3).
    planner: Arc<Planner>,
    /// The value-predicate secondary index over leaf values
    /// ([`crate::valix`]), living in the same buffer pool as the
    /// structural indexes. `None` on pre-v4 databases.
    valix: Option<Valix>,
}

impl PrixEngine {
    /// Builds the engine over `collection`. File-backed engines with
    /// [`EngineConfig::wal`] (the default) get the durable layout:
    /// `<path>.sum` checksum sidecar and `<path>.wal` write-ahead log
    /// next to the database file.
    pub fn build(collection: Collection, cfg: EngineConfig) -> Result<Self> {
        let pool = match &cfg.path {
            Some(p) if cfg.wal => {
                let db = Box::new(FileStore::create(p).map_err(IndexError::Storage)?);
                let sum =
                    Box::new(FileStore::create(sibling(p, ".sum")).map_err(IndexError::Storage)?);
                let wal =
                    Box::new(FileStore::create(sibling(p, ".wal")).map_err(IndexError::Storage)?);
                Self::durable_pool_create(db, sum, wal, cfg.buffer_pages)?
            }
            Some(p) => BufferPool::new(
                Pager::create(p).map_err(IndexError::Storage)?,
                cfg.buffer_pages,
            ),
            None => BufferPool::new(Pager::in_memory(), cfg.buffer_pages),
        };
        Self::build_over(collection, cfg, pool)
    }

    /// [`PrixEngine::build`] over caller-supplied stores instead of
    /// files (ignores [`EngineConfig::path`]). With `sum` + `wal`
    /// stores the engine is durable exactly as if file-backed.
    pub fn build_on(
        collection: Collection,
        cfg: EngineConfig,
        stores: EngineStores,
    ) -> Result<Self> {
        let pool = match (stores.sum, stores.wal) {
            (Some(sum), Some(wal)) => {
                Self::durable_pool_create(stores.db, sum, wal, cfg.buffer_pages)?
            }
            (None, None) => BufferPool::new(
                Pager::create_on(stores.db).map_err(IndexError::Storage)?,
                cfg.buffer_pages,
            ),
            _ => {
                return Err(IndexError::Unsupported(
                    "EngineStores needs both sum and wal stores, or neither".into(),
                ))
            }
        };
        Self::build_over(collection, cfg, pool)
    }

    fn durable_pool_create(
        db: Box<dyn RawStore>,
        sum: Box<dyn RawStore>,
        wal: Box<dyn RawStore>,
        buffer_pages: usize,
    ) -> Result<BufferPool> {
        let pager = Pager::create_durable(db, sum).map_err(IndexError::Storage)?;
        let wal = Wal::create(wal, pager.epoch(), pager.stats()).map_err(IndexError::Storage)?;
        Ok(BufferPool::with_wal(pager, buffer_pages, wal))
    }

    fn build_over(mut collection: Collection, cfg: EngineConfig, pool: BufferPool) -> Result<Self> {
        let pool = Arc::new(pool);
        let seg_env: Arc<dyn SegmentEnv> = match &cfg.path {
            Some(p) => Arc::new(FileSegEnv::new(p.clone())),
            None => Arc::new(MemSegEnv::new()),
        };
        let dummy = collection.intern("\u{1}prix-dummy");
        // Both indexes read the same immutable collection and write
        // through the internally synchronized buffer pool, so they can
        // be built concurrently.
        let (rp, ep) = if cfg.build_rp && cfg.build_ep {
            let (rp_res, ep_res) = std::thread::scope(|s| {
                let rp_pool = Arc::clone(&pool);
                let ep_pool = Arc::clone(&pool);
                let coll = &collection;
                let rp = s.spawn(move || {
                    PrixIndex::build(rp_pool, coll, IndexKind::Regular, cfg.labeling, dummy)
                });
                let ep = s.spawn(move || {
                    PrixIndex::build(ep_pool, coll, IndexKind::Extended, cfg.labeling, dummy)
                });
                (
                    rp.join().expect("rp build thread"),
                    ep.join().expect("ep build thread"),
                )
            });
            (Some(rp_res?), Some(ep_res?))
        } else if cfg.build_rp {
            (
                Some(PrixIndex::build(
                    Arc::clone(&pool),
                    &collection,
                    IndexKind::Regular,
                    cfg.labeling,
                    dummy,
                )?),
                None,
            )
        } else if cfg.build_ep {
            (
                None,
                Some(PrixIndex::build(
                    Arc::clone(&pool),
                    &collection,
                    IndexKind::Extended,
                    cfg.labeling,
                    dummy,
                )?),
            )
        } else {
            (None, None)
        };
        // Seed the planner from what the build just saw: label counts
        // from the collection, trie fanout from the RP build.
        let mut pstats = PlannerStats::default();
        pstats.merge_collection(&collection);
        if let Some(idx) = rp.as_ref().or(ep.as_ref()) {
            let b = idx.build_stats();
            pstats.set_trie_shape(b.trie_nodes as u64, b.trie_paths as u64, b.sequences);
        }
        // The value-predicate index rides along whenever a structural
        // index exists (it shares their document numbering).
        let valix = if rp.is_some() || ep.is_some() {
            let mut vx = Valix::create(Arc::clone(&pool))?;
            for (doc, tree) in collection.iter() {
                vx.index_tree(tree, doc, collection.symbols())?;
            }
            Some(vx)
        } else {
            None
        };
        Ok(PrixEngine {
            collection,
            pool,
            rp,
            ep,
            dummy,
            arrangement_limit: cfg.arrangement_limit,
            catalog_store: None,
            saved_syms: None,
            recovery: None,
            segments: Vec::new(),
            manifest_segments: Vec::new(),
            seg_env,
            seg_stats: Arc::new(IoStats::new()),
            generation: 0,
            mutable_suffix: String::new(),
            buffer_pages: cfg.buffer_pages,
            labeling: cfg.labeling,
            planner: Arc::new(Planner::new(pstats)),
            valix,
        })
    }

    /// The indexed collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The shared buffer pool (for cold-cache benchmarking).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The dummy label used for extended sequences.
    pub fn dummy(&self) -> Sym {
        self.dummy
    }

    /// The cap on unordered branch arrangements (§5.7). Persisted by
    /// [`PrixEngine::save`] and restored by [`PrixEngine::reopen`].
    pub fn arrangement_limit(&self) -> usize {
        self.arrangement_limit
    }

    /// The RPIndex, if built.
    pub fn rp_index(&self) -> Option<&PrixIndex> {
        self.rp.as_ref()
    }

    /// The EPIndex, if built.
    pub fn ep_index(&self) -> Option<&PrixIndex> {
        self.ep.as_ref()
    }

    /// Parses an XPath string against this engine's symbol table.
    pub fn parse_query(&mut self, xpath: &str) -> std::result::Result<TwigQuery, XPathError> {
        parse_xpath(xpath, self.collection.symbols_mut())
    }

    /// Flushes and empties the buffer pool so the next query measures
    /// cold-cache I/O, like the paper's direct-I/O setup.
    pub fn clear_cache(&self) -> Result<()> {
        self.pool.clear().map_err(IndexError::Storage)
    }

    /// Picks the index for a query (§5.6's optimizer rule). On a
    /// tiered engine this reports the choice for the *first* tier —
    /// every tier routes the same way, but only a tier with documents
    /// has meaningful MaxGap values for [`PrixEngine::explain`].
    pub fn pick_index(&self, q: &TwigQuery) -> Result<&PrixIndex> {
        let tiers = self.tiers();
        let (rp, ep) = tiers[0];
        pick_index_from(rp, ep, q)
    }

    /// Persists the engine so [`PrixEngine::reopen`] can load it from
    /// the backing file: index metadata and the symbol table go into
    /// the shared store, their locations into the reserved catalog page
    /// (page 0), and the buffer pool is flushed.
    ///
    /// Only works for file-backed engines (`EngineConfig::path`);
    /// in-memory engines have nowhere to persist to.
    pub fn save(&mut self) -> Result<()> {
        let rp_meta = match &mut self.rp {
            Some(i) => i.save()?.raw(),
            None => 0,
        };
        let ep_meta = match &mut self.ep {
            Some(i) => i.save()?.raw(),
            None => 0,
        };
        // Serialize the symbol table (needed to parse queries after
        // reopen).
        let mut buf: Vec<u8> = Vec::new();
        let syms = self.collection.symbols();
        buf.extend_from_slice(&(syms.len() as u32).to_le_bytes());
        for (_, name) in syms.iter() {
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        // Reuse the previously written record when the table is
        // unchanged — saving an unchanged engine N times must not grow
        // the store by N symbol-table copies.
        let syms_rec = match &self.saved_syms {
            Some((id, bytes)) if *bytes == buf => *id,
            _ => {
                if self.catalog_store.is_none() {
                    self.catalog_store = Some(
                        RecordStore::open(Arc::clone(&self.pool)).map_err(IndexError::Storage)?,
                    );
                }
                let store = self.catalog_store.as_mut().expect("created above");
                let id = store.append(&buf).map_err(IndexError::Storage)?;
                self.saved_syms = Some((id, buf));
                id
            }
        };
        let valix_meta = match &mut self.valix {
            Some(v) => v.save()?.raw(),
            None => 0,
        };
        // Catalog page. The planner-stats blob is capped by its encoder
        // to fit the remainder of the page (minus the trailing valix
        // record id); an oversized blob would be a bug in that cap, so
        // refuse rather than corrupt the page.
        let stats_blob = self.planner.encode();
        if CATALOG_STATS_OFF + 4 + stats_blob.len() + 8 > PAGE_SIZE {
            return Err(IndexError::Unsupported(
                "planner statistics overflow the catalog page".into(),
            ));
        }
        self.pool
            .with_page_mut(0, |p: &mut [u8; PAGE_SIZE]| {
                p[..4].copy_from_slice(b"PRIX");
                p[4..8].copy_from_slice(&CATALOG_VERSION.to_le_bytes());
                p[8..16].copy_from_slice(&rp_meta.to_le_bytes());
                p[16..24].copy_from_slice(&ep_meta.to_le_bytes());
                p[24..32].copy_from_slice(&syms_rec.raw().to_le_bytes());
                p[32..36].copy_from_slice(&self.dummy.0.to_le_bytes());
                p[36..44].copy_from_slice(&(self.arrangement_limit as u64).to_le_bytes());
                let off = CATALOG_STATS_OFF;
                p[off..off + 4].copy_from_slice(&(stats_blob.len() as u32).to_le_bytes());
                p[off + 4..off + 4 + stats_blob.len()].copy_from_slice(&stats_blob);
                // v4: the valix metadata record id trails the blob.
                let voff = off + 4 + stats_blob.len();
                p[voff..voff + 8].copy_from_slice(&valix_meta.to_le_bytes());
            })
            .map_err(IndexError::Storage)?;
        self.pool.flush().map_err(IndexError::Storage)
    }

    /// Reopens a previously [`PrixEngine::save`]d database.
    ///
    /// The document trees themselves are not persisted — only what
    /// query processing needs (sequences, leaf lists, indexes, symbol
    /// table) — so [`PrixEngine::collection`] of a reopened engine is
    /// empty. Queries, embeddings, and statistics work as before.
    pub fn reopen<P: AsRef<Path>>(path: P, buffer_pages: usize) -> Result<Self> {
        Self::reopen_opts(path, buffer_pages, true)
    }

    /// [`PrixEngine::reopen`] with explicit control over write-ahead
    /// logging. A database with a `<path>.sum` sidecar is opened in
    /// durable mode: page checksums are verified on cold reads and any
    /// crashed commit left in `<path>.wal` is replayed first (see
    /// [`PrixEngine::recovery`]). With `wal = false` the log is still
    /// recovered and truncated, but subsequent saves write pages
    /// directly — checksums stay maintained, crash atomicity is off.
    /// A legacy database (no sidecar) opens exactly as before.
    pub fn reopen_opts<P: AsRef<Path>>(path: P, buffer_pages: usize, wal: bool) -> Result<Self> {
        let env: Arc<dyn SegmentEnv> = Arc::new(FileSegEnv::new(path.as_ref().to_path_buf()));
        Self::reopen_env(env, buffer_pages, wal)
    }

    /// [`PrixEngine::reopen_opts`] over a segment environment. The
    /// manifest (suffix `".seg"`) is consulted *first*: it names the
    /// live mutable generation and every immutable segment. Without a
    /// manifest the base store opens exactly as a legacy single-file
    /// database. The crash harness hands fault-injecting environments
    /// in here.
    pub fn reopen_env(env: Arc<dyn SegmentEnv>, buffer_pages: usize, wal: bool) -> Result<Self> {
        let manifest = if env.exists(".seg")? {
            Manifest::read_from(&*env.open(".seg")?)?
        } else {
            None
        };
        let msuffix = manifest
            .as_ref()
            .map_or_else(String::new, |m| m.mutable_suffix.clone());
        let sum_suffix = format!("{msuffix}.sum");
        let mut eng = if !env.exists(&sum_suffix)? {
            let pager = Pager::open_on(env.open(&msuffix)?).map_err(IndexError::Storage)?;
            Self::reopen_over(BufferPool::new(pager, buffer_pages), None)?
        } else {
            let db = env.open(&msuffix)?;
            let sum = env.open(&sum_suffix)?;
            let wal_suffix = format!("{msuffix}.wal");
            let wal_store: Box<dyn RawStore> = if env.exists(&wal_suffix)? {
                env.open(&wal_suffix)?
            } else {
                // Sidecar present but the log is missing (deleted by
                // hand): nothing to replay; recreate it empty.
                env.create(&wal_suffix)?
            };
            Self::reopen_durable(db, sum, wal_store, buffer_pages, wal)?
        };
        eng.seg_env = env;
        if let Some(m) = &manifest {
            eng.attach_manifest(m)?;
        }
        Ok(eng)
    }

    /// [`PrixEngine::reopen`] over caller-supplied stores (the crash
    /// harness hands in the post-crash disk images). Durable iff `sum`
    /// and `wal` stores are present.
    pub fn reopen_on(stores: EngineStores, buffer_pages: usize) -> Result<Self> {
        match (stores.sum, stores.wal) {
            (Some(sum), Some(wal)) => Self::reopen_durable(stores.db, sum, wal, buffer_pages, true),
            (None, None) => {
                let pager = Pager::open_on(stores.db).map_err(IndexError::Storage)?;
                Self::reopen_over(BufferPool::new(pager, buffer_pages), None)
            }
            _ => Err(IndexError::Unsupported(
                "EngineStores needs both sum and wal stores, or neither".into(),
            )),
        }
    }

    fn reopen_durable(
        db: Box<dyn RawStore>,
        sum: Box<dyn RawStore>,
        wal_store: Box<dyn RawStore>,
        buffer_pages: usize,
        keep_wal: bool,
    ) -> Result<Self> {
        let pager = Pager::open_durable(db, sum).map_err(IndexError::Storage)?;
        let stats = pager.stats();
        let (wal, report) = recover(&pager, wal_store, stats).map_err(IndexError::Storage)?;
        let pool = if keep_wal {
            BufferPool::with_wal(pager, buffer_pages, wal)
        } else {
            drop(wal); // log is already truncated; run without it
            BufferPool::new(pager, buffer_pages)
        };
        Self::reopen_over(pool, Some(report))
    }

    fn reopen_over(pool: BufferPool, recovery: Option<RecoveryReport>) -> Result<Self> {
        let pool = Arc::new(pool);
        let buffer_pages = pool.capacity();
        let (rp_meta, ep_meta, syms_rec, dummy, arrangement_limit, pstats, valix_meta) = pool
            .with_page(0, |p: &[u8; PAGE_SIZE]| {
                if &p[..4] != b"PRIX" {
                    return Err(IndexError::Unsupported(
                        "file is not a PRIX database (bad magic)".into(),
                    ));
                }
                let version = u32::from_le_bytes(p[4..8].try_into().unwrap());
                if !(MIN_CATALOG_VERSION..=CATALOG_VERSION).contains(&version) {
                    return Err(IndexError::Unsupported(format!(
                        "unsupported PRIX database version {version} (this build reads \
                         versions {MIN_CATALOG_VERSION}..={CATALOG_VERSION}); refusing to \
                         guess at its layout"
                    )));
                }
                // v2 has no stats blob: the planner starts empty and
                // relearns from traffic.
                let mut blob_end = CATALOG_STATS_OFF;
                let pstats = if version >= 3 {
                    let off = CATALOG_STATS_OFF;
                    let len = u32::from_le_bytes(p[off..off + 4].try_into().unwrap()) as usize;
                    if off + 4 + len > PAGE_SIZE {
                        return Err(IndexError::Unsupported(
                            "corrupt planner statistics in catalog".into(),
                        ));
                    }
                    blob_end = off + 4 + len;
                    PlannerStats::decode(&p[off + 4..off + 4 + len]).ok_or_else(|| {
                        IndexError::Unsupported("corrupt planner statistics in catalog".into())
                    })?
                } else {
                    PlannerStats::default()
                };
                // v3 has no valix: predicate queries run
                // verification-only until the next save rewrites v4.
                let valix_meta = if version >= 4 && blob_end + 8 <= PAGE_SIZE {
                    u64::from_le_bytes(p[blob_end..blob_end + 8].try_into().unwrap())
                } else {
                    0
                };
                Ok((
                    u64::from_le_bytes(p[8..16].try_into().unwrap()),
                    u64::from_le_bytes(p[16..24].try_into().unwrap()),
                    u64::from_le_bytes(p[24..32].try_into().unwrap()),
                    Sym(u32::from_le_bytes(p[32..36].try_into().unwrap())),
                    u64::from_le_bytes(p[36..44].try_into().unwrap()) as usize,
                    pstats,
                    valix_meta,
                ))
            })
            .map_err(IndexError::Storage)??;
        let store = RecordStore::open(Arc::clone(&pool)).map_err(IndexError::Storage)?;
        let bytes = store
            .read(RecordId::from_raw(syms_rec))
            .map_err(IndexError::Storage)?;
        let mut syms = SymbolTable::new();
        let mut off = 4usize;
        let count = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        for _ in 0..count {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            let name = std::str::from_utf8(&bytes[off..off + len])
                .map_err(|_| IndexError::Unsupported("corrupt symbol table".into()))?;
            syms.intern(name);
            off += len;
        }
        let mut collection = Collection::new();
        *collection.symbols_mut() = syms;
        let rp = (rp_meta != 0)
            .then(|| PrixIndex::load(Arc::clone(&pool), RecordId::from_raw(rp_meta)))
            .transpose()?;
        let ep = (ep_meta != 0)
            .then(|| PrixIndex::load(Arc::clone(&pool), RecordId::from_raw(ep_meta)))
            .transpose()?;
        let valix = (valix_meta != 0)
            .then(|| Valix::load(Arc::clone(&pool), RecordId::from_raw(valix_meta)))
            .transpose()?;
        Ok(PrixEngine {
            collection,
            pool,
            rp,
            ep,
            dummy,
            arrangement_limit,
            catalog_store: None,
            saved_syms: Some((RecordId::from_raw(syms_rec), bytes)),
            recovery,
            segments: Vec::new(),
            manifest_segments: Vec::new(),
            // Placeholder; [`PrixEngine::reopen_env`] installs the real
            // environment right after this returns.
            seg_env: Arc::new(MemSegEnv::new()),
            seg_stats: Arc::new(IoStats::new()),
            generation: 0,
            mutable_suffix: String::new(),
            buffer_pages,
            labeling: LabelingMode::Exact,
            planner: Arc::new(Planner::new(pstats)),
            valix,
        })
    }

    /// What crash recovery did when this engine was reopened: `None`
    /// for freshly built engines and legacy files, `Some` (possibly a
    /// clean no-op report) whenever a durable database was reopened.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Verifies every page of the backing store against its recorded
    /// checksum, returning `(verified, skipped)` counts. Durable
    /// databases only; a legacy file reports `Unsupported`.
    pub fn verify_checksums(&self) -> Result<(u64, u64)> {
        if !self.pool.pager().has_checksums() {
            return Err(IndexError::Unsupported(
                "database has no checksum sidecar (built without WAL support)".into(),
            ));
        }
        self.pool
            .pager()
            .verify_checksums()
            .map_err(IndexError::Storage)
    }

    /// Opens every segment the manifest lists and installs them as this
    /// engine's immutable tiers, re-basing the mutable indexes to start
    /// where the segments end. A manifest that names a missing file, a
    /// header that disagrees with its manifest row, or a
    /// non-contiguous tier layout is a hard error — serving a database
    /// with silently absent documents would be worse than refusing.
    fn attach_manifest(&mut self, m: &Manifest) -> Result<()> {
        let mut tiers: std::collections::BTreeMap<u32, SegTier> = std::collections::BTreeMap::new();
        for s in &m.segments {
            if !self.seg_env.exists(&s.suffix)? {
                return Err(IndexError::Unsupported(format!(
                    "manifest generation {} references missing segment file '{}'",
                    m.generation, s.suffix
                )));
            }
            let reader = Arc::new(
                SegmentReader::open(self.seg_env.open(&s.suffix)?, Arc::clone(&self.seg_stats))
                    .map_err(IndexError::Storage)?,
            );
            if reader.kind() != s.kind
                || reader.doc_base() != s.doc_base
                || reader.n_docs() != s.n_docs
            {
                return Err(IndexError::Unsupported(format!(
                    "segment '{}' header disagrees with its manifest row",
                    s.suffix
                )));
            }
            let idx = PrixIndex::from_segment(reader)?;
            let tier = tiers.entry(s.doc_base).or_insert_with(|| SegTier {
                rp: None,
                ep: None,
                doc_base: s.doc_base,
                n_docs: s.n_docs,
            });
            let slot = if s.kind == SEG_KIND_RP {
                &mut tier.rp
            } else {
                &mut tier.ep
            };
            if tier.n_docs != s.n_docs || slot.is_some() {
                return Err(IndexError::Unsupported(format!(
                    "manifest generation {} lists conflicting segments at doc base {}",
                    m.generation, s.doc_base
                )));
            }
            *slot = Some(idx);
        }
        let tiers: Vec<SegTier> = tiers.into_values().collect();
        let mut next = 0u32;
        for t in &tiers {
            if t.doc_base != next {
                return Err(IndexError::Unsupported(
                    "segment tiers are not contiguous".into(),
                ));
            }
            next += t.n_docs;
        }
        self.segments = tiers;
        self.manifest_segments = m.segments.clone();
        self.generation = m.generation;
        self.mutable_suffix = m.mutable_suffix.clone();
        if let Some(rp) = &mut self.rp {
            rp.set_doc_base(next);
        }
        if let Some(ep) = &mut self.ep {
            ep.set_doc_base(next);
        }
        Ok(())
    }

    /// Writes `m` into the manifest store (suffix `".seg"`), creating
    /// it on first use. The write itself is atomic at the slot level
    /// (two alternating CRC-framed slots; a torn write leaves the
    /// previous generation valid), so this call is the commit point of
    /// every bulk build and compaction.
    fn write_manifest(&self, m: &Manifest) -> Result<()> {
        let store = if self.seg_env.exists(".seg")? {
            self.seg_env.open(".seg")?
        } else {
            self.seg_env.create(".seg")?
        };
        m.write_to(&*store).map_err(IndexError::Storage)?;
        Ok(())
    }

    /// Builds a mutable-generation engine whose stores live in `env` at
    /// `suffix` (durable layout iff `cfg.wal`). Used by bulk builds and
    /// compaction, which address files through a [`SegmentEnv`] rather
    /// than paths.
    fn build_mutable_env(
        collection: Collection,
        cfg: &EngineConfig,
        env: &Arc<dyn SegmentEnv>,
        suffix: &str,
    ) -> Result<Self> {
        let stores = if cfg.wal {
            EngineStores {
                db: env.create(suffix)?,
                sum: Some(env.create(&format!("{suffix}.sum"))?),
                wal: Some(env.create(&format!("{suffix}.wal"))?),
            }
        } else {
            EngineStores {
                db: env.create(suffix)?,
                sum: None,
                wal: None,
            }
        };
        let mut sub = cfg.clone();
        sub.path = None;
        let mut eng = Self::build_on(collection, sub, stores)?;
        eng.seg_env = Arc::clone(env);
        Ok(eng)
    }

    /// Assembles the engine a finished bulk build publishes: an empty
    /// mutable generation plus the just-written segments, committed by
    /// one manifest write. Crash-ordering contract (the bulk crash
    /// suite pins it): segments are fully written and synced *before*
    /// this runs, the mutable generation is created and saved next, and
    /// the manifest write is last — a crash anywhere earlier leaves the
    /// previous manifest (or no database at all) in charge.
    pub(crate) fn from_bulk(
        cfg: EngineConfig,
        env: Arc<dyn SegmentEnv>,
        syms: SymbolTable,
        generation: u64,
        mutable_suffix: String,
        segments: Vec<ManifestSegment>,
        valix_entries: Vec<ValixEntry>,
    ) -> Result<Self> {
        let mut collection = Collection::new();
        *collection.symbols_mut() = syms;
        let n_docs: u32 = segments
            .iter()
            .map(|s| s.doc_base + s.n_docs)
            .max()
            .unwrap_or(0);
        let mut eng = Self::build_mutable_env(collection, &cfg, &env, &mutable_suffix)?;
        // The segments' leaf values, bulk-loaded into the fresh mutable
        // generation's pool (the valix always lives with the mutable
        // generation; its coverage spans the segment documents).
        eng.valix = Some(Valix::build_bulk(
            Arc::clone(&eng.pool),
            &valix_entries,
            n_docs,
        )?);
        eng.save()?;
        let manifest = Manifest {
            generation,
            mutable_suffix,
            segments,
        };
        eng.write_manifest(&manifest)?;
        eng.attach_manifest(&manifest)?;
        Ok(eng)
    }

    /// Folds the mutable delta into a new immutable segment per index
    /// kind and swaps in a fresh, empty mutable generation. Returns
    /// `false` (and does nothing) when the delta is empty.
    ///
    /// Publish protocol, in order: (1) build and sync the new segment
    /// files under the next generation's names — the live tree is
    /// untouched; (2) create and save the next mutable generation in
    /// *new* files, its epoch clock re-seeded past the old pool's so
    /// epoch-keyed caches and snapshots stay monotone; (3) write the
    /// manifest — the single commit point; (4) swap the in-memory state
    /// and unlink the old mutable generation's files. Readers pinned on
    /// the old pool keep reading through their open handles (the files
    /// are unlinked, never truncated), so a snapshot taken before a
    /// compaction answers bit-identically after it.
    pub fn compact(&mut self) -> Result<bool> {
        self.compact_with(crate::segbuild::DEFAULT_RUN_MEM_BYTES)
    }

    /// [`PrixEngine::compact`] with an explicit sort-run budget.
    pub fn compact_with(&mut self, run_mem_bytes: usize) -> Result<bool> {
        let live = match self.rp.as_ref().or(self.ep.as_ref()) {
            Some(i) => i,
            None => return Ok(false),
        };
        let n = live.doc_count() as u32;
        let doc_base = live.doc_base();
        if n == 0 {
            return Ok(false);
        }
        let generation = self.generation + 1;
        // (1) The delta's documents replay from their stored refinement
        // records through the same encoder the bulk path uses, so the
        // segment bytes come out identical to a bulk build's.
        let mut manifest_segments = self.manifest_segments.clone();
        for (idx, kname, seg_kind) in [
            (self.rp.as_ref(), "rp", SEG_KIND_RP),
            (self.ep.as_ref(), "ep", SEG_KIND_EP),
        ] {
            let idx = match idx {
                Some(i) => i,
                None => continue,
            };
            let suffix = format!(".g{generation}.{kname}.seg");
            let mut b = crate::segbuild::SegIndexBuilder::new(
                &self.seg_env,
                &suffix,
                idx.kind(),
                idx.dummy_sym(),
                doc_base,
                run_mem_bytes,
            )?;
            for local in 0..n {
                b.add_doc_data(&idx.load_doc(doc_base + local, true)?)?;
            }
            b.finish(idx.maxgap(), idx.childless_set())?;
            manifest_segments.push(ManifestSegment {
                kind: seg_kind,
                suffix,
                doc_base,
                n_docs: n,
            });
        }
        // (2) The replacement mutable generation: empty, same symbol
        // table, same configuration, fresh files.
        let mut collection = Collection::new();
        *collection.symbols_mut() = self.collection.symbols().clone();
        let cfg = EngineConfig {
            buffer_pages: self.buffer_pages,
            labeling: self.labeling,
            path: None,
            build_rp: self.rp.is_some(),
            build_ep: self.ep.is_some(),
            arrangement_limit: self.arrangement_limit,
            wal: self.pool.is_durable(),
        };
        let new_suffix = format!(".g{generation}");
        let mut fresh = Self::build_mutable_env(collection, &cfg, &self.seg_env, &new_suffix)?;
        debug_assert_eq!(fresh.dummy, self.dummy, "dummy symbol survives compaction");
        // The valix covers *global* document ids, so it migrates
        // page-for-page into the replacement generation's pool rather
        // than being rebuilt from the (empty) fresh collection.
        fresh.valix = match &self.valix {
            Some(v) => Some(v.clone_into(Arc::clone(&fresh.pool))?),
            None => fresh.valix,
        };
        fresh.save()?;
        let epoch = self.pool.published_epoch().max(self.pool.current_epoch()) + 1;
        fresh.pool.reseed_epoch(epoch)?;
        // (3) Commit.
        let manifest = Manifest {
            generation,
            mutable_suffix: new_suffix,
            segments: manifest_segments,
        };
        self.write_manifest(&manifest)?;
        // (4) Publish in memory and retire the old generation's files.
        let old_suffix = std::mem::take(&mut self.mutable_suffix);
        self.collection = fresh.collection;
        self.pool = fresh.pool;
        self.rp = fresh.rp;
        self.ep = fresh.ep;
        self.catalog_store = fresh.catalog_store;
        self.saved_syms = fresh.saved_syms;
        self.valix = fresh.valix;
        self.recovery = None;
        self.attach_manifest(&manifest)?;
        for side in ["", ".sum", ".wal"] {
            let _ = self.seg_env.remove(&format!("{old_suffix}{side}"));
        }
        Ok(true)
    }

    /// The segment environment (bulk builds retire superseded
    /// generations through it).
    pub(crate) fn seg_env(&self) -> &Arc<dyn SegmentEnv> {
        &self.seg_env
    }

    /// The immutable tiers, for snapshot capture.
    pub(crate) fn seg_tiers(&self) -> &[SegTier] {
        &self.segments
    }

    /// Manifest generation of this database; 0 when no bulk build or
    /// compaction has ever produced segments.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The manifest rows describing every live segment file
    /// (`prix segments`).
    pub fn segment_manifest(&self) -> &[ManifestSegment] {
        &self.manifest_segments
    }

    /// Documents living in immutable segments.
    pub fn segment_docs(&self) -> u64 {
        self.segments.iter().map(|t| u64::from(t.n_docs)).sum()
    }

    /// Documents living in the mutable delta (what the next
    /// [`PrixEngine::compact`] would fold).
    pub fn mutable_docs(&self) -> usize {
        self.rp
            .as_ref()
            .or(self.ep.as_ref())
            .map_or(self.collection.len(), |i| i.doc_count())
    }

    /// Lifetime segment-block I/O counters (survive compaction pool
    /// swaps; `/metrics` reads them).
    pub fn seg_io(&self) -> &Arc<IoStats> {
        &self.seg_stats
    }

    /// Verifies every live segment file: header magic and geometry,
    /// per-block checksums, and the sorted-order invariant of the
    /// Trie-Symbol entries. Returns one report per manifest row.
    pub fn verify_segments(&self) -> Result<Vec<(String, SegmentCheck)>> {
        let mut out = Vec::new();
        for s in &self.manifest_segments {
            let tier = self
                .segments
                .iter()
                .find(|t| t.doc_base == s.doc_base)
                .ok_or_else(|| {
                    IndexError::Unsupported("manifest row without a loaded tier".into())
                })?;
            let idx = if s.kind == SEG_KIND_RP {
                tier.rp.as_ref()
            } else {
                tier.ep.as_ref()
            };
            let reader = idx.and_then(|i| i.segment()).ok_or_else(|| {
                IndexError::Unsupported("manifest row without a loaded tier".into())
            })?;
            out.push((
                s.suffix.clone(),
                reader.verify().map_err(IndexError::Storage)?,
            ));
        }
        Ok(out)
    }

    /// The tier list queries descend (segments first, mutable delta
    /// last; see [`collect_tiers`]).
    fn tiers(&self) -> Vec<TierRefs<'_>> {
        collect_tiers(&self.segments, self.rp.as_ref(), self.ep.as_ref())
    }

    /// Parses `xml` and incrementally indexes it into every built
    /// index (§5.2.1 dynamic labeling in action). Use
    /// [`LabelingMode::Dynamic`] at build time to leave scope headroom;
    /// a bulk-exact index only accepts documents whose trie paths
    /// already exist or branch at the root.
    pub fn insert_document(&mut self, xml: &str) -> Result<prix_xml::DocId> {
        let tree = prix_xml::parse_document(xml, self.collection.symbols_mut())
            .map_err(|e| IndexError::Unsupported(format!("parse error: {e}")))?;
        self.insert_tree(tree)
    }

    /// [`PrixEngine::insert_document`] for an already-parsed tree
    /// (which must use this engine's symbol table).
    pub fn insert_tree(&mut self, tree: prix_xml::XmlTree) -> Result<prix_xml::DocId> {
        // Validate against *both* indexes before mutating either: if RP
        // accepted the document but EP then ran out of trie scope, the
        // two indexes would disagree on document ids forever after.
        if let Some(rp) = &self.rp {
            rp.check_insert(&tree)?;
        }
        if let Some(ep) = &self.ep {
            ep.check_insert(&tree)?;
        }
        // A reopened engine's collection starts empty while its indexes
        // carry every persisted document, and a tiered engine's mutable
        // indexes start above the segments, so collection ids only
        // track index ids when they were aligned before this insert
        // (fresh builds and pure in-memory engines).
        let was_aligned = self.rp.as_ref().or(self.ep.as_ref()).map_or(true, |i| {
            i.doc_base() as usize + i.doc_count() == self.collection.len()
        });
        let mut id = None;
        if let Some(rp) = &mut self.rp {
            id = Some(rp.insert_document(&tree)?);
        }
        if let Some(ep) = &mut self.ep {
            let ep_id = ep.insert_document(&tree)?;
            if let Some(rp_id) = id {
                debug_assert_eq!(rp_id, ep_id, "indexes assign ids in lockstep");
            }
            id = Some(ep_id);
        }
        self.planner.update(|s| s.merge_tree(&tree));
        if let Some(idx) = self.rp.as_ref().or(self.ep.as_ref()) {
            let b = idx.build_stats();
            self.planner.update(|s| {
                s.set_trie_shape(b.trie_nodes as u64, b.trie_paths as u64, b.sequences)
            });
        }
        if let (Some(vx), Some(id)) = (&mut self.valix, id) {
            if id == vx.covered() {
                vx.index_tree(&tree, id, self.collection.symbols())?;
            }
        }
        let coll_id = self.collection.add_tree(tree);
        let id = id.unwrap_or(coll_id);
        debug_assert!(
            !was_aligned || id == coll_id,
            "collection and indexes stay aligned"
        );
        Ok(id)
    }

    /// Describes the plan the optimizer would use for `q` (index
    /// choice, sequences, edge constraints, MaxGap rules), followed by
    /// the cost-based planner's ranked alternatives.
    pub fn explain(&self, q: &TwigQuery) -> Result<String> {
        let idx = self.pick_index(q)?;
        let mut out = format!("index: {}\n", idx.kind());
        out.push_str(&idx.explain(q, self.collection.symbols())?);
        if let Some(pred) = self.pred_eval(q)? {
            out.push_str(&explain_pred(q, &pred, self.collection.symbols()));
        }
        let caps = self.engine_caps();
        let report = self.planner.decide(q, caps, &ExecOpts::default(), None)?;
        out.push_str(&report.render());
        Ok(out)
    }

    /// The engine capabilities the planner scores over: which PRIX
    /// indexes exist, and whether the alternative engines could be
    /// built (they replay documents out of the RP index, so every tier
    /// must have one).
    pub fn engine_caps(&self) -> crate::plan::EngineCaps {
        let tiers = self.tiers();
        let (rp, ep) = tiers[0];
        let alt = tiers.iter().all(|(rp, _)| rp.is_some());
        crate::plan::EngineCaps {
            rp: rp.is_some(),
            ep: ep.is_some(),
            vist: alt,
            twigstack: alt,
        }
    }

    /// The shared planner (snapshots and the serving layer feed
    /// observations back through it).
    pub fn planner(&self) -> &Arc<Planner> {
        &self.planner
    }

    /// Plans and executes `q` through the cost-based router:
    /// the planner scores every alternative, `forced` bypasses the
    /// comparison, and the result is canonicalized (matches sorted by
    /// `(doc, embedding)`) whatever engine ran.
    pub fn query_routed(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        forced: Option<EngineChoice>,
        alts: &dyn AltProvider,
    ) -> Result<Routed> {
        Router {
            planner: &self.planner,
            prix: self,
            alts,
        }
        .route(q, opts, forced)
    }

    /// Rebuilds the document trees from the RP index's stored
    /// sequences ([`prix_prufer::reconstruct::tree_from_sequences`]), in global
    /// document order across every tier. This is how the alternative
    /// engines get a collection to encode on a reopened database,
    /// whose in-memory collection is empty. All nodes come back as
    /// elements (the RP encoding does not mark text nodes), which is
    /// exactly what label-driven matching needs. Requires the RP index
    /// in every tier.
    pub fn reconstruct_collection(&self) -> Result<Collection> {
        reconstruct_from_tiers(&self.tiers(), self.collection.symbols().clone())
    }

    /// Executes an ordered twig query.
    pub fn query(&self, q: &TwigQuery) -> Result<QueryOutcome> {
        self.query_opts(q, &ExecOpts::default())
    }

    /// Executes an ordered twig query with options. With
    /// [`ExecOpts::limit`] set the query runs through the streaming
    /// executor and stops pulling at the limit — the remaining trie
    /// range queries and refinements never happen.
    pub fn query_opts(&self, q: &TwigQuery, opts: &ExecOpts) -> Result<QueryOutcome> {
        let pred = self.pred_eval(q)?;
        run_query_opts(&self.tiers(), q, opts, pred.as_ref())
    }

    /// Executes a batch of ordered twig queries on up to `threads`
    /// worker threads, returning one [`QueryOutcome`] per query in
    /// input order. Workers pull queries from a shared atomic cursor,
    /// so long and short queries balance across threads; all of them
    /// read through the same sharded buffer pool.
    ///
    /// `threads` is clamped to `1..=queries.len()`: `threads == 0` is
    /// treated as 1 (serial), never an empty worker set. With
    /// `threads <= 1` (or a single query) this degenerates to the
    /// serial loop. Each outcome's [`QueryOutcome::io`] is attributed
    /// through a per-thread [`IoScope`], so it counts exactly the pages
    /// that query touched — concurrent queries on other workers never
    /// leak into it.
    pub fn query_batch(&self, queries: &[TwigQuery], threads: usize) -> Result<Vec<QueryOutcome>> {
        self.query_batch_opts(queries, threads, &ExecOpts::default())
    }

    /// [`PrixEngine::query_batch`] with per-query execution options
    /// (each query gets the same `opts`, including any limit).
    pub fn query_batch_opts(
        &self,
        queries: &[TwigQuery],
        threads: usize,
        opts: &ExecOpts,
    ) -> Result<Vec<QueryOutcome>> {
        run_query_batch(queries, threads, |q| self.query_opts(q, opts))
    }

    /// Executes an unordered twig query by running every distinct branch
    /// arrangement (§5.7) and unioning the embeddings.
    pub fn query_unordered(&self, q: &TwigQuery) -> Result<QueryOutcome> {
        self.query_unordered_opts(q, &ExecOpts::default())
    }

    /// [`PrixEngine::query_unordered`] with execution options. With
    /// [`ExecOpts::limit`] set, arrangements interleave through the
    /// *shared* limit: each arrangement is streamed, distinct
    /// base-numbered matches count against the one budget, and as soon
    /// as it is reached the current stream is abandoned mid-trie and
    /// the remaining arrangements never run at all.
    pub fn query_unordered_opts(&self, q: &TwigQuery, opts: &ExecOpts) -> Result<QueryOutcome> {
        let pred = self.pred_eval(q)?;
        run_query_unordered(
            &self.tiers(),
            self.arrangement_limit,
            q,
            opts,
            Some(&self.planner),
            pred.as_ref(),
        )
    }

    /// The value-predicate index, when this engine carries one.
    pub fn valix(&self) -> Option<&Valix> {
        self.valix.as_ref()
    }

    /// Resolves `q`'s value predicates against this engine's valix and
    /// symbol table (`None` for predicate-free queries).
    fn pred_eval(&self, q: &TwigQuery) -> Result<Option<PredEval>> {
        PredEval::build(q, self.valix.as_ref(), self.collection.symbols())
    }

    /// The commit epoch this engine's durable state is at: the pager's
    /// token for durable engines (what the next save will supersede),
    /// the pool's publish counter otherwise.
    pub fn epoch(&self) -> u64 {
        self.pool.current_epoch()
    }

    /// Batch ingest through the snapshot-isolation write path: every
    /// document is dry-run-validated against *both* indexes (the same
    /// lockstep rule as [`PrixEngine::insert_document`]), accepted
    /// documents are inserted and the batch is committed with **one**
    /// save (one WAL group commit, one epoch advance) instead of a
    /// commit per document.
    ///
    /// Rejected documents (trie scope exhausted, parse errors) are
    /// reported per-document and never touch either index. Any error
    /// *after* a document passed validation aborts the whole batch and
    /// is returned as `Err` — the caller must treat the engine as
    /// broken (see [`crate::snapshot::SharedEngine`], which rolls the
    /// pool back and poisons itself).
    ///
    /// The caller is responsible for the pool-level ingest protocol
    /// (`begin_ingest` / `publish_ingest`); this method only parses,
    /// validates, inserts, and saves.
    pub fn ingest_batch(&mut self, docs: &[String]) -> Result<IngestOutcome> {
        let mut accepted: Vec<prix_xml::DocId> = Vec::new();
        let mut rejected: Vec<(usize, String)> = Vec::new();
        for (i, xml) in docs.iter().enumerate() {
            match self.insert_document(xml) {
                Ok(id) => accepted.push(id),
                // `insert_document` validates both indexes before
                // mutating either, so an Unsupported error here means
                // the document was refused cleanly.
                Err(IndexError::Unsupported(msg)) => rejected.push((i, msg)),
                Err(e) => return Err(e),
            }
        }
        if !accepted.is_empty() {
            self.save()?;
        }
        Ok(IngestOutcome { accepted, rejected })
    }

    /// [`PrixEngine::ingest_batch`] over a *wrapper* document: the
    /// body's root element is discarded and each of its element
    /// children becomes one indexed document (the same convention as
    /// `Collection::add_xml_split` — how a monolithic DBLP-style
    /// export turns into one sequence per record). A malformed wrapper
    /// is a clean whole-batch rejection, not an error.
    pub fn ingest_batch_split(&mut self, wrapper: &str) -> Result<IngestOutcome> {
        let tree = match prix_xml::parse_document(wrapper, self.collection.symbols_mut()) {
            Ok(t) => t,
            Err(e) => {
                return Ok(IngestOutcome {
                    accepted: Vec::new(),
                    rejected: vec![(0, format!("parse error: {e}"))],
                })
            }
        };
        let subtrees: Vec<prix_xml::XmlTree> = tree
            .children(tree.root())
            .iter()
            .filter(|&&c| tree.kind(c) == prix_xml::NodeKind::Element)
            .map(|&c| tree.subtree(c))
            .collect();
        let mut accepted: Vec<prix_xml::DocId> = Vec::new();
        let mut rejected: Vec<(usize, String)> = Vec::new();
        if subtrees.is_empty() {
            rejected.push((0, "wrapper has no element children to ingest".into()));
        }
        for (i, sub) in subtrees.into_iter().enumerate() {
            match self.insert_tree(sub) {
                Ok(id) => accepted.push(id),
                Err(IndexError::Unsupported(msg)) => rejected.push((i, msg)),
                Err(e) => return Err(e),
            }
        }
        if !accepted.is_empty() {
            self.save()?;
        }
        Ok(IngestOutcome { accepted, rejected })
    }
}

impl PrixBackend for PrixEngine {
    fn prix_caps(&self) -> (bool, bool) {
        let tiers = self.tiers();
        let (rp, ep) = tiers[0];
        (rp.is_some(), ep.is_some())
    }

    fn execute_prix(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        force: Option<IndexKind>,
    ) -> Result<QueryOutcome> {
        let pred = self.pred_eval(q)?;
        run_query_forced(&self.tiers(), q, opts, force, pred.as_ref())
    }
}

/// What [`PrixEngine::ingest_batch`] did, before epoch publication.
pub struct IngestOutcome {
    /// Ids assigned to accepted documents, in input order.
    pub accepted: Vec<prix_xml::DocId>,
    /// `(input position, reason)` for each cleanly rejected document.
    pub rejected: Vec<(usize, String)>,
}

/// §5.6's optimizer rule over whatever index pair a view carries:
/// value queries need the EPIndex; value-free queries prefer the
/// RPIndex ("If twig queries have no values, then indexing
/// Regular-Prüfer sequences is recommended").
pub(crate) fn pick_index_from<'a>(
    rp: Option<&'a PrixIndex>,
    ep: Option<&'a PrixIndex>,
    q: &TwigQuery,
) -> Result<&'a PrixIndex> {
    pick_index_forced(rp, ep, q, None)
}

/// [`pick_index_from`] with an optional forced index kind (the
/// planner's RP-vs-EP choice, or `--engine prix_rp`/`prix_ep`).
/// Forcing the RPIndex for a value query is refused — it cannot answer
/// it — as is forcing an index that was not built.
pub(crate) fn pick_index_forced<'a>(
    rp: Option<&'a PrixIndex>,
    ep: Option<&'a PrixIndex>,
    q: &TwigQuery,
    force: Option<IndexKind>,
) -> Result<&'a PrixIndex> {
    match force {
        Some(IndexKind::Regular) => {
            if q.needs_extended() {
                return Err(IndexError::Unsupported(
                    "value query cannot run on the RPIndex".into(),
                ));
            }
            rp.ok_or_else(|| IndexError::Unsupported("the RPIndex was not built".into()))
        }
        Some(IndexKind::Extended) => {
            ep.ok_or_else(|| IndexError::Unsupported("the EPIndex was not built".into()))
        }
        None => {
            if q.needs_extended() {
                ep.ok_or_else(|| {
                    IndexError::Unsupported(
                        "query requires the EPIndex, which was not built".into(),
                    )
                })
            } else {
                rp.or(ep)
                    .ok_or_else(|| IndexError::Unsupported("no index was built".into()))
            }
        }
    }
}

/// Rebuilds every document tree from the RP index's stored sequences,
/// ascending through the tiers so collection ids equal global document
/// ids. Shared by the engine and snapshot `reconstruct_collection`.
pub(crate) fn reconstruct_from_tiers(
    tiers: &[TierRefs<'_>],
    syms: SymbolTable,
) -> Result<Collection> {
    let mut collection = Collection::new();
    *collection.symbols_mut() = syms;
    for &(rp, _) in tiers {
        let rp = rp.ok_or_else(|| {
            IndexError::Unsupported(
                "reconstructing documents requires the RPIndex in every tier".into(),
            )
        })?;
        let base = rp.doc_base();
        for local in 0..rp.doc_count() as u32 {
            let data = rp.load_doc(base + local, true)?;
            let tree =
                prix_prufer::reconstruct::tree_from_sequences(&data.lps, &data.nps, &data.leaves)
                    .map_err(|e| {
                    IndexError::Unsupported(format!("stored sequences are inconsistent: {e}"))
                })?;
            let id = collection.add_tree(tree);
            debug_assert_eq!(id, base + local, "tiers ascend contiguously");
        }
    }
    Ok(collection)
}

/// Shared ordered-query path: the engine runs it over its live tiers,
/// a snapshot over its frozen clones (inside an epoch-pin guard).
/// Tiers ascend by document base and matches come out per-tier in
/// order, so concatenation preserves the global document order the
/// single-tier executor produced. With a limit set each tier streams
/// against the *remaining* budget and stops pulling once it is spent —
/// later tiers (and the rest of the current one) never run their trie
/// range queries at all.
pub(crate) fn run_query_opts(
    tiers: &[TierRefs<'_>],
    q: &TwigQuery,
    opts: &ExecOpts,
    pred: Option<&PredEval>,
) -> Result<QueryOutcome> {
    run_query_forced(tiers, q, opts, None, pred)
}

/// [`run_query_opts`] with an optional forced index kind (the routed
/// RP-vs-EP decision).
pub(crate) fn run_query_forced(
    tiers: &[TierRefs<'_>],
    q: &TwigQuery,
    opts: &ExecOpts,
    force: Option<IndexKind>,
    pred: Option<&PredEval>,
) -> Result<QueryOutcome> {
    let scope = IoScope::begin();
    let start = Instant::now();
    let mut matches: Vec<TwigMatch> = Vec::new();
    let mut stats = QueryStats::default();
    let mut index_used = IndexKind::Regular;
    let mut truncated = false;
    if let Some(k) = opts.limit {
        let mut remaining = k;
        for (i, &(rp, ep)) in tiers.iter().enumerate() {
            if i > 0 && remaining == 0 {
                // Budget exhausted with tiers left unexplored: more
                // matches may exist (the same conservative flag a
                // mid-stream stop reports).
                truncated = true;
                break;
            }
            let idx = pick_index_forced(rp, ep, q, force)?;
            index_used = idx.kind();
            let tier_opts = opts.with_limit(remaining);
            let mut stream = idx.execute_stream_pred(q, &tier_opts, pred)?;
            while let Some(m) = stream.next_match()? {
                matches.push(m);
                remaining -= 1;
            }
            let exhausted = stream.exhausted();
            add_filter_counters(&mut stats, &stream.stats());
            if !exhausted {
                truncated = true;
                break;
            }
        }
    } else {
        for &(rp, ep) in tiers {
            let idx = pick_index_forced(rp, ep, q, force)?;
            index_used = idx.kind();
            let (m, s) = idx.execute_opts_pred(q, opts, pred)?;
            matches.extend(m);
            add_filter_counters(&mut stats, &s);
        }
    }
    stats.matches = matches.len() as u64;
    if let Some(p) = pred {
        stats.valix_probes += p.probe.probes;
        stats.valix_postings += p.probe.postings;
    }
    Ok(QueryOutcome {
        matches,
        stats,
        index_used,
        io: scope.end(),
        elapsed: start.elapsed(),
        truncated,
        engine: EngineId::from_kind(index_used),
    })
}

/// Shared batch driver: workers pull queries from an atomic cursor and
/// run `exec_one` (which closes over the engine or snapshot view, and
/// installs any per-thread pin guard itself).
pub(crate) fn run_query_batch(
    queries: &[TwigQuery],
    threads: usize,
    exec_one: impl Fn(&TwigQuery) -> Result<QueryOutcome> + Sync,
) -> Result<Vec<QueryOutcome>> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads == 1 {
        return queries.iter().map(&exec_one).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<QueryOutcome>>>> = queries
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            let exec_one = &exec_one;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let out = exec_one(&queries[i]);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every query index was claimed by a worker")
        })
        .collect()
}

/// Shared unordered-query path (§5.7 arrangement loop with the shared
/// limit and base-numbered dedup). With a limit set and a planner
/// available, arrangements run cheapest-estimated-first: the shared
/// budget fills from the arrangements expected to drain (or fail)
/// fastest. Without a limit the order is left alone — every
/// arrangement runs to completion anyway, and keeping the stock order
/// keeps the concatenated match vector bit-identical to older builds.
pub(crate) fn run_query_unordered(
    tiers: &[TierRefs<'_>],
    arrangement_limit: usize,
    q: &TwigQuery,
    opts: &ExecOpts,
    planner: Option<&Planner>,
    pred: Option<&PredEval>,
) -> Result<QueryOutcome> {
    let mut arrs =
        arrangements(q, arrangement_limit).map_err(|e| IndexError::Unsupported(e.to_string()))?;
    if let (Some(planner), Some(_)) = (planner, opts.limit) {
        let queries: Vec<TwigQuery> = arrs.iter().map(|a| a.query.clone()).collect();
        let order = planner.rank_arrangements(&queries);
        let mut reordered = Vec::with_capacity(arrs.len());
        let mut taken: Vec<Option<_>> = arrs.into_iter().map(Some).collect();
        for i in order {
            reordered.push(taken[i].take().expect("permutation visits each index once"));
        }
        arrs = reordered;
    }
    let scope = IoScope::begin();
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let mut index_used = IndexKind::Regular;
    let mut seen: std::collections::HashSet<(u32, Vec<PostNum>)> = std::collections::HashSet::new();
    let mut matches: Vec<TwigMatch> = Vec::new();
    let mut truncated = false;
    // Dedup across arrangements makes a per-stream limit unsound
    // (k matches from one arrangement may collapse with earlier
    // ones), so each arrangement streams unlimited and the shared
    // countdown is enforced on distinct base-numbered matches. Tiers
    // nest inside the arrangement loop; the final sort re-establishes
    // global order either way.
    let arr_opts = opts.without_limit();
    'arrs: for arr in &arrs {
        // Arrangements strip predicates from their queries (the
        // structural twig is what gets rearranged), so the evaluator is
        // renumbered to each arrangement's postorders instead.
        let arr_pred = pred.map(|p| p.remap(&arr.base_of));
        for &(rp, ep) in tiers {
            let idx = pick_index_from(rp, ep, &arr.query)?;
            index_used = idx.kind();
            let mut stream = idx.execute_stream_pred(&arr.query, &arr_opts, arr_pred.as_ref())?;
            while let Some(m) = stream.next_match()? {
                // Re-map the arrangement's postorder numbering back to
                // the base query's.
                let mut base_emb = vec![0 as PostNum; m.embedding.len()];
                for (arr_q, &img) in m.embedding.iter().enumerate() {
                    let base_q = arr.base_of[arr_q];
                    base_emb[(base_q - 1) as usize] = img;
                }
                if seen.insert((m.doc, base_emb.clone())) {
                    matches.push(TwigMatch {
                        doc: m.doc,
                        embedding: base_emb,
                    });
                    if opts.limit.map_or(false, |k| matches.len() >= k) {
                        let s = stream.stats();
                        add_filter_counters(&mut stats, &s);
                        truncated = true;
                        break 'arrs;
                    }
                }
            }
            let s = stream.stats();
            add_filter_counters(&mut stats, &s);
        }
    }
    matches.sort();
    stats.matches = matches.len() as u64;
    if let Some(p) = pred {
        stats.valix_probes += p.probe.probes;
        stats.valix_postings += p.probe.postings;
    }
    Ok(QueryOutcome {
        matches,
        stats,
        index_used,
        io: scope.end(),
        elapsed: start.elapsed(),
        truncated,
        engine: EngineId::from_kind(index_used),
    })
}

/// Renders the `/explain` lines for a predicate query: one line per
/// predicate plus the valix probe's estimated selectivity. Predicate-
/// free queries never reach this (their explain output is pinned).
pub(crate) fn explain_pred(q: &TwigQuery, pred: &PredEval, syms: &SymbolTable) -> String {
    let mut out = String::new();
    for p in q.preds() {
        out.push_str(&format!(
            "predicate: {}{{{}}}\n",
            syms.name(q.tree().label(p.node)),
            p.render_op()
        ));
    }
    match pred.estimate() {
        Some((n, covered)) if covered > 0 => {
            out.push_str(&format!(
                "valix: probe passes {n}/{covered} docs (estimated selectivity {:.2}%)\n",
                (n as f64 / covered as f64) * 100.0
            ));
        }
        Some((n, _)) => {
            out.push_str(&format!("valix: probe passes {n} docs (nothing indexed)\n"));
        }
        None => {
            out.push_str("valix: no probeable predicate (verification only)\n");
        }
    }
    out
}

/// Accumulates one arrangement's pipeline stats into the union's
/// (everything except `matches`, which counts distinct base-numbered
/// embeddings across all arrangements).
fn add_filter_counters(total: &mut QueryStats, s: &QueryStats) {
    total.range_queries += s.range_queries;
    total.nodes_scanned += s.nodes_scanned;
    total.maxgap_pruned += s.maxgap_pruned;
    total.candidates += s.candidates;
    total.refined += s.refined;
    total.filter_time += s.filter_time;
    total.refine_time += s.refine_time;
    total.project_time += s.project_time;
    total.pred_skipped += s.pred_skipped;
    total.pred_rejected += s.pred_rejected;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PrixEngine {
        let mut c = Collection::new();
        c.add_xml("<dblp><inproceedings><author>Jim Gray</author><year>1990</year></inproceedings></dblp>")
            .unwrap();
        c.add_xml("<dblp><inproceedings><year>1990</year><author>Jim Gray</author></inproceedings></dblp>")
            .unwrap();
        c.add_xml("<dblp><www><editor>E</editor><url>u</url></www></dblp>")
            .unwrap();
        PrixEngine::build(c, EngineConfig::default()).unwrap()
    }

    #[test]
    fn optimizer_routes_value_queries_to_ep() {
        let mut e = engine();
        let q = e
            .parse_query(r#"//inproceedings[./author="Jim Gray"]"#)
            .unwrap();
        let out = e.query(&q).unwrap();
        assert_eq!(out.index_used, IndexKind::Extended);
        assert_eq!(out.matches.len(), 2);
    }

    #[test]
    fn optimizer_routes_structural_queries_to_rp() {
        let mut e = engine();
        let q = e.parse_query("//www[./editor]/url").unwrap();
        let out = e.query(&q).unwrap();
        assert_eq!(out.index_used, IndexKind::Regular);
        assert_eq!(out.matches.len(), 1);
    }

    #[test]
    fn ordered_vs_unordered() {
        let mut e = engine();
        // Ordered: author before year — only doc 0.
        let q = e
            .parse_query(r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#)
            .unwrap();
        let ordered = e.query(&q).unwrap();
        assert_eq!(ordered.matches.len(), 1);
        assert_eq!(ordered.matches[0].doc, 0);
        // Unordered: both docs.
        let unordered = e.query_unordered(&q).unwrap();
        assert_eq!(unordered.matches.len(), 2);
    }

    #[test]
    fn unordered_embeddings_use_base_numbering() {
        let mut e = engine();
        let q = e
            .parse_query(r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#)
            .unwrap();
        let out = e.query_unordered(&q).unwrap();
        let syms = e.collection().symbols();
        let author = syms.lookup("author").unwrap();
        for m in &out.matches {
            let t = e.collection().doc(m.doc);
            // Base query postorder: "Jim Gray"=1, author=2, "1990"=3,
            // year=4, inproceedings=5.
            assert_eq!(t.label_at(m.embedding[1]), author, "doc {}", m.doc);
        }
    }

    #[test]
    fn cold_cache_queries_report_io() {
        let mut e = engine();
        let q = e.parse_query("//www[./editor]/url").unwrap();
        e.clear_cache().unwrap();
        let out = e.query(&q).unwrap();
        assert!(out.io.physical_reads > 0, "cold run must hit the disk");
        let warm = e.query(&q).unwrap();
        assert_eq!(warm.io.physical_reads, 0, "warm run is fully cached");
        assert_eq!(warm.matches.len(), out.matches.len());
    }

    #[test]
    fn rp_only_engine_rejects_value_queries() {
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let cfg = EngineConfig {
            build_ep: false,
            ..Default::default()
        };
        let mut e = PrixEngine::build(c, cfg).unwrap();
        let q = e.parse_query(r#"//a[./b="v"]"#).unwrap();
        assert!(e.query(&q).is_err());
    }

    #[test]
    fn file_backed_engine_works() {
        let dir = std::env::temp_dir().join(format!("prix-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = Collection::new();
        c.add_xml("<a><b><c/></b></a>").unwrap();
        let cfg = EngineConfig {
            path: Some(dir.join("db.prix")),
            buffer_pages: 16,
            ..Default::default()
        };
        let mut e = PrixEngine::build(c, cfg).unwrap();
        let q = e.parse_query("//a/b/c").unwrap();
        let out = e.query(&q).unwrap();
        assert_eq!(out.matches.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dynamic_labeling_engine_matches_exact() {
        let mut c = Collection::new();
        for i in 0..20 {
            c.add_xml(&format!("<a><b><c>v{i}</c></b><d/></a>"))
                .unwrap();
        }
        let exact = PrixEngine::build(c.clone(), EngineConfig::default()).unwrap();
        let dynamic = PrixEngine::build(
            c,
            EngineConfig {
                labeling: LabelingMode::Dynamic { alpha: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        let mut syms = exact.collection().symbols().clone();
        let q = parse_xpath("//a[./b/c]/d", &mut syms).unwrap();
        let a = exact.query(&q).unwrap();
        let b = dynamic.query(&q).unwrap();
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.matches.len(), 20);
    }

    #[test]
    fn explain_describes_the_plan() {
        let mut e = engine();
        let q = e.parse_query("//www[./editor]/url").unwrap();
        let text = e.explain(&q).unwrap();
        assert!(text.contains("RPIndex"), "{text}");
        assert!(text.contains("leaf-extended"), "{text}");
        assert!(text.contains("LPS(Q)"), "{text}");
        assert!(text.contains("MaxGap rules"), "{text}");
        let qv = e
            .parse_query(r#"//inproceedings[./author="Jim Gray"]"#)
            .unwrap();
        let tv = e.explain(&qv).unwrap();
        assert!(tv.contains("EPIndex"), "{tv}");
    }

    /// Collapses digit runs (with embedded dots) to `#` and space runs
    /// to one space, so the explain pins cover the full output shape —
    /// including the planner section — without re-pinning on every
    /// cost-constant or dataset tweak.
    fn normalize_explain(s: &str) -> String {
        let mut out = String::new();
        let (mut in_num, mut in_space) = (false, false);
        for ch in s.chars() {
            if ch.is_ascii_digit() || (ch == '.' && in_num) {
                if !in_num {
                    out.push('#');
                    in_num = true;
                }
                in_space = false;
                continue;
            }
            in_num = false;
            if ch == ' ' {
                if in_space {
                    continue;
                }
                in_space = true;
            } else {
                in_space = false;
            }
            out.push(ch);
        }
        out
    }

    #[test]
    fn explain_output_shape_is_pinned() {
        // The serving layer's `GET /explain` exposes this text
        // verbatim; pin the exact shape (digits and space runs
        // normalized — see `normalize_explain`) for one path query and
        // one twig query so refactors can't silently change the
        // contract.
        let mut e = engine();
        let path_q = e.parse_query("/dblp/www/url").unwrap();
        assert_eq!(
            normalize_explain(&e.explain(&path_q).unwrap()),
            "index: RPIndex\n\
             plan: RPIndex, leaf-extended query (§# fast path)\n\
             LPS(Q) = url www dblp\n\
             NPS(Q) = # # #\n\
             edges = / / / /\n\
             executor: streaming filter -> refine -> project (limit pushdown)\n\
             MaxGap rules: # of # adjacent pairs bounded\n\
             \x20positions #->#: distance <= min(#, per-node) + #\n\
             \x20positions #->#: distance <= min(#, per-node) + #\n\
             planner: engine=prix_rp maxgap=on cost=#us (routed) shape=n#l#v#d# ewma_rows=#\n\
             \x20alt prix_rp maxgap=on cost= #us\n\
             \x20alt prix_rp maxgap=off cost= #us\n\
             \x20alt twigstack cost= #us\n\
             \x20alt prix_ep maxgap=on cost= #us\n\
             \x20alt prix_ep maxgap=off cost= #us\n\
             \x20alt twigstackxb cost= #us\n\
             \x20alt vist cost= #us\n"
        );
        let twig_q = e.parse_query("//www[./editor]/url").unwrap();
        assert_eq!(
            normalize_explain(&e.explain(&twig_q).unwrap()),
            "index: RPIndex\n\
             plan: RPIndex, leaf-extended query (§# fast path)\n\
             LPS(Q) = editor www url www\n\
             NPS(Q) = # # # #\n\
             edges = / / / / /\n\
             executor: streaming filter -> refine -> project (limit pushdown)\n\
             MaxGap rules: # of # adjacent pairs bounded\n\
             \x20positions #->#: distance <= min(#, per-node) + #\n\
             \x20positions #->#: distance <= min(#, per-node) + #\n\
             \x20positions #->#: distance <= min(#, per-node) + #\n\
             planner: engine=prix_rp maxgap=on cost=#us (routed) shape=n#l#v#d# ewma_rows=#\n\
             \x20alt prix_rp maxgap=on cost= #us\n\
             \x20alt prix_rp maxgap=off cost= #us\n\
             \x20alt twigstack cost= #us\n\
             \x20alt prix_ep maxgap=on cost= #us\n\
             \x20alt prix_ep maxgap=off cost= #us\n\
             \x20alt twigstackxb cost= #us\n\
             \x20alt vist cost= #us\n"
        );
    }

    #[test]
    fn incremental_insert_matches_bulk_build() {
        // Build small, insert more, compare against building everything
        // at once.
        let docs = [
            "<dblp><www><editor>E</editor><url>u</url></www></dblp>",
            "<dblp><inproceedings><author>A</author><year>1990</year></inproceedings></dblp>",
            "<dblp><www><editor>F</editor><url>v</url></www></dblp>",
            "<x><y><z>deep</z></y></x>",
            "<dblp><www><url>no-editor</url></www></dblp>",
        ];
        let mut base = Collection::new();
        for d in &docs[..2] {
            base.add_xml(d).unwrap();
        }
        let mut incremental = PrixEngine::build(
            base,
            EngineConfig {
                labeling: LabelingMode::Dynamic { alpha: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        for d in &docs[2..] {
            incremental.insert_document(d).unwrap();
        }

        let mut full = Collection::new();
        for d in &docs {
            full.add_xml(d).unwrap();
        }
        let mut bulk = PrixEngine::build(full, EngineConfig::default()).unwrap();

        for xpath in [
            "//www[./editor]/url",
            r#"//inproceedings[./author="A"]"#,
            "//x//z",
            "//www/url",
        ] {
            let qi = incremental.parse_query(xpath).unwrap();
            let qb = bulk.parse_query(xpath).unwrap();
            let mi = incremental.query(&qi).unwrap().matches;
            let mb = bulk.query(&qb).unwrap().matches;
            assert_eq!(mi, mb, "{xpath}");
            let oracle = crate::naive::naive_count(incremental.collection(), &qi);
            assert_eq!(mi.len(), oracle, "{xpath} vs oracle");
        }
    }

    #[test]
    fn incremental_insert_shares_existing_paths() {
        let mut c = Collection::new();
        c.add_xml("<a><b><c>v</c></b></a>").unwrap();
        let mut e = PrixEngine::build(
            c,
            EngineConfig {
                labeling: LabelingMode::Dynamic { alpha: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let nodes_before = e.rp_index().unwrap().build_stats().trie_nodes;
        // Identical structure: the RP trie path is fully shared.
        e.insert_document("<a><b><c>w</c></b></a>").unwrap();
        let nodes_after = e.rp_index().unwrap().build_stats().trie_nodes;
        assert_eq!(nodes_before, nodes_after, "no new RP trie nodes");
        let q = e.parse_query("//a/b/c").unwrap();
        assert_eq!(e.query(&q).unwrap().matches.len(), 2);
    }

    #[test]
    fn failed_ep_insert_leaves_indexes_in_lockstep() {
        // Exact labeling packs trie scopes densely: only existing paths
        // and fresh root branches are insertable. `<a><c>v</c></a>`
        // diverges from `<a><b>v</b></a>` at the *root* of the RP trie
        // (LPS `c a` vs `b a`), which exact labeling accepts — but its
        // EP sequence (`v c a` vs `v b a`) diverges *below* the packed
        // level-1 node for `v`, which underflows. The engine must
        // reject the document *before* touching either index.
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let mut e = PrixEngine::build(c, EngineConfig::default()).unwrap();
        assert!(
            e.rp_index()
                .unwrap()
                .check_insert(
                    &prix_xml::parse_document(
                        "<a><c>v</c></a>",
                        &mut e.collection.symbols().clone()
                    )
                    .unwrap()
                )
                .is_ok(),
            "RP alone would accept the document (root branch)"
        );
        let err = e.insert_document("<a><c>v</c></a>").unwrap_err();
        assert!(
            matches!(err, IndexError::Unsupported(_)),
            "expected scope underflow, got {err}"
        );
        let rp_docs = e.rp_index().unwrap().doc_count();
        let ep_docs = e.ep_index().unwrap().doc_count();
        assert_eq!(rp_docs, ep_docs, "indexes out of lockstep");
        assert_eq!(rp_docs, 1, "rejected document must not be half-indexed");
        assert!(e.collection().len() == 1, "collection unchanged");
        // The engine still works, and an insert both indexes accept
        // (identical document: both paths shared) assigns aligned ids.
        let id = e.insert_document("<a><b>v</b></a>").unwrap();
        assert_eq!(id, 1);
        let q = e.parse_query("//a/b").unwrap();
        assert_eq!(e.query(&q).unwrap().matches.len(), 2);
        let qv = e.parse_query(r#"//b[text()="v"]"#).unwrap();
        assert_eq!(e.query(&qv).unwrap().matches.len(), 2);
    }

    #[test]
    fn query_batch_matches_serial_and_preserves_order() {
        let mut e = engine();
        let xpaths = [
            "//www[./editor]/url",
            r#"//inproceedings[./author="Jim Gray"]"#,
            "//dblp//year",
            "//www/url",
        ];
        let queries: Vec<_> = xpaths.iter().map(|x| e.parse_query(x).unwrap()).collect();
        let serial: Vec<_> = queries
            .iter()
            .map(|q| e.query(q).unwrap().matches)
            .collect();
        for threads in [1, 2, 4, 16] {
            let batch = e.query_batch(&queries, threads).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (i, out) in batch.iter().enumerate() {
                assert_eq!(out.matches, serial[i], "threads={threads} query {i}");
            }
        }
    }

    #[test]
    fn query_batch_zero_threads_clamps_to_serial() {
        // Regression: `threads == 0` must behave exactly like the
        // serial path (clamped to 1), not spawn zero workers and
        // return nothing / hang.
        let mut e = engine();
        let xpaths = ["//www[./editor]/url", "//dblp//year"];
        let queries: Vec<_> = xpaths.iter().map(|x| e.parse_query(x).unwrap()).collect();
        let batch = e.query_batch(&queries, 0).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, out) in queries.iter().zip(&batch) {
            assert_eq!(out.matches, e.query(q).unwrap().matches);
        }
        // Empty input with zero threads is a no-op, not a panic.
        assert!(e.query_batch(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn query_batch_surfaces_errors() {
        // An RP-only engine cannot answer value queries; the batch must
        // report the failure rather than swallow it.
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let cfg = EngineConfig {
            build_ep: false,
            ..Default::default()
        };
        let mut e = PrixEngine::build(c, cfg).unwrap();
        let good = e.parse_query("//a/b").unwrap();
        let bad = e.parse_query(r#"//a[./b="v"]"#).unwrap();
        let queries = vec![good, bad];
        assert!(e.query_batch(&queries, 2).is_err());
    }

    #[test]
    fn durable_engine_writes_sidecars_and_reopens_clean() {
        let dir = std::env::temp_dir().join(format!("prix-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.prix");
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let mut e = PrixEngine::build(
            c,
            EngineConfig {
                path: Some(path.clone()),
                labeling: LabelingMode::Dynamic { alpha: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        e.save().unwrap();
        drop(e);
        assert!(sibling(&path, ".sum").exists(), "checksum sidecar created");
        assert!(sibling(&path, ".wal").exists(), "write-ahead log created");
        let mut r = PrixEngine::reopen(&path, 64).unwrap();
        let rep = r.recovery().expect("durable reopen reports recovery");
        assert!(!rep.unclean_shutdown, "clean shutdown: nothing to replay");
        assert_eq!(rep.replayed_frames, 0);
        let (verified, _) = r.verify_checksums().unwrap();
        assert!(verified > 0, "pages have checksums");
        let q = r.parse_query("//a/b").unwrap();
        assert_eq!(r.query(&q).unwrap().matches.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_wal_engine_is_legacy_and_reports_no_recovery() {
        let dir = std::env::temp_dir().join(format!("prix-nowal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.prix");
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let mut e = PrixEngine::build(
            c,
            EngineConfig {
                path: Some(path.clone()),
                wal: false,
                ..Default::default()
            },
        )
        .unwrap();
        e.save().unwrap();
        drop(e);
        assert!(!sibling(&path, ".sum").exists(), "no sidecar without WAL");
        let mut r = PrixEngine::reopen(&path, 64).unwrap();
        assert!(r.recovery().is_none());
        assert!(
            r.verify_checksums().is_err(),
            "legacy file has no checksums"
        );
        let q = r.parse_query("//a/b").unwrap();
        assert_eq!(r.query(&q).unwrap().matches.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_engine_reopens_without_wal_on_request() {
        // `serve --no-wal` path: durable database, WAL disabled at
        // reopen. Checksums stay maintained; saves write direct.
        let dir = std::env::temp_dir().join(format!("prix-nowal-ro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.prix");
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let mut e = PrixEngine::build(
            c,
            EngineConfig {
                path: Some(path.clone()),
                labeling: LabelingMode::Dynamic { alpha: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        e.save().unwrap();
        drop(e);
        let mut r = PrixEngine::reopen_opts(&path, 64, false).unwrap();
        assert!(r.recovery().is_some(), "recovery still ran");
        assert!(!r.pool().is_durable(), "pool runs without a WAL");
        r.insert_document("<a><b>w</b></a>").unwrap();
        r.save().unwrap();
        let (verified, _) = r.verify_checksums().unwrap();
        assert!(verified > 0);
        drop(r);
        let mut again = PrixEngine::reopen(&path, 64).unwrap();
        let q = again.parse_query("//a/b").unwrap();
        assert_eq!(again.query(&q).unwrap().matches.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inserted_documents_survive_save_and_reopen() {
        let dir = std::env::temp_dir().join(format!("prix-incr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.prix");
        let mut c = Collection::new();
        c.add_xml("<a><b>v</b></a>").unwrap();
        let mut e = PrixEngine::build(
            c,
            EngineConfig {
                path: Some(path.clone()),
                labeling: LabelingMode::Dynamic { alpha: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        e.insert_document("<a><q><b>w</b></q></a>").unwrap();
        e.save().unwrap();
        drop(e);
        let mut reopened = PrixEngine::reopen(&path, 256).unwrap();
        let q = reopened.parse_query("//a//b").unwrap();
        assert_eq!(reopened.query(&q).unwrap().matches.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
