//! The streaming query executor: a pull-based filter → refine →
//! project pipeline over the PRIX index.
//!
//! The paper's two-phase evaluation (Algorithm 1 subsequence filtering,
//! Algorithm 2 refinement) is decomposed into composable operators:
//!
//! ```text
//!   CandidateCursor ──► RefineStage ──► MatchStream
//!   (explicit-stack      (per-candidate   (composition +
//!    trie descent,        refinement,      limit pushdown,
//!    one candidate        embedding        per-stage stats)
//!    per pull)            projection,
//!                         dedup)
//! ```
//!
//! [`CandidateCursor`] is the recursive `FindSubsequence` turned into
//! an explicit stack of suspended trie levels: each `next()` resumes
//! the depth-first descent exactly where the previous candidate was
//! emitted, so a consumer that stops pulling stops the traversal
//! mid-trie — the remaining range queries, trie-node scans, and docid
//! scans never run. That is what makes `LIMIT` a real pushdown instead
//! of a post-hoc truncation.
//!
//! [`RefineStage`] is order-agnostic: [`PrixIndex::execute_opts`]
//! drives it over sorted candidates (the historical contract, results
//! bit-identical to the pre-streaming executor), while [`MatchStream`]
//! drives it in trie-arrival order for streaming consumers.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use prix_prufer::{embedding, refine_match, RefineCtx};
use prix_xml::{DocId, PostNum, Sym};

use crate::index::{
    project_embedding, DocData, ExecOpts, GapRule, PrixIndex, QueryPlan, QueryStats, Result,
    TwigMatch,
};
use crate::valix::PredEval;

/// One suspended level of the trie descent: the rows its range query
/// produced and how far the cursor has advanced through them.
struct Frame {
    /// `(left, right, level, fine_gap)` rows from the Trie-Symbol scan.
    hits: Vec<(u64, u64, u32, u32)>,
    /// Next row to try.
    next: usize,
}

impl Frame {
    /// The row currently being explored (`next` was advanced past it).
    fn current(&self) -> (u64, u64, u32, u32) {
        self.hits[self.next - 1]
    }
}

/// Algorithm 1 (`FindSubsequence` + Theorem 4 MaxGap pruning) as a
/// resumable cursor. Each [`CandidateCursor::next`] yields one
/// `(doc, positions)` candidate pair in the same depth-first order the
/// recursive formulation emitted them, then suspends.
pub(crate) struct CandidateCursor<'a> {
    idx: &'a PrixIndex,
    lps: Vec<Sym>,
    rules: Vec<Option<GapRule>>,
    use_fine: bool,
    /// `frames[d]` is the suspended range-query state for LPS position
    /// `d`; `positions[..d]` are the levels chosen by frames `0..d`.
    frames: Vec<Frame>,
    positions: Vec<PostNum>,
    /// Documents found at the last LPS position, drained one per pull
    /// (all share the current `positions`).
    pending: VecDeque<DocId>,
    started: bool,
    done: bool,
    stats: QueryStats,
}

impl<'a> CandidateCursor<'a> {
    pub(crate) fn new(
        idx: &'a PrixIndex,
        lps: Vec<Sym>,
        rules: Vec<Option<GapRule>>,
        use_fine: bool,
    ) -> Self {
        let cap = lps.len();
        CandidateCursor {
            idx,
            lps,
            rules,
            use_fine,
            frames: Vec::with_capacity(cap),
            positions: Vec::with_capacity(cap),
            pending: VecDeque::new(),
            started: false,
            done: false,
            stats: QueryStats::default(),
        }
    }

    /// Filter-stage counters accumulated so far (`range_queries`,
    /// `nodes_scanned`, `maxgap_pruned`, `filter_time`).
    pub(crate) fn stats(&self) -> QueryStats {
        self.stats
    }

    /// `true` once the whole trie descent has been drained. A cursor
    /// abandoned mid-descent (limit hit) never becomes exhausted.
    pub(crate) fn exhausted(&self) -> bool {
        self.done
    }

    /// Pulls the next `(doc, positions)` candidate, resuming the
    /// descent where the previous pull suspended.
    pub(crate) fn next(&mut self) -> Result<Option<(DocId, &[PostNum])>> {
        let t0 = Instant::now();
        let res = self.advance();
        self.stats.filter_time += t0.elapsed();
        match res? {
            Some(doc) => Ok(Some((doc, &self.positions))),
            None => Ok(None),
        }
    }

    fn advance(&mut self) -> Result<Option<DocId>> {
        if self.done {
            return Ok(None);
        }
        if let Some(doc) = self.pending.pop_front() {
            return Ok(Some(doc));
        }
        if !self.started {
            self.started = true;
            // The virtual root's scope is (0, u64::MAX].
            self.push_frame(0, 0, u64::MAX)?;
        }
        loop {
            let depth = match self.frames.len().checked_sub(1) {
                Some(d) => d,
                None => {
                    self.done = true;
                    return Ok(None);
                }
            };
            // Invariant: while trying frame `depth`'s rows, positions
            // holds exactly the levels chosen by the shallower frames.
            self.positions.truncate(depth);
            let (left, right, level) = {
                let frame = &mut self.frames[depth];
                if frame.next >= frame.hits.len() {
                    self.frames.pop();
                    continue;
                }
                let h = frame.hits[frame.next];
                frame.next += 1;
                (h.0, h.1, h.2)
            };
            // MaxGap pruning (Theorem 4): the parent frame's current
            // row carries the per-trie-node fine gap (§5.4).
            if depth > 0 {
                if let Some(rule) = self.rules[depth - 1] {
                    let prev_fine = self.frames[depth - 1].current().3;
                    let mg = if self.use_fine {
                        rule.global.min(prev_fine as u64)
                    } else {
                        rule.global
                    };
                    let prev = self.positions[depth - 1];
                    let dist = (level as u64).saturating_sub(prev as u64);
                    if dist > mg + rule.extra {
                        self.stats.maxgap_pruned += 1;
                        continue;
                    }
                }
            }
            self.positions.push(level);
            if depth + 1 == self.lps.len() {
                self.idx.scan_docids(left, right, &mut self.pending)?;
                if let Some(doc) = self.pending.pop_front() {
                    return Ok(Some(doc));
                }
                // No document ends on this trie node: keep descending.
            } else {
                self.push_frame(depth + 1, left, right)?;
            }
        }
    }

    fn push_frame(&mut self, depth: usize, ql: u64, qr: u64) -> Result<()> {
        self.stats.range_queries += 1;
        let hits = self.idx.scan_tag_range(self.lps[depth], ql, qr)?;
        self.stats.nodes_scanned += hits.len() as u64;
        self.frames.push(Frame { hits, next: 0 });
        Ok(())
    }
}

/// Algorithm 2 refinement + embedding projection + dedup as a
/// per-candidate stage. Order-agnostic: feeding it candidates in any
/// order yields the same set of distinct matches (first occurrence
/// wins). The per-document [`DocData`] cache survives across
/// candidates, and dedup hashes per-document embedding sets so a
/// duplicate costs a lookup, not a clone.
pub(crate) struct RefineStage<'a> {
    idx: &'a PrixIndex,
    cache: HashMap<DocId, DocData>,
    seen: HashMap<DocId, HashSet<Vec<PostNum>>>,
    /// Load leaf records even when the plan's leaf check is skipped —
    /// positional predicate verification needs them.
    force_leaves: bool,
    /// Candidates surviving all refinement phases.
    pub(crate) refined: u64,
    pub(crate) refine_time: Duration,
    pub(crate) project_time: Duration,
}

impl<'a> RefineStage<'a> {
    pub(crate) fn new(idx: &'a PrixIndex, force_leaves: bool) -> Self {
        RefineStage {
            idx,
            cache: HashMap::new(),
            seen: HashMap::new(),
            force_leaves,
            refined: 0,
            refine_time: Duration::default(),
            project_time: Duration::default(),
        }
    }

    /// The cached per-document data for a document already processed.
    pub(crate) fn doc_data(&self, doc: DocId) -> Option<&DocData> {
        self.cache.get(&doc)
    }

    /// Runs one candidate through refinement, projection, the
    /// absolute-root check, and dedup. Returns the match if the
    /// candidate survives everything and is new.
    pub(crate) fn process(
        &mut self,
        plan: &QueryPlan,
        absolute: bool,
        doc: DocId,
        positions: &[PostNum],
    ) -> Result<Option<TwigMatch>> {
        let t0 = Instant::now();
        let data = match self.cache.entry(doc) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(
                self.idx
                    .load_doc(doc, !plan.skip_leaf || self.force_leaves)?,
            ),
        };
        let ctx = RefineCtx {
            doc_nps: &data.nps,
            query_nps: &plan.seq.nps,
            positions,
            edges: &plan.edges,
            query_leaves: &plan.leaves,
            doc_leaves: &data.leaves,
            doc_lps: &data.lps,
            skip_leaf_check: plan.skip_leaf,
        };
        let ok = refine_match(&ctx);
        self.refine_time += t0.elapsed();
        if !ok {
            return Ok(None);
        }
        self.refined += 1;
        let t1 = Instant::now();
        let img = embedding(&plan.seq.nps, positions, &data.nps);
        let out = (|| {
            let base = project_embedding(plan, data, &img)?;
            if absolute && base[base.len() - 1] != data.n_orig {
                return None;
            }
            let set = self.seen.entry(doc).or_default();
            if set.contains(&base) {
                return None;
            }
            set.insert(base.clone());
            Some(TwigMatch {
                doc,
                embedding: base,
            })
        })();
        self.project_time += t1.elapsed();
        Ok(out)
    }
}

/// The composed streaming pipeline behind
/// [`PrixIndex::execute_stream`]: cursor → refine → project, with
/// limit pushdown. Matches arrive in trie-traversal order.
pub struct MatchStream<'a> {
    cursor: CandidateCursor<'a>,
    stage: RefineStage<'a>,
    plan: QueryPlan,
    absolute: bool,
    limit: Option<usize>,
    /// Value-predicate evaluator: documents failing its pre-filter are
    /// skipped before refinement, and refined matches must pass its
    /// positional verification before being emitted.
    pred: Option<&'a PredEval>,
    candidates: u64,
    emitted: u64,
    pred_skipped: u64,
    pred_rejected: u64,
    halted: bool,
}

impl<'a> MatchStream<'a> {
    pub(crate) fn new(
        idx: &'a PrixIndex,
        plan: QueryPlan,
        absolute: bool,
        opts: &ExecOpts,
        pred: Option<&'a PredEval>,
    ) -> Self {
        let rules = if opts.use_maxgap {
            idx.gap_rules(&plan)
        } else {
            vec![None; plan.seq.len().saturating_sub(1)]
        };
        let cursor = CandidateCursor::new(idx, plan.seq.lps.clone(), rules, opts.use_fine_maxgap);
        MatchStream {
            cursor,
            stage: RefineStage::new(idx, pred.is_some()),
            plan,
            absolute,
            limit: opts.limit,
            pred,
            candidates: 0,
            emitted: 0,
            pred_skipped: 0,
            pred_rejected: 0,
            halted: false,
        }
    }

    /// Pulls the next distinct match. Returns `None` once the trie is
    /// drained or the limit is reached; either way, no further index
    /// work happens after that.
    pub fn next_match(&mut self) -> Result<Option<TwigMatch>> {
        if self.halted {
            return Ok(None);
        }
        if let Some(k) = self.limit {
            if self.emitted as usize >= k {
                self.halted = true;
                return Ok(None);
            }
        }
        loop {
            let (doc, positions) = match self.cursor.next()? {
                Some(c) => c,
                None => {
                    self.halted = true;
                    return Ok(None);
                }
            };
            // Predicate pre-filter: a document the valix probe ruled
            // out cannot pass positional verification below, so its
            // candidates never reach refinement (or load a record).
            if let Some(p) = self.pred {
                if !p.allows(doc) {
                    self.pred_skipped += 1;
                    continue;
                }
            }
            self.candidates += 1;
            if let Some(m) = self
                .stage
                .process(&self.plan, self.absolute, doc, positions)?
            {
                if let Some(p) = self.pred {
                    let data = self
                        .stage
                        .doc_data(doc)
                        .expect("process() cached this document");
                    if !p.matches(data, &m.embedding) {
                        self.pred_rejected += 1;
                        continue;
                    }
                }
                self.emitted += 1;
                if let Some(k) = self.limit {
                    if self.emitted as usize >= k {
                        self.halted = true;
                    }
                }
                return Ok(Some(m));
            }
        }
    }

    /// `true` once the underlying cursor drained the whole trie
    /// descent. A stream stopped by its limit (or dropped early) is not
    /// exhausted — `!exhausted()` after the stream ends is the
    /// conservative "truncated" signal (no probing for a further match
    /// is performed).
    pub fn exhausted(&self) -> bool {
        self.cursor.exhausted()
    }

    /// Merged pipeline statistics: the cursor's filter counters and
    /// timing, the refine stage's counters and timings, and the
    /// candidate / match counts observed by the stream so far.
    pub fn stats(&self) -> QueryStats {
        let mut s = self.cursor.stats();
        s.candidates = self.candidates;
        s.refined = self.stage.refined;
        s.refine_time = self.stage.refine_time;
        s.project_time = self.stage.project_time;
        s.matches = self.emitted;
        s.pred_skipped = self.pred_skipped;
        s.pred_rejected = self.pred_rejected;
        s
    }
}
