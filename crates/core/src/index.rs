//! The disk-resident PRIX index (paper §5).
//!
//! One [`PrixIndex`] covers one collection in one of two flavors
//! (§5.6): **RPIndex** over Regular-Prüfer sequences or **EPIndex** over
//! Extended-Prüfer sequences. Both consist of
//!
//! * the **Trie-Symbol index** — the virtual trie's labeled nodes keyed
//!   by `(symbol, LeftPos)` in a B⁺-tree (one logical index per tag,
//!   stored as a composite key so sparsely-used tags share pages),
//! * the **Docid index** — document ids keyed by the LeftPos of the trie
//!   node where each LPS ends,
//! * per-document records (NPS, LPS, leaf list, and for EPIndex the
//!   extended→original postorder map) in a [`RecordStore`],
//! * the per-label [`MaxGapTable`] (§5.4).
//!
//! Query execution is Algorithm 1 (`FindSubsequence` by range queries,
//! with the Theorem 4 MaxGap pruning) followed by Algorithm 2 (the
//! refinement phases), producing the set of twig matches with their
//! embeddings.

use std::fmt;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Duration;

use prix_prufer::{EdgeKind, ExtendedTree, MaxGapTable, PruferSeq};
use prix_storage::{
    BPlusTree, BufferPool, RecordId, RecordStore, SegmentReader, StorageError, SEG_KIND_RP,
};
use prix_xml::{Collection, DocId, PostNum, Sym, XmlTree};

use crate::query::TwigQuery;
use crate::trie::{LabelingMode, VirtualTrie};

/// Which sequence flavor an index stores (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Regular-Prüfer sequences: internal labels only; queries whose
    /// leaves all hang on `/` edges and carry no values.
    Regular,
    /// Extended-Prüfer sequences: every label appears; required for
    /// value predicates, single-node queries, and wildcard edges above
    /// leaves.
    Extended,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::Regular => write!(f, "RPIndex"),
            IndexKind::Extended => write!(f, "EPIndex"),
        }
    }
}

/// Index-layer error.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// The query cannot be answered by this index kind.
    Unsupported(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "index storage error: {e}"),
            IndexError::Unsupported(m) => write!(f, "unsupported query: {m}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;

/// One occurrence of a twig in a document.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TwigMatch {
    /// Document containing the occurrence.
    pub doc: DocId,
    /// `embedding[q - 1]` = postorder number (in the *original*
    /// document numbering) of the image of query node `q` (original
    /// query postorder).
    pub embedding: Vec<PostNum>,
}

/// Counters describing one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Range queries issued against the Trie-Symbol index
    /// (line 1 of Algorithm 1).
    pub range_queries: u64,
    /// Trie nodes produced by those range queries.
    pub nodes_scanned: u64,
    /// Candidates pruned by the MaxGap metric (Theorem 4).
    pub maxgap_pruned: u64,
    /// `(doc, S)` candidate pairs entering refinement.
    pub candidates: u64,
    /// Candidates surviving all refinement phases.
    pub refined: u64,
    /// Distinct twig matches reported.
    pub matches: u64,
    /// Value-index probes issued for the query's predicates.
    pub valix_probes: u64,
    /// Postings scanned by those probes.
    pub valix_postings: u64,
    /// Candidates dropped by the valix document pre-filter before
    /// refinement (their documents cannot satisfy every predicate).
    pub pred_skipped: u64,
    /// Refined matches rejected by positional predicate verification.
    pub pred_rejected: u64,
    /// Wall clock spent in the filtering stage (Algorithm 1: trie range
    /// queries + MaxGap pruning + docid scans).
    pub filter_time: Duration,
    /// Wall clock spent in refinement (per-document record loads +
    /// Algorithm 2).
    pub refine_time: Duration,
    /// Wall clock spent projecting embeddings and deduplicating
    /// matches.
    pub project_time: Duration,
}

impl QueryStats {
    /// This stats value with the wall-clock timings zeroed. Counters
    /// are deterministic per query; timings are not — compare
    /// `a.counters_only() == b.counters_only()` in tests.
    pub fn counters_only(mut self) -> QueryStats {
        self.filter_time = Duration::default();
        self.refine_time = Duration::default();
        self.project_time = Duration::default();
        self
    }
}

/// Execution options: the MaxGap toggles back the §5.4 ablation bench,
/// `limit` drives LIMIT pushdown through the streaming executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecOpts {
    /// Apply the Theorem 4 pruning during subsequence matching.
    pub use_maxgap: bool,
    /// Use the finer-grained per-trie-node MaxGap values (§5.4:
    /// "Finer-grained MaxGap values can be stored in every occurrence
    /// of a symbol in the virtual trie"). Only effective when
    /// `use_maxgap` is set.
    pub use_fine_maxgap: bool,
    /// Stop after this many distinct matches. `None` = unlimited. With
    /// a limit the executor stops *pulling* — remaining trie range
    /// queries, docid scans, and refinements never run — and matches
    /// arrive in trie-traversal order rather than sorted candidate
    /// order.
    pub limit: Option<usize>,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            use_maxgap: true,
            use_fine_maxgap: true,
            limit: None,
        }
    }
}

impl ExecOpts {
    /// Default options: MaxGap pruning on, no limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops after `limit` distinct matches.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Removes any match limit.
    pub fn without_limit(mut self) -> Self {
        self.limit = None;
        self
    }

    /// Disables Theorem 4 pruning entirely.
    pub fn without_maxgap(mut self) -> Self {
        self.use_maxgap = false;
        self
    }

    /// Keeps the global per-label MaxGap bound but drops the per-node
    /// fine gaps (§5.4 ablation).
    pub fn without_fine_maxgap(mut self) -> Self {
        self.use_fine_maxgap = false;
        self
    }
}

/// Statistics recorded while building the index.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Labeled trie nodes.
    pub trie_nodes: usize,
    /// Distinct root-to-leaf trie paths.
    pub trie_paths: usize,
    /// Sequences inserted (= documents).
    pub sequences: u64,
    /// Maximum number of sequences sharing one path.
    pub max_path_sharing: u64,
    /// Scope underflows (dynamic labeling only).
    pub underflows: u64,
    /// Total length of all indexed sequences.
    pub total_seq_len: u64,
}

#[derive(Clone)]
struct DocRecords {
    nps: RecordId,
    lps: RecordId,
    leaves: RecordId,
    /// Extended→original postorder map (EPIndex only).
    orig_map: Option<RecordId>,
    /// Node count of the original document.
    n_orig: u32,
}

/// A PRIX index over one collection *tier*.
///
/// `Clone` snapshots the *handles* (tree roots, record ids, per-doc
/// table, MaxGap): clones share the underlying pages. The engine's
/// snapshot publication clones the index once per commit to give
/// readers a frozen catalog while the writer's copy keeps mutating;
/// the two stay consistent through the pool's epoch-pinned page views.
///
/// Two backings exist behind one query interface: the **mutable tier**
/// (B⁺-trees and a record store through the buffer pool, the only tier
/// that accepts inserts) and **immutable segments** (the bulk-built
/// implicit-tree files of `prix_storage::segment`, read through their
/// own block cache). The executor is backing-agnostic — it only sees
/// [`PrixIndex::scan_tag_range`] / [`PrixIndex::scan_docids`] /
/// [`PrixIndex::load_doc`].
#[derive(Clone)]
pub struct PrixIndex {
    kind: IndexKind,
    maxgap: MaxGapTable,
    dummy: Sym,
    build_stats: BuildStats,
    /// First global document id of this tier: ids stored in the backing
    /// are tier-local, [`PrixIndex::scan_docids`] adds the base and
    /// [`PrixIndex::load_doc`] subtracts it.
    doc_base: DocId,
    /// Labels that occur on childless nodes somewhere in the collection
    /// (values, empty elements). A query leaf with such a label cannot
    /// use the leaf-extended plan soundly (§4.4): its image might be a
    /// childless node, which a dummy-extended query would miss.
    childless: std::collections::HashSet<Sym>,
    backing: Backing,
}

/// Where a [`PrixIndex`] reads its trie nodes, doc ends, and records.
#[derive(Clone)]
enum Backing {
    Tree(TreeBacking),
    Seg(Arc<SegmentReader>),
}

/// The mutable tier: everything lives in buffer-pool pages.
#[derive(Clone)]
struct TreeBacking {
    /// Trie-Symbol index: key = sym(4, BE) ++ left(8, BE),
    /// value = right(8, LE) ++ level(4, LE) ++ fine_gap(4, LE).
    tag_index: BPlusTree,
    /// Docid index: key = left(8, BE), value = doc(4, LE).
    docid_index: BPlusTree,
    /// Trie-node table for incremental inserts: key = left(8, BE),
    /// value = right(8, LE) ++ frontier(8, LE) ++ level(4, LE) ++
    /// sym(4, LE). Entry 0 is the virtual root.
    trie_nodes: BPlusTree,
    docs: Vec<DocRecords>,
    store: RecordStore,
    /// Last metadata record written by [`PrixIndex::save`], with the
    /// exact bytes it serialized: an unchanged index reuses the record
    /// instead of appending a fresh copy on every save.
    saved_meta: Option<(RecordId, Vec<u8>)>,
}

fn tag_key(sym: Sym, left: u64) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..4].copy_from_slice(&sym.0.to_be_bytes());
    k[4..].copy_from_slice(&left.to_be_bytes());
    k
}

fn encode_u32s(vals: impl Iterator<Item = u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Per-document artifacts produced while indexing one tree: its
/// sequences, the ext→orig map (extended kind only), the leaf list, and
/// the per-position gaps feeding the fine-grained MaxGap.
type DocArtifacts = (
    PruferSeq,
    Option<Vec<PostNum>>,
    Vec<(Sym, PostNum)>,
    Vec<u32>,
);

/// Cached per-document data used by refinement.
pub(crate) struct DocData {
    pub(crate) nps: Vec<PostNum>,
    pub(crate) lps: Vec<Sym>,
    pub(crate) leaves: Vec<(Sym, PostNum)>,
    pub(crate) orig_map: Option<Vec<PostNum>>,
    pub(crate) n_orig: u32,
}

impl PrixIndex {
    /// Builds an index of the given `kind` over `collection`.
    ///
    /// `dummy` is the label used for the §5.6 leaf extension (EPIndex
    /// only); it must not be used as a query label.
    pub fn build(
        pool: Arc<BufferPool>,
        collection: &Collection,
        kind: IndexKind,
        mode: LabelingMode,
        dummy: Sym,
    ) -> Result<Self> {
        let mut store = RecordStore::create(Arc::clone(&pool))?;
        let mut trie = VirtualTrie::new();
        let mut maxgap = MaxGapTable::new();
        let mut docs = Vec::with_capacity(collection.len());
        let mut total_seq_len = 0u64;
        let mut childless: std::collections::HashSet<Sym> = std::collections::HashSet::new();

        for (doc_id, tree) in collection.iter() {
            for node in tree.nodes() {
                if tree.is_leaf(node) {
                    childless.insert(tree.label(node));
                }
            }
            let (seq, orig_map, leaves_tree, gaps): DocArtifacts = match kind {
                IndexKind::Regular => {
                    maxgap.add_tree(tree);
                    let seq = PruferSeq::regular(tree);
                    let gaps = position_gaps(&seq.nps, &node_gaps(tree));
                    (seq, None, tree.leaves(), gaps)
                }
                IndexKind::Extended => {
                    let ext = ExtendedTree::build(tree, dummy);
                    maxgap.add_tree(&ext.tree);
                    let seq = PruferSeq::regular(&ext.tree);
                    let gaps = position_gaps(&seq.nps, &node_gaps(&ext.tree));
                    (seq, Some(ext.orig_post), ext.tree.leaves(), gaps)
                }
            };
            total_seq_len += seq.len() as u64;
            trie.insert_with_gaps(&seq.lps, doc_id, Some(&gaps));
            let nps_rec = store.append(&encode_u32s(seq.nps.iter().copied()))?;
            let lps_rec = store.append(&encode_u32s(seq.lps.iter().map(|s| s.0)))?;
            let leaves_rec = store.append(&encode_u32s(
                leaves_tree.iter().flat_map(|&(s, p)| [s.0, p]),
            ))?;
            let orig_rec = match &orig_map {
                Some(m) => Some(store.append(&encode_u32s(m.iter().copied()))?),
                None => None,
            };
            docs.push(DocRecords {
                nps: nps_rec,
                lps: lps_rec,
                leaves: leaves_rec,
                orig_map: orig_rec,
                n_orig: tree.len() as u32,
            });
        }

        trie.assign_ranges(mode);
        let build_stats = BuildStats {
            trie_nodes: trie.node_count(),
            trie_paths: trie.leaf_count(),
            sequences: trie.sequence_count(),
            max_path_sharing: trie.max_path_sharing(),
            underflows: trie.underflows(),
            total_seq_len,
        };

        // Bulk-load the Trie-Symbol index sorted by (sym, left).
        let mut tag_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(trie.node_count());
        trie.for_each_node(|n| {
            let mut val = Vec::with_capacity(16);
            val.extend_from_slice(&n.right.to_le_bytes());
            val.extend_from_slice(&n.level.to_le_bytes());
            val.extend_from_slice(&n.fine_gap.to_le_bytes());
            tag_entries.push((tag_key(n.sym, n.left).to_vec(), val));
        });
        tag_entries.sort();
        let tag_index = BPlusTree::bulk_load(Arc::clone(&pool), tag_entries, 0.9)?;

        // Docid index sorted by left.
        let mut doc_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        trie.for_each_doc_end(|left, doc| {
            doc_entries.push((left.to_be_bytes().to_vec(), doc.to_le_bytes().to_vec()));
        });
        doc_entries.sort();
        let docid_index = BPlusTree::bulk_load(Arc::clone(&pool), doc_entries, 0.9)?;

        // Trie-node table (allocation state for incremental inserts).
        let mut node_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(trie.node_count() + 1);
        let encode_node = |n: &crate::trie::LabeledNode| -> (Vec<u8>, Vec<u8>) {
            let mut v = Vec::with_capacity(24);
            v.extend_from_slice(&n.right.to_le_bytes());
            v.extend_from_slice(&n.frontier.to_le_bytes());
            v.extend_from_slice(&n.level.to_le_bytes());
            v.extend_from_slice(&n.sym.0.to_le_bytes());
            (n.left.to_be_bytes().to_vec(), v)
        };
        node_entries.push(encode_node(&trie.root_node()));
        trie.for_each_node(|n| node_entries.push(encode_node(&n)));
        node_entries.sort();
        let trie_nodes = BPlusTree::bulk_load(Arc::clone(&pool), node_entries, 0.8)?;

        Ok(PrixIndex {
            kind,
            maxgap,
            dummy,
            build_stats,
            doc_base: 0,
            childless,
            backing: Backing::Tree(TreeBacking {
                tag_index,
                docid_index,
                trie_nodes,
                docs,
                store,
                saved_meta: None,
            }),
        })
    }

    /// The mutable-tier backing, or `Unsupported` for a segment tier.
    fn tree(&self) -> Result<&TreeBacking> {
        match &self.backing {
            Backing::Tree(t) => Ok(t),
            Backing::Seg(_) => Err(IndexError::Unsupported(
                "operation needs the mutable index tier; this is an immutable segment".into(),
            )),
        }
    }

    fn tree_mut(&mut self) -> Result<&mut TreeBacking> {
        match &mut self.backing {
            Backing::Tree(t) => Ok(t),
            Backing::Seg(_) => Err(IndexError::Unsupported(
                "operation needs the mutable index tier; this is an immutable segment".into(),
            )),
        }
    }

    /// Checks that [`PrixIndex::insert_document`] would succeed for
    /// `tree` without mutating anything: a read-only descent of the
    /// virtual trie that verifies the parent scope at the first
    /// divergence point has room for the remaining suffix. (Once a
    /// fresh child is carved out it receives at least `need` positions,
    /// so every deeper level fits by induction — the first divergence
    /// is the only place an insert can fail.)
    ///
    /// [`crate::PrixEngine::insert_document`] runs this against *both*
    /// indexes before inserting into either, so a rejected document
    /// cannot leave RP and EP with different document counts.
    pub fn check_insert(&self, tree: &XmlTree) -> Result<()> {
        let lps: Vec<Sym> = match self.kind {
            IndexKind::Regular => PruferSeq::regular(tree).lps,
            IndexKind::Extended => {
                PruferSeq::regular(&ExtendedTree::build(tree, self.dummy).tree).lps
            }
        };
        let mut cur = self.read_trie_node(0)?;
        for (i, &sym) in lps.iter().enumerate() {
            let level = (i + 1) as u32;
            match self.find_child(&cur, sym, level)? {
                Some(child) => cur = child,
                None => {
                    let available = cur.right.saturating_sub(cur.frontier);
                    let need = (lps.len() - i) as u64;
                    if available < need {
                        return Err(scope_underflow(level, available, need));
                    }
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Incrementally indexes one more document — the use case the
    /// paper's dynamic labeling scheme exists for (§5.2.1: ranges can
    /// be assigned "without building a physical trie").
    ///
    /// Descends the virtual trie through the node table; existing path
    /// prefixes are shared, new trie nodes take half of their parent's
    /// remaining scope (the paper's policy). Fails with
    /// [`IndexError::Unsupported`] on scope underflow — build the index
    /// with [`LabelingMode::Dynamic`] to leave headroom (the bulk-exact
    /// labeling packs scopes densely, so only already-present paths and
    /// fresh top-level branches can be added to it).
    pub fn insert_document(&mut self, tree: &XmlTree) -> Result<DocId> {
        // Validate first: a scope underflow discovered mid-descent must
        // not leave the MaxGap table, childless set, or trie mutated
        // for a document that was never indexed.
        self.check_insert(tree)?;
        let local = self.tree()?.docs.len() as u32;
        for node in tree.nodes() {
            if tree.is_leaf(node) {
                self.childless.insert(tree.label(node));
            }
        }
        let (seq, orig_map, leaves_tree, gaps): DocArtifacts = match self.kind {
            IndexKind::Regular => {
                self.maxgap.add_tree(tree);
                let seq = PruferSeq::regular(tree);
                let gaps = position_gaps(&seq.nps, &node_gaps(tree));
                (seq, None, tree.leaves(), gaps)
            }
            IndexKind::Extended => {
                let ext = ExtendedTree::build(tree, self.dummy);
                self.maxgap.add_tree(&ext.tree);
                let seq = PruferSeq::regular(&ext.tree);
                let gaps = position_gaps(&seq.nps, &node_gaps(&ext.tree));
                (seq, Some(ext.orig_post), ext.tree.leaves(), gaps)
            }
        };

        // Descend / extend the virtual trie.
        let mut cur = self.read_trie_node(0)?;
        for (i, &sym) in seq.lps.iter().enumerate() {
            let level = (i + 1) as u32;
            match self.find_child(&cur, sym, level)? {
                Some(child) => {
                    // Shared prefix: refresh the per-node fine gap.
                    if child.fine_gap != u32::MAX && gaps[i] > child.fine_gap {
                        self.rewrite_tag_value(sym, child.left, child.right, level, gaps[i])?;
                    }
                    cur = child;
                }
                None => {
                    let available = cur.right.saturating_sub(cur.frontier);
                    let need = (seq.lps.len() - i) as u64;
                    if available < need {
                        return Err(scope_underflow(level, available, need));
                    }
                    let share = (available / 2).max(need).min(available);
                    let child = TrieNodeEntry {
                        left: cur.frontier + 1,
                        right: cur.frontier + share,
                        frontier: cur.frontier + 1,
                        level,
                        sym,
                        fine_gap: gaps[i],
                    };
                    // Tag index entry.
                    let mut val = Vec::with_capacity(16);
                    val.extend_from_slice(&child.right.to_le_bytes());
                    val.extend_from_slice(&child.level.to_le_bytes());
                    val.extend_from_slice(&child.fine_gap.to_le_bytes());
                    self.tree_mut()?
                        .tag_index
                        .insert(&tag_key(sym, child.left), &val)?;
                    // Node-table entries: the child, and the parent's
                    // advanced frontier.
                    self.write_trie_node(&child, true)?;
                    cur.frontier = child.right;
                    self.write_trie_node(&cur, false)?;
                    self.build_stats.trie_nodes += 1;
                    cur = child;
                }
            }
        }
        // Document endpoint + per-document records.
        let t = self.tree_mut()?;
        t.docid_index
            .insert(&cur.left.to_be_bytes(), &local.to_le_bytes())?;
        let nps_rec = t.store.append(&encode_u32s(seq.nps.iter().copied()))?;
        let lps_rec = t.store.append(&encode_u32s(seq.lps.iter().map(|s| s.0)))?;
        let leaves_rec = t.store.append(&encode_u32s(
            leaves_tree.iter().flat_map(|&(s, p)| [s.0, p]),
        ))?;
        let orig_rec = match &orig_map {
            Some(m) => Some(t.store.append(&encode_u32s(m.iter().copied()))?),
            None => None,
        };
        t.docs.push(DocRecords {
            nps: nps_rec,
            lps: lps_rec,
            leaves: leaves_rec,
            orig_map: orig_rec,
            n_orig: tree.len() as u32,
        });
        self.build_stats.sequences += 1;
        self.build_stats.total_seq_len += seq.len() as u64;
        Ok(self.doc_base + local)
    }

    fn read_trie_node(&self, left: u64) -> Result<TrieNodeEntry> {
        let v = self
            .tree()?
            .trie_nodes
            .get(&left.to_be_bytes())?
            .ok_or_else(|| IndexError::Unsupported(format!("trie node {left} missing")))?;
        Ok(TrieNodeEntry {
            left,
            right: u64::from_le_bytes(v[..8].try_into().unwrap()),
            frontier: u64::from_le_bytes(v[8..16].try_into().unwrap()),
            level: u32::from_le_bytes(v[16..20].try_into().unwrap()),
            sym: Sym(u32::from_le_bytes(v[20..24].try_into().unwrap())),
            fine_gap: u32::MAX,
        })
    }

    fn write_trie_node(&mut self, n: &TrieNodeEntry, fresh: bool) -> Result<()> {
        let t = self.tree_mut()?;
        if !fresh {
            t.trie_nodes.delete(&n.left.to_be_bytes(), None)?;
        }
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&n.right.to_le_bytes());
        v.extend_from_slice(&n.frontier.to_le_bytes());
        v.extend_from_slice(&n.level.to_le_bytes());
        v.extend_from_slice(&n.sym.0.to_le_bytes());
        t.trie_nodes.insert(&n.left.to_be_bytes(), &v)?;
        Ok(())
    }

    /// The direct child of `cur` labeled `sym` (a trie node at exactly
    /// `level` inside `cur`'s scope), if present.
    fn find_child(
        &self,
        cur: &TrieNodeEntry,
        sym: Sym,
        level: u32,
    ) -> Result<Option<TrieNodeEntry>> {
        let lo = tag_key(sym, cur.left);
        let hi = tag_key(sym, cur.right);
        let mut found = None;
        self.tree()?
            .tag_index
            .scan(Bound::Excluded(&lo), Bound::Included(&hi), |k, v| {
                let l = u32::from_le_bytes(v[8..12].try_into().unwrap());
                if l != level {
                    return true;
                }
                found = Some(TrieNodeEntry {
                    left: u64::from_be_bytes(k[4..12].try_into().unwrap()),
                    right: u64::from_le_bytes(v[..8].try_into().unwrap()),
                    frontier: 0, // filled below
                    level,
                    sym,
                    fine_gap: u32::from_le_bytes(v[12..16].try_into().unwrap()),
                });
                false
            })?;
        match found {
            None => Ok(None),
            Some(mut n) => {
                let stored = self.read_trie_node(n.left)?;
                n.frontier = stored.frontier;
                Ok(Some(n))
            }
        }
    }

    /// Replaces a tag-index entry's value (fine-gap refresh).
    fn rewrite_tag_value(
        &mut self,
        sym: Sym,
        left: u64,
        right: u64,
        level: u32,
        fine: u32,
    ) -> Result<()> {
        let key = tag_key(sym, left);
        let t = self.tree_mut()?;
        t.tag_index.delete(&key, None)?;
        let mut val = Vec::with_capacity(16);
        val.extend_from_slice(&right.to_le_bytes());
        val.extend_from_slice(&level.to_le_bytes());
        val.extend_from_slice(&fine.to_le_bytes());
        t.tag_index.insert(&key, &val)?;
        Ok(())
    }

    /// This index's sequence flavor.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Build-time statistics (trie sharing, underflows, ...).
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The per-label MaxGap table (§5.4).
    pub fn maxgap(&self) -> &MaxGapTable {
        &self.maxgap
    }

    /// Number of documents indexed *in this tier*.
    pub fn doc_count(&self) -> usize {
        match &self.backing {
            Backing::Tree(t) => t.docs.len(),
            Backing::Seg(r) => r.n_docs() as usize,
        }
    }

    /// First global document id of this tier.
    pub fn doc_base(&self) -> DocId {
        self.doc_base
    }

    /// Re-bases this tier's document ids (engine tiering: the mutable
    /// tier starts where the segments end).
    pub(crate) fn set_doc_base(&mut self, base: DocId) {
        self.doc_base = base;
    }

    /// The dummy label used for extended sequences.
    pub(crate) fn dummy_sym(&self) -> Sym {
        self.dummy
    }

    /// The childless-label set (§4.4 leaf-extended-plan gate).
    pub(crate) fn childless_set(&self) -> &std::collections::HashSet<Sym> {
        &self.childless
    }

    /// The segment reader behind a segment-backed tier, if any.
    pub(crate) fn segment(&self) -> Option<&Arc<SegmentReader>> {
        match &self.backing {
            Backing::Seg(r) => Some(r),
            Backing::Tree(_) => None,
        }
    }

    /// Executes an ordered twig query with default options.
    pub fn execute(&self, q: &TwigQuery) -> Result<(Vec<TwigMatch>, QueryStats)> {
        self.execute_opts(q, &ExecOpts::default())
    }

    /// Describes how this index would run `q`: the plan flavor, the
    /// query's Prüfer sequences, edge constraints, and the Theorem 4
    /// pruning rules.
    pub fn explain(&self, q: &TwigQuery, syms: &prix_xml::SymbolTable) -> Result<String> {
        let plan = self.plan(q)?;
        let mut out = String::new();
        let flavor = match (&self.kind, plan.ext_of_orig.is_some()) {
            (IndexKind::Regular, true) => "RPIndex, leaf-extended query (§4.4 fast path)",
            (IndexKind::Regular, false) => "RPIndex, exact plan with leaf-matching phase",
            (IndexKind::Extended, _) => "EPIndex, extended query (§5.6)",
        };
        out.push_str(&format!("plan: {flavor}\n"));
        let lps: Vec<&str> = plan.seq.lps.iter().map(|&x| syms.name(x)).collect();
        out.push_str(&format!("LPS(Q) = {}\n", lps.join(" ")));
        out.push_str(&format!(
            "NPS(Q) = {}\n",
            plan.seq
                .nps
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ));
        let edge_str: Vec<String> = plan
            .edges
            .iter()
            .map(|e| match e {
                EdgeKind::Child => "/".to_string(),
                EdgeKind::Descendant => "//".to_string(),
                EdgeKind::Exactly(k) => format!("*{{{k}}}"),
            })
            .collect();
        out.push_str(&format!("edges  = {}\n", edge_str.join(" ")));
        out.push_str("executor: streaming filter -> refine -> project (limit pushdown)\n");
        let rules = self.gap_rules(&plan);
        let bounded = rules.iter().flatten().count();
        out.push_str(&format!(
            "MaxGap rules: {bounded} of {} adjacent pairs bounded",
            rules.len()
        ));
        for (k, r) in rules.iter().enumerate() {
            if let Some(rule) = r {
                out.push_str(&format!(
                    "\n  positions {}->{}: distance <= min({}, per-node) + {}",
                    k + 1,
                    k + 2,
                    rule.global,
                    rule.extra
                ));
            }
        }
        out.push('\n');
        Ok(out)
    }

    /// Executes an ordered twig query.
    ///
    /// Without a limit this preserves the historical contract exactly:
    /// all candidates are drained from the [`crate::exec::CandidateCursor`],
    /// sorted by `(doc, positions)` so per-document record loads batch
    /// up, then refined in that order — results, ordering, and every
    /// [`QueryStats`] counter are identical to the pre-streaming
    /// executor. With `opts.limit` set, execution goes through
    /// [`PrixIndex::execute_stream`] and stops pulling at the limit, so
    /// matches arrive in trie-traversal order and the filter counters
    /// reflect only the work actually performed.
    pub fn execute_opts(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
    ) -> Result<(Vec<TwigMatch>, QueryStats)> {
        self.execute_opts_pred(q, opts, None)
    }

    /// [`PrixIndex::execute_opts`] with a value-predicate evaluator:
    /// candidates from documents the valix pre-filter rules out are
    /// skipped before refinement, and every emitted match passes the
    /// evaluator's positional verification — results are exactly the
    /// predicate-free results post-filtered.
    pub fn execute_opts_pred(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        pred: Option<&crate::valix::PredEval>,
    ) -> Result<(Vec<TwigMatch>, QueryStats)> {
        if opts.limit.is_some() {
            let mut stream = self.execute_stream_pred(q, opts, pred)?;
            let mut matches = Vec::new();
            while let Some(m) = stream.next_match()? {
                matches.push(m);
            }
            return Ok((matches, stream.stats()));
        }

        let plan = self.plan(q)?;
        if plan.seq.is_empty() {
            return Err(IndexError::Unsupported(
                "query has an empty Prüfer sequence (single-node query on RPIndex)".into(),
            ));
        }

        // Phase 1: filtering by subsequence matching (Algorithm 1),
        // fully drained.
        let rules = if opts.use_maxgap {
            self.gap_rules(&plan)
        } else {
            vec![None; plan.seq.len().saturating_sub(1)]
        };
        let mut cursor = crate::exec::CandidateCursor::new(
            self,
            plan.seq.lps.clone(),
            rules,
            opts.use_fine_maxgap,
        );
        let mut pred_skipped = 0u64;
        let mut candidates: Vec<(DocId, Vec<PostNum>)> = Vec::new();
        while let Some((doc, pos)) = cursor.next()? {
            // Predicate pre-filter: documents the valix probe ruled out
            // cannot pass the positional verification below.
            if let Some(p) = pred {
                if !p.allows(doc) {
                    pred_skipped += 1;
                    continue;
                }
            }
            candidates.push((doc, pos.to_vec()));
        }
        let mut stats = cursor.stats();
        stats.candidates = candidates.len() as u64;
        stats.pred_skipped = pred_skipped;

        // Phase 2: refinement (Algorithm 2), grouped per document so the
        // NPS / LPS / leaf records are fetched once.
        candidates.sort();
        let mut stage = crate::exec::RefineStage::new(self, pred.is_some());
        let mut matches: Vec<TwigMatch> = Vec::new();
        for (doc, positions) in &candidates {
            if let Some(m) = stage.process(&plan, q.is_absolute(), *doc, positions)? {
                if let Some(p) = pred {
                    let data = stage.doc_data(*doc).expect("process() cached this doc");
                    if !p.matches(data, &m.embedding) {
                        stats.pred_rejected += 1;
                        continue;
                    }
                }
                matches.push(m);
            }
        }
        stats.refined = stage.refined;
        stats.refine_time = stage.refine_time;
        stats.project_time = stage.project_time;
        stats.matches = matches.len() as u64;
        Ok((matches, stats))
    }

    /// Executes an ordered twig query as a pull-based stream: one
    /// [`crate::exec::MatchStream::next_match`] call pulls exactly as
    /// much trie traversal and refinement as needed to produce the next
    /// distinct match. Dropping the stream (or hitting `opts.limit`)
    /// abandons the remaining trie descent — that is the LIMIT
    /// pushdown. Matches arrive in trie-traversal (document-filter)
    /// order.
    pub fn execute_stream(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
    ) -> Result<crate::exec::MatchStream<'_>> {
        self.execute_stream_pred(q, opts, None)
    }

    /// [`PrixIndex::execute_stream`] with a value-predicate evaluator
    /// (see [`PrixIndex::execute_opts_pred`]). The evaluator must
    /// outlive the stream.
    pub fn execute_stream_pred<'a>(
        &'a self,
        q: &TwigQuery,
        opts: &ExecOpts,
        pred: Option<&'a crate::valix::PredEval>,
    ) -> Result<crate::exec::MatchStream<'a>> {
        let plan = self.plan(q)?;
        if plan.seq.is_empty() {
            return Err(IndexError::Unsupported(
                "query has an empty Prüfer sequence (single-node query on RPIndex)".into(),
            ));
        }
        Ok(crate::exec::MatchStream::new(
            self,
            plan,
            q.is_absolute(),
            opts,
            pred,
        ))
    }

    /// Prepares the sequences / edges / leaves for this index kind.
    pub(crate) fn plan(&self, q: &TwigQuery) -> Result<QueryPlan> {
        match self.kind {
            IndexKind::Regular => {
                if q.needs_extended() {
                    return Err(IndexError::Unsupported(
                        "query requires the EPIndex (values, single node, or wildcard above a leaf)"
                            .into(),
                    ));
                }
                // §4.4 special leaf treatment: when no query-leaf label
                // ever occurs childless in the data, extending the
                // *query* with dummy leaf children is exact — every
                // query label then participates in subsequence matching,
                // and the LPS starts with the selective deep labels
                // (this is what makes the paper's Q2/Q7/Q8 fast).
                let leaf_ok = q.leaves().iter().all(|(s, _)| !self.childless.contains(s));
                if leaf_ok {
                    let eq = q.extended(self.dummy);
                    let mut ext_of_orig = vec![0 as PostNum; q.tree().len()];
                    for (i, &orig) in eq.ext.orig_post.iter().enumerate() {
                        if orig != 0 {
                            ext_of_orig[(orig - 1) as usize] = (i + 1) as PostNum;
                        }
                    }
                    Ok(QueryPlan {
                        seq: eq.seq,
                        edges: eq.edges,
                        leaves: Vec::new(),
                        qtree: eq.ext.tree,
                        ext_of_orig: Some(ext_of_orig),
                        n_orig_query: q.tree().len() as u32,
                        skip_leaf: true,
                    })
                } else {
                    Ok(QueryPlan {
                        seq: q.prufer(),
                        edges: q.edges_by_post(),
                        leaves: q.leaves(),
                        qtree: q.tree().clone(),
                        ext_of_orig: None,
                        n_orig_query: q.tree().len() as u32,
                        skip_leaf: false,
                    })
                }
            }
            IndexKind::Extended => {
                let eq = q.extended(self.dummy);
                // Invert ext -> orig into orig -> ext.
                let mut ext_of_orig = vec![0 as PostNum; q.tree().len()];
                for (i, &orig) in eq.ext.orig_post.iter().enumerate() {
                    if orig != 0 {
                        ext_of_orig[(orig - 1) as usize] = (i + 1) as PostNum;
                    }
                }
                Ok(QueryPlan {
                    seq: eq.seq,
                    edges: eq.edges,
                    leaves: Vec::new(),
                    qtree: eq.ext.tree,
                    ext_of_orig: Some(ext_of_orig),
                    n_orig_query: q.tree().len() as u32,
                    skip_leaf: true,
                })
            }
        }
    }

    /// Theorem 4 pruning rules: `rules[k]` bounds `S[k+1] - S[k]` as
    /// `min(global MaxGap(A), per-node fine gap) + extra`.
    ///
    /// All cases require the participating query edges to be `/` edges —
    /// wildcard edges stretch the data-side distance arbitrarily, so no
    /// bound applies (see DESIGN.md).
    pub(crate) fn gap_rules(&self, plan: &QueryPlan) -> Vec<Option<GapRule>> {
        let len = plan.seq.len();
        let mut rules = vec![None; len.saturating_sub(1)];
        for k in 1..len {
            // 1-based pair (k, k+1): nodes k and k+1 of the query.
            let a = plan.seq.nps[k - 1]; // parent of node k ("A")
            let b = plan.seq.nps[k]; // parent of node k + 1 ("B")
            let mg = self.maxgap.get(plan.seq.lps[k - 1]) as u64;
            let edge_k = plan.edges[k - 1];
            let edge_k1 = plan.edges[k];
            if edge_k != EdgeKind::Child {
                continue;
            }
            let rule = if (k + 1) as PostNum == a && edge_k1 == EdgeKind::Child {
                // Node A is a child of node B in Q (node k+1 IS A).
                Some(GapRule {
                    global: mg,
                    extra: 1,
                })
            } else if a == b && edge_k1 == EdgeKind::Child {
                // Nodes k and k+1 are siblings under A.
                Some(GapRule {
                    global: mg,
                    extra: 0,
                })
            } else if edge_k1 == EdgeKind::Child
                && plan
                    .qtree
                    .is_ancestor(plan.qtree.node_at(a), plan.qtree.node_at(b))
            {
                // Node A is an ancestor of node B in Q.
                Some(GapRule {
                    global: mg,
                    extra: 0,
                })
            } else {
                None
            };
            rules[k - 1] = rule;
        }
        rules
    }

    /// One Algorithm 1 range query against the Trie-Symbol index of
    /// `sym`, open-left: descendants of the current trie node have
    /// `left` in `(ql, qr]`. Returns `(left, right, level, fine_gap)`
    /// rows in key order. The [`crate::exec::CandidateCursor`] drives
    /// the trie descent one of these scans at a time.
    pub(crate) fn scan_tag_range(
        &self,
        sym: Sym,
        ql: u64,
        qr: u64,
    ) -> Result<Vec<(u64, u64, u32, u32)>> {
        match &self.backing {
            Backing::Tree(t) => {
                let lo = tag_key(sym, ql);
                let hi = tag_key(sym, qr);
                let mut hits: Vec<(u64, u64, u32, u32)> = Vec::new();
                t.tag_index
                    .scan(Bound::Excluded(&lo), Bound::Included(&hi), |k, v| {
                        let left = u64::from_be_bytes(k[4..12].try_into().unwrap());
                        let right = u64::from_le_bytes(v[..8].try_into().unwrap());
                        let level = u32::from_le_bytes(v[8..12].try_into().unwrap());
                        let fine = u32::from_le_bytes(v[12..16].try_into().unwrap());
                        hits.push((left, right, level, fine));
                        true
                    })?;
                Ok(hits)
            }
            Backing::Seg(r) => Ok(r.scan_tag_range(sym.0, ql, qr)?),
        }
    }

    /// Appends every document whose LPS ends on a trie node with `left`
    /// in `[left, right]` (the Docid-index scan at the last LPS
    /// position of Algorithm 1).
    pub(crate) fn scan_docids(
        &self,
        left: u64,
        right: u64,
        out: &mut std::collections::VecDeque<DocId>,
    ) -> Result<()> {
        let base = self.doc_base;
        match &self.backing {
            Backing::Tree(t) => {
                let lo = left.to_be_bytes();
                let hi = right.to_be_bytes();
                t.docid_index
                    .scan(Bound::Included(&lo), Bound::Included(&hi), |_, v| {
                        out.push_back(base + u32::from_le_bytes(v.try_into().unwrap()));
                        true
                    })?;
            }
            Backing::Seg(r) => {
                r.scan_docids(left, right, &mut |d| out.push_back(base + d))?;
            }
        }
        Ok(())
    }

    /// Reads a document's refinement data. The LPS and leaf list are
    /// only needed by the leaf-matching phase; extended-query plans skip
    /// it, so those records (and their pages) are never touched.
    pub(crate) fn load_doc(&self, doc: DocId, need_leaf_data: bool) -> Result<DocData> {
        debug_assert!(doc >= self.doc_base, "document id below this tier's base");
        let local = doc - self.doc_base;
        match &self.backing {
            Backing::Tree(t) => {
                let rec = &t.docs[local as usize];
                let nps = decode_u32s(&t.store.read(rec.nps)?);
                let (lps, leaves) = if need_leaf_data {
                    let lps = decode_u32s(&t.store.read(rec.lps)?)
                        .into_iter()
                        .map(Sym)
                        .collect();
                    let leaves_raw = decode_u32s(&t.store.read(rec.leaves)?);
                    let leaves = leaves_raw
                        .chunks_exact(2)
                        .map(|c| (Sym(c[0]), c[1]))
                        .collect();
                    (lps, leaves)
                } else {
                    (Vec::new(), Vec::new())
                };
                let orig_map = match rec.orig_map {
                    Some(r) => Some(decode_u32s(&t.store.read(r)?)),
                    None => None,
                };
                Ok(DocData {
                    nps,
                    lps,
                    leaves,
                    orig_map,
                    n_orig: rec.n_orig,
                })
            }
            Backing::Seg(r) => Ok(decode_doc_record(&r.record(local)?, need_leaf_data)),
        }
    }
}

/// A row of the trie-node table (allocation state for incremental
/// inserts).
#[derive(Debug, Clone, Copy)]
struct TrieNodeEntry {
    left: u64,
    right: u64,
    frontier: u64,
    level: u32,
    sym: Sym,
    fine_gap: u32,
}

/// One Theorem 4 pruning rule between adjacent LPS positions: allowed
/// distance = `min(global, per-node fine gap) + extra`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GapRule {
    pub(crate) global: u64,
    pub(crate) extra: u64,
}

/// The error for a virtual-trie scope that cannot fit a new suffix.
fn scope_underflow(level: u32, available: u64, need: u64) -> IndexError {
    IndexError::Unsupported(format!(
        "virtual-trie scope underflow at level {level}: {available} positions left \
         for a suffix of {need}; rebuild with dynamic labeling"
    ))
}

/// Postorder gap between the first and last children per node
/// (`out[post - 1]`; 0 for nodes with ≤ 1 child) — Definition 5 at
/// single-node granularity.
pub(crate) fn node_gaps(tree: &XmlTree) -> Vec<u32> {
    let mut out = vec![0u32; tree.len()];
    for node in tree.nodes() {
        let kids = tree.children(node);
        if kids.len() >= 2 {
            let first = tree.postorder(kids[0]);
            let last = tree.postorder(kids[kids.len() - 1]);
            out[(tree.postorder(node) - 1) as usize] = last - first;
        }
    }
    out
}

/// Per-LPS-position gaps: `gaps[i]` = gap of the parent node recorded
/// at position `i`.
pub(crate) fn position_gaps(nps: &[PostNum], node_gaps: &[u32]) -> Vec<u32> {
    nps.iter().map(|&p| node_gaps[(p - 1) as usize]).collect()
}

/// Tiny byte codec for index metadata persistence.
mod codec {
    pub struct Writer(pub Vec<u8>);
    impl Writer {
        pub fn new() -> Self {
            Writer(Vec::new())
        }
        pub fn u8(&mut self, v: u8) {
            self.0.push(v);
        }
        pub fn u32(&mut self, v: u32) {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
        pub fn u64(&mut self, v: u64) {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
    }
    pub struct Reader<'a>(pub &'a [u8]);
    impl<'a> Reader<'a> {
        pub fn u8(&mut self) -> u8 {
            let v = self.0[0];
            self.0 = &self.0[1..];
            v
        }
        pub fn u32(&mut self) -> u32 {
            let v = u32::from_le_bytes(self.0[..4].try_into().unwrap());
            self.0 = &self.0[4..];
            v
        }
        pub fn u64(&mut self) -> u64 {
            let v = u64::from_le_bytes(self.0[..8].try_into().unwrap());
            self.0 = &self.0[8..];
            v
        }
    }
}

impl PrixIndex {
    /// Serializes the index metadata (roots, per-document record ids,
    /// MaxGap table, childless-label set) into the record store and
    /// returns the metadata record's id. Together with a flushed buffer
    /// pool this makes the index reopenable via [`PrixIndex::load`].
    ///
    /// Saving an index whose metadata has not changed since the last
    /// save returns the previous record id instead of appending a
    /// duplicate, so repeated saves do not leak store space.
    pub fn save(&mut self) -> Result<RecordId> {
        use codec::Writer;
        let mut w = Writer::new();
        w.u8(match self.kind {
            IndexKind::Regular => 0,
            IndexKind::Extended => 1,
        });
        w.u32(self.dummy.0);
        {
            let t = self.tree()?;
            w.u64(t.tag_index.root());
            w.u64(t.docid_index.root());
            w.u64(t.trie_nodes.root());
            w.u32(t.docs.len() as u32);
            for d in &t.docs {
                w.u64(d.nps.raw());
                w.u64(d.lps.raw());
                w.u64(d.leaves.raw());
                w.u64(d.orig_map.map_or(0, |r| r.raw()));
                w.u32(d.n_orig);
            }
        }
        let gaps: Vec<(Sym, PostNum)> = self.maxgap.entries().collect();
        w.u32(gaps.len() as u32);
        for (sym, gap) in gaps {
            w.u32(sym.0);
            w.u32(gap);
        }
        w.u32(self.childless.len() as u32);
        for s in &self.childless {
            w.u32(s.0);
        }
        w.u64(self.build_stats.trie_nodes as u64);
        w.u64(self.build_stats.trie_paths as u64);
        w.u64(self.build_stats.sequences);
        w.u64(self.build_stats.max_path_sharing);
        w.u64(self.build_stats.underflows);
        w.u64(self.build_stats.total_seq_len);
        let t = self.tree_mut()?;
        if let Some((id, bytes)) = &t.saved_meta {
            if *bytes == w.0 {
                return Ok(*id);
            }
        }
        let id = t.store.append(&w.0)?;
        t.saved_meta = Some((id, w.0));
        Ok(id)
    }

    /// Reopens an index previously described by [`PrixIndex::save`].
    pub fn load(pool: Arc<BufferPool>, meta: RecordId) -> Result<Self> {
        use codec::Reader;
        let store = RecordStore::open(Arc::clone(&pool))?;
        let bytes = store.read(meta)?;
        let mut r = Reader(&bytes);
        let kind = match r.u8() {
            0 => IndexKind::Regular,
            _ => IndexKind::Extended,
        };
        let dummy = Sym(r.u32());
        let tag_root = r.u64();
        let docid_root = r.u64();
        let trie_nodes_root = r.u64();
        let n_docs = r.u32() as usize;
        let mut docs = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            let nps = RecordId::from_raw(r.u64());
            let lps = RecordId::from_raw(r.u64());
            let leaves = RecordId::from_raw(r.u64());
            let om = r.u64();
            let n_orig = r.u32();
            docs.push(DocRecords {
                nps,
                lps,
                leaves,
                orig_map: (om != 0).then(|| RecordId::from_raw(om)),
                n_orig,
            });
        }
        let n_gaps = r.u32() as usize;
        let maxgap = MaxGapTable::from_entries((0..n_gaps).map(|_| {
            let sym = Sym(r.u32());
            let gap = r.u32();
            (sym, gap)
        }));
        let n_childless = r.u32() as usize;
        let childless = (0..n_childless).map(|_| Sym(r.u32())).collect();
        let build_stats = BuildStats {
            trie_nodes: r.u64() as usize,
            trie_paths: r.u64() as usize,
            sequences: r.u64(),
            max_path_sharing: r.u64(),
            underflows: r.u64(),
            total_seq_len: r.u64(),
        };
        Ok(PrixIndex {
            kind,
            maxgap,
            dummy,
            build_stats,
            doc_base: 0,
            childless,
            backing: Backing::Tree(TreeBacking {
                tag_index: BPlusTree::open(Arc::clone(&pool), tag_root),
                docid_index: BPlusTree::open(Arc::clone(&pool), docid_root),
                trie_nodes: BPlusTree::open(Arc::clone(&pool), trie_nodes_root),
                docs,
                store,
                saved_meta: Some((meta, bytes)),
            }),
        })
    }

    /// Opens an immutable segment as an index tier. The tier's
    /// `doc_base` comes from the segment header; MaxGap table,
    /// childless set, and build stats come from the segment's metadata
    /// blob (see [`encode_seg_index_meta`]).
    pub fn from_segment(reader: Arc<SegmentReader>) -> Result<Self> {
        use codec::Reader;
        let bytes = reader.meta()?;
        let mut r = Reader(&bytes);
        let kind = match r.u8() {
            0 => IndexKind::Regular,
            _ => IndexKind::Extended,
        };
        if (reader.kind() == SEG_KIND_RP) != matches!(kind, IndexKind::Regular) {
            return Err(IndexError::Unsupported(
                "segment header kind disagrees with its index metadata".into(),
            ));
        }
        let dummy = Sym(r.u32());
        let n_gaps = r.u32() as usize;
        let maxgap = MaxGapTable::from_entries((0..n_gaps).map(|_| {
            let sym = Sym(r.u32());
            let gap = r.u32();
            (sym, gap)
        }));
        let n_childless = r.u32() as usize;
        let childless = (0..n_childless).map(|_| Sym(r.u32())).collect();
        let build_stats = BuildStats {
            trie_nodes: r.u64() as usize,
            trie_paths: r.u64() as usize,
            sequences: r.u64(),
            max_path_sharing: r.u64(),
            underflows: r.u64(),
            total_seq_len: r.u64(),
        };
        Ok(PrixIndex {
            kind,
            maxgap,
            dummy,
            build_stats,
            doc_base: reader.doc_base(),
            childless,
            backing: Backing::Seg(reader),
        })
    }
}

/// Encodes one document's refinement record for an immutable segment:
/// everything [`PrixIndex::load_doc`] serves (NPS, LPS, leaf list, the
/// ext→orig map for EPIndex tiers, and the original node count), in one
/// contiguous blob the segment's record section stores verbatim.
pub(crate) fn encode_doc_record(
    nps: &[PostNum],
    lps: &[Sym],
    leaves: &[(Sym, PostNum)],
    orig_map: Option<&[PostNum]>,
    n_orig: u32,
) -> Vec<u8> {
    debug_assert_eq!(nps.len(), lps.len());
    let mut w = codec::Writer::new();
    w.u32(nps.len() as u32);
    for &v in nps {
        w.u32(v);
    }
    for &s in lps {
        w.u32(s.0);
    }
    w.u32(leaves.len() as u32);
    for &(s, p) in leaves {
        w.u32(s.0);
        w.u32(p);
    }
    match orig_map {
        Some(m) => {
            w.u32(m.len() as u32);
            for &v in m {
                w.u32(v);
            }
        }
        None => w.u32(0),
    }
    w.u32(n_orig);
    w.0
}

/// Inverse of [`encode_doc_record`]. With `need_leaf_data` unset the
/// LPS and leaf list are skipped without allocating, mirroring the
/// record-store fast path.
fn decode_doc_record(bytes: &[u8], need_leaf_data: bool) -> DocData {
    let mut r = codec::Reader(bytes);
    let n = r.u32() as usize;
    let nps: Vec<PostNum> = (0..n).map(|_| r.u32()).collect();
    let (lps, leaves): (Vec<Sym>, Vec<(Sym, PostNum)>) = if need_leaf_data {
        let lps = (0..n).map(|_| Sym(r.u32())).collect();
        let nl = r.u32() as usize;
        let leaves = (0..nl)
            .map(|_| {
                let s = Sym(r.u32());
                let p = r.u32();
                (s, p)
            })
            .collect();
        (lps, leaves)
    } else {
        for _ in 0..n {
            r.u32();
        }
        let nl = r.u32() as usize;
        for _ in 0..(2 * nl) {
            r.u32();
        }
        (Vec::new(), Vec::new())
    };
    let n_map = r.u32() as usize;
    let orig_map = (n_map != 0).then(|| (0..n_map).map(|_| r.u32()).collect());
    let n_orig = r.u32();
    DocData {
        nps,
        lps,
        leaves,
        orig_map,
        n_orig,
    }
}

/// Encodes the per-tier index metadata a segment carries in its meta
/// blob: kind, dummy symbol, MaxGap table, childless-label set, and
/// build statistics. Map-shaped fields are **sorted** so the blob — and
/// therefore the whole segment file — is byte-deterministic: bulk
/// loading a collection and compacting the same documents out of the
/// mutable tier produce identical files.
pub(crate) fn encode_seg_index_meta(
    kind: IndexKind,
    dummy: Sym,
    maxgap: &MaxGapTable,
    childless: &std::collections::HashSet<Sym>,
    stats: &BuildStats,
) -> Vec<u8> {
    let mut w = codec::Writer::new();
    w.u8(match kind {
        IndexKind::Regular => 0,
        IndexKind::Extended => 1,
    });
    w.u32(dummy.0);
    let mut gaps: Vec<(Sym, PostNum)> = maxgap.entries().collect();
    gaps.sort_by_key(|&(s, _)| s.0);
    w.u32(gaps.len() as u32);
    for (sym, gap) in gaps {
        w.u32(sym.0);
        w.u32(gap);
    }
    let mut cl: Vec<u32> = childless.iter().map(|s| s.0).collect();
    cl.sort_unstable();
    w.u32(cl.len() as u32);
    for s in cl {
        w.u32(s);
    }
    w.u64(stats.trie_nodes as u64);
    w.u64(stats.trie_paths as u64);
    w.u64(stats.sequences);
    w.u64(stats.max_path_sharing);
    w.u64(stats.underflows);
    w.u64(stats.total_seq_len);
    w.0
}

pub(crate) struct QueryPlan {
    pub(crate) seq: PruferSeq,
    pub(crate) edges: Vec<EdgeKind>,
    pub(crate) leaves: Vec<(Sym, PostNum)>,
    pub(crate) qtree: XmlTree,
    /// For extended-query plans: `ext_of_orig[orig - 1]` = extended
    /// postorder of the original query node.
    pub(crate) ext_of_orig: Option<Vec<PostNum>>,
    pub(crate) n_orig_query: u32,
    /// Leaf-matching phase can be skipped (every query label already
    /// participated in subsequence matching).
    pub(crate) skip_leaf: bool,
}

/// Projects an embedding in plan numbering (possibly extended, possibly
/// over the extended document) down to original query and document
/// postorder numbers. Returns `None` if any original query node lands on
/// a document dummy (cannot happen for well-formed plans; defensive).
pub(crate) fn project_embedding(
    plan: &QueryPlan,
    data: &DocData,
    img: &[PostNum],
) -> Option<Vec<PostNum>> {
    let m = plan.n_orig_query as usize;
    let mut out = Vec::with_capacity(m);
    match (&plan.ext_of_orig, &data.orig_map) {
        (None, _) => {
            debug_assert!(data.orig_map.is_none());
            out.extend_from_slice(img);
        }
        // Extended query over an extended document (EPIndex).
        (Some(map), Some(doc_map)) => {
            for orig_q in 1..=m {
                let ext_q = map[orig_q - 1];
                let ext_img = img[(ext_q - 1) as usize];
                let orig_img = doc_map[(ext_img - 1) as usize];
                if orig_img == 0 {
                    return None; // image is a dummy: not a real embedding
                }
                out.push(orig_img);
            }
        }
        // Extended query over a *regular* document (§4.4 leaf-extended
        // plan): images are already original postorder numbers.
        (Some(map), None) => {
            for orig_q in 1..=m {
                let ext_q = map[orig_q - 1];
                out.push(img[(ext_q - 1) as usize]);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_storage::Pager;

    fn small_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml("<dblp><inproceedings><author>Jim Gray</author><year>1990</year></inproceedings></dblp>")
            .unwrap();
        c.add_xml(
            "<dblp><inproceedings><author>Ann</author><year>1990</year></inproceedings></dblp>",
        )
        .unwrap();
        c.add_xml("<dblp><article><author>Jim Gray</author><year>1991</year></article></dblp>")
            .unwrap();
        c.add_xml("<dblp><www><editor>E</editor><url>u</url></www></dblp>")
            .unwrap();
        c
    }

    fn build_index(c: &mut Collection, kind: IndexKind) -> PrixIndex {
        let dummy = c.intern("\u{1}dummy");
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 256));
        PrixIndex::build(pool, c, kind, LabelingMode::Exact, dummy).unwrap()
    }

    #[test]
    fn value_query_finds_the_right_documents() {
        let mut c = small_collection();
        let idx = build_index(&mut c, IndexKind::Extended);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath(
            r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#,
            &mut syms,
        )
        .unwrap();
        let (matches, stats) = idx.execute(&q).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].doc, 0);
        assert!(stats.range_queries > 0);
        assert_eq!(stats.matches, 1);
    }

    #[test]
    fn structural_query_on_regular_index() {
        let mut c = small_collection();
        let idx = build_index(&mut c, IndexKind::Regular);
        let mut syms = c.symbols().clone();
        // //www[./editor]/url — leaves editor and url hang on '/' edges,
        // but they are leaves, so RP cannot verify their labels...
        // actually it can: via the leaf-matching phase. The query's
        // needs_extended is false only if all leaf edges are Child: here
        // they are.
        let q = crate::xpath::parse_xpath("//www[./editor]/url", &mut syms).unwrap();
        assert!(!q.needs_extended());
        let (matches, _) = idx.execute(&q).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].doc, 3);
    }

    #[test]
    fn regular_index_rejects_value_queries() {
        let mut c = small_collection();
        let idx = build_index(&mut c, IndexKind::Regular);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath(r#"//author[text()="Jim Gray"]"#, &mut syms).unwrap();
        assert!(matches!(idx.execute(&q), Err(IndexError::Unsupported(_))));
    }

    #[test]
    fn embeddings_point_at_real_nodes() {
        let mut c = small_collection();
        let idx = build_index(&mut c, IndexKind::Extended);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath(r#"//author[text()="Jim Gray"]"#, &mut syms).unwrap();
        let (matches, _) = idx.execute(&q).unwrap();
        assert_eq!(matches.len(), 2);
        for m in &matches {
            let tree = c.doc(m.doc);
            // Query postorder: "Jim Gray"=1, author=2.
            let author = syms.lookup("author").unwrap();
            let value = syms.lookup("Jim Gray").unwrap();
            assert_eq!(tree.label_at(m.embedding[1]), author);
            assert_eq!(tree.label_at(m.embedding[0]), value);
        }
    }

    #[test]
    fn wildcard_descendant_query() {
        let mut c = Collection::new();
        c.add_xml("<S><X><NP><SYM>s</SYM></NP></X></S>").unwrap();
        c.add_xml("<S><NP><SYM>s</SYM></NP></S>").unwrap();
        c.add_xml("<S><NP><X><SYM>s</SYM></X></NP></S>").unwrap();
        let idx = build_index(&mut c, IndexKind::Regular);
        let mut syms = c.symbols().clone();
        // //S//NP/SYM: SYM must be a child of NP, NP a descendant of S.
        let q = crate::xpath::parse_xpath("//S//NP/SYM", &mut syms).unwrap();
        let (matches, _) = idx.execute(&q).unwrap();
        let docs: Vec<DocId> = matches.iter().map(|m| m.doc).collect();
        assert_eq!(docs, vec![0, 1], "doc 2 has SYM under X, not under NP");
    }

    #[test]
    fn star_distance_query() {
        let mut c = Collection::new();
        c.add_xml("<a><m><b><x/></b></m></a>").unwrap(); // a/*/b: depth 2 ✓
        c.add_xml("<a><b><x/></b></a>").unwrap(); // depth 1 ✗
        c.add_xml("<a><m><n><b><x/></b></n></m></a>").unwrap(); // depth 3 ✗
        let idx = build_index(&mut c, IndexKind::Regular);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath("//a/*/b/x", &mut syms).unwrap();
        let (matches, _) = idx.execute(&q).unwrap();
        let docs: Vec<DocId> = matches.iter().map(|m| m.doc).collect();
        assert_eq!(docs, vec![0]);
    }

    #[test]
    fn absolute_query_pins_the_root() {
        let mut c = Collection::new();
        c.add_xml("<a><b><t>v</t></b></a>").unwrap();
        c.add_xml("<r><a><b><t>v</t></b></a></r>").unwrap();
        let idx = build_index(&mut c, IndexKind::Extended);
        let mut syms = c.symbols().clone();
        let q_rel = crate::xpath::parse_xpath("//a/b/t", &mut syms).unwrap();
        let (m_rel, _) = idx.execute(&q_rel).unwrap();
        assert_eq!(m_rel.len(), 2);
        let q_abs = crate::xpath::parse_xpath("/a/b/t", &mut syms).unwrap();
        let (m_abs, _) = idx.execute(&q_abs).unwrap();
        assert_eq!(m_abs.len(), 1);
        assert_eq!(m_abs[0].doc, 0);
    }

    #[test]
    fn maxgap_pruning_does_not_change_results() {
        let mut c = small_collection();
        let idx = build_index(&mut c, IndexKind::Extended);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath(
            r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#,
            &mut syms,
        )
        .unwrap();
        let (with, s_with) = idx.execute_opts(&q, &ExecOpts::new()).unwrap();
        let (without, s_without) = idx
            .execute_opts(&q, &ExecOpts::new().without_maxgap())
            .unwrap();
        assert_eq!(with, without, "pruning must be lossless (Theorem 4)");
        assert!(s_with.nodes_scanned <= s_without.nodes_scanned);
    }

    #[test]
    fn single_node_query_on_extended_index() {
        let mut c = small_collection();
        let idx = build_index(&mut c, IndexKind::Extended);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath("//editor", &mut syms).unwrap();
        let (matches, _) = idx.execute(&q).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].doc, 3);
    }

    #[test]
    fn duplicate_sequences_share_one_trie_path() {
        let mut c = Collection::new();
        for _ in 0..10 {
            c.add_xml("<a><b><c/></b></a>").unwrap();
        }
        let idx = build_index(&mut c, IndexKind::Regular);
        let st = idx.build_stats();
        assert_eq!(st.sequences, 10);
        assert_eq!(st.trie_paths, 1);
        assert_eq!(st.max_path_sharing, 10);
        // All ten docs match //a/b.
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath("//a/b/c", &mut syms).unwrap();
        let (matches, _) = idx.execute(&q).unwrap();
        assert_eq!(matches.len(), 10);
    }

    #[test]
    fn no_false_alarms_on_split_twigs() {
        // The ViST false-alarm scenario of Figure 1(b): a query twig
        // whose branches appear in the document but under *different*
        // parents must not match.
        let mut c = Collection::new();
        // Doc1: P(Q, R) — the twig is present.
        c.add_xml("<P><Q><x/></Q><R><y/></R></P>").unwrap();
        // Doc2: P(Q), P(R) under different P instances.
        c.add_xml("<root><P><Q><x/></Q></P><P><R><y/></R></P></root>")
            .unwrap();
        let idx = build_index(&mut c, IndexKind::Regular);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath("//P[./Q]/R", &mut syms).unwrap();
        let (matches, _) = idx.execute(&q).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].doc, 0, "doc 1 would be a ViST false alarm");
    }

    #[test]
    fn fine_maxgap_prunes_at_least_as_much_and_is_lossless() {
        // Data where the *global* MaxGap of a label is inflated by one
        // wide node, while most occurrences are narrow: the per-node
        // fine gaps (§5.4) prune candidates the global bound keeps.
        let mut c = Collection::new();
        // One wide `a` (many children) inflates MaxGap(a)...
        c.add_xml("<a><b><v/></b><x><v/></x><x><v/></x><x><v/></x><x><v/></x><c><v/></c></a>")
            .unwrap();
        // ...while many narrow `a`s are where the query misses.
        for _ in 0..30 {
            c.add_xml("<root><a><b><v/></b></a><junk><c><v/></c></junk></root>")
                .unwrap();
        }
        let idx = build_index(&mut c, IndexKind::Regular);
        let mut syms = c.symbols().clone();
        let q = crate::xpath::parse_xpath("//a[./b]/c", &mut syms).unwrap();
        let fine = idx.execute_opts(&q, &ExecOpts::new()).unwrap();
        let coarse = idx
            .execute_opts(&q, &ExecOpts::new().without_fine_maxgap())
            .unwrap();
        assert_eq!(fine.0, coarse.0, "fine pruning must be lossless");
        assert_eq!(fine.0.len(), 1, "only the wide document matches");
        assert!(
            fine.1.maxgap_pruned >= coarse.1.maxgap_pruned,
            "fine gaps prune at least as much ({} vs {})",
            fine.1.maxgap_pruned,
            coarse.1.maxgap_pruned
        );
    }
}
