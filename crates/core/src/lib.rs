//! The PRIX system (paper §3, §5): indexing XML document collections by
//! Prüfer sequences and answering twig queries by subsequence matching
//! plus refinement.
//!
//! The pipeline mirrors Figure 3 of the paper:
//!
//! ```text
//!  indexing                       query processing
//!  ────────                       ────────────────
//!  XML docs ──► Prüfer seqs       twig ──► Prüfer seq
//!       │             │             │
//!       ▼             ▼             ▼
//!  NPS + leaf     virtual trie    filtering by subsequence matching
//!  records        (B⁺-trees)      (Algorithm 1 + MaxGap pruning)
//!                                   │
//!                                   ▼
//!                                 refinement: connectedness,
//!                                 gap/frequency consistency, leaves
//!                                 (Algorithm 2)
//! ```
//!
//! Main types:
//!
//! * [`TwigQuery`] / [`parse_xpath`] — query twigs with `/`, `//`, `*`
//!   edges and equality value predicates,
//! * [`PrixIndex`] — a disk-resident index (RPIndex or EPIndex, §5.6)
//!   over one collection,
//! * [`PrixEngine`] — owns both indexes and routes each query to the
//!   right one like the paper's query optimizer (§5.6),
//! * [`naive`] — a direct tree-matching oracle used to validate every
//!   engine (no false alarms, no false dismissals),
//! * [`scan`] — an index-free in-memory matcher built from the same
//!   filtering + refinement phases.

pub mod arrange;
pub mod engine;
pub mod exec;
pub mod index;
pub mod naive;
pub mod plan;
pub mod query;
pub mod scan;
pub mod segbuild;
pub mod snapshot;
pub mod trie;
pub mod valix;
pub mod xpath;

pub use engine::{EngineConfig, EngineStores, IngestOutcome, PrixEngine, QueryOutcome};
pub use exec::MatchStream;
pub use index::{ExecOpts, IndexKind, PrixIndex, QueryStats, TwigMatch};
pub use plan::{
    canonicalize, prix_embedding_exact, AltProvider, EngineCaps, EngineChoice, EngineId, NoAlts,
    PlanReport, Planner, PlannerStats, PrixBackend, QueryEngine, QueryShape, Routed, Router,
};
pub use prix_storage::{ManifestSegment, SegmentCheck, SEG_KIND_EP, SEG_KIND_RP};
pub use query::{PredOp, PredValue, TwigBuilder, TwigQuery, ValuePred};
pub use segbuild::{BulkBuilder, DEFAULT_RUN_MEM_BYTES};
pub use snapshot::{EngineSnapshot, IngestReport, SharedEngine};
pub use trie::{LabelingMode, VirtualTrie};
pub use valix::{PredEval, ProbeStats, Valix, ValixEntry};
pub use xpath::{parse_xpath, XPathError};
