//! Naive tree-matching oracle.
//!
//! Enumerates ordered twig embeddings directly on the document tree by
//! backtracking — no Prüfer sequences, no index. The paper proves
//! (Theorems 1–3) that PRIX's filtering + refinement returns *exactly*
//! the twig matches; this oracle is the other side of that equation in
//! our test suite: for random documents and queries,
//! `naive == scan == PrixIndex` must hold.
//!
//! Semantics of an ordered match (the semantics PRIX computes):
//!
//! * every query node maps to a document node with the same label,
//! * a node's image relates to its parent's image according to the edge
//!   kind (`/` = parent, `//` = proper ancestor, `*`-chain = ancestor at
//!   exactly that distance),
//! * the mapping is monotone in postorder — if `q1 < q2` as query
//!   postorder numbers then `img(q1) < img(q2)` (what strictly
//!   increasing subsequence positions enforce) — **and** in preorder,
//!   so ancestor/disjoint relations between query nodes are preserved
//!   exactly (ordered tree inclusion à la Kilpeläinen & Mannila; a node
//!   pair is ancestor/descendant iff preorder and postorder disagree).
//!
//! An unordered match is an ordered match of some branch arrangement of
//! the query (§5.7); see [`crate::arrange`].

use prix_prufer::EdgeKind;
use prix_xml::{PostNum, XmlTree};

use crate::query::TwigQuery;

/// All ordered embeddings of `q` in `doc`, each as
/// `embedding[q_post - 1] = doc_post`, in lexicographic order.
pub fn naive_ordered(doc: &XmlTree, q: &TwigQuery) -> Vec<Vec<PostNum>> {
    let m = q.tree().len();
    let n = doc.len();
    let edges = q.edges_by_post();
    let mut img = vec![0 as PostNum; m];
    let mut out = Vec::new();

    // Parent postorder of each query node (0 for the root).
    let qtree = q.tree();
    let parent_post: Vec<PostNum> = (1..=m as PostNum)
        .map(|p| qtree.parent_post(p).unwrap_or(0))
        .collect();
    let q_pre = preorder_ranks(qtree);
    let d_pre = preorder_ranks(doc);

    struct Env<'a> {
        m: usize,
        n: usize,
        doc: &'a XmlTree,
        qtree: &'a XmlTree,
        parent_post: &'a [PostNum],
        edges: &'a [EdgeKind],
        absolute: bool,
        /// Preorder rank by postorder number, query / document.
        q_pre: &'a [u32],
        d_pre: &'a [u32],
    }

    // Backtracking over query postorder index (1-based q).
    fn rec(env: &Env<'_>, q_idx: usize, img: &mut Vec<PostNum>, out: &mut Vec<Vec<PostNum>>) {
        if q_idx > env.m {
            out.push(img.clone());
            return;
        }
        let q_post = q_idx as PostNum;
        let label = env.qtree.label_at(q_post);
        let start = if q_idx == 1 { 1 } else { img[q_idx - 2] + 1 };
        'cand: for d in start..=env.n as PostNum {
            if env.doc.label_at(d) != label {
                continue;
            }
            // Edges to already-assigned children of this node.
            for c in 1..q_post {
                if env.parent_post[(c - 1) as usize] != q_post {
                    continue;
                }
                if !edge_ok(
                    env.doc,
                    img[(c - 1) as usize],
                    d,
                    env.edges[(c - 1) as usize],
                ) {
                    continue 'cand;
                }
            }
            // Preorder consistency against every assigned node: ancestor
            // vs disjoint relations must be preserved exactly.
            for prev in 1..q_post {
                let qp = env.q_pre[(prev - 1) as usize] < env.q_pre[(q_post - 1) as usize];
                let dp = env.d_pre[(img[(prev - 1) as usize] - 1) as usize]
                    < env.d_pre[(d - 1) as usize];
                if qp != dp {
                    continue 'cand;
                }
            }
            if q_idx == env.m && env.absolute && d != env.n as PostNum {
                continue;
            }
            img[q_idx - 1] = d;
            rec(env, q_idx + 1, img, out);
        }
        img[q_idx - 1] = 0;
    }

    let env = Env {
        m,
        n,
        doc,
        qtree,
        parent_post: &parent_post,
        edges: &edges,
        absolute: q.is_absolute(),
        q_pre: &q_pre,
        d_pre: &d_pre,
    };
    rec(&env, 1, &mut img, &mut out);
    out
}

/// Preorder rank indexed by postorder number (`ranks[post - 1]`).
fn preorder_ranks(tree: &XmlTree) -> Vec<u32> {
    let mut ranks = vec![0u32; tree.len()];
    let mut stack = vec![tree.root()];
    let mut next = 0u32;
    while let Some(node) = stack.pop() {
        ranks[(tree.postorder(node) - 1) as usize] = next;
        next += 1;
        for &c in tree.children(node).iter().rev() {
            stack.push(c);
        }
    }
    ranks
}

/// Does `child_img`'s ancestor chain relate to `parent_img` per `edge`?
fn edge_ok(doc: &XmlTree, child_img: PostNum, parent_img: PostNum, edge: EdgeKind) -> bool {
    match edge {
        EdgeKind::Child => doc.parent_post(child_img) == Some(parent_img),
        EdgeKind::Descendant => {
            let mut cur = child_img;
            while let Some(p) = doc.parent_post(cur) {
                if p == parent_img {
                    return true;
                }
                if p > parent_img {
                    return false;
                }
                cur = p;
            }
            false
        }
        EdgeKind::Exactly(k) => {
            let mut cur = child_img;
            for _ in 0..k {
                match doc.parent_post(cur) {
                    Some(p) => cur = p,
                    None => return false,
                }
            }
            cur == parent_img
        }
    }
}

/// Counts ordered matches across a whole collection.
pub fn naive_count(collection: &prix_xml::Collection, q: &TwigQuery) -> usize {
    collection
        .iter()
        .map(|(_, t)| naive_ordered(t, q).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use prix_xml::{parse_document, SymbolTable};

    fn doc(xml: &str, syms: &mut SymbolTable) -> XmlTree {
        parse_document(xml, syms).unwrap()
    }

    #[test]
    fn simple_path_match() {
        let mut syms = SymbolTable::new();
        let t = doc("<a><b><c/></b></a>", &mut syms);
        let q = parse_xpath("//a/b/c", &mut syms).unwrap();
        let m = naive_ordered(&t, &q);
        // Query postorder: c=1, b=2, a=3 -> images 1, 2, 3.
        assert_eq!(m, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn multiple_matches_enumerate() {
        let mut syms = SymbolTable::new();
        let t = doc("<a><b><c/></b><b><c/></b></a>", &mut syms);
        let q = parse_xpath("//a/b/c", &mut syms).unwrap();
        let m = naive_ordered(&t, &q);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn child_edge_is_strict() {
        let mut syms = SymbolTable::new();
        let t = doc("<a><x><b/></x></a>", &mut syms);
        let q_child = parse_xpath("//a/b", &mut syms).unwrap();
        assert!(naive_ordered(&t, &q_child).is_empty());
        let q_desc = parse_xpath("//a//b", &mut syms).unwrap();
        assert_eq!(naive_ordered(&t, &q_desc).len(), 1);
    }

    #[test]
    fn star_distance() {
        let mut syms = SymbolTable::new();
        let t = doc("<a><x><b/></x></a>", &mut syms);
        let q2 = parse_xpath("//a/*/b", &mut syms).unwrap();
        assert_eq!(naive_ordered(&t, &q2).len(), 1);
        let q3 = parse_xpath("//a/*/*/b", &mut syms).unwrap();
        assert!(naive_ordered(&t, &q3).is_empty());
    }

    #[test]
    fn order_matters_for_ordered_matching() {
        let mut syms = SymbolTable::new();
        // Document has R before Q.
        let t = doc("<P><R/><Q/></P>", &mut syms);
        let q = parse_xpath("//P[./Q]/R", &mut syms).unwrap();
        // Ordered query expects Q (postorder 1) before R (postorder 2).
        assert!(naive_ordered(&t, &q).is_empty());
        let q_flipped = parse_xpath("//P[./R]/Q", &mut syms).unwrap();
        assert_eq!(naive_ordered(&t, &q_flipped).len(), 1);
    }

    #[test]
    fn branches_must_share_the_parent() {
        let mut syms = SymbolTable::new();
        let t = doc("<root><P><Q/></P><P><R/></P></root>", &mut syms);
        let q = parse_xpath("//P[./Q]/R", &mut syms).unwrap();
        assert!(naive_ordered(&t, &q).is_empty());
    }

    #[test]
    fn values_are_labels() {
        let mut syms = SymbolTable::new();
        let t = doc("<book><title>Gone</title></book>", &mut syms);
        let q = parse_xpath(r#"//book[./title="Gone"]"#, &mut syms).unwrap();
        assert_eq!(naive_ordered(&t, &q).len(), 1);
        let q2 = parse_xpath(r#"//book[./title="Other"]"#, &mut syms).unwrap();
        assert!(naive_ordered(&t, &q2).is_empty());
    }

    #[test]
    fn absolute_pins_root() {
        let mut syms = SymbolTable::new();
        let t = doc("<r><a><b/></a></r>", &mut syms);
        let rel = parse_xpath("//a/b", &mut syms).unwrap();
        assert_eq!(naive_ordered(&t, &rel).len(), 1);
        let abs = parse_xpath("/a/b", &mut syms).unwrap();
        assert!(naive_ordered(&t, &abs).is_empty());
    }

    #[test]
    fn single_node_query() {
        let mut syms = SymbolTable::new();
        let t = doc("<a><b/><b/></a>", &mut syms);
        let q = parse_xpath("//b", &mut syms).unwrap();
        assert_eq!(naive_ordered(&t, &q).len(), 2);
    }

    #[test]
    fn nested_same_label_descendants() {
        let mut syms = SymbolTable::new();
        let t = doc("<a><a><b/></a></a>", &mut syms);
        let q = parse_xpath("//a//b", &mut syms).unwrap();
        // b under inner a (child->desc) and outer a: two embeddings.
        assert_eq!(naive_ordered(&t, &q).len(), 2);
    }
}
