//! Cost-based multi-engine query planning.
//!
//! The paper's evaluation (§6) is a matrix: PRIX vs ViST vs
//! TwigStack/TwigStackXB across query shapes. This module turns that
//! matrix into an optimizer. Every engine sits behind the
//! [`QueryEngine`] trait; a [`Planner`] scores the alternatives
//! (engine × RP-vs-EP × MaxGap on/off, plus arrangement order for
//! unordered queries) from collected statistics and a [`Router`]
//! executes the winner.
//!
//! Statistics come from three places:
//!
//! * **tag frequencies** — per-label node counts collected at
//!   build/ingest time from the collection,
//! * **trie fanout** — node/path/sequence counts from the RP index's
//!   build stats (how much prefix sharing the virtual trie achieves,
//!   which is what subsequence filtering actually scans),
//! * **observed stage clocks** — an EWMA of per-query wall time keyed
//!   by query *shape* (node/leaf/value/descendant-edge counts),
//!   blended into the analytic model once samples exist.
//!
//! Stats are persisted in the engine catalog (version 3) and rebuilt
//! from it on reopen, so a reopened database plans like the one that
//! was saved.
//!
//! ## Result compatibility
//!
//! Routed results must be indistinguishable from forced-PRIX results.
//! Two mechanisms guarantee that:
//!
//! 1. every routed outcome is canonicalized — matches sorted by
//!    `(doc, embedding)` — so engines with different enumeration
//!    orders produce identical payloads,
//! 2. a non-PRIX engine is only *eligible* when PRIX's embedding
//!    semantics are exact for the query ([`prix_embedding_exact`]):
//!    for `//` edges meeting at a branching node, PRIX's
//!    frequency-consistency rule (Definition 4) pins the branch image
//!    to one common ancestor and deliberately enumerates fewer
//!    embeddings than a per-ancestor oracle, so such queries stay on
//!    PRIX.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use prix_prufer::EdgeKind;
use prix_xml::{Collection, NodeKind, Sym};

use crate::engine::QueryOutcome;
use crate::index::{ExecOpts, IndexError, IndexKind, Result};
use crate::query::TwigQuery;

/// Every engine the planner can route to. `PrixRp`/`PrixEp`
/// distinguish the paper's two index flavors (§5.6) because they are
/// separate physical structures with different scan costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineId {
    /// PRIX over the Regular-Prüfer (structure-only) index.
    PrixRp,
    /// PRIX over the Extended-Prüfer (value-carrying) index.
    PrixEp,
    /// ViST structure-encoded sequence matching + verification.
    Vist,
    /// Holistic twig join over region-encoded streams.
    TwigStack,
    /// TwigStack with XB-tree skipping.
    TwigStackXb,
}

impl EngineId {
    /// All engines, in stable exposition order (metrics, explain).
    pub const ALL: [EngineId; 5] = [
        EngineId::PrixRp,
        EngineId::PrixEp,
        EngineId::Vist,
        EngineId::TwigStack,
        EngineId::TwigStackXb,
    ];

    /// The label used in metrics and explain output.
    pub fn label(self) -> &'static str {
        match self {
            EngineId::PrixRp => "prix_rp",
            EngineId::PrixEp => "prix_ep",
            EngineId::Vist => "vist",
            EngineId::TwigStack => "twigstack",
            EngineId::TwigStackXb => "twigstackxb",
        }
    }

    /// Stable index into per-engine arrays (EWMA table, metrics).
    pub fn index(self) -> usize {
        EngineId::ALL.iter().position(|e| *e == self).unwrap()
    }

    /// The PRIX engine id for a concrete index kind.
    pub fn from_kind(kind: IndexKind) -> EngineId {
        match kind {
            IndexKind::Regular => EngineId::PrixRp,
            IndexKind::Extended => EngineId::PrixEp,
        }
    }

    /// Whether this is one of the two PRIX index engines.
    pub fn is_prix(self) -> bool {
        matches!(self, EngineId::PrixRp | EngineId::PrixEp)
    }
}

/// What `--engine` / `?engine=` accepts: `prix` is the classic §5.6
/// RP-vs-EP routing, the rest force one alternative engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// Classic PRIX routing (EP for value queries, else RP).
    Prix,
    /// One specific engine, planner bypassed.
    Forced(EngineId),
}

impl EngineChoice {
    /// Parses a `--engine` value. Accepted: `prix`, `prix_rp`,
    /// `prix_ep`, `vist`, `twigstack`, `twigstackxb`.
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s {
            "prix" => Some(EngineChoice::Prix),
            "prix_rp" | "prix-rp" => Some(EngineChoice::Forced(EngineId::PrixRp)),
            "prix_ep" | "prix-ep" => Some(EngineChoice::Forced(EngineId::PrixEp)),
            "vist" => Some(EngineChoice::Forced(EngineId::Vist)),
            "twigstack" => Some(EngineChoice::Forced(EngineId::TwigStack)),
            "twigstackxb" => Some(EngineChoice::Forced(EngineId::TwigStackXb)),
            _ => None,
        }
    }
}

/// One engine behind the planner. Implementations adapt ViST and
/// TwigStack (which live in their own crates, downstream of this one)
/// to the shared execution contract: same query type, same options,
/// same outcome — so routed results are directly comparable.
pub trait QueryEngine: Send + Sync {
    /// Which engine this is.
    fn id(&self) -> EngineId;
    /// Can this engine answer `q` at all?
    fn supports(&self, q: &TwigQuery) -> bool;
    /// Does a limit stop work early (true) or merely truncate the
    /// result (false)?
    fn supports_limit_pushdown(&self) -> bool {
        false
    }
    /// Runs the query. Implementations fill [`QueryOutcome::engine`]
    /// with their own id and report whatever counters map onto
    /// [`crate::index::QueryStats`].
    fn execute(&self, q: &TwigQuery, opts: &ExecOpts) -> Result<QueryOutcome>;
}

/// The PRIX side of the router: executes a query on the RP/EP tiers,
/// optionally forcing one index kind. Implemented by `PrixEngine` and
/// `EngineSnapshot`.
pub trait PrixBackend: Sync {
    /// `(has_rp, has_ep)`.
    fn prix_caps(&self) -> (bool, bool);
    /// Runs the query, forcing `force` when set (classic §5.6 routing
    /// when `None`).
    fn execute_prix(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        force: Option<IndexKind>,
    ) -> Result<QueryOutcome>;
}

/// Supplies (usually lazily-built) alternative engines to the router.
/// Building a ViST or TwigStack substrate over a large collection is
/// expensive, so providers construct them on first use and cache.
pub trait AltProvider: Sync {
    /// Can this provider construct alternative engines at all? The
    /// planner only lists ViST/TwigStack alternatives when true.
    fn available(&self) -> bool {
        true
    }
    /// Returns the adapter for `id`, building it if necessary.
    /// `id` is never `PrixRp`/`PrixEp`.
    fn alt_engine(&self, id: EngineId) -> Result<Arc<dyn QueryEngine>>;
}

/// An [`AltProvider`] with no alternative engines (PRIX-only routing).
pub struct NoAlts;

impl AltProvider for NoAlts {
    fn available(&self) -> bool {
        false
    }
    fn alt_engine(&self, id: EngineId) -> Result<Arc<dyn QueryEngine>> {
        Err(IndexError::Unsupported(format!(
            "engine {} is not available here",
            id.label()
        )))
    }
}

/// Which engines the planner may consider.
#[derive(Debug, Clone, Copy)]
pub struct EngineCaps {
    /// RP index present.
    pub rp: bool,
    /// EP index present.
    pub ep: bool,
    /// ViST adapter constructible.
    pub vist: bool,
    /// TwigStack/TwigStackXB adapter constructible.
    pub twigstack: bool,
}

/// The query-shape key the EWMA table uses: queries with the same
/// node/leaf/value/descendant-edge counts are assumed to cost alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryShape {
    /// Query tree nodes.
    pub nodes: u32,
    /// Leaf nodes.
    pub leaves: u32,
    /// Value-predicate (text) nodes.
    pub values: u32,
    /// `//` edges.
    pub desc_edges: u32,
}

impl QueryShape {
    /// Computes the shape of a query.
    pub fn of(q: &TwigQuery) -> QueryShape {
        let tree = q.tree();
        let mut leaves = 0u32;
        let mut values = 0u32;
        for id in tree.nodes() {
            if tree.children(id).is_empty() {
                leaves += 1;
            }
            if tree.kind(id) == NodeKind::Text {
                values += 1;
            }
        }
        let desc_edges = q
            .edges_by_post()
            .iter()
            .filter(|e| matches!(e, EdgeKind::Descendant))
            .count() as u32;
        QueryShape {
            nodes: tree.len() as u32,
            leaves,
            values,
            desc_edges,
        }
    }

    /// Packs the shape into the persistent EWMA key (each component
    /// saturates at 63).
    pub fn key(self) -> u32 {
        (self.nodes.min(63) << 18)
            | (self.leaves.min(63) << 12)
            | (self.values.min(63) << 6)
            | self.desc_edges.min(63)
    }
}

impl std::fmt::Display for QueryShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n{}.l{}.v{}.d{}",
            self.nodes, self.leaves, self.values, self.desc_edges
        )
    }
}

/// Is PRIX's embedding enumeration exact (identical to the naive
/// per-ancestor oracle) for this query? False when a `//` edge hangs
/// off a branching query node — there PRIX's frequency-consistency
/// rule pins the branch image and enumerates fewer embeddings, so a
/// non-PRIX engine would return a (correct but) larger match set.
pub fn prix_embedding_exact(q: &TwigQuery) -> bool {
    let tree = q.tree();
    let edges = q.edges_by_post();
    for id in tree.nodes() {
        let kids = tree.children(id);
        if kids.len() < 2 {
            continue;
        }
        for &c in kids {
            let idx = (tree.postorder(c) - 1) as usize;
            if matches!(edges[idx], EdgeKind::Descendant) {
                return false;
            }
        }
    }
    true
}

/// Sorts matches by `(doc, embedding)` — the canonical routed order.
/// Applied to every routed outcome so different engines' enumeration
/// orders cannot leak into the payload.
pub fn canonicalize(outcome: &mut QueryOutcome) {
    outcome
        .matches
        .sort_unstable_by(|a, b| (a.doc, &a.embedding).cmp(&(b.doc, &b.embedding)));
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// Caps keeping the persistent encoding inside the 4 KiB catalog page:
/// the `TAG_CAP` most frequent tags and `EWMA_CAP` most recent shapes.
const TAG_CAP: usize = 128;
const EWMA_CAP: usize = 64;
const STATS_MAGIC: &[u8; 4] = b"PLN1";
/// EWMA smoothing factor for observed query times.
const EWMA_ALPHA: f64 = 0.4;
/// Observed time this many times over the estimate counts as a
/// misprediction.
const MISPREDICT_FACTOR: f64 = 4.0;

/// The planner's statistics: collection-level tag frequencies, trie
/// shape from the RP index build, and the per-shape observed-time
/// EWMA table. Everything here survives a save/reopen cycle via the
/// catalog (version 3).
#[derive(Debug, Clone, Default)]
pub struct PlannerStats {
    /// Per-label node counts across the collection.
    pub tag_freq: HashMap<Sym, u64>,
    /// Total nodes across the collection.
    pub total_nodes: u64,
    /// Total value (text) nodes.
    pub total_values: u64,
    /// Documents indexed.
    pub doc_count: u64,
    /// Virtual-trie nodes in the RP index (prefix-shared).
    pub trie_nodes: u64,
    /// Distinct root-to-leaf trie paths.
    pub trie_paths: u64,
    /// Sequences inserted (≥ paths when documents share sequences).
    pub seq_count: u64,
    /// `shape key -> per-engine EWMA of observed wall µs` (0 = no
    /// sample yet). Indexed by [`EngineId::index`].
    pub ewma_us: HashMap<u32, [f64; 5]>,
    /// Recency order of EWMA keys, least-recently-observed first (the
    /// LRU eviction queue keeping the table inside `EWMA_CAP`).
    ewma_order: Vec<u32>,
}

impl PlannerStats {
    /// Folds a collection's label counts into the stats (build and
    /// ingest call this with whatever documents they added).
    pub fn merge_collection(&mut self, c: &Collection) {
        for (_, tree) in c.iter() {
            self.merge_tree(tree);
        }
    }

    /// Folds one document tree into the stats.
    pub fn merge_tree(&mut self, tree: &prix_xml::XmlTree) {
        self.doc_count += 1;
        for id in tree.nodes() {
            *self.tag_freq.entry(tree.label(id)).or_insert(0) += 1;
            self.total_nodes += 1;
            if tree.kind(id) == NodeKind::Text {
                self.total_values += 1;
            }
        }
    }

    /// Installs the trie-shape numbers from the RP index build stats.
    pub fn set_trie_shape(&mut self, trie_nodes: u64, trie_paths: u64, seq_count: u64) {
        self.trie_nodes = trie_nodes;
        self.trie_paths = trie_paths;
        self.seq_count = seq_count;
    }

    /// Estimated node count for a label. Labels outside the retained
    /// top-[`TAG_CAP`] fall back to a small default: anything big
    /// enough to matter is retained, so the long tail is rare.
    pub fn freq(&self, sym: Sym) -> f64 {
        match self.tag_freq.get(&sym) {
            Some(&f) => f as f64,
            None => {
                let distinct = self.tag_freq.len().max(1) as f64;
                (self.total_nodes as f64 / (distinct * 4.0)).max(1.0)
            }
        }
    }

    /// How many documents' worth of samples the EWMA table holds.
    pub fn ewma_samples(&self) -> usize {
        self.ewma_us.len()
    }

    fn observe(&mut self, shape: QueryShape, engine: EngineId, observed_us: f64) {
        let key = shape.key();
        // LRU: a re-observed shape moves to the back of the queue, so
        // eviction removes the shape least recently *seen*, not the one
        // first inserted — hot shapes survive cold churn.
        if let Some(pos) = self.ewma_order.iter().position(|&k| k == key) {
            self.ewma_order.remove(pos);
        } else if self.ewma_order.len() >= EWMA_CAP {
            let evict = self.ewma_order.remove(0);
            self.ewma_us.remove(&evict);
        }
        self.ewma_order.push(key);
        let row = self.ewma_us.entry(key).or_insert([0.0; 5]);
        let slot = &mut row[engine.index()];
        *slot = if *slot == 0.0 {
            observed_us
        } else {
            (1.0 - EWMA_ALPHA) * *slot + EWMA_ALPHA * observed_us
        };
    }

    /// Serializes into the bounded catalog representation: top-frequency
    /// tags and the EWMA table, both capped.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(STATS_MAGIC);
        for v in [
            self.total_nodes,
            self.total_values,
            self.doc_count,
            self.trie_nodes,
            self.trie_paths,
            self.seq_count,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let mut tags: Vec<(Sym, u64)> = self.tag_freq.iter().map(|(&s, &f)| (s, f)).collect();
        tags.sort_unstable_by(|a, b| (b.1, a.0 .0).cmp(&(a.1, b.0 .0)));
        tags.truncate(TAG_CAP);
        out.extend_from_slice(&(tags.len() as u32).to_le_bytes());
        for (s, f) in &tags {
            out.extend_from_slice(&s.0.to_le_bytes());
            out.extend_from_slice(&f.to_le_bytes());
        }
        let mut rows: Vec<u32> = self.ewma_order.clone();
        rows.truncate(EWMA_CAP);
        out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for key in rows {
            out.extend_from_slice(&key.to_le_bytes());
            let row = self.ewma_us.get(&key).copied().unwrap_or([0.0; 5]);
            for v in row {
                out.extend_from_slice(&(v.round().min(u32::MAX as f64) as u32).to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`PlannerStats::encode`]. Returns `None` on any
    /// malformed input (a legacy catalog simply starts empty).
    pub fn decode(bytes: &[u8]) -> Option<PlannerStats> {
        let mut r = bytes;
        let mut take = |n: usize| -> Option<&[u8]> {
            if r.len() < n {
                return None;
            }
            let (head, tail) = r.split_at(n);
            r = tail;
            Some(head)
        };
        if take(4)? != STATS_MAGIC {
            return None;
        }
        let mut u64s = [0u64; 6];
        for v in &mut u64s {
            *v = u64::from_le_bytes(take(8)?.try_into().ok()?);
        }
        let mut stats = PlannerStats {
            total_nodes: u64s[0],
            total_values: u64s[1],
            doc_count: u64s[2],
            trie_nodes: u64s[3],
            trie_paths: u64s[4],
            seq_count: u64s[5],
            ..PlannerStats::default()
        };
        let ntags = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        if ntags > TAG_CAP {
            return None;
        }
        for _ in 0..ntags {
            let s = Sym(u32::from_le_bytes(take(4)?.try_into().ok()?));
            let f = u64::from_le_bytes(take(8)?.try_into().ok()?);
            stats.tag_freq.insert(s, f);
        }
        let nrows = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        if nrows > EWMA_CAP {
            return None;
        }
        for _ in 0..nrows {
            let key = u32::from_le_bytes(take(4)?.try_into().ok()?);
            let mut row = [0.0f64; 5];
            for v in &mut row {
                *v = u32::from_le_bytes(take(4)?.try_into().ok()?) as f64;
            }
            stats.ewma_us.insert(key, row);
            stats.ewma_order.push(key);
        }
        Some(stats)
    }
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// One scored alternative in a [`PlanReport`].
#[derive(Debug, Clone)]
pub struct PlanAlt {
    /// The engine.
    pub engine: EngineId,
    /// MaxGap pruning on (only meaningful for PRIX alternatives).
    pub maxgap: bool,
    /// Estimated cost in µs (model blended with the shape EWMA).
    pub cost_us: f64,
    /// May the router actually pick this?
    pub eligible: bool,
    /// Why not, when `eligible` is false.
    pub note: &'static str,
}

/// The planner's decision for one query: the ranked alternatives, the
/// chosen one, and everything `/explain` renders.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Shape the cost model keyed on.
    pub shape: QueryShape,
    /// All scored alternatives, cheapest first.
    pub alternatives: Vec<PlanAlt>,
    /// The engine the router will run.
    pub chosen: EngineId,
    /// MaxGap setting for the chosen engine.
    pub maxgap: bool,
    /// Estimated cost of the chosen alternative (µs).
    pub cost_us: f64,
    /// `true` when `--engine` bypassed the cost comparison.
    pub forced: bool,
    /// PRIX embedding semantics exact for this query (gate for
    /// non-PRIX eligibility)?
    pub prix_exact: bool,
    /// EWMA rows consulted (0 = pure analytic model).
    pub ewma_samples: usize,
}

impl PlanReport {
    /// Renders the plan section of `explain` output. The first line is
    /// pinned by tests; the `alt` lines carry the per-alternative cost
    /// estimates the ISSUE asks for.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "planner: engine={} maxgap={} cost={:.1}us {} shape={} ewma_rows={}\n",
            self.chosen.label(),
            if self.maxgap { "on" } else { "off" },
            self.cost_us,
            if self.forced { "(forced)" } else { "(routed)" },
            self.shape,
            self.ewma_samples,
        ));
        for alt in &self.alternatives {
            let gap = if alt.engine.is_prix() {
                if alt.maxgap {
                    " maxgap=on "
                } else {
                    " maxgap=off"
                }
            } else {
                "           "
            };
            out.push_str(&format!(
                "  alt {:<11}{} cost={:>10.1}us{}{}\n",
                alt.engine.label(),
                gap,
                alt.cost_us,
                if alt.eligible { "" } else { "  ineligible" },
                if alt.note.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", alt.note)
                },
            ));
        }
        out
    }
}

/// Per-element work constants, in µs, calibrated roughly against the
/// in-repo engines' benches. Absolute values matter less than ratios:
/// the planner compares alternatives, it does not predict wall time.
mod cost {
    /// PRIX trie-position scan + gap machinery, per position.
    pub const PRIX_ELEM: f64 = 0.08;
    /// Fraction of filter work MaxGap pruning removes when every
    /// adjacent pair is bounded.
    pub const MAXGAP_SAVINGS: f64 = 0.65;
    /// Fixed PRIX plan/rule-derivation overhead.
    pub const PRIX_FIXED: f64 = 30.0;
    /// TwigStack stream scan, per element.
    pub const TS_ELEM: f64 = 0.05;
    /// TwigStack fixed overhead.
    pub const TS_FIXED: f64 = 40.0;
    /// TwigStackXB per-element (drilldowns cost more than scans).
    pub const XB_ELEM: f64 = 0.07;
    /// TwigStackXB fixed overhead (cursor setup per stream).
    pub const XB_FIXED: f64 = 60.0;
    /// ViST per-element: recursive range descent plus the verification
    /// pass it needs for exact answers.
    pub const VIST_ELEM: f64 = 0.2;
    /// ViST fixed overhead: query encoding plus at least one descent
    /// through the D-Ancestor/S-Ancestor B⁺-trees per pattern step.
    pub const VIST_FIXED: f64 = 120.0;
    /// ViST wildcard blow-up per `//` step in the encoded pattern.
    pub const VIST_DESC_FACTOR: f64 = 3.0;
    /// Blend weight of the analytic model when an EWMA sample exists.
    pub const MODEL_WEIGHT: f64 = 0.4;
}

fn query_syms(q: &TwigQuery) -> Vec<Sym> {
    let tree = q.tree();
    tree.nodes().map(|id| tree.label(id)).collect()
}

/// The shared planner: statistics plus the cost model. One instance
/// per engine, shared (via `Arc`) with every snapshot so observations
/// from served queries feed back into later plans.
#[derive(Debug, Default)]
pub struct Planner {
    stats: Mutex<PlannerStats>,
}

impl Planner {
    /// A planner starting from the given statistics (decoded from a
    /// catalog, or freshly collected at build time).
    pub fn new(stats: PlannerStats) -> Planner {
        Planner {
            stats: Mutex::new(stats),
        }
    }

    /// Runs `f` over the stats table (collection/build updates).
    pub fn update<R>(&self, f: impl FnOnce(&mut PlannerStats) -> R) -> R {
        f(&mut self.stats.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Snapshot of the stats for persistence.
    pub fn encode(&self) -> Vec<u8> {
        self.stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .encode()
    }

    /// Scores every alternative for `q` and picks one. `forced`
    /// bypasses the comparison but still produces the full report.
    pub fn decide(
        &self,
        q: &TwigQuery,
        caps: EngineCaps,
        opts: &ExecOpts,
        forced: Option<EngineChoice>,
    ) -> Result<PlanReport> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let shape = QueryShape::of(q);
        let exact = prix_embedding_exact(q);
        let syms = query_syms(q);
        let needs_ep = q.needs_extended();

        // Per-label frequency estimates, and the base sums the models
        // share.
        let freqs: Vec<f64> = syms.iter().map(|&s| stats.freq(s)).collect();
        let sum_f: f64 = freqs.iter().sum();
        let min_f = freqs.iter().copied().fold(f64::INFINITY, f64::min);
        let min_f = if min_f.is_finite() { min_f } else { 1.0 };
        // Prefix sharing: the trie scans shared positions, not raw
        // nodes. `sharing` >= 1; 1 = no sharing.
        let sharing = if stats.trie_nodes > 0 {
            (stats.seq_count as f64 * shape.nodes.max(1) as f64 / stats.trie_nodes as f64).max(1.0)
        } else {
            1.0
        };
        let edges = (shape.nodes.saturating_sub(1)).max(1) as f64;
        let bounded_frac = 1.0 - (shape.desc_edges as f64 / edges).min(1.0);
        let ep_factor = if stats.total_nodes > 0 {
            (stats.total_nodes + 2 * stats.total_values) as f64 / stats.total_nodes as f64
        } else {
            1.5
        };

        let prix_base = cost::PRIX_ELEM * sum_f / sharing;
        let prix_on = prix_base * (1.0 - cost::MAXGAP_SAVINGS * bounded_frac) + cost::PRIX_FIXED;
        let prix_off = prix_base + cost::PRIX_FIXED;
        let ts = cost::TS_ELEM * sum_f + cost::TS_FIXED;
        let xb_elems: f64 = freqs
            .iter()
            .map(|&f| f.min(min_f * ((f / min_f + 2.0).log2())))
            .sum();
        let xb = cost::XB_ELEM * xb_elems + cost::XB_FIXED;
        let vist =
            cost::VIST_ELEM * sum_f * cost::VIST_DESC_FACTOR.powi(shape.desc_edges.min(6) as i32)
                + stats.doc_count as f64 * 0.5
                + cost::VIST_FIXED;

        let ewma = stats.ewma_us.get(&shape.key()).copied();
        let blend = |engine: EngineId, model: f64| -> f64 {
            match ewma.map(|row| row[engine.index()]) {
                Some(obs) if obs > 0.0 => {
                    cost::MODEL_WEIGHT * model + (1.0 - cost::MODEL_WEIGHT) * obs
                }
                _ => model,
            }
        };

        // Alternative engines cannot push a limit into their joins, the
        // arrangement (unordered) mode is PRIX machinery, and value
        // predicates are evaluated by the PRIX refinement stage, so all
        // three stay on PRIX unless explicitly forced.
        let has_preds = !q.preds().is_empty();
        let alt_note: &'static str = if has_preds {
            "cannot evaluate value predicates"
        } else if !exact {
            "PRIX enumerates fewer embeddings for // at a branch"
        } else if opts.limit.is_some() {
            "no limit pushdown"
        } else {
            ""
        };
        let alt_ok = exact && opts.limit.is_none() && !has_preds;

        let mut alts = Vec::new();
        if caps.rp && !needs_ep {
            alts.push(PlanAlt {
                engine: EngineId::PrixRp,
                maxgap: true,
                cost_us: blend(EngineId::PrixRp, prix_on),
                eligible: true,
                note: "",
            });
            alts.push(PlanAlt {
                engine: EngineId::PrixRp,
                maxgap: false,
                cost_us: blend(EngineId::PrixRp, prix_off),
                eligible: true,
                note: "",
            });
        }
        if caps.ep {
            alts.push(PlanAlt {
                engine: EngineId::PrixEp,
                maxgap: true,
                cost_us: blend(EngineId::PrixEp, prix_on * ep_factor),
                eligible: true,
                note: "",
            });
            alts.push(PlanAlt {
                engine: EngineId::PrixEp,
                maxgap: false,
                cost_us: blend(EngineId::PrixEp, prix_off * ep_factor),
                eligible: true,
                note: "",
            });
        }
        if caps.vist {
            alts.push(PlanAlt {
                engine: EngineId::Vist,
                maxgap: false,
                cost_us: blend(EngineId::Vist, vist),
                eligible: alt_ok,
                note: alt_note,
            });
        }
        if caps.twigstack {
            alts.push(PlanAlt {
                engine: EngineId::TwigStack,
                maxgap: false,
                cost_us: blend(EngineId::TwigStack, ts),
                eligible: alt_ok,
                note: alt_note,
            });
            alts.push(PlanAlt {
                engine: EngineId::TwigStackXb,
                maxgap: false,
                cost_us: blend(EngineId::TwigStackXb, xb),
                eligible: alt_ok,
                note: alt_note,
            });
        }
        drop(stats);
        if alts.is_empty() {
            return Err(IndexError::Unsupported(
                "no engine can run this query".into(),
            ));
        }
        alts.sort_by(|a, b| {
            a.cost_us
                .partial_cmp(&b.cost_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let (chosen, maxgap, cost_us, forced_flag) = match forced {
            Some(EngineChoice::Prix) => {
                let id = if needs_ep || !caps.rp {
                    EngineId::PrixEp
                } else {
                    EngineId::PrixRp
                };
                let cost = alts
                    .iter()
                    .find(|a| a.engine == id && a.maxgap == opts.use_maxgap)
                    .map_or(0.0, |a| a.cost_us);
                (id, opts.use_maxgap, cost, true)
            }
            Some(EngineChoice::Forced(id)) => {
                let cost = alts
                    .iter()
                    .find(|a| a.engine == id && (!id.is_prix() || a.maxgap == opts.use_maxgap))
                    .map_or(0.0, |a| a.cost_us);
                (id, opts.use_maxgap, cost, true)
            }
            None => {
                let best = alts
                    .iter()
                    .find(|a| a.eligible)
                    .ok_or_else(|| IndexError::Unsupported("no eligible engine".into()))?;
                (best.engine, best.maxgap, best.cost_us, false)
            }
        };

        Ok(PlanReport {
            shape,
            ewma_samples: self
                .stats
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .ewma_samples(),
            alternatives: alts,
            chosen,
            maxgap,
            cost_us,
            forced: forced_flag,
            prix_exact: exact,
        })
    }

    /// Ranks unordered-mode arrangements cheapest-first by the
    /// frequency of their root label (the last symbol every subsequence
    /// match must reach): rarer roots drain or fail faster, so under a
    /// shared limit the cheap arrangements get first crack at it.
    pub fn rank_arrangements(&self, arrangements: &[TwigQuery]) -> Vec<usize> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let mut order: Vec<(f64, usize)> = arrangements
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let tree = q.tree();
                (stats.freq(tree.label(tree.root())), i)
            })
            .collect();
        order.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        order.into_iter().map(|(_, i)| i).collect()
    }

    /// Records an observed execution and reports whether it counts as
    /// a misprediction (observed wall time blowing through the chosen
    /// estimate by [`MISPREDICT_FACTOR`]).
    pub fn observe(&self, report: &PlanReport, elapsed: Duration) -> bool {
        let us = elapsed.as_micros() as f64;
        self.stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(report.shape, report.chosen, us);
        !report.forced && report.cost_us > 0.0 && us > MISPREDICT_FACTOR * report.cost_us
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// A routed execution: the outcome (canonicalized) plus the plan that
/// produced it.
#[derive(Debug)]
pub struct Routed {
    /// The canonicalized outcome.
    pub outcome: QueryOutcome,
    /// The plan.
    pub report: PlanReport,
    /// Did the observed time blow through the estimate?
    pub mispredicted: bool,
}

/// Plans and executes one query over a PRIX backend plus optional
/// alternative engines.
pub struct Router<'a> {
    /// The planner (owned by the engine, shared with snapshots).
    pub planner: &'a Planner,
    /// PRIX execution (tiers, snapshot pins — the backend's business).
    pub prix: &'a dyn PrixBackend,
    /// Lazily-built alternative engines.
    pub alts: &'a dyn AltProvider,
}

impl<'a> Router<'a> {
    /// Plans `q` without executing (the `/explain` path).
    pub fn plan(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        forced: Option<EngineChoice>,
    ) -> Result<PlanReport> {
        let (rp, ep) = self.prix.prix_caps();
        // Alternative engines replay documents out of the RP index, so
        // they need it in addition to a willing provider.
        let alt = self.alts.available() && rp;
        let caps = EngineCaps {
            rp,
            ep,
            vist: alt,
            twigstack: alt,
        };
        self.planner.decide(q, caps, opts, forced)
    }

    /// Plans and executes `q`, canonicalizes the result, and feeds the
    /// observation back into the EWMA table.
    pub fn route(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        forced: Option<EngineChoice>,
    ) -> Result<Routed> {
        let report = self.plan(q, opts, forced)?;
        let mut exec_opts = *opts;
        if report.chosen.is_prix() {
            exec_opts.use_maxgap = report.maxgap;
        }
        let mut outcome = match report.chosen {
            EngineId::PrixRp => self
                .prix
                .execute_prix(q, &exec_opts, Some(IndexKind::Regular))?,
            EngineId::PrixEp => self
                .prix
                .execute_prix(q, &exec_opts, Some(IndexKind::Extended))?,
            id => {
                let engine = self.alts.alt_engine(id)?;
                if !engine.supports(q) {
                    return Err(IndexError::Unsupported(format!(
                        "engine {} cannot answer this query",
                        id.label()
                    )));
                }
                engine.execute(q, &exec_opts)?
            }
        };
        canonicalize(&mut outcome);
        let mispredicted = self.planner.observe(&report, outcome.elapsed);
        Ok(Routed {
            outcome,
            report,
            mispredicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use prix_xml::SymbolTable;

    fn q(x: &str) -> TwigQuery {
        let mut syms = SymbolTable::new();
        parse_xpath(x, &mut syms).unwrap()
    }

    #[test]
    fn shape_counts_nodes_leaves_values_and_desc_edges() {
        let s = QueryShape::of(&q("//a[./b]//c"));
        assert_eq!((s.nodes, s.leaves), (3, 2));
        assert!(s.desc_edges >= 1);
        let v = QueryShape::of(&q("/a/b[.=\"x\"]"));
        assert_eq!(v.values, 1);
    }

    #[test]
    fn shape_key_is_stable_and_packs() {
        let s = QueryShape {
            nodes: 3,
            leaves: 2,
            values: 1,
            desc_edges: 1,
        };
        assert_eq!(s.key(), (3 << 18) | (2 << 12) | (1 << 6) | 1);
    }

    #[test]
    fn embedding_exactness_gate() {
        // Pure paths are exact even with // edges.
        assert!(prix_embedding_exact(&q("//a//b")));
        assert!(prix_embedding_exact(&q("/a/b/c")));
        // A branch with only / edges is exact.
        assert!(prix_embedding_exact(&q("//a[./b]/c")));
        // A // edge at a branching node is not.
        assert!(!prix_embedding_exact(&q("//a[.//b]/c")));
    }

    #[test]
    fn stats_roundtrip_through_encode_decode() {
        let mut s = PlannerStats::default();
        s.tag_freq.insert(Sym(3), 100);
        s.tag_freq.insert(Sym(7), 5);
        s.total_nodes = 105;
        s.total_values = 10;
        s.doc_count = 2;
        s.set_trie_shape(40, 12, 2);
        s.observe(
            QueryShape {
                nodes: 3,
                leaves: 1,
                values: 0,
                desc_edges: 1,
            },
            EngineId::TwigStackXb,
            123.0,
        );
        let d = PlannerStats::decode(&s.encode()).unwrap();
        assert_eq!(d.tag_freq, s.tag_freq);
        assert_eq!(d.total_nodes, 105);
        assert_eq!(d.total_values, 10);
        assert_eq!(d.doc_count, 2);
        assert_eq!(d.trie_nodes, 40);
        assert_eq!(d.ewma_us.len(), 1);
        let key = QueryShape {
            nodes: 3,
            leaves: 1,
            values: 0,
            desc_edges: 1,
        }
        .key();
        assert_eq!(d.ewma_us[&key][EngineId::TwigStackXb.index()], 123.0);
    }

    #[test]
    fn encoded_stats_fit_the_catalog_budget() {
        // Worst case: full tag table, full EWMA table.
        let mut s = PlannerStats::default();
        for i in 0..500u32 {
            s.tag_freq.insert(Sym(i), 1000 + i as u64);
        }
        for i in 0..200u32 {
            s.observe(
                QueryShape {
                    nodes: i % 60,
                    leaves: 1,
                    values: 0,
                    desc_edges: 0,
                },
                EngineId::PrixRp,
                50.0,
            );
        }
        let bytes = s.encode();
        // Must leave room for the fixed catalog header (44 bytes), the
        // length prefix, and the trailing valix record id inside one
        // 4 KiB page.
        assert!(bytes.len() + 56 <= 4096, "{} bytes", bytes.len());
        let d = PlannerStats::decode(&bytes).unwrap();
        assert_eq!(d.tag_freq.len(), TAG_CAP);
        assert!(d.ewma_us.len() <= EWMA_CAP);
    }

    #[test]
    fn ewma_eviction_is_lru_and_pinned_at_64_shapes() {
        // The cap is part of the persisted PLN1 format (the blob must
        // fit the catalog page); changing it is a format decision, not
        // a tuning knob.
        assert_eq!(EWMA_CAP, 64);
        let shape = |i: u32| QueryShape {
            nodes: i % 60,
            leaves: i / 60,
            values: 0,
            desc_edges: 0,
        };
        let mut s = PlannerStats::default();
        s.observe(shape(0), EngineId::PrixRp, 50.0);
        for i in 1..200u32 {
            s.observe(shape(i), EngineId::PrixRp, 50.0);
            // Re-observe shape 0 every round: LRU must keep it alive.
            s.observe(shape(0), EngineId::PrixRp, 50.0);
            assert!(s.ewma_us.len() <= EWMA_CAP);
            assert_eq!(s.ewma_us.len(), s.ewma_order.len());
        }
        assert_eq!(s.ewma_us.len(), EWMA_CAP);
        // FIFO would have evicted the hot shape after 64 distinct
        // newcomers; LRU evicts the cold ones instead.
        assert!(s.ewma_us.contains_key(&shape(0).key()));
        assert!(!s.ewma_us.contains_key(&shape(1).key()));
        let d = PlannerStats::decode(&s.encode()).unwrap();
        assert_eq!(d.ewma_us.len(), EWMA_CAP);
    }

    #[test]
    fn skewed_frequencies_route_descendant_paths_to_xb() {
        // A rare leaf under a very frequent ancestor with // edges:
        // PRIX gets no MaxGap pruning and scans the big tag, XB skips.
        let mut s = PlannerStats::default();
        s.tag_freq.insert(Sym(1), 200_000); // hay
        s.tag_freq.insert(Sym(2), 50); // needle
        s.total_nodes = 200_050;
        s.doc_count = 1;
        let planner = Planner::new(s);
        let mut syms = SymbolTable::new();
        syms.intern("pad"); // push tag ids to 1/2
        let hay = syms.intern("hay");
        let needle = syms.intern("needle");
        assert_eq!((hay, needle), (Sym(1), Sym(2)));
        let q = parse_xpath("//hay//needle", &mut syms).unwrap();
        let caps = EngineCaps {
            rp: true,
            ep: true,
            vist: true,
            twigstack: true,
        };
        let report = planner
            .decide(&q, caps, &ExecOpts::default(), None)
            .unwrap();
        assert_eq!(report.chosen, EngineId::TwigStackXb, "{report:?}");
        assert!(!report.forced);
    }

    #[test]
    fn balanced_child_paths_stay_on_prix() {
        let mut s = PlannerStats::default();
        for i in 1..=3u32 {
            s.tag_freq.insert(Sym(i), 1_000);
        }
        s.total_nodes = 3_000;
        s.doc_count = 10;
        s.set_trie_shape(600, 200, 10); // healthy prefix sharing
        let planner = Planner::new(s);
        let mut syms = SymbolTable::new();
        syms.intern("pad");
        syms.intern("a");
        syms.intern("b");
        syms.intern("c");
        let q = parse_xpath("/a/b/c", &mut syms).unwrap();
        let caps = EngineCaps {
            rp: true,
            ep: true,
            vist: true,
            twigstack: true,
        };
        let report = planner
            .decide(&q, caps, &ExecOpts::default(), None)
            .unwrap();
        assert!(report.chosen.is_prix(), "{report:?}");
    }

    #[test]
    fn forced_choice_bypasses_the_comparison() {
        let planner = Planner::new(PlannerStats::default());
        let caps = EngineCaps {
            rp: true,
            ep: true,
            vist: true,
            twigstack: true,
        };
        let report = planner
            .decide(
                &q("//a[.//b]/c"), // not exact: alts ineligible...
                caps,
                &ExecOpts::default(),
                Some(EngineChoice::Forced(EngineId::Vist)), // ...but forceable
            )
            .unwrap();
        assert_eq!(report.chosen, EngineId::Vist);
        assert!(report.forced);
    }

    #[test]
    fn observations_feed_the_ewma_and_flag_mispredictions() {
        let planner = Planner::new(PlannerStats::default());
        let caps = EngineCaps {
            rp: true,
            ep: false,
            vist: false,
            twigstack: false,
        };
        let query = q("/a/b");
        let report = planner
            .decide(&query, caps, &ExecOpts::default(), None)
            .unwrap();
        assert!(report.cost_us > 0.0);
        // 10x over the estimate: mispredicted.
        let slow = Duration::from_micros((report.cost_us * 10.0) as u64);
        assert!(planner.observe(&report, slow));
        // The EWMA now exists and gets blended into the next decision.
        let again = planner
            .decide(&query, caps, &ExecOpts::default(), None)
            .unwrap();
        assert_eq!(again.ewma_samples, 1);
        assert!(again.cost_us > report.cost_us);
        // Within budget: not a misprediction.
        assert!(!planner.observe(&again, Duration::from_micros(1)));
    }

    #[test]
    fn value_predicates_gate_the_alternative_engines() {
        // The same skew that routes //hay//needle to XB: adding a value
        // predicate pins the plan to PRIX, because only the PRIX
        // refinement stage evaluates predicates.
        let mut s = PlannerStats::default();
        s.tag_freq.insert(Sym(1), 200_000);
        s.tag_freq.insert(Sym(2), 50);
        s.total_nodes = 200_050;
        s.doc_count = 1;
        let planner = Planner::new(s);
        let caps = EngineCaps {
            rp: true,
            ep: true,
            vist: true,
            twigstack: true,
        };
        let query = q("//hay//needle[price < 10]");
        let report = planner
            .decide(&query, caps, &ExecOpts::default(), None)
            .unwrap();
        assert!(report.chosen.is_prix(), "{report:?}");
        for alt in report.alternatives.iter().filter(|a| !a.engine.is_prix()) {
            assert!(!alt.eligible);
            assert!(alt.note.contains("predicate"), "{}", alt.note);
        }
    }

    #[test]
    fn engine_choice_parses_the_cli_names() {
        assert_eq!(EngineChoice::parse("prix"), Some(EngineChoice::Prix));
        assert_eq!(
            EngineChoice::parse("twigstackxb"),
            Some(EngineChoice::Forced(EngineId::TwigStackXb))
        );
        assert_eq!(
            EngineChoice::parse("vist"),
            Some(EngineChoice::Forced(EngineId::Vist))
        );
        assert_eq!(EngineChoice::parse("bogus"), None);
    }

    #[test]
    fn arrangement_ranking_puts_rare_roots_first() {
        let mut s = PlannerStats::default();
        let planner;
        let mut syms = SymbolTable::new();
        syms.intern("pad");
        let a = syms.intern("a");
        let b = syms.intern("b");
        s.tag_freq.insert(a, 10_000);
        s.tag_freq.insert(b, 10);
        s.total_nodes = 10_010;
        planner = Planner::new(s);
        let qa = parse_xpath("/a/b", &mut syms).unwrap(); // root a (frequent)
        let qb = parse_xpath("/b/a", &mut syms).unwrap(); // root b (rare)
        let order = planner.rank_arrangements(&[qa, qb]);
        assert_eq!(order, vec![1, 0]);
    }
}
