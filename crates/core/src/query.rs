//! Twig queries.
//!
//! A [`TwigQuery`] is an ordered labeled tree (like a document) plus a
//! structural constraint on every node's edge to its parent
//! ([`EdgeKind`]): `/` (child), `//` (descendant), or a `*`-chain
//! (exact distance). Value predicates are ordinary [`NodeKind::Text`]
//! leaves, exactly as the paper treats values (§2, §5.6).

use prix_prufer::{EdgeKind, ExtendedTree, PruferSeq};
use prix_xml::{InternSyms, NodeId, NodeKind, PostNum, Sym, SymbolTable, XmlTree};

/// Comparison operator of a value predicate (`[tag op literal]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `starts-with(path, "prefix")`
    StartsWith,
}

impl PredOp {
    /// The operator as it appears in XPath.
    pub fn token(self) -> &'static str {
        match self {
            PredOp::Eq => "=",
            PredOp::Ne => "!=",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
            PredOp::StartsWith => "starts-with",
        }
    }
}

/// The literal a value predicate compares against. Numeric literals get
/// numeric comparison semantics (the leaf text is parsed as `f64`);
/// string literals compare byte-exactly (`=`) or by prefix
/// (`starts-with`).
#[derive(Debug, Clone, PartialEq)]
pub enum PredValue {
    /// Unquoted numeric literal (`[price < 10]`).
    Num(f64),
    /// Quoted string literal (`[id = "x7"]`).
    Str(String),
}

/// A value predicate attached to one query node: the node's image must
/// have a leaf child whose *label text* satisfies `op literal`.
///
/// Predicates never add nodes to the twig; the structural part of
/// `//book[price < 10]` is exactly `//book[price]`, and the predicate
/// filters its matches. Matching is label-based, consistent with how
/// the structural engines treat values: a childless element and a text
/// node with the same label are indistinguishable to Prüfer matching,
/// so they are indistinguishable to predicates too.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuePred {
    /// Arena id (in [`TwigQuery::tree`]) of the node the predicate
    /// constrains.
    pub node: NodeId,
    /// Comparison operator.
    pub op: PredOp,
    /// Literal to compare against.
    pub value: PredValue,
}

impl ValuePred {
    /// Whether a leaf label `s` satisfies this predicate. This is the
    /// single definition of predicate truth: the valix probe ranges,
    /// the positional verification during refinement, and the test
    /// oracles all reduce to it.
    pub fn accepts(&self, s: &str) -> bool {
        match &self.value {
            PredValue::Num(lit) => match s.parse::<f64>() {
                Ok(v) => match self.op {
                    PredOp::Eq => v == *lit,
                    PredOp::Ne => v != *lit,
                    PredOp::Lt => v < *lit,
                    PredOp::Le => v <= *lit,
                    PredOp::Gt => v > *lit,
                    PredOp::Ge => v >= *lit,
                    PredOp::StartsWith => false,
                },
                Err(_) => false,
            },
            PredValue::Str(lit) => match self.op {
                PredOp::Eq => s == lit.as_str(),
                PredOp::StartsWith => s.starts_with(lit.as_str()),
                _ => false,
            },
        }
    }

    /// Renders `op literal` (e.g. `< 10`, `= "x7"`).
    pub fn render_op(&self) -> String {
        match (&self.value, self.op) {
            (PredValue::Str(s), PredOp::StartsWith) => format!("starts-with \"{s}\""),
            (PredValue::Str(s), op) => format!("{} \"{s}\"", op.token()),
            (PredValue::Num(n), op) => format!("{} {n}", op.token()),
        }
    }
}

/// A twig pattern with per-edge structural constraints.
#[derive(Debug, Clone)]
pub struct TwigQuery {
    tree: XmlTree,
    /// Edge kind per node id (arena order); root entry is unused.
    edges_by_id: Vec<EdgeKind>,
    /// `true` when the query began with a single `/`: the twig root must
    /// be the document root.
    absolute: bool,
    /// Value predicates over node images (empty for purely structural
    /// queries — the overwhelmingly common case).
    preds: Vec<ValuePred>,
}

impl TwigQuery {
    /// Wraps an already-built tree; `edges_by_id[node as usize]` gives
    /// the constraint on the node's edge to its parent.
    pub fn new(tree: XmlTree, edges_by_id: Vec<EdgeKind>, absolute: bool) -> Self {
        assert_eq!(tree.len(), edges_by_id.len());
        TwigQuery {
            tree,
            edges_by_id,
            absolute,
            preds: Vec::new(),
        }
    }

    /// [`TwigQuery::new`] with value predicates attached.
    pub fn with_preds(
        tree: XmlTree,
        edges_by_id: Vec<EdgeKind>,
        absolute: bool,
        preds: Vec<ValuePred>,
    ) -> Self {
        let mut q = TwigQuery::new(tree, edges_by_id, absolute);
        for p in &preds {
            assert!(
                (p.node as usize) < q.tree.len(),
                "predicate node out of range"
            );
        }
        q.preds = preds;
        q
    }

    /// Value predicates attached to this query.
    pub fn preds(&self) -> &[ValuePred] {
        &self.preds
    }

    /// This query with its value predicates stripped — the structural
    /// part whose matches the predicates filter.
    pub fn without_preds(&self) -> TwigQuery {
        let mut q = self.clone();
        q.preds.clear();
        q
    }

    /// The query twig as a tree.
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// Whether the twig root must match the document root.
    pub fn is_absolute(&self) -> bool {
        self.absolute
    }

    /// Edge kind of the node with arena id `id`.
    pub fn edge_of_id(&self, id: NodeId) -> EdgeKind {
        self.edges_by_id[id as usize]
    }

    /// Edge kinds indexed by postorder number (`out[q - 1]` = edge of
    /// the node numbered `q`); the layout the refinement phases consume.
    pub fn edges_by_post(&self) -> Vec<EdgeKind> {
        let mut out = vec![EdgeKind::Child; self.tree.len()];
        for id in self.tree.nodes() {
            out[(self.tree.postorder(id) - 1) as usize] = self.edges_by_id[id as usize];
        }
        out
    }

    /// Regular-Prüfer sequence of the twig (§3.3).
    pub fn prufer(&self) -> PruferSeq {
        PruferSeq::regular(&self.tree)
    }

    /// Extended twig: tree with dummies, sequences, and edge kinds in
    /// extended postorder (dummies get [`EdgeKind::Child`]).
    pub fn extended(&self, dummy: Sym) -> ExtendedQuery {
        let ext = ExtendedTree::build(&self.tree, dummy);
        let seq = PruferSeq::regular(&ext.tree);
        let base_edges = self.edges_by_post();
        let edges: Vec<EdgeKind> = (1..=ext.tree.len() as PostNum)
            .map(|e| match ext.to_original(e) {
                Some(orig) => base_edges[(orig - 1) as usize],
                None => EdgeKind::Child,
            })
            .collect();
        ExtendedQuery { ext, seq, edges }
    }

    /// Leaf list `(label, postorder)` of the twig.
    pub fn leaves(&self) -> Vec<(Sym, PostNum)> {
        self.tree.leaves()
    }

    /// `true` when the query must be answered through the EPIndex:
    /// it contains value leaves (the paper's optimizer rule, §5.6), has
    /// a non-`/` edge directly above a leaf (whose label would otherwise
    /// never be checked — regular LPS's contain no leaf labels), or is a
    /// single node.
    pub fn needs_extended(&self) -> bool {
        if self.tree.len() == 1 {
            return true;
        }
        for id in self.tree.nodes() {
            if self.tree.kind(id) == NodeKind::Text {
                return true;
            }
            if self.tree.is_leaf(id) && self.edges_by_id[id as usize] != EdgeKind::Child {
                return true;
            }
        }
        false
    }

    /// Number of branching nodes (nodes with ≥ 2 children).
    pub fn branch_count(&self) -> usize {
        self.tree
            .nodes()
            .filter(|&n| self.tree.children(n).len() >= 2)
            .count()
    }

    /// Renders the twig in a compact single-line form for debugging.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let mut out = String::new();
        self.fmt_node(self.tree.root(), syms, &mut out);
        out
    }

    fn fmt_node(&self, node: NodeId, syms: &SymbolTable, out: &mut String) {
        match self.edges_by_id[node as usize] {
            EdgeKind::Child => {}
            EdgeKind::Descendant => out.push('~'),
            EdgeKind::Exactly(k) => out.push_str(&format!("^{k}")),
        }
        if self.tree.kind(node) == NodeKind::Text {
            out.push('"');
            out.push_str(syms.name(self.tree.label(node)));
            out.push('"');
        } else {
            out.push_str(syms.name(self.tree.label(node)));
        }
        for p in self.preds.iter().filter(|p| p.node == node) {
            out.push('{');
            out.push_str(&p.render_op());
            out.push('}');
        }
        let kids = self.tree.children(node);
        if !kids.is_empty() {
            out.push('(');
            for (i, &c) in kids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.fmt_node(c, syms, out);
            }
            out.push(')');
        }
    }
}

/// The extended form of a twig query (per §5.6).
pub struct ExtendedQuery {
    /// Extended tree plus mapping back to original postorder numbers.
    pub ext: ExtendedTree,
    /// Sequences of the extended twig.
    pub seq: PruferSeq,
    /// Edge kinds in extended postorder.
    pub edges: Vec<EdgeKind>,
}

/// Push-style construction of a [`TwigQuery`].
///
/// ```
/// use prix_xml::SymbolTable;
/// use prix_core::TwigBuilder;
/// use prix_prufer::EdgeKind;
/// let mut syms = SymbolTable::new();
/// // //inproceedings[./author="Jim Gray"][./year="1990"]
/// let mut b = TwigBuilder::new(&mut syms, "inproceedings");
/// b.child("author", EdgeKind::Child);
/// b.value("Jim Gray");
/// b.up();
/// b.child("year", EdgeKind::Child);
/// b.value("1990");
/// b.up();
/// let q = b.finish();
/// assert_eq!(q.tree().len(), 5);
/// assert!(q.needs_extended());
/// ```
pub struct TwigBuilder<'a, S: InternSyms = SymbolTable> {
    syms: &'a mut S,
    tree: XmlTree,
    edges: Vec<EdgeKind>,
    stack: Vec<NodeId>,
    absolute: bool,
    preds: Vec<ValuePred>,
}

impl<'a, S: InternSyms> TwigBuilder<'a, S> {
    /// Starts a twig rooted at `root_tag` (relative: `//root_tag`).
    pub fn new(syms: &'a mut S, root_tag: &str) -> Self {
        let sym = syms.intern_sym(root_tag);
        let tree = XmlTree::with_root(sym, NodeKind::Element);
        TwigBuilder {
            syms,
            stack: vec![tree.root()],
            tree,
            edges: vec![EdgeKind::Child],
            absolute: false,
            preds: Vec::new(),
        }
    }

    /// Marks the query as absolute (`/root_tag/...`): the twig root must
    /// be the document root.
    pub fn absolute(&mut self) -> &mut Self {
        self.absolute = true;
        self
    }

    /// Opens a child element with the given edge constraint and descends
    /// into it.
    pub fn child(&mut self, tag: &str, edge: EdgeKind) -> &mut Self {
        let sym = self.syms.intern_sym(tag);
        let parent = *self.stack.last().expect("twig stack empty");
        let id = self.tree.add_child(parent, sym, NodeKind::Element);
        self.edges.push(edge);
        self.stack.push(id);
        self
    }

    /// Adds a value (text) leaf under the current node with a `/` edge.
    pub fn value(&mut self, text: &str) -> &mut Self {
        let sym = self.syms.intern_sym(text);
        let parent = *self.stack.last().expect("twig stack empty");
        self.tree.add_child(parent, sym, NodeKind::Text);
        self.edges.push(EdgeKind::Child);
        self
    }

    /// Attaches a value predicate to the current node: its image must
    /// have a leaf child whose label satisfies `op value`.
    pub fn pred(&mut self, op: PredOp, value: PredValue) -> &mut Self {
        let node = *self.stack.last().expect("twig stack empty");
        self.preds.push(ValuePred { node, op, value });
        self
    }

    /// Closes the current node.
    pub fn up(&mut self) -> &mut Self {
        assert!(self.stack.len() > 1, "up() would close the twig root");
        self.stack.pop();
        self
    }

    /// Seals the twig.
    pub fn finish(self) -> TwigQuery {
        let mut tree = self.tree;
        tree.seal();
        TwigQuery::with_preds(tree, self.edges, self.absolute, self.preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1(syms: &mut SymbolTable) -> TwigQuery {
        let mut b = TwigBuilder::new(syms, "inproceedings");
        b.child("author", EdgeKind::Child);
        b.value("Jim Gray");
        b.up();
        b.child("year", EdgeKind::Child);
        b.value("1990");
        b.up();
        b.finish()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let mut syms = SymbolTable::new();
        let q = q1(&mut syms);
        let t = q.tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.children(t.root()).len(), 2);
        // Postorder: "Jim Gray"=1, author=2, "1990"=3, year=4, root=5.
        assert_eq!(syms.name(t.label_at(2)), "author");
        assert_eq!(syms.name(t.label_at(1)), "Jim Gray");
        assert_eq!(t.kind(t.node_at(1)), NodeKind::Text);
    }

    #[test]
    fn edges_by_post_permutes_correctly() {
        let mut syms = SymbolTable::new();
        let mut b = TwigBuilder::new(&mut syms, "S");
        b.child("NP", EdgeKind::Descendant);
        b.child("SYM", EdgeKind::Child);
        let q = b.finish();
        // Postorder: SYM=1, NP=2, S=3.
        let e = q.edges_by_post();
        assert_eq!(e[0], EdgeKind::Child); // SYM
        assert_eq!(e[1], EdgeKind::Descendant); // NP
    }

    #[test]
    fn needs_extended_rules() {
        let mut syms = SymbolTable::new();
        // Values -> extended.
        assert!(q1(&mut syms).needs_extended());
        // Element-only with child leaf edges -> regular.
        let mut b = TwigBuilder::new(&mut syms, "NP");
        b.child("RBR_OR_JJR", EdgeKind::Child).up();
        b.child("PP", EdgeKind::Child);
        let q8 = b.finish();
        assert!(!q8.needs_extended());
        // Descendant edge above a leaf -> extended.
        let mut b = TwigBuilder::new(&mut syms, "Entry");
        b.child("from", EdgeKind::Descendant);
        let q = b.finish();
        assert!(q.needs_extended());
        // Single node -> extended.
        let b = TwigBuilder::new(&mut syms, "lonely");
        assert!(b.finish().needs_extended());
    }

    #[test]
    fn extended_query_edges_follow_originals() {
        let mut syms = SymbolTable::new();
        let mut b = TwigBuilder::new(&mut syms, "S");
        b.child("NP", EdgeKind::Descendant);
        b.child("SYM", EdgeKind::Child);
        let q = b.finish();
        let dummy = syms.intern("\u{1}d");
        let eq = q.extended(dummy);
        // Extended tree: S(NP(SYM(dummy))) -> 4 nodes.
        assert_eq!(eq.ext.tree.len(), 4);
        // Postorder: dummy=1, SYM=2, NP=3, S=4.
        assert_eq!(eq.edges[0], EdgeKind::Child); // dummy
        assert_eq!(eq.edges[1], EdgeKind::Child); // SYM
        assert_eq!(eq.edges[2], EdgeKind::Descendant); // NP
        assert_eq!(eq.seq.len(), 3);
    }

    #[test]
    fn branch_count() {
        let mut syms = SymbolTable::new();
        let q = q1(&mut syms);
        assert_eq!(q.branch_count(), 1);
        let mut b = TwigBuilder::new(&mut syms, "a");
        b.child("b", EdgeKind::Child);
        let q2 = b.finish();
        assert_eq!(q2.branch_count(), 0);
    }

    #[test]
    fn display_is_readable() {
        let mut syms = SymbolTable::new();
        let mut b = TwigBuilder::new(&mut syms, "S");
        b.child("NP", EdgeKind::Descendant);
        b.child("SYM", EdgeKind::Exactly(2));
        let q = b.finish();
        assert_eq!(q.display(&syms), "S(~NP(^2SYM))");
    }

    #[test]
    fn absolute_flag() {
        let mut syms = SymbolTable::new();
        let mut b = TwigBuilder::new(&mut syms, "dblp");
        b.absolute();
        let q = b.finish();
        assert!(q.is_absolute());
    }

    #[test]
    fn preds_attach_strip_and_display() {
        let mut syms = SymbolTable::new();
        let mut b = TwigBuilder::new(&mut syms, "book");
        b.child("price", EdgeKind::Child);
        b.pred(PredOp::Lt, PredValue::Num(10.0));
        b.up();
        let q = b.finish();
        assert_eq!(q.preds().len(), 1);
        assert_eq!(q.display(&syms), "book(price{< 10})");
        // The stripped query is the structural part, displayed without
        // any predicate decoration.
        let bare = q.without_preds();
        assert!(bare.preds().is_empty());
        assert_eq!(bare.display(&syms), "book(price)");
        // Predicates don't force the EPIndex: the structural part is
        // element-only.
        assert!(!q.needs_extended());
    }

    #[test]
    fn accepts_follows_operator_semantics() {
        let num = |op| ValuePred {
            node: 0,
            op,
            value: PredValue::Num(10.0),
        };
        assert!(num(PredOp::Lt).accepts("9.5"));
        assert!(!num(PredOp::Lt).accepts("10"));
        assert!(num(PredOp::Le).accepts("10.0"));
        assert!(num(PredOp::Eq).accepts("10"));
        assert!(num(PredOp::Ne).accepts("11"));
        assert!(num(PredOp::Gt).accepts("1e3"));
        assert!(num(PredOp::Ge).accepts("10"));
        // Non-numeric text never satisfies a numeric predicate.
        assert!(!num(PredOp::Ne).accepts("cheap"));
        let s = |op, lit: &str| ValuePred {
            node: 0,
            op,
            value: PredValue::Str(lit.to_string()),
        };
        assert!(s(PredOp::Eq, "x7").accepts("x7"));
        assert!(!s(PredOp::Eq, "x7").accepts("x70"));
        assert!(s(PredOp::StartsWith, "x7").accepts("x70"));
        assert!(!s(PredOp::StartsWith, "x7").accepts("ax7"));
    }
}
