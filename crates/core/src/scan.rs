//! Index-free reference matcher.
//!
//! Runs the same two phases as the disk index — subsequence matching
//! (here: in-memory enumeration over each document's LPS) followed by
//! the Algorithm 2 refinements — without any storage. Useful for small
//! collections, and as a mid-point oracle: `scan == index` validates the
//! virtual-trie filtering, `scan == naive` validates the Prüfer theory.

use std::collections::HashSet;

use prix_prufer::{
    embedding, refine_match, subseq::for_each_subsequence, ExtendedTree, PruferSeq, RefineCtx,
};
use prix_xml::{Collection, PostNum, Sym};

use crate::index::TwigMatch;
use crate::query::TwigQuery;

/// Matches `q` against every document of `collection` by in-memory
/// filtering + refinement. Extended sequences are used automatically
/// when the query requires them (`q.needs_extended()`), mirroring the
/// §5.6 optimizer.
pub fn scan_matches(collection: &Collection, q: &TwigQuery, dummy: Sym) -> Vec<TwigMatch> {
    let extended = q.needs_extended();
    let (seq, edges, leaves, ext_of_orig) = if extended {
        let eq = q.extended(dummy);
        let mut ext_of_orig = vec![0 as PostNum; q.tree().len()];
        for (i, &orig) in eq.ext.orig_post.iter().enumerate() {
            if orig != 0 {
                ext_of_orig[(orig - 1) as usize] = (i + 1) as PostNum;
            }
        }
        (eq.seq, eq.edges, Vec::new(), Some(ext_of_orig))
    } else {
        (q.prufer(), q.edges_by_post(), q.leaves(), None)
    };
    if seq.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    let mut seen: HashSet<(u32, Vec<PostNum>)> = HashSet::new();
    for (doc_id, tree) in collection.iter() {
        let (doc_seq, doc_leaves, orig_map) = if extended {
            let ext = ExtendedTree::build(tree, dummy);
            let s = PruferSeq::regular(&ext.tree);
            let leaves = ext.tree.leaves();
            (s, leaves, Some(ext.orig_post))
        } else {
            (PruferSeq::regular(tree), tree.leaves(), None)
        };
        for_each_subsequence(&seq.lps, &doc_seq.lps, &mut |positions| {
            let ctx = RefineCtx {
                doc_nps: &doc_seq.nps,
                query_nps: &seq.nps,
                positions,
                edges: &edges,
                query_leaves: &leaves,
                doc_leaves: &doc_leaves,
                doc_lps: &doc_seq.lps,
                skip_leaf_check: extended,
            };
            if refine_match(&ctx) {
                let img = embedding(&seq.nps, positions, &doc_seq.nps);
                let base: Option<Vec<PostNum>> = match (&ext_of_orig, &orig_map) {
                    (None, None) => Some(img.clone()),
                    (Some(qmap), Some(dmap)) => {
                        let mut v = Vec::with_capacity(q.tree().len());
                        let mut ok = true;
                        for orig_q in 1..=q.tree().len() {
                            let e = qmap[orig_q - 1];
                            let oi = dmap[(img[(e - 1) as usize] - 1) as usize];
                            if oi == 0 {
                                ok = false;
                                break;
                            }
                            v.push(oi);
                        }
                        ok.then_some(v)
                    }
                    _ => unreachable!("query and doc extension always agree"),
                };
                if let Some(base) = base {
                    let root_ok = !q.is_absolute() || base[base.len() - 1] == tree.len() as PostNum;
                    if root_ok && seen.insert((doc_id, base.clone())) {
                        out.push(TwigMatch {
                            doc: doc_id,
                            embedding: base,
                        });
                    }
                }
            }
            true
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use prix_xml::SymbolTable;

    fn collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml("<P><Q><x/></Q><R><y/></R></P>").unwrap();
        c.add_xml("<root><P><Q><x/></Q></P><P><R><y/></R></P></root>")
            .unwrap();
        c.add_xml("<P><Z/><Q><x/></Q><W/><R><y/></R></P>").unwrap();
        c
    }

    fn dummy(c: &mut Collection) -> Sym {
        c.intern("\u{1}dummy")
    }

    #[test]
    fn scan_finds_twigs_without_false_alarms() {
        let mut c = collection();
        let d = dummy(&mut c);
        let mut syms: SymbolTable = c.symbols().clone();
        let q = parse_xpath("//P[./Q]/R", &mut syms).unwrap();
        let m = scan_matches(&c, &q, d);
        let docs: Vec<u32> = m.iter().map(|x| x.doc).collect();
        assert_eq!(docs, vec![0, 2]);
    }

    #[test]
    fn scan_handles_values() {
        let mut c = Collection::new();
        c.add_xml("<book><title>Gone</title></book>").unwrap();
        c.add_xml("<book><title>Other</title></book>").unwrap();
        let d = dummy(&mut c);
        let mut syms: SymbolTable = c.symbols().clone();
        let q = parse_xpath(r#"//book[./title="Gone"]"#, &mut syms).unwrap();
        let m = scan_matches(&c, &q, d);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].doc, 0);
    }

    #[test]
    fn multiple_embeddings_in_one_document() {
        let mut c = Collection::new();
        c.add_xml("<a><b><c/></b><b><c/></b></a>").unwrap();
        let d = dummy(&mut c);
        let mut syms: SymbolTable = c.symbols().clone();
        let q = parse_xpath("//a/b/c", &mut syms).unwrap();
        let m = scan_matches(&c, &q, d);
        assert_eq!(m.len(), 2, "both b/c branches are matches");
        assert_ne!(m[0].embedding, m[1].embedding);
    }

    #[test]
    fn embeddings_are_deduplicated() {
        // With extended sequences, a leaf's dummy can match several
        // child positions of the same data node; the projected embedding
        // must appear once.
        let mut c = Collection::new();
        c.add_xml("<a><b><u/><v/><w/></b></a>").unwrap();
        let d = dummy(&mut c);
        let mut syms: SymbolTable = c.symbols().clone();
        let q = parse_xpath("//b", &mut syms).unwrap();
        let m = scan_matches(&c, &q, d);
        assert_eq!(m.len(), 1);
    }
}
