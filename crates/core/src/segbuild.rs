//! Bulk segment construction: streaming documents into the immutable
//! segment files of `prix_storage::segment`.
//!
//! Two producers feed a segment:
//!
//! * [`BulkBuilder`] — `prix index --bulk`: documents stream straight
//!   from the parser into the external sorter, never materializing the
//!   whole collection's B⁺-trees. Memory is bounded by the sort-run
//!   budget; everything else spills to scratch files.
//! * Compaction (`PrixEngine::compact`) — replays the mutable tier's
//!   stored records through the same encoder, so a compacted segment is
//!   **byte-identical** to what a bulk build of the same documents would
//!   have produced (the property the `bulk_equals_incremental` suite
//!   pins).
//!
//! Both paths end at [`SegIndexBuilder`], a thin adapter that turns one
//! document into the segment builder's `(record, path, gaps)` triple.

use std::collections::HashSet;
use std::sync::Arc;

use prix_prufer::{ExtendedTree, MaxGapTable, PruferSeq};
use prix_storage::{
    env_temp_factory, ManifestSegment, SegmentBuilder, SegmentEnv, SEG_KIND_EP, SEG_KIND_RP,
};
use prix_xml::{parse_document, PostNum, Sym, SymbolTable, XmlTree};

use crate::engine::{EngineConfig, PrixEngine};
use crate::index::{
    encode_doc_record, encode_seg_index_meta, node_gaps, position_gaps, BuildStats, DocData,
    IndexError, IndexKind, Result,
};
use crate::valix::ValixEntry;

/// Default in-memory sort budget per segment build (64 MiB, the
/// `--run-mem-mb` default).
pub const DEFAULT_RUN_MEM_BYTES: usize = 64 << 20;

/// Reconstructs the per-position fine gaps from an NPS alone —
/// equivalent to `position_gaps(nps, node_gaps(tree))` without the
/// tree: the children of the node with postorder `p` are exactly the
/// positions `i` with `nps[i] == p` (child postorder `i + 1`, already
/// ascending), so the node's gap is `last - first` when it has two or
/// more children. Compaction uses this to replay stored records through
/// the segment encoder bit-identically to the original bulk path.
pub(crate) fn gaps_from_nps(nps: &[PostNum]) -> Vec<u32> {
    let hi = nps.len() + 2; // postorders run 1..=len+1
    let mut first = vec![0u32; hi];
    let mut last = vec![0u32; hi];
    for (i, &p) in nps.iter().enumerate() {
        let child = (i + 1) as u32;
        if first[p as usize] == 0 {
            first[p as usize] = child;
        }
        last[p as usize] = child;
    }
    nps.iter()
        .map(|&p| {
            let (f, l) = (first[p as usize], last[p as usize]);
            if f != 0 && l > f {
                l - f
            } else {
                0
            }
        })
        .collect()
}

/// Adapter from documents to one segment file of a given index kind.
/// Wraps [`SegmentBuilder`] with the PRIX-level encoding: Prüfer
/// sequences, refinement records, fine gaps, and the index-metadata
/// blob written at [`SegIndexBuilder::finish`].
pub(crate) struct SegIndexBuilder {
    kind: IndexKind,
    dummy: Sym,
    inner: SegmentBuilder,
}

impl SegIndexBuilder {
    pub(crate) fn new(
        env: &Arc<dyn SegmentEnv>,
        suffix: &str,
        kind: IndexKind,
        dummy: Sym,
        doc_base: u32,
        run_mem_bytes: usize,
    ) -> Result<Self> {
        let out = env.create(suffix)?;
        let seg_kind = match kind {
            IndexKind::Regular => SEG_KIND_RP,
            IndexKind::Extended => SEG_KIND_EP,
        };
        Ok(SegIndexBuilder {
            kind,
            dummy,
            inner: SegmentBuilder::new(
                out,
                env_temp_factory(env),
                seg_kind,
                doc_base,
                run_mem_bytes,
            ),
        })
    }

    /// Streams one parsed document in, folding its gaps into `maxgap`
    /// (the caller owns the table because it spans the whole segment).
    pub(crate) fn add_tree(&mut self, tree: &XmlTree, maxgap: &mut MaxGapTable) -> Result<()> {
        let n_orig = tree.len() as u32;
        let (record, path, gaps) = match self.kind {
            IndexKind::Regular => {
                maxgap.add_tree(tree);
                let seq = PruferSeq::regular(tree);
                let gaps = position_gaps(&seq.nps, &node_gaps(tree));
                let record = encode_doc_record(&seq.nps, &seq.lps, &tree.leaves(), None, n_orig);
                let path = seq.lps.iter().map(|s| s.0).collect();
                (record, path, gaps)
            }
            IndexKind::Extended => {
                let ext = ExtendedTree::build(tree, self.dummy);
                maxgap.add_tree(&ext.tree);
                let seq = PruferSeq::regular(&ext.tree);
                let gaps = position_gaps(&seq.nps, &node_gaps(&ext.tree));
                let record = encode_doc_record(
                    &seq.nps,
                    &seq.lps,
                    &ext.tree.leaves(),
                    Some(&ext.orig_post),
                    n_orig,
                );
                let path = seq.lps.iter().map(|s| s.0).collect();
                (record, path, gaps)
            }
        };
        self.inner.add_doc(&record, path, gaps)?;
        Ok(())
    }

    /// Streams one already-indexed document in from its stored
    /// refinement data (the compaction path).
    pub(crate) fn add_doc_data(&mut self, d: &DocData) -> Result<()> {
        let gaps = gaps_from_nps(&d.nps);
        let record = encode_doc_record(&d.nps, &d.lps, &d.leaves, d.orig_map.as_deref(), d.n_orig);
        let path = d.lps.iter().map(|s| s.0).collect();
        self.inner.add_doc(&record, path, gaps)?;
        Ok(())
    }

    /// Sorts, merges, labels, and writes the segment (header, CRC
    /// table, metadata blob), then syncs it.
    pub(crate) fn finish(
        self,
        maxgap: &MaxGapTable,
        childless: &HashSet<Sym>,
    ) -> Result<BuildStats> {
        let (kind, dummy) = (self.kind, self.dummy);
        let st = self.inner.finish(|st| {
            let bs = BuildStats {
                trie_nodes: st.nodes as usize,
                trie_paths: st.leaves as usize,
                sequences: st.sequences,
                max_path_sharing: st.max_path_sharing,
                underflows: 0,
                total_seq_len: st.total_path_len,
            };
            encode_seg_index_meta(kind, dummy, maxgap, childless, &bs)
        })?;
        Ok(BuildStats {
            trie_nodes: st.nodes as usize,
            trie_paths: st.leaves as usize,
            sequences: st.sequences,
            max_path_sharing: st.max_path_sharing,
            underflows: 0,
            total_seq_len: st.total_path_len,
        })
    }
}

/// Streaming bulk index build (`prix index --bulk`).
///
/// Documents are parsed one at a time and pushed straight into the
/// per-kind external sorters; nothing but the symbol table, the MaxGap
/// tables, and the bounded sort runs stays in memory. [`finish`]
/// merges the runs into one immutable segment per kind, creates an
/// empty mutable generation for future inserts, and writes the manifest
/// **last** — a crash anywhere before that single write leaves the
/// previous manifest (or, on a fresh path, nothing) in charge.
///
/// Rebuilding over an existing segmented database allocates the next
/// generation's file names, so the old generation keeps serving until
/// the manifest swap; its files are unlinked only after the commit.
///
/// [`finish`]: BulkBuilder::finish
pub struct BulkBuilder {
    cfg: EngineConfig,
    env: Arc<dyn SegmentEnv>,
    syms: SymbolTable,
    generation: u64,
    prev: Option<prix_storage::Manifest>,
    rp: Option<SegIndexBuilder>,
    ep: Option<SegIndexBuilder>,
    rp_maxgap: MaxGapTable,
    ep_maxgap: MaxGapTable,
    childless: HashSet<Sym>,
    valix: Vec<ValixEntry>,
    n_docs: u32,
}

impl BulkBuilder {
    /// A bulk build at `cfg.path` (in-memory when `path` is `None`).
    pub fn new(cfg: EngineConfig) -> Result<Self> {
        Self::new_mem(cfg, DEFAULT_RUN_MEM_BYTES)
    }

    /// [`BulkBuilder::new`] with an explicit sort-run budget in bytes
    /// (`prix index --bulk --run-mem-mb N`).
    pub fn new_mem(cfg: EngineConfig, run_mem_bytes: usize) -> Result<Self> {
        let env: Arc<dyn SegmentEnv> = match &cfg.path {
            Some(p) => Arc::new(prix_storage::FileSegEnv::new(p.clone())),
            None => Arc::new(prix_storage::MemSegEnv::new()),
        };
        Self::with_env_mem(cfg, env, run_mem_bytes)
    }

    /// A bulk build with the environment supplied explicitly (tests
    /// inject fault-wrapped environments here).
    pub fn with_env(cfg: EngineConfig, env: Arc<dyn SegmentEnv>) -> Result<Self> {
        Self::with_env_mem(cfg, env, DEFAULT_RUN_MEM_BYTES)
    }

    /// [`BulkBuilder::with_env`] with an explicit sort-run budget in
    /// bytes (`prix index --bulk --run-mem-mb N`).
    pub fn with_env_mem(
        cfg: EngineConfig,
        env: Arc<dyn SegmentEnv>,
        run_mem_bytes: usize,
    ) -> Result<Self> {
        if !cfg.build_rp && !cfg.build_ep {
            return Err(IndexError::Unsupported(
                "bulk build needs at least one index kind".into(),
            ));
        }
        // A rebuild over a live segmented database takes the next
        // generation's names; a fresh path starts at generation 1.
        let prev = if env.exists(".seg")? {
            prix_storage::Manifest::read_from(&*env.open(".seg")?)?
        } else {
            None
        };
        let generation = prev.as_ref().map_or(1, |m| m.generation + 1);
        let mut syms = SymbolTable::new();
        let dummy = syms.intern("\u{1}prix-dummy");
        let rp = cfg
            .build_rp
            .then(|| {
                SegIndexBuilder::new(
                    &env,
                    &format!(".g{generation}.rp.seg"),
                    IndexKind::Regular,
                    dummy,
                    0,
                    run_mem_bytes,
                )
            })
            .transpose()?;
        let ep = cfg
            .build_ep
            .then(|| {
                SegIndexBuilder::new(
                    &env,
                    &format!(".g{generation}.ep.seg"),
                    IndexKind::Extended,
                    dummy,
                    0,
                    run_mem_bytes,
                )
            })
            .transpose()?;
        Ok(BulkBuilder {
            cfg,
            env,
            syms,
            generation,
            prev,
            rp,
            ep,
            rp_maxgap: MaxGapTable::new(),
            ep_maxgap: MaxGapTable::new(),
            childless: HashSet::new(),
            valix: Vec::new(),
            n_docs: 0,
        })
    }

    /// Parses and streams one XML document. Returns its document id.
    pub fn add_xml(&mut self, xml: &str) -> Result<u32> {
        let tree = parse_document(xml, &mut self.syms)
            .map_err(|e| IndexError::Unsupported(format!("parse error: {e}")))?;
        self.add_tree(&tree)
    }

    /// Streams each element child of `wrapper`'s root as its own
    /// document (the `--split` convention for monolithic exports).
    pub fn add_xml_split(&mut self, wrapper: &str) -> Result<Vec<u32>> {
        let tree = parse_document(wrapper, &mut self.syms)
            .map_err(|e| IndexError::Unsupported(format!("parse error: {e}")))?;
        let mut ids = Vec::new();
        for &c in tree.children(tree.root()) {
            if tree.kind(c) == prix_xml::NodeKind::Element {
                ids.push(self.add_tree(&tree.subtree(c))?);
            }
        }
        if ids.is_empty() {
            return Err(IndexError::Unsupported(
                "wrapper has no element children to index".into(),
            ));
        }
        Ok(ids)
    }

    /// Streams one parsed tree (must use this builder's symbol table).
    pub fn add_tree(&mut self, tree: &XmlTree) -> Result<u32> {
        for node in tree.nodes() {
            if tree.is_leaf(node) {
                self.childless.insert(tree.label(node));
                if node != tree.root() {
                    let post = tree.postorder(node);
                    let parent = tree.parent_post(post).expect("non-root leaf has a parent");
                    self.valix.push(ValixEntry {
                        tag: tree.label_at(parent),
                        value: self.syms.name(tree.label(node)).to_owned(),
                        doc: self.n_docs,
                        post,
                    });
                }
            }
        }
        if let Some(rp) = &mut self.rp {
            rp.add_tree(tree, &mut self.rp_maxgap)?;
        }
        if let Some(ep) = &mut self.ep {
            ep.add_tree(tree, &mut self.ep_maxgap)?;
        }
        let id = self.n_docs;
        self.n_docs += 1;
        Ok(id)
    }

    /// Documents streamed so far.
    pub fn doc_count(&self) -> u32 {
        self.n_docs
    }

    /// Mutable access to the builder's symbol table (callers parsing
    /// trees themselves intern labels here).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.syms
    }

    /// Merges the sort runs into the segment files, creates the empty
    /// mutable generation, commits the manifest (the single atomic
    /// publish point), unlinks any previous generation, and opens the
    /// finished engine.
    pub fn finish(self) -> Result<PrixEngine> {
        let BulkBuilder {
            cfg,
            env,
            syms,
            generation,
            prev,
            rp,
            ep,
            rp_maxgap,
            ep_maxgap,
            childless,
            valix,
            n_docs,
        } = self;
        let mut segments: Vec<ManifestSegment> = Vec::new();
        if let Some(rp) = rp {
            rp.finish(&rp_maxgap, &childless)?;
            segments.push(ManifestSegment {
                kind: SEG_KIND_RP,
                suffix: format!(".g{generation}.rp.seg"),
                doc_base: 0,
                n_docs,
            });
        }
        if let Some(ep) = ep {
            ep.finish(&ep_maxgap, &childless)?;
            segments.push(ManifestSegment {
                kind: SEG_KIND_EP,
                suffix: format!(".g{generation}.ep.seg"),
                doc_base: 0,
                n_docs,
            });
        }
        let mutable_suffix = if generation == 1 {
            String::new()
        } else {
            format!(".g{generation}")
        };
        let engine =
            PrixEngine::from_bulk(cfg, env, syms, generation, mutable_suffix, segments, valix)?;
        // The manifest has committed; the previous generation's files
        // are dead weight now. Unlinking is safe even under live
        // readers (their open handles keep the bytes).
        if let Some(prev) = prev {
            for s in &prev.segments {
                let _ = engine.seg_env().remove(&s.suffix);
            }
            for side in ["", ".sum", ".wal"] {
                let _ = engine
                    .seg_env()
                    .remove(&format!("{}{side}", prev.mutable_suffix));
            }
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_from_nps_matches_tree_derivation() {
        let mut syms = SymbolTable::new();
        for xml in [
            "<a><b><c/><d/></b><e/></a>",
            "<a><b>v</b></a>",
            "<r><x><y><z/></y></x><x/><x><q/></x></r>",
            "<one/>",
        ] {
            let tree = parse_document(xml, &mut syms).unwrap();
            let seq = PruferSeq::regular(&tree);
            let expect = position_gaps(&seq.nps, &node_gaps(&tree));
            assert_eq!(gaps_from_nps(&seq.nps), expect, "{xml}");
            let dummy = syms.intern("\u{1}d");
            let ext = ExtendedTree::build(&tree, dummy);
            let eseq = PruferSeq::regular(&ext.tree);
            let expect = position_gaps(&eseq.nps, &node_gaps(&ext.tree));
            assert_eq!(gaps_from_nps(&eseq.nps), expect, "ext {xml}");
        }
    }
}
