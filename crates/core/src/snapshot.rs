//! Snapshot-isolated online ingest: versioned catalogs over the engine.
//!
//! The paper treats the index as a build-once artifact with §5.2.1's
//! dynamic labeling for incremental inserts; this module makes those
//! inserts safe *while serving*. The scheme is epoch-based multi-
//! versioning at two levels:
//!
//! * **Catalog level** — [`EngineSnapshot`] freezes everything a query
//!   needs (symbol table, RP/EP index handles, the optimizer's
//!   arrangement limit) at one published epoch. Snapshots are immutable
//!   and cheap to share (`Arc`); queries against one snapshot are
//!   bit-identical no matter what the writer does concurrently.
//! * **Page level** — each snapshot holds a [`prix_storage::EpochPin`].
//!   While pinned, the buffer pool serves any page the writer has since
//!   dirtied from its captured pre-image (see
//!   `BufferPool::begin_ingest`), so the frozen index handles read the
//!   exact bytes of their epoch.
//!
//! [`SharedEngine`] is the concurrency wrapper: a single-writer
//! [`SharedEngine::ingest`] path that batches documents through one
//! save (one WAL group commit), and a wait-free-for-readers
//! [`SharedEngine::snapshot`] that hands out the current epoch's view.
//! Publication is atomic — the two-barrier WAL commit inside
//! `PrixEngine::save` *is* the durability point, and swapping the
//! current snapshot afterwards is the visibility point. A crash between
//! the two recovers to exactly the new epoch (the commit landed); a
//! crash before the commit barrier recovers to exactly the old one.
//!
//! Query parsing against a snapshot never mutates the frozen symbol
//! table: unknown labels are parked in a [`ScratchSyms`] overlay past
//! the table's end, where they match nothing (no tag range in any
//! index), which is exactly the right answer for a label the pinned
//! epoch has never seen.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use prix_storage::EpochPin;
use prix_xml::{DocId, ScratchSyms, SymbolTable};

use crate::engine::{
    collect_tiers, explain_pred, pick_index_from, reconstruct_from_tiers, run_query_batch,
    run_query_forced, run_query_opts, run_query_unordered, PrixEngine, QueryOutcome, SegTier,
};
use crate::index::{ExecOpts, IndexError, IndexKind, PrixIndex, Result};
use crate::plan::{AltProvider, EngineCaps, EngineChoice, Planner, PrixBackend, Routed, Router};
use crate::query::TwigQuery;
use crate::valix::{PredEval, Valix};
use crate::xpath::{parse_xpath, XPathError};

/// An immutable, epoch-pinned view of a [`PrixEngine`].
///
/// Everything reachable from a snapshot reads as of its
/// [`EngineSnapshot::epoch`]: the index handles are clones sharing the
/// buffer pool, and every query method installs the snapshot's epoch
/// pin for the duration of the call so the pool serves pre-images of
/// any page a concurrent ingest has rewritten.
pub struct EngineSnapshot {
    epoch: u64,
    syms: Arc<SymbolTable>,
    rp: Option<PrixIndex>,
    ep: Option<PrixIndex>,
    /// Immutable segment tiers at capture time. The tiers themselves
    /// never change after publication; cloning shares the underlying
    /// segment readers. Epoch pinning is only needed for the mutable
    /// `rp`/`ep` handles above.
    segments: Vec<SegTier>,
    generation: u64,
    arrangement_limit: usize,
    /// The engine's planner, *shared* (not frozen): observed stage
    /// clocks from queries served off this snapshot feed the same
    /// statistics later plans read. Plans are advisory — sharing never
    /// affects result bytes.
    planner: Arc<Planner>,
    /// The value index at capture time. A clone of the engine's handle:
    /// shares pages through the pool, and under this snapshot's epoch
    /// pin reads the frozen bytes of its epoch like `rp`/`ep` do.
    valix: Option<Valix>,
    pin: EpochPin,
}

impl EngineSnapshot {
    fn capture(engine: &PrixEngine) -> Self {
        let pin = engine.pool().pin_epoch();
        EngineSnapshot {
            epoch: pin.epoch(),
            syms: Arc::new(engine.collection().symbols().clone()),
            rp: engine.rp_index().cloned(),
            ep: engine.ep_index().cloned(),
            segments: engine.seg_tiers().to_vec(),
            generation: engine.generation(),
            arrangement_limit: engine.arrangement_limit(),
            planner: Arc::clone(engine.planner()),
            valix: engine.valix().cloned(),
            pin,
        }
    }

    /// Builds the predicate evaluator for `q` against this epoch's
    /// value index (`None` when the query has no predicates).
    fn pred_eval(&self, q: &TwigQuery) -> Result<Option<PredEval>> {
        PredEval::build(q, self.valix.as_ref(), &self.syms)
    }

    /// The tier list this snapshot's queries descend.
    fn tiers(&self) -> Vec<crate::engine::TierRefs<'_>> {
        collect_tiers(&self.segments, self.rp.as_ref(), self.ep.as_ref())
    }

    /// Immutable segment tiers visible at this epoch.
    pub fn segment_tiers(&self) -> usize {
        self.segments.len()
    }

    /// Segment generation of the manifest visible at this epoch
    /// (0 = the database has never been segmented).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Documents living in immutable segments at this epoch.
    pub fn segment_docs(&self) -> u64 {
        self.segments.iter().map(|t| u64::from(t.n_docs)).sum()
    }

    /// Documents living in the mutable delta at this epoch.
    pub fn mutable_docs(&self) -> usize {
        self.rp
            .as_ref()
            .or(self.ep.as_ref())
            .map_or(0, |i| i.doc_count())
    }

    /// The published epoch this view is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen symbol table (safe to share across threads).
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// Parses an XPath against the frozen symbol table without
    /// mutating it. Labels unknown at this epoch resolve to scratch
    /// symbols that match nothing.
    pub fn parse_query(&self, xpath: &str) -> std::result::Result<TwigQuery, XPathError> {
        let mut scratch = ScratchSyms::new(&self.syms);
        parse_xpath(xpath, &mut scratch)
    }

    /// Executes an ordered twig query against this epoch's view.
    pub fn query(&self, q: &TwigQuery) -> Result<QueryOutcome> {
        self.query_opts(q, &ExecOpts::default())
    }

    /// [`EngineSnapshot::query`] with execution options.
    pub fn query_opts(&self, q: &TwigQuery, opts: &ExecOpts) -> Result<QueryOutcome> {
        let _pin = self.pin.guard();
        let pred = self.pred_eval(q)?;
        run_query_opts(&self.tiers(), q, opts, pred.as_ref())
    }

    /// Executes a batch across `threads` workers; every worker reads
    /// this snapshot's epoch (the pin is installed per query, so it is
    /// in effect on each worker thread).
    pub fn query_batch(&self, queries: &[TwigQuery], threads: usize) -> Result<Vec<QueryOutcome>> {
        self.query_batch_opts(queries, threads, &ExecOpts::default())
    }

    /// [`EngineSnapshot::query_batch`] with execution options.
    pub fn query_batch_opts(
        &self,
        queries: &[TwigQuery],
        threads: usize,
        opts: &ExecOpts,
    ) -> Result<Vec<QueryOutcome>> {
        run_query_batch(queries, threads, |q| {
            let _pin = self.pin.guard();
            let pred = self.pred_eval(q)?;
            run_query_opts(&self.tiers(), q, opts, pred.as_ref())
        })
    }

    /// Executes an unordered twig query (§5.7 arrangements) against
    /// this epoch's view.
    pub fn query_unordered(&self, q: &TwigQuery) -> Result<QueryOutcome> {
        self.query_unordered_opts(q, &ExecOpts::default())
    }

    /// [`EngineSnapshot::query_unordered`] with execution options.
    pub fn query_unordered_opts(&self, q: &TwigQuery, opts: &ExecOpts) -> Result<QueryOutcome> {
        let _pin = self.pin.guard();
        let pred = self.pred_eval(q)?;
        run_query_unordered(
            &self.tiers(),
            self.arrangement_limit,
            q,
            opts,
            Some(&self.planner),
            pred.as_ref(),
        )
    }

    /// The engine capabilities the planner scores over at this epoch.
    pub fn engine_caps(&self) -> EngineCaps {
        let tiers = self.tiers();
        let (rp, ep) = tiers[0];
        let alt = tiers.iter().all(|(rp, _)| rp.is_some());
        EngineCaps {
            rp: rp.is_some(),
            ep: ep.is_some(),
            vist: alt,
            twigstack: alt,
        }
    }

    /// The shared planner.
    pub fn planner(&self) -> &Arc<Planner> {
        &self.planner
    }

    /// Plans and executes `q` through the cost-based router against
    /// this epoch's view (see `PrixEngine::query_routed`).
    pub fn query_routed(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        forced: Option<EngineChoice>,
        alts: &dyn AltProvider,
    ) -> Result<Routed> {
        Router {
            planner: &self.planner,
            prix: self,
            alts,
        }
        .route(q, opts, forced)
    }

    /// Rebuilds the document trees this epoch can see from the RP
    /// index's stored sequences (see
    /// `PrixEngine::reconstruct_collection`); the alternative engines
    /// encode their substrates from the result.
    pub fn reconstruct_collection(&self) -> Result<prix_xml::Collection> {
        let _pin = self.pin.guard();
        reconstruct_from_tiers(&self.tiers(), (*self.syms).clone())
    }

    /// Describes the plan for an XPath at this epoch. Parses against a
    /// private copy of the symbol table (explain needs names for every
    /// query label, including ones this epoch has never seen).
    pub fn explain(&self, xpath: &str) -> Result<String> {
        let mut syms = (*self.syms).clone();
        let q = parse_xpath(xpath, &mut syms)
            .map_err(|e| IndexError::Unsupported(format!("parse error: {e}")))?;
        let _pin = self.pin.guard();
        let tiers = self.tiers();
        let (rp, ep) = tiers[0];
        let idx = pick_index_from(rp, ep, &q)?;
        let mut out = format!("index: {}\n", idx.kind());
        out.push_str(&idx.explain(&q, &syms)?);
        if let Some(pred) = PredEval::build(&q, self.valix.as_ref(), &syms)? {
            out.push_str(&explain_pred(&q, &pred, &syms));
        }
        let report = self
            .planner
            .decide(&q, self.engine_caps(), &ExecOpts::default(), None)?;
        out.push_str(&report.render());
        Ok(out)
    }
}

impl PrixBackend for EngineSnapshot {
    fn prix_caps(&self) -> (bool, bool) {
        let tiers = self.tiers();
        let (rp, ep) = tiers[0];
        (rp.is_some(), ep.is_some())
    }

    fn execute_prix(
        &self,
        q: &TwigQuery,
        opts: &ExecOpts,
        force: Option<IndexKind>,
    ) -> Result<QueryOutcome> {
        let _pin = self.pin.guard();
        let pred = self.pred_eval(q)?;
        run_query_forced(&self.tiers(), q, opts, force, pred.as_ref())
    }
}

/// What one [`SharedEngine::ingest`] call did.
#[derive(Debug)]
pub struct IngestReport {
    /// Ids assigned to accepted documents, in input order.
    pub accepted: Vec<DocId>,
    /// `(input position, reason)` for documents rejected cleanly
    /// (parse errors, trie scope exhausted). Rejection never touches
    /// either index.
    pub rejected: Vec<(usize, String)>,
    /// The epoch readers see the accepted documents at. Unchanged from
    /// the previous epoch when nothing was accepted.
    pub epoch: u64,
}

/// A callback invoked with the new epoch after each successful publish.
type PublishHook = Box<dyn Fn(u64) + Send + Sync>;

/// A [`PrixEngine`] shared between one writer and any number of
/// snapshot readers.
///
/// Readers call [`SharedEngine::snapshot`] (a mutex-protected `Arc`
/// clone — no page I/O, no symbol-table lock) and run queries against
/// the returned view for as long as they like; the view never changes
/// underneath them. The writer calls [`SharedEngine::ingest`], which
/// serializes on an internal lock, validates and inserts a batch,
/// commits it durably with one save, and atomically publishes a new
/// snapshot.
pub struct SharedEngine {
    writer: Mutex<PrixEngine>,
    current: Mutex<Arc<EngineSnapshot>>,
    poisoned: AtomicBool,
    /// The engine's *current* buffer pool, mirrored here so metrics
    /// and shutdown never block on the writer lock. Behind its own
    /// mutex because [`SharedEngine::compact`] swaps the pool.
    pool: Mutex<Arc<prix_storage::BufferPool>>,
    /// Pools superseded by compaction. Held weakly: a retired pool
    /// stays alive only while some snapshot still pins it, and
    /// [`SharedEngine::pinned_epochs`] keeps counting those readers
    /// until they drain.
    retired_pools: Mutex<Vec<std::sync::Weak<prix_storage::BufferPool>>>,
    /// Lifetime segment-block I/O counters (shared with the engine;
    /// compaction never resets them).
    seg_io: Arc<prix_storage::IoStats>,
    recovery: Option<prix_storage::RecoveryReport>,
    /// Called with the new epoch right after each publish becomes
    /// visible (serving layers hang cache invalidation off this).
    on_publish: Mutex<Option<PublishHook>>,
}

impl SharedEngine {
    /// Wraps an engine, publishing its current state as epoch-pinned
    /// snapshot number one.
    pub fn new(engine: PrixEngine) -> Self {
        let current = Arc::new(EngineSnapshot::capture(&engine));
        let pool = Arc::clone(engine.pool());
        let seg_io = Arc::clone(engine.seg_io());
        let recovery = engine.recovery();
        SharedEngine {
            writer: Mutex::new(engine),
            current: Mutex::new(current),
            poisoned: AtomicBool::new(false),
            pool: Mutex::new(pool),
            retired_pools: Mutex::new(Vec::new()),
            seg_io,
            recovery,
            on_publish: Mutex::new(None),
        }
    }

    /// Registers a callback invoked with the new epoch *after* every
    /// successful publish — the snapshot swap has already happened, so
    /// anything the callback invalidates can be repopulated from the
    /// new epoch immediately. One callback at a time; registering
    /// replaces the previous one.
    pub fn set_on_publish(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        *self.on_publish.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(hook));
    }

    /// The engine's *current* buffer pool (metrics, shutdown flush).
    /// Does not take the writer lock. Compaction replaces the pool, so
    /// callers get a clone of the live `Arc` rather than a reference.
    pub fn pool(&self) -> Arc<prix_storage::BufferPool> {
        Arc::clone(&self.pool.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Lifetime segment-block I/O counters (`/metrics`). Never reset,
    /// even across compaction pool swaps.
    pub fn seg_io(&self) -> &Arc<prix_storage::IoStats> {
        &self.seg_io
    }

    /// Epoch-pin observability aggregated across the live pool *and*
    /// every pool retired by compaction that old snapshots still hold:
    /// `(active pins, oldest pinned epoch)`. Dead retired pools are
    /// pruned on the way.
    pub fn pinned_epochs(&self) -> (usize, Option<u64>) {
        let mut count = 0usize;
        let mut oldest: Option<u64> = None;
        let mut fold = |(c, o): (usize, Option<u64>)| {
            count += c;
            oldest = match (oldest, o) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        fold(self.pool().pinned_epochs());
        let mut retired = self.retired_pools.lock().unwrap_or_else(|e| e.into_inner());
        retired.retain(|w| match w.upgrade() {
            Some(p) => {
                fold(p.pinned_epochs());
                true
            }
            None => false,
        });
        (count, oldest)
    }

    /// Folds the mutable delta into immutable segments and publishes
    /// the compacted view (see [`PrixEngine::compact`]). Serializes on
    /// the writer lock like ingest. Returns the published epoch, or
    /// `None` when the delta was empty and nothing changed. Snapshots
    /// taken before the call keep answering bit-identically from the
    /// retired pool and the old segment set.
    pub fn compact(&self) -> Result<Option<u64>> {
        let mut engine = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if self.is_poisoned() {
            return Err(IndexError::Unsupported(
                "engine poisoned by an earlier failed ingest; reopen the database".into(),
            ));
        }
        match engine.compact() {
            Ok(false) => Ok(None),
            Ok(true) => {
                // The engine swapped in a fresh pool; mirror the swap
                // here and keep a weak handle on the old pool so its
                // pinned readers stay observable until they drain.
                let new_pool = Arc::clone(engine.pool());
                {
                    let mut slot = self.pool.lock().unwrap_or_else(|e| e.into_inner());
                    let old = std::mem::replace(&mut *slot, new_pool);
                    self.retired_pools
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(Arc::downgrade(&old));
                }
                let snap = Arc::new(EngineSnapshot::capture(&engine));
                let epoch = snap.epoch();
                *self.current.lock().unwrap_or_else(|e| e.into_inner()) = snap;
                if let Some(hook) = self
                    .on_publish
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                {
                    hook(epoch);
                }
                Ok(Some(epoch))
            }
            Err(e) => {
                // Compaction failed at an unknown point; the in-memory
                // state may be mid-swap. Readers keep the last good
                // snapshot, further writes are refused.
                self.poisoned.store(true, Ordering::Release);
                Err(e)
            }
        }
    }

    /// What crash recovery did when the wrapped engine was opened.
    pub fn recovery(&self) -> Option<prix_storage::RecoveryReport> {
        self.recovery
    }

    /// The current published snapshot. Holding the returned `Arc` pins
    /// its epoch: the buffer pool retains pre-images of every page a
    /// later ingest rewrites until the snapshot is dropped.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Whether a failed ingest has poisoned the writer. Reads keep
    /// serving the last published snapshot; further ingests are
    /// refused.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Ingests a batch of XML documents and publishes a new epoch.
    ///
    /// Blocks until the writer lock is available; see
    /// [`SharedEngine::try_ingest`] for the non-blocking variant
    /// serving layers use for admission control.
    pub fn ingest(&self, docs: &[String]) -> Result<IngestReport> {
        let guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.ingest_locked(guard, |e| e.ingest_batch(docs))
    }

    /// [`SharedEngine::ingest`] over a wrapper document whose root's
    /// element children each become one indexed document (see
    /// `PrixEngine::ingest_batch_split`).
    pub fn ingest_split(&self, wrapper: &str) -> Result<IngestReport> {
        let guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.ingest_locked(guard, |e| e.ingest_batch_split(wrapper))
    }

    /// [`SharedEngine::ingest`] that fails fast with `None` when
    /// another ingest holds the writer lock, so servers can shed load
    /// (HTTP 503) instead of queueing unboundedly.
    pub fn try_ingest(&self, docs: &[String]) -> Option<Result<IngestReport>> {
        self.try_writer()
            .map(|guard| self.ingest_locked(guard, |e| e.ingest_batch(docs)))
    }

    /// Non-blocking [`SharedEngine::ingest_split`].
    pub fn try_ingest_split(&self, wrapper: &str) -> Option<Result<IngestReport>> {
        self.try_writer()
            .map(|guard| self.ingest_locked(guard, |e| e.ingest_batch_split(wrapper)))
    }

    fn try_writer(&self) -> Option<std::sync::MutexGuard<'_, PrixEngine>> {
        match self.writer.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
        }
    }

    fn ingest_locked(
        &self,
        mut engine: std::sync::MutexGuard<'_, PrixEngine>,
        run: impl FnOnce(&mut PrixEngine) -> Result<crate::engine::IngestOutcome>,
    ) -> Result<IngestReport> {
        if self.is_poisoned() {
            return Err(IndexError::Unsupported(
                "engine poisoned by an earlier failed ingest; reopen the database".into(),
            ));
        }
        engine.pool().begin_ingest();
        match run(&mut engine) {
            Ok(outcome) if outcome.accepted.is_empty() => {
                // Nothing validated, nothing written: rejections are
                // read-only, so this abort has no pre-images to
                // restore.
                engine.pool().abort_ingest().map_err(IndexError::Storage)?;
                Ok(IngestReport {
                    accepted: outcome.accepted,
                    rejected: outcome.rejected,
                    epoch: engine.pool().published_epoch(),
                })
            }
            Ok(outcome) => {
                // The save inside `ingest_batch` was the durability
                // point; publishing moves the epoch and swapping the
                // snapshot makes it visible. The new snapshot's pin at
                // the new epoch replaces the old one's role of keeping
                // in-flight pre-images alive.
                let epoch = engine.pool().publish_ingest();
                let snap = Arc::new(EngineSnapshot::capture(&engine));
                debug_assert_eq!(snap.epoch(), epoch);
                *self.current.lock().unwrap_or_else(|e| e.into_inner()) = snap;
                if let Some(hook) = self
                    .on_publish
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                {
                    hook(epoch);
                }
                Ok(IngestReport {
                    accepted: outcome.accepted,
                    rejected: outcome.rejected,
                    epoch,
                })
            }
            Err(e) => {
                // A document passed validation but failed mid-insert:
                // the in-memory index state is no longer trustworthy.
                // Roll the pool back to the published epoch and refuse
                // further writes; readers keep the last good snapshot.
                self.poisoned.store(true, Ordering::Release);
                let _ = engine.pool().abort_ingest();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use prix_xml::Collection;

    fn docs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    fn shared() -> SharedEngine {
        let mut coll = Collection::new();
        coll.add_xml("<a><b>hello</b><c/></a>").unwrap();
        let engine = PrixEngine::build(coll, EngineConfig::default()).unwrap();
        SharedEngine::new(engine)
    }

    #[test]
    fn snapshot_is_isolated_from_ingest() {
        let shared = shared();
        let before = shared.snapshot();
        let q = before.parse_query("/a/b").unwrap();
        let first = before.query(&q).unwrap();
        assert_eq!(first.matches.len(), 1);

        let report = shared
            .ingest(&docs(&["<a><b>world</b></a>", "<a><c/></a>"]))
            .unwrap();
        assert_eq!(report.accepted.len(), 2);
        assert!(report.rejected.is_empty());
        assert!(report.epoch > before.epoch());

        // The old snapshot still sees exactly one match...
        let again = before.query(&q).unwrap();
        assert_eq!(again.matches, first.matches);

        // ...while a fresh snapshot sees the new document too.
        let after = shared.snapshot();
        assert_eq!(after.epoch(), report.epoch);
        let q2 = after.parse_query("/a/b").unwrap();
        assert_eq!(after.query(&q2).unwrap().matches.len(), 2);
    }

    #[test]
    fn unknown_label_parses_and_matches_nothing() {
        let shared = shared();
        let snap = shared.snapshot();
        let q = snap.parse_query("/a/never_seen_label").unwrap();
        let out = snap.query(&q).unwrap();
        assert!(out.matches.is_empty());
        // Parsing against the snapshot never grew the frozen table.
        assert!(snap.symbols().lookup("never_seen_label").is_none());
    }

    #[test]
    fn rejected_documents_leave_epoch_unchanged() {
        let shared = shared();
        let before = shared.epoch();
        let report = shared.ingest(&docs(&["<a><b>ok"])).unwrap();
        assert!(report.accepted.is_empty());
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.epoch, before);
        assert_eq!(shared.epoch(), before);
        // The writer is healthy: a good batch still lands.
        let ok = shared.ingest(&docs(&["<a><b>x</b></a>"])).unwrap();
        assert_eq!(ok.accepted.len(), 1);
        assert!(ok.epoch > before);
    }

    #[test]
    fn mixed_batch_accepts_good_rejects_bad() {
        let shared = shared();
        let report = shared
            .ingest(&docs(&["<a><b>x</b></a>", "<broken", "<a><c/></a>"]))
            .unwrap();
        assert_eq!(report.accepted.len(), 2);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, 1);
        let snap = shared.snapshot();
        let q = snap.parse_query("//a").unwrap();
        assert_eq!(snap.query(&q).unwrap().matches.len(), 3);
    }

    #[test]
    fn explain_works_on_snapshot_with_unknown_labels() {
        let shared = shared();
        let snap = shared.snapshot();
        let text = snap.explain("/a/unknown_here").unwrap();
        assert!(text.starts_with("index: "));
        assert!(text.contains("unknown_here"));
    }

    #[test]
    fn publish_hook_fires_with_the_new_epoch_only_on_success() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let shared = shared();
        let seen = std::sync::Arc::new(AtomicU64::new(0));
        let seen2 = std::sync::Arc::clone(&seen);
        shared.set_on_publish(move |e| seen2.store(e, Ordering::SeqCst));
        // A fully rejected batch publishes nothing: the hook stays quiet.
        shared.ingest(&docs(&["<broken"])).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 0);
        // A successful publish reports exactly the new epoch.
        let report = shared.ingest(&docs(&["<a><b>x</b></a>"])).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), report.epoch);
    }

    #[test]
    fn try_ingest_fails_fast_while_writer_busy() {
        let shared = std::sync::Arc::new(shared());
        // Hold the writer lock from another thread, then confirm
        // try_ingest sheds instead of blocking.
        let guard = shared.writer.lock().unwrap();
        let s2 = std::sync::Arc::clone(&shared);
        let handle = std::thread::spawn(move || s2.try_ingest(&docs(&["<a/>"])).is_none());
        assert!(handle.join().unwrap());
        drop(guard);
        assert!(shared.try_ingest(&docs(&["<a/>"])).unwrap().is_ok());
    }
}
