//! The virtual trie (paper §5.2.1).
//!
//! PRIX stores every LPS in a trie whose nodes carry `(LeftPos,
//! RightPos)` ranges satisfying the containment property: the range of a
//! node strictly contains the ranges of its descendants, so "all
//! descendants of node A labeled e" becomes a range query on e's
//! Trie-Symbol index. The trie itself is *virtual*: after labeling, only
//! the per-node `(symbol, level, left, right)` tuples and the per-path
//! document endpoints go to B⁺-trees.
//!
//! Two labeling modes are provided:
//!
//! * [`LabelingMode::Exact`] — a bulk DFS numbering (left = preorder
//!   rank, right = max left in subtree). Tight ranges, no underflow;
//!   what an offline bulk build can always do.
//! * [`LabelingMode::Dynamic`] — reproduces the paper's hybrid scheme:
//!   nodes within the first `alpha` levels get ranges **pre-allocated
//!   proportionally to the frequency and length of the sequences sharing
//!   them** (§5.2.1), deeper nodes get half-of-remaining-scope splits as
//!   they arrive, the policy that suffers *scope underflows* on long
//!   sequences. Underflows are counted (and resolved by falling back to
//!   exact allocation for the affected subtree, keeping the labeling
//!   valid).

use prix_xml::{DocId, Sym};

/// How (LeftPos, RightPos) ranges are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelingMode {
    /// Bulk DFS numbering; tight and underflow-free.
    Exact,
    /// The paper's hybrid scheme: frequency/length-based pre-allocation
    /// for the first `alpha` levels, dynamic halving below.
    Dynamic {
        /// Prefix depth that receives pre-allocated ranges.
        alpha: usize,
    },
}

const NIL: u32 = u32::MAX;

struct TrieNode {
    sym: Sym,
    /// Depth in the trie = 1-based position in the LPS.
    level: u32,
    /// Children as (symbol, node) pairs, kept sorted by symbol.
    children: Vec<(Sym, u32)>,
    /// Documents whose LPS ends exactly at this node.
    doc_ends: Vec<DocId>,
    left: u64,
    right: u64,
    /// Finer-grained MaxGap (§5.4): the largest postorder gap of the
    /// data node behind this LPS position, across the sequences that
    /// pass through. `u32::MAX` = unknown (no gap info supplied).
    fine_gap: u32,
    /// Number of sequences passing through or ending at this node.
    weight: u64,
    /// Total remaining length of those sequences below this node.
    tail_len: u64,
}

/// An in-memory trie over LPS's, labeled with containment ranges.
pub struct VirtualTrie {
    nodes: Vec<TrieNode>,
    sequences: u64,
    underflows: u64,
}

/// A labeled trie node, as handed to the index builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledNode {
    /// The symbol at this trie position.
    pub sym: Sym,
    /// 1-based LPS position (trie depth).
    pub level: u32,
    /// LeftPos of the containment range.
    pub left: u64,
    /// RightPos of the containment range.
    pub right: u64,
    /// Per-occurrence MaxGap (§5.4 "finer granularity"); `u32::MAX`
    /// when unknown.
    pub fine_gap: u32,
    /// Highest scope position already handed to a child (= `left` when
    /// childless). Incremental inserts allocate new children after it.
    pub frontier: u64,
}

impl VirtualTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        VirtualTrie {
            nodes: vec![TrieNode {
                sym: Sym(u32::MAX),
                level: 0,
                children: Vec::new(),
                doc_ends: Vec::new(),
                left: 0,
                right: u64::MAX,
                fine_gap: u32::MAX,
                weight: 0,
                tail_len: 0,
            }],
            sequences: 0,
            underflows: 0,
        }
    }

    /// Inserts one LPS, recording that `doc` ends at its final node.
    ///
    /// Only whole LPS's are stored — "the suffixes of the LPS's need not
    /// be indexed at all" (§5.2.1) because subsequence matching runs
    /// range queries instead.
    pub fn insert(&mut self, seq: &[Sym], doc: DocId) {
        self.insert_with_gaps(seq, doc, None);
    }

    /// Like [`Self::insert`], but also folds per-position data-node gap
    /// values into the trie nodes (`gaps[i]` = postorder gap between
    /// the first and last children of the data node whose label sits at
    /// LPS position `i`) — the finer-grained MaxGap of §5.4.
    pub fn insert_with_gaps(&mut self, seq: &[Sym], doc: DocId, gaps: Option<&[u32]>) {
        self.sequences += 1;
        let mut cur = 0u32;
        for (depth, &sym) in seq.iter().enumerate() {
            self.nodes[cur as usize].weight += 1;
            self.nodes[cur as usize].tail_len += (seq.len() - depth) as u64;
            cur = match self.nodes[cur as usize]
                .children
                .binary_search_by_key(&sym, |&(s, _)| s)
            {
                Ok(i) => self.nodes[cur as usize].children[i].1,
                Err(i) => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(TrieNode {
                        sym,
                        level: (depth + 1) as u32,
                        children: Vec::new(),
                        doc_ends: Vec::new(),
                        left: 0,
                        right: 0,
                        fine_gap: if gaps.is_some() { 0 } else { u32::MAX },
                        weight: 0,
                        tail_len: 0,
                    });
                    self.nodes[cur as usize].children.insert(i, (sym, id));
                    id
                }
            };
            if let Some(g) = gaps {
                let node = &mut self.nodes[cur as usize];
                if node.fine_gap == u32::MAX {
                    node.fine_gap = g[depth];
                } else {
                    node.fine_gap = node.fine_gap.max(g[depth]);
                }
            }
        }
        self.nodes[cur as usize].weight += 1;
        self.nodes[cur as usize].doc_ends.push(doc);
    }

    /// Assigns ranges according to `mode`. Must be called once, after all
    /// inserts.
    pub fn assign_ranges(&mut self, mode: LabelingMode) {
        match mode {
            LabelingMode::Exact => self.assign_exact(),
            LabelingMode::Dynamic { alpha } => self.assign_dynamic(alpha),
        }
    }

    fn subtree_sizes(&self) -> Vec<u64> {
        // Children were allocated after parents, so a reverse scan
        // accumulates subtree sizes bottom-up.
        let mut size = vec![1u64; self.nodes.len()];
        for id in (0..self.nodes.len()).rev() {
            for &(_, c) in &self.nodes[id].children {
                size[id] += size[c as usize];
            }
        }
        size
    }

    fn assign_exact(&mut self) {
        let mut counter = 0u64;
        // Iterative DFS: (node, next child index).
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        self.nodes[0].left = 0;
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            if *next == 0 && id != 0 {
                counter += 1;
                self.nodes[id as usize].left = counter;
            }
            if *next < self.nodes[id as usize].children.len() {
                let c = self.nodes[id as usize].children[*next].1;
                *next += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                self.nodes[id as usize].right = counter.max(self.nodes[id as usize].left);
            }
        }
        self.nodes[0].right = u64::MAX;
    }

    fn assign_dynamic(&mut self, alpha: usize) {
        let sizes = self.subtree_sizes();
        // (node, scope_lo, scope_hi): the node takes `scope_lo` as its
        // left and must fit its subtree's lefts inside (scope_lo,
        // scope_hi].
        let mut stack: Vec<(u32, u64, u64)> = vec![(0, 0, u64::MAX / 2)];
        while let Some((id, lo, hi)) = stack.pop() {
            let node = &mut self.nodes[id as usize];
            node.left = lo;
            node.right = hi;
            let kids: Vec<(u32, u64, u64)> = {
                let children: Vec<u32> = self.nodes[id as usize]
                    .children
                    .iter()
                    .map(|&(_, c)| c)
                    .collect();
                if children.is_empty() {
                    continue;
                }
                // Invariant (established by the root's huge scope and
                // maintained below): a node's scope always holds at least
                // its subtree size, so an exact-size fallback always fits.
                let mut remaining_lo = lo + 1;
                let mut rest_needed: u64 = children.iter().map(|&c| sizes[c as usize]).sum();
                let mut out = Vec::with_capacity(children.len());
                let in_prealloc = (self.nodes[id as usize].level as usize) < alpha;
                let total_wl: u64 = children
                    .iter()
                    .map(|&c| self.nodes[c as usize].weight + self.nodes[c as usize].tail_len)
                    .sum::<u64>()
                    .max(1);
                let span = hi.saturating_sub(lo);
                for &c in &children {
                    let size = sizes[c as usize];
                    rest_needed -= size;
                    let available = hi.saturating_sub(remaining_lo).saturating_add(1);
                    debug_assert!(available >= size + rest_needed);
                    let wish = if in_prealloc {
                        // Pre-allocated zone: share proportional to
                        // frequency x remaining length (§5.2.1),
                        // targeting ~50% fill so later siblings and
                        // future incremental inserts keep headroom.
                        let w = self.nodes[c as usize].weight + self.nodes[c as usize].tail_len;
                        ((span / 2) / total_wl).saturating_mul(w)
                    } else {
                        // Dynamic zone: half of the remaining scope — the
                        // policy that underflows on long sequences and
                        // large alphabets.
                        available / 2
                    };
                    let ceiling = available - rest_needed;
                    let mut share = wish.min(ceiling);
                    if share < size {
                        // Scope underflow: the allocation policy's share
                        // cannot hold the subtree. Count it and fall back
                        // to an exact-size allocation (which fits by the
                        // invariant).
                        if !in_prealloc {
                            self.underflows += 1;
                        }
                        share = size;
                    }
                    let child_hi = remaining_lo + share - 1;
                    out.push((c, remaining_lo, child_hi));
                    remaining_lo = child_hi + 1;
                }
                out
            };
            stack.extend(kids);
        }
        self.nodes[0].left = 0;
        self.nodes[0].right = u64::MAX;
    }

    /// Number of scope underflows hit during dynamic labeling.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Number of trie nodes (excluding the virtual root).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of sequences inserted.
    pub fn sequence_count(&self) -> u64 {
        self.sequences
    }

    /// Number of distinct root-to-leaf paths (trie leaves); the gap
    /// between this and [`Self::sequence_count`] is the structural
    /// sharing the paper highlights for DBLP (§6.4.2).
    pub fn leaf_count(&self) -> usize {
        self.nodes[1..]
            .iter()
            .filter(|n| n.children.is_empty())
            .count()
    }

    /// The largest number of sequences ending at or passing through a
    /// single leaf path (cf. "one root-to-leaf path ... shared by 31,864
    /// Regular Prüfer sequences").
    pub fn max_path_sharing(&self) -> u64 {
        self.nodes[1..]
            .iter()
            .filter(|n| n.children.is_empty())
            .map(|n| n.weight)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all labeled (non-root) nodes.
    pub fn for_each_node(&self, mut f: impl FnMut(LabeledNode)) {
        for n in &self.nodes[1..] {
            f(LabeledNode {
                sym: n.sym,
                level: n.level,
                left: n.left,
                right: n.right,
                fine_gap: n.fine_gap,
                frontier: self.frontier_of(n),
            });
        }
    }

    fn frontier_of(&self, n: &TrieNode) -> u64 {
        n.children
            .iter()
            .map(|&(_, c)| self.nodes[c as usize].right)
            .max()
            .unwrap_or(n.left)
    }

    /// The virtual root's labeled view (scope `(0, u64::MAX]` plus its
    /// allocation frontier), for the incremental-insert node table.
    pub fn root_node(&self) -> LabeledNode {
        let n = &self.nodes[0];
        LabeledNode {
            sym: n.sym,
            level: 0,
            left: n.left,
            right: n.right,
            fine_gap: u32::MAX,
            frontier: self.frontier_of(n),
        }
    }

    /// Iterates over `(left_of_end_node, doc)` pairs.
    pub fn for_each_doc_end(&self, mut f: impl FnMut(u64, DocId)) {
        for n in &self.nodes[1..] {
            for &d in &n.doc_ends {
                f(n.left, d);
            }
        }
        for &d in &self.nodes[0].doc_ends {
            f(self.nodes[0].left, d);
        }
    }

    /// Validates the containment property: every node's range lies
    /// strictly inside its parent's `(left, right]`, sibling ranges are
    /// disjoint. Returns the number of violations (tests expect 0).
    pub fn validate_containment(&self) -> usize {
        let mut violations = 0;
        for (id, n) in self.nodes.iter().enumerate() {
            let mut prev_hi: Option<u64> = None;
            for &(_, c) in &n.children {
                let ch = &self.nodes[c as usize];
                if !(ch.left > n.left && ch.right <= n.right && ch.left <= ch.right) {
                    violations += 1;
                }
                if id != 0 {
                    if let Some(p) = prev_hi {
                        if ch.left <= p {
                            violations += 1;
                        }
                    }
                }
                prev_hi = Some(ch.right);
            }
        }
        violations
    }

    /// Looks up the trie node reached by following `seq` from the root
    /// (for tests).
    pub fn locate(&self, seq: &[Sym]) -> Option<LabeledNode> {
        let mut cur = 0u32;
        for &sym in seq {
            match self.nodes[cur as usize]
                .children
                .binary_search_by_key(&sym, |&(s, _)| s)
            {
                Ok(i) => cur = self.nodes[cur as usize].children[i].1,
                Err(_) => return None,
            }
        }
        if cur == NIL {
            return None;
        }
        let n = &self.nodes[cur as usize];
        Some(LabeledNode {
            sym: n.sym,
            level: n.level,
            left: n.left,
            right: n.right,
            fine_gap: n.fine_gap,
            frontier: self.frontier_of(n),
        })
    }
}

impl Default for VirtualTrie {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<Sym> {
        s.chars().map(|c| Sym(c as u32)).collect()
    }

    fn build(seqs: &[&str], mode: LabelingMode) -> VirtualTrie {
        let mut t = VirtualTrie::new();
        for (i, s) in seqs.iter().enumerate() {
            t.insert(&syms(s), i as DocId);
        }
        t.assign_ranges(mode);
        t
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let t = build(&["ABC", "ABD", "AB"], LabelingMode::Exact);
        // Nodes: A, B, C, D.
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.sequence_count(), 3);
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn exact_labeling_has_containment() {
        let t = build(
            &["ACBCCBACAEEEDA", "ACB", "ACBD", "XYZ", "XYA"],
            LabelingMode::Exact,
        );
        assert_eq!(t.validate_containment(), 0);
    }

    #[test]
    fn dynamic_labeling_has_containment_too() {
        let t = build(
            &["ACBCCBACAEEEDA", "ACB", "ACBD", "XYZ", "XYA", "ABABABABAB"],
            LabelingMode::Dynamic { alpha: 2 },
        );
        assert_eq!(t.validate_containment(), 0);
    }

    #[test]
    fn dynamic_labeling_underflows_on_long_sequences() {
        // A long chain under a tiny dynamic scope: halving must underflow.
        let long: String = "AB".repeat(40);
        let seqs: Vec<String> = (0..4).map(|i| format!("{long}{i}")).collect();
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let t = build(&refs, LabelingMode::Dynamic { alpha: 0 });
        assert_eq!(t.validate_containment(), 0, "fallback keeps labels valid");
        assert!(t.underflows() > 0, "halving a chain must underflow");
        let exact = build(&refs, LabelingMode::Exact);
        assert_eq!(exact.underflows(), 0);
    }

    #[test]
    fn doc_ends_are_recorded_at_final_nodes() {
        let t = build(&["AB", "AB", "ABC"], LabelingMode::Exact);
        let ab = t.locate(&syms("AB")).unwrap();
        let mut ends: Vec<(u64, DocId)> = Vec::new();
        t.for_each_doc_end(|l, d| ends.push((l, d)));
        ends.sort();
        // Docs 0 and 1 end at node AB, doc 2 at ABC.
        let abc = t.locate(&syms("ABC")).unwrap();
        assert!(ends.contains(&(ab.left, 0)));
        assert!(ends.contains(&(ab.left, 1)));
        assert!(ends.contains(&(abc.left, 2)));
    }

    #[test]
    fn descendant_ranges_nest() {
        let t = build(&["ABC", "ABD"], LabelingMode::Exact);
        let a = t.locate(&syms("A")).unwrap();
        let ab = t.locate(&syms("AB")).unwrap();
        let abc = t.locate(&syms("ABC")).unwrap();
        let abd = t.locate(&syms("ABD")).unwrap();
        assert!(a.left < ab.left && ab.right <= a.right);
        assert!(ab.left < abc.left && abc.right <= ab.right);
        assert!(ab.left < abd.left && abd.right <= ab.right);
        // Siblings are disjoint.
        assert!(abc.right < abd.left || abd.right < abc.left);
    }

    #[test]
    fn levels_are_lps_positions() {
        let t = build(&["XYZ"], LabelingMode::Exact);
        assert_eq!(t.locate(&syms("X")).unwrap().level, 1);
        assert_eq!(t.locate(&syms("XY")).unwrap().level, 2);
        assert_eq!(t.locate(&syms("XYZ")).unwrap().level, 3);
    }

    #[test]
    fn max_path_sharing_reports_heaviest_path() {
        let mut t = VirtualTrie::new();
        for i in 0..100 {
            t.insert(&syms("AB"), i);
        }
        t.insert(&syms("AC"), 100);
        t.assign_ranges(LabelingMode::Exact);
        assert_eq!(t.max_path_sharing(), 100);
    }

    #[test]
    fn empty_sequence_ends_at_root() {
        let mut t = VirtualTrie::new();
        t.insert(&[], 7);
        t.assign_ranges(LabelingMode::Exact);
        let mut ends = Vec::new();
        t.for_each_doc_end(|l, d| ends.push((l, d)));
        assert_eq!(ends, vec![(0, 7)]);
    }
}
