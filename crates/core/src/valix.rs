//! The value-predicate secondary index ("valix").
//!
//! PRIX matches structure; this module adds the standard companion of
//! a structural XML index: a content index over leaf values, in the
//! GiST mold — a balanced tree whose keys are *opclass-encoded*
//! predicate summaries rather than raw bytes. Two opclasses ship:
//!
//! * **numeric** — leaf texts that parse as `f64`, stored under an
//!   order-preserving 8-byte transform so B⁺-tree range scans answer
//!   `< <= > >= =` directly;
//! * **string** — raw leaf bytes (memcmp order = lexicographic), so a
//!   prefix is a contiguous key range and `=`/`starts-with` are point
//!   and prefix scans.
//!
//! Keys are prefixed with the *parent element tag*, so a predicate
//! `[price < 10]` only scans `price` values. Every key maps to a
//! `(doc, leaf postorder)` posting. The trees live in the same WAL'd
//! buffer pool as the structural B⁺-trees, so the index inherits crash
//! safety and epoch-pinned snapshot isolation with zero extra
//! machinery: an `EngineSnapshot` clones the [`Valix`] handle and its
//! epoch pin serves the frozen pages.
//!
//! Matching is **label-based**, mirroring the structural engines: a
//! childless element and a text node with the same label are
//! indistinguishable to Prüfer matching, so valix indexes the label of
//! *every* leaf under its parent's tag. The probe is a conservative
//! pre-filter (a superset of the satisfying documents); the
//! authoritative check is [`PredEval::matches`], which verifies each
//! refined embedding positionally. Filtered results are therefore
//! exactly the post-filtered unfiltered results, with or without a
//! usable probe.

use std::collections::HashSet;
use std::ops::Bound;
use std::sync::Arc;

use prix_storage::{BPlusTree, BufferPool, RecordId, RecordStore};
use prix_xml::{DocId, PostNum, Sym, SymbolTable, XmlTree};

use crate::index::{DocData, IndexError, Result};
use crate::query::{PredOp, PredValue, TwigQuery, ValuePred};

/// String keys are truncated to this many value bytes. Truncation is
/// sound because equal prefixes collide *toward more postings* (the
/// probe stays a superset) and verification compares full strings.
pub const STR_KEY_CAP: usize = 256;

const META_MAGIC: &[u8; 4] = b"VLX1";

/// Order-preserving `f64` → `u64` transform (sign bit flipped for
/// positives, all bits flipped for negatives), `-0.0` collapsed onto
/// `0.0` so IEEE equality and key equality agree. NaNs are never
/// indexed.
fn encode_f64(v: f64) -> [u8; 8] {
    let v = if v == 0.0 { 0.0 } else { v };
    let bits = v.to_bits();
    let flipped = if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    };
    flipped.to_be_bytes()
}

/// Numeric-opclass key: tag(4, BE) ++ encoded value(8, BE).
fn num_key(tag: Sym, v: f64) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..4].copy_from_slice(&tag.0.to_be_bytes());
    k[4..].copy_from_slice(&encode_f64(v));
    k
}

/// String-opclass key: tag(4, BE) ++ value bytes (truncated).
fn str_key(tag: Sym, s: &str) -> Vec<u8> {
    let bytes = s.as_bytes();
    let take = floor_char_boundary(s, STR_KEY_CAP);
    let mut k = Vec::with_capacity(4 + take);
    k.extend_from_slice(&tag.0.to_be_bytes());
    k.extend_from_slice(&bytes[..take]);
    k
}

/// Largest byte length `<= cap` that is a char boundary of `s`.
fn floor_char_boundary(s: &str, cap: usize) -> usize {
    if s.len() <= cap {
        return s.len();
    }
    let mut i = cap;
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Posting payload: doc(4, LE) ++ leaf postorder(4, LE).
fn posting(doc: DocId, post: PostNum) -> [u8; 8] {
    let mut v = [0u8; 8];
    v[..4].copy_from_slice(&doc.to_le_bytes());
    v[4..].copy_from_slice(&post.to_le_bytes());
    v
}

fn posting_doc(v: &[u8]) -> DocId {
    u32::from_le_bytes([v[0], v[1], v[2], v[3]])
}

/// One leaf occurrence destined for the valix (the bulk-build path
/// collects these while documents stream past).
#[derive(Debug, Clone)]
pub struct ValixEntry {
    /// Tag of the leaf's parent element.
    pub tag: Sym,
    /// The leaf's label text.
    pub value: String,
    /// Document id (global).
    pub doc: DocId,
    /// The leaf's postorder number in the original document.
    pub post: PostNum,
}

/// Counters from probing the valix for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeStats {
    /// Index probes issued (one per probeable predicate).
    pub probes: u64,
    /// Postings scanned across all probes.
    pub postings: u64,
}

/// The value index proper. `Clone` snapshots the handles (tree roots,
/// counters): clones share pages through the pool, and a clone taken
/// under an epoch pin reads the frozen bytes of its epoch — exactly
/// the [`crate::index::PrixIndex`] contract.
#[derive(Clone)]
pub struct Valix {
    /// Numeric opclass.
    num: BPlusTree,
    /// String opclass.
    strs: BPlusTree,
    store: RecordStore,
    /// Documents `[0, covered)` have their leaves indexed. The probe is
    /// only trusted for those; [`PredEval::allows`] admits any doc at or
    /// past the horizon.
    covered: DocId,
    num_postings: u64,
    str_postings: u64,
    /// Last metadata record written by [`Valix::save`] with its exact
    /// bytes, so an unchanged valix reuses the record (the
    /// `PrixIndex::save` idiom).
    saved_meta: Option<(RecordId, Vec<u8>)>,
}

impl Valix {
    /// Creates an empty valix in `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Ok(Valix {
            num: BPlusTree::create(Arc::clone(&pool))?,
            strs: BPlusTree::create(Arc::clone(&pool))?,
            store: RecordStore::create(pool)?,
            covered: 0,
            num_postings: 0,
            str_postings: 0,
            saved_meta: None,
        })
    }

    /// Documents whose leaves are indexed (`[0, covered)`).
    pub fn covered(&self) -> DocId {
        self.covered
    }

    /// `(numeric postings, string postings)` indexed so far.
    pub fn posting_counts(&self) -> (u64, u64) {
        (self.num_postings, self.str_postings)
    }

    /// Indexes every leaf of `tree` as document `doc`. Documents must
    /// arrive in id order with no gaps — the coverage horizon is what
    /// makes partial indexes safe to probe.
    pub fn index_tree(&mut self, tree: &XmlTree, doc: DocId, syms: &SymbolTable) -> Result<()> {
        debug_assert_eq!(doc, self.covered, "valix documents must arrive in order");
        for node in tree.nodes() {
            if !tree.is_leaf(node) || node == tree.root() {
                continue;
            }
            let post = tree.postorder(node);
            let parent = tree.parent_post(post).expect("non-root leaf has a parent");
            let tag = tree.label_at(parent);
            self.add_value(tag, syms.name(tree.label(node)), doc, post)?;
        }
        self.covered = doc + 1;
        Ok(())
    }

    /// Indexes one leaf occurrence: always into the string opclass, and
    /// into the numeric one too when the text parses as a (non-NaN)
    /// `f64`.
    fn add_value(&mut self, tag: Sym, value: &str, doc: DocId, post: PostNum) -> Result<()> {
        let p = posting(doc, post);
        if let Ok(v) = value.parse::<f64>() {
            if !v.is_nan() {
                self.num.insert(&num_key(tag, v), &p)?;
                self.num_postings += 1;
            }
        }
        self.strs.insert(&str_key(tag, value), &p)?;
        self.str_postings += 1;
        Ok(())
    }

    /// Bulk-builds a valix from collected entries (the `prix index
    /// --bulk` path). `n_docs` sets the coverage horizon.
    pub fn build_bulk(
        pool: Arc<BufferPool>,
        entries: &[ValixEntry],
        n_docs: DocId,
    ) -> Result<Self> {
        let mut nums: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut strs: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(entries.len());
        for e in entries {
            let p = posting(e.doc, e.post).to_vec();
            if let Ok(v) = e.value.parse::<f64>() {
                if !v.is_nan() {
                    nums.push((num_key(e.tag, v).to_vec(), p.clone()));
                }
            }
            strs.push((str_key(e.tag, &e.value), p));
        }
        nums.sort();
        strs.sort();
        let (num_postings, str_postings) = (nums.len() as u64, strs.len() as u64);
        Ok(Valix {
            num: BPlusTree::bulk_load(Arc::clone(&pool), nums, 0.9)?,
            strs: BPlusTree::bulk_load(Arc::clone(&pool), strs, 0.9)?,
            store: RecordStore::create(pool)?,
            covered: n_docs,
            num_postings,
            str_postings,
            saved_meta: None,
        })
    }

    /// Copies every posting into `pool` (compaction: the mutable
    /// generation's pool is retired, so the valix migrates page-for-
    /// page into the fresh one).
    pub fn clone_into(&self, pool: Arc<BufferPool>) -> Result<Self> {
        let mut nums: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        self.num.scan(Bound::Unbounded, Bound::Unbounded, |k, v| {
            nums.push((k.to_vec(), v.to_vec()));
            true
        })?;
        let mut strs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        self.strs.scan(Bound::Unbounded, Bound::Unbounded, |k, v| {
            strs.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(Valix {
            num: BPlusTree::bulk_load(Arc::clone(&pool), nums, 0.9)?,
            strs: BPlusTree::bulk_load(Arc::clone(&pool), strs, 0.9)?,
            store: RecordStore::create(pool)?,
            covered: self.covered,
            num_postings: self.num_postings,
            str_postings: self.str_postings,
            saved_meta: None,
        })
    }

    /// Probes one predicate anchored at `tag`, collecting the matching
    /// document ids. Returns `None` when the operator has no index
    /// strategy (`!=`: nearly everything matches, a scan would cost
    /// more than it saves) — the caller falls back to
    /// verification-only.
    pub fn probe_docs(
        &self,
        tag: Sym,
        pred: &ValuePred,
        stats: &mut ProbeStats,
    ) -> Result<Option<HashSet<DocId>>> {
        let mut docs: HashSet<DocId> = HashSet::new();
        let mut seen = 0u64;
        match &pred.value {
            PredValue::Num(lit) => {
                let lit = *lit;
                let (lo, hi) = match pred.op {
                    PredOp::Eq => (num_key(tag, lit), num_key(tag, lit)),
                    PredOp::Lt | PredOp::Le => (num_key(tag, f64::NEG_INFINITY), num_key(tag, lit)),
                    PredOp::Gt | PredOp::Ge => (num_key(tag, lit), num_key(tag, f64::INFINITY)),
                    PredOp::Ne | PredOp::StartsWith => return Ok(None),
                };
                let lo_b = if pred.op == PredOp::Gt {
                    Bound::Excluded(&lo[..])
                } else {
                    Bound::Included(&lo[..])
                };
                let hi_b = if pred.op == PredOp::Lt {
                    Bound::Excluded(&hi[..])
                } else {
                    Bound::Included(&hi[..])
                };
                self.num.scan(lo_b, hi_b, |_k, v| {
                    seen += 1;
                    docs.insert(posting_doc(v));
                    true
                })?;
            }
            PredValue::Str(lit) => match pred.op {
                PredOp::Eq => {
                    let key = str_key(tag, lit);
                    self.strs.scan(
                        Bound::Included(&key[..]),
                        Bound::Included(&key[..]),
                        |_k, v| {
                            seen += 1;
                            docs.insert(posting_doc(v));
                            true
                        },
                    )?;
                }
                PredOp::StartsWith => {
                    // A prefix is a contiguous key range: scan from the
                    // prefix key and stop at the first key that no
                    // longer starts with it.
                    let key = str_key(tag, lit);
                    self.strs
                        .scan(Bound::Included(&key[..]), Bound::Unbounded, |k, v| {
                            if !k.starts_with(&key) {
                                return false;
                            }
                            seen += 1;
                            docs.insert(posting_doc(v));
                            true
                        })?;
                }
                _ => return Ok(None),
            },
        }
        stats.probes += 1;
        stats.postings += seen;
        Ok(Some(docs))
    }

    /// Persists the valix metadata, returning its record id. Byte-
    /// identical metadata reuses the previous record.
    pub fn save(&mut self) -> Result<RecordId> {
        let mut buf = Vec::with_capacity(40);
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&self.num.root().to_le_bytes());
        buf.extend_from_slice(&self.strs.root().to_le_bytes());
        buf.extend_from_slice(&self.covered.to_le_bytes());
        buf.extend_from_slice(&self.num_postings.to_le_bytes());
        buf.extend_from_slice(&self.str_postings.to_le_bytes());
        if let Some((id, bytes)) = &self.saved_meta {
            if *bytes == buf {
                return Ok(*id);
            }
        }
        let id = self.store.append(&buf)?;
        self.saved_meta = Some((id, buf));
        Ok(id)
    }

    /// Reopens a valix from its metadata record.
    pub fn load(pool: Arc<BufferPool>, meta: RecordId) -> Result<Self> {
        let store = RecordStore::open(Arc::clone(&pool))?;
        let buf = store.read(meta)?;
        if buf.len() < 40 || &buf[..4] != META_MAGIC {
            return Err(IndexError::Unsupported(
                "corrupt valix metadata record".into(),
            ));
        }
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let num_root = u64_at(4);
        let str_root = u64_at(12);
        let covered = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        let num_postings = u64_at(24);
        let str_postings = u64_at(32);
        Ok(Valix {
            num: BPlusTree::open(Arc::clone(&pool), num_root),
            strs: BPlusTree::open(Arc::clone(&pool), str_root),
            store,
            covered,
            num_postings,
            str_postings,
            saved_meta: Some((meta, buf)),
        })
    }

    /// Full structural walk for `prix fsck`: scans both opclass trees
    /// in key order, checks every key/posting shape, and compares the
    /// entry counts against the persisted counters. Returns
    /// `(numeric, string)` posting counts.
    pub fn verify(&self) -> Result<(u64, u64)> {
        let covered = self.covered;
        let mut bad: Option<String> = None;
        let mut n_num = 0u64;
        self.num.scan(Bound::Unbounded, Bound::Unbounded, |k, v| {
            n_num += 1;
            if k.len() != 12 || v.len() != 8 {
                bad = Some(format!(
                    "numeric entry has key len {} / posting len {}",
                    k.len(),
                    v.len()
                ));
                return false;
            }
            if posting_doc(v) >= covered {
                bad = Some(format!(
                    "numeric posting names doc {} past coverage horizon {}",
                    posting_doc(v),
                    covered
                ));
                return false;
            }
            true
        })?;
        if let Some(msg) = bad {
            return Err(IndexError::Unsupported(format!("valix: {msg}")));
        }
        let mut n_str = 0u64;
        self.strs.scan(Bound::Unbounded, Bound::Unbounded, |k, v| {
            n_str += 1;
            if k.len() < 4 || k.len() > 4 + STR_KEY_CAP || v.len() != 8 {
                bad = Some(format!(
                    "string entry has key len {} / posting len {}",
                    k.len(),
                    v.len()
                ));
                return false;
            }
            if posting_doc(v) >= covered {
                bad = Some(format!(
                    "string posting names doc {} past coverage horizon {}",
                    posting_doc(v),
                    covered
                ));
                return false;
            }
            true
        })?;
        if let Some(msg) = bad {
            return Err(IndexError::Unsupported(format!("valix: {msg}")));
        }
        if n_num != self.num_postings || n_str != self.str_postings {
            return Err(IndexError::Unsupported(format!(
                "valix: posting counts diverge (numeric {n_num} vs {} recorded, \
                 string {n_str} vs {} recorded)",
                self.num_postings, self.str_postings
            )));
        }
        Ok((n_num, n_str))
    }
}

/// A query's predicates resolved for execution: per-predicate accepted
/// symbol sets (the verification side) plus the probed document
/// pre-filter (the pruning side).
///
/// Built once per query at the engine level, then threaded through the
/// executor. The symbol sets come from one pass over the symbol table
/// — bounded by distinct labels, independent of collection size — and
/// make positional verification a pure `Sym` membership test with no
/// string work per candidate.
#[derive(Clone)]
pub struct PredEval {
    /// `(original-query postorder of the predicate node, accepted value
    /// symbols)` per predicate.
    items: Vec<(PostNum, Arc<HashSet<Sym>>)>,
    /// Documents below the coverage horizon that can satisfy every
    /// probeable predicate; `None` when no predicate was probeable (no
    /// valix, or `!=`-only).
    allowed: Option<HashSet<DocId>>,
    /// The valix coverage horizon at probe time. Documents at or past
    /// it were never indexed, so the pre-filter must admit them.
    covered: DocId,
    /// Probe counters, folded into the query stats by the runner.
    pub probe: ProbeStats,
}

impl PredEval {
    /// Resolves `q`'s predicates against `syms`, probing `valix` (when
    /// present) for the document pre-filter. `Ok(None)` when the query
    /// has no predicates.
    pub fn build(
        q: &TwigQuery,
        valix: Option<&Valix>,
        syms: &SymbolTable,
    ) -> Result<Option<PredEval>> {
        if q.preds().is_empty() {
            return Ok(None);
        }
        let tree = q.tree();
        let mut items = Vec::with_capacity(q.preds().len());
        for p in q.preds() {
            let set: HashSet<Sym> = syms
                .iter()
                .filter(|(_, name)| p.accepts(name))
                .map(|(s, _)| s)
                .collect();
            items.push((tree.postorder(p.node), Arc::new(set)));
        }
        let mut probe = ProbeStats::default();
        let mut allowed: Option<HashSet<DocId>> = None;
        let mut covered = 0;
        if let Some(vx) = valix {
            covered = vx.covered();
            for p in q.preds() {
                let tag = tree.label(p.node);
                if let Some(docs) = vx.probe_docs(tag, p, &mut probe)? {
                    allowed = Some(match allowed {
                        None => docs,
                        Some(acc) => acc.intersection(&docs).copied().collect(),
                    });
                }
            }
        }
        Ok(Some(PredEval {
            items,
            allowed,
            covered,
            probe,
        }))
    }

    /// Whether the document pre-filter admits `doc`. Conservative:
    /// `true` whenever the probe cannot rule the document out.
    pub fn allows(&self, doc: DocId) -> bool {
        match &self.allowed {
            None => true,
            Some(s) => doc >= self.covered || s.contains(&doc),
        }
    }

    /// `(probed docs, coverage horizon)` when a usable probe ran — the
    /// planner's estimated-selectivity numerator and denominator.
    pub fn estimate(&self) -> Option<(usize, DocId)> {
        self.allowed.as_ref().map(|s| (s.len(), self.covered))
    }

    /// This evaluator renumbered for a branch arrangement:
    /// `base_of[arr_post - 1]` maps arrangement postorders back to base
    /// ones (see `crate::arrange::Arrangement`).
    pub fn remap(&self, base_of: &[PostNum]) -> PredEval {
        let items = self
            .items
            .iter()
            .map(|(base_post, set)| {
                let arr_post = base_of
                    .iter()
                    .position(|&b| b == *base_post)
                    .map(|i| (i + 1) as PostNum)
                    .expect("arrangement permutes every base node");
                (arr_post, Arc::clone(set))
            })
            .collect();
        PredEval {
            items,
            allowed: self.allowed.clone(),
            covered: self.covered,
            probe: ProbeStats::default(),
        }
    }

    /// Positionally verifies a refined embedding: every predicate node's
    /// image must have a leaf child whose label symbol is accepted.
    ///
    /// `emb[q - 1]` is the image (original document postorder) of query
    /// node `q`; `data` must have been loaded with leaf data. Extended
    /// documents are walked through their dummy leaves: `dummy → value
    /// node → parent element`, with `lps[dummy - 1]` naming the value
    /// and `orig_map` translating the element back to original
    /// numbering.
    pub(crate) fn matches(&self, data: &DocData, emb: &[PostNum]) -> bool {
        self.items.iter().all(|(qpost, set)| {
            let img = emb[(*qpost - 1) as usize];
            match &data.orig_map {
                None => data.leaves.iter().any(|&(sym, pos)| {
                    pos >= 1
                        && data
                            .nps
                            .get(pos as usize - 1)
                            .map_or(false, |&parent| parent == img)
                        && set.contains(&sym)
                }),
                Some(orig) => data.leaves.iter().any(|&(_, pos)| {
                    let Some(&val_post) = data.nps.get(pos.wrapping_sub(1) as usize) else {
                        return false;
                    };
                    let Some(&elem_post) = data.nps.get(val_post.wrapping_sub(1) as usize) else {
                        return false;
                    };
                    orig.get(elem_post.wrapping_sub(1) as usize) == Some(&img)
                        && data
                            .lps
                            .get(pos.wrapping_sub(1) as usize)
                            .map_or(false, |s| set.contains(s))
                }),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_storage::{BufferPool, Pager};

    fn mem_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Pager::in_memory(), 256))
    }

    #[test]
    fn f64_encoding_preserves_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e30,
            -2.5,
            -1.0,
            -0.0,
            0.0,
            1e-10,
            1.0,
            2.5,
            10.0,
            1e30,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let (a, b) = (encode_f64(w[0]), encode_f64(w[1]));
            if w[0] == w[1] {
                assert_eq!(a, b, "{} vs {}", w[0], w[1]);
            } else {
                assert!(a < b, "{} vs {}", w[0], w[1]);
            }
        }
        // -0.0 and 0.0 share one key, matching IEEE equality.
        assert_eq!(encode_f64(-0.0), encode_f64(0.0));
    }

    #[test]
    fn str_key_truncation_is_char_safe() {
        let long = "é".repeat(200); // 400 bytes of 2-byte chars
        let k = str_key(Sym(7), &long);
        assert!(k.len() <= 4 + STR_KEY_CAP);
        assert!(std::str::from_utf8(&k[4..]).is_ok());
    }

    fn pred(op: PredOp, value: PredValue) -> ValuePred {
        ValuePred { node: 0, op, value }
    }

    #[test]
    fn probe_agrees_with_accepts_on_numeric_ranges() {
        let pool = mem_pool();
        let mut vx = Valix::create(pool).unwrap();
        let tag = Sym(3);
        let values = [
            "0", "-0", "1", "2.5", "9.99", "10", "10.0", "11", "-3", "1e2", "cheap", "inf",
        ];
        for (i, v) in values.iter().enumerate() {
            vx.add_value(tag, v, i as DocId, 1).unwrap();
        }
        vx.covered = values.len() as DocId;
        for op in [PredOp::Eq, PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge] {
            for lit in [0.0, 2.5, 10.0, -1.0] {
                let p = pred(op, PredValue::Num(lit));
                let mut stats = ProbeStats::default();
                let got = vx.probe_docs(tag, &p, &mut stats).unwrap().unwrap();
                let want: HashSet<DocId> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| p.accepts(v))
                    .map(|(i, _)| i as DocId)
                    .collect();
                assert_eq!(got, want, "op {op:?} lit {lit}");
            }
        }
        // != has no index strategy.
        let mut stats = ProbeStats::default();
        assert!(vx
            .probe_docs(tag, &pred(PredOp::Ne, PredValue::Num(1.0)), &mut stats)
            .unwrap()
            .is_none());
    }

    #[test]
    fn probe_agrees_with_accepts_on_strings() {
        let pool = mem_pool();
        let mut vx = Valix::create(pool).unwrap();
        let tag = Sym(5);
        let values = ["x7", "x70", "x8", "ax7", "", "x", "10"];
        for (i, v) in values.iter().enumerate() {
            vx.add_value(tag, v, i as DocId, 1).unwrap();
        }
        vx.covered = values.len() as DocId;
        for p in [
            pred(PredOp::Eq, PredValue::Str("x7".into())),
            pred(PredOp::Eq, PredValue::Str("10".into())),
            pred(PredOp::StartsWith, PredValue::Str("x7".into())),
            pred(PredOp::StartsWith, PredValue::Str("x".into())),
            pred(PredOp::StartsWith, PredValue::Str("".into())),
        ] {
            let mut stats = ProbeStats::default();
            let got = vx.probe_docs(tag, &p, &mut stats).unwrap().unwrap();
            let want: HashSet<DocId> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| p.accepts(v))
                .map(|(i, _)| i as DocId)
                .collect();
            assert_eq!(got, want, "{p:?}");
        }
    }

    #[test]
    fn probe_is_tag_scoped() {
        let pool = mem_pool();
        let mut vx = Valix::create(pool).unwrap();
        vx.add_value(Sym(1), "5", 0, 1).unwrap();
        vx.add_value(Sym(2), "5", 1, 1).unwrap();
        vx.covered = 2;
        let p = pred(PredOp::Eq, PredValue::Num(5.0));
        let mut stats = ProbeStats::default();
        let got = vx.probe_docs(Sym(1), &p, &mut stats).unwrap().unwrap();
        assert_eq!(got, HashSet::from([0]));
    }

    #[test]
    fn save_load_roundtrip_and_verify() {
        let pool = mem_pool();
        let mut vx = Valix::create(Arc::clone(&pool)).unwrap();
        vx.add_value(Sym(1), "42", 0, 2).unwrap();
        vx.add_value(Sym(1), "hello", 0, 4).unwrap();
        vx.covered = 1;
        let meta = vx.save().unwrap();
        // Unchanged valix reuses the record.
        assert_eq!(vx.save().unwrap().raw(), meta.raw());
        let re = Valix::load(pool, meta).unwrap();
        assert_eq!(re.covered(), 1);
        assert_eq!(re.posting_counts(), (1, 2));
        assert_eq!(re.verify().unwrap(), (1, 2));
    }

    #[test]
    fn verify_catches_horizon_violations() {
        let pool = mem_pool();
        let mut vx = Valix::create(pool).unwrap();
        vx.add_value(Sym(1), "1", 5, 1).unwrap();
        vx.covered = 1; // posting names doc 5: corrupt
        assert!(vx.verify().is_err());
    }

    #[test]
    fn clone_into_migrates_postings() {
        let pool = mem_pool();
        let mut vx = Valix::create(pool).unwrap();
        for i in 0..50u32 {
            vx.add_value(Sym(1), &format!("{i}"), i, 1).unwrap();
        }
        vx.covered = 50;
        let fresh = mem_pool();
        let moved = vx.clone_into(fresh).unwrap();
        assert_eq!(moved.covered(), 50);
        assert_eq!(moved.posting_counts(), vx.posting_counts());
        let p = pred(PredOp::Lt, PredValue::Num(10.0));
        let mut stats = ProbeStats::default();
        let got = moved.probe_docs(Sym(1), &p, &mut stats).unwrap().unwrap();
        assert_eq!(got.len(), 10);
        moved.verify().unwrap();
    }
}
