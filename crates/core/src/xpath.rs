//! XPath-subset parser for twig queries.
//!
//! Covers the query class evaluated in the paper (Table 3): location
//! paths with `/` and `//` axes, `*` wildcard steps, attribute steps
//! (`@name`, equivalent to a subelement per §2), and predicates that are
//! either existential relative paths (`[./editor]`, `[.//Author]`) or
//! equality tests against a string (`[./year="1990"]`,
//! `[text()="..."]`).
//!
//! Beyond the paper's workload, predicates may compare leaf values
//! through the valix (`crate::valix`): `[path op literal]` with
//! `= != < <= > >=` against an unquoted numeric literal
//! (`[price < 10]`, `[./price >= 2.5]`), `=` against a quoted string
//! (`[@id = "x7"]` on a *bare* path), and
//! `[starts-with(path, "prefix")]`. The path may be `.`-relative,
//! bare (`price`, sugar for `./price`), or an attribute (`@id`). A
//! dotted path with `= "string"` keeps the paper's semantics — a
//! structural text-leaf match — so the historical grammar is
//! unchanged; every other comparison becomes a
//! [`crate::query::ValuePred`] carried alongside the structural twig.
//!
//! `*` steps between named steps fold into the edge constraint
//! ([`EdgeKind::Exactly`]), matching the paper's `*` processing (§4.5).

use std::fmt;

use prix_prufer::EdgeKind;
use prix_xml::InternSyms;

use crate::query::{PredOp, PredValue, TwigBuilder, TwigQuery};

/// Error from parsing an XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

/// Parses an XPath expression into a [`TwigQuery`].
///
/// Accepts any [`InternSyms`] resolver: a `&mut SymbolTable` for owning
/// callers (document ingest, tests), or a [`prix_xml::ScratchSyms`]
/// overlay when parsing against a shared read-only snapshot — labels
/// unknown to the snapshot resolve to scratch symbols that match
/// nothing, without mutating the table other readers share.
///
/// ```
/// use prix_xml::SymbolTable;
/// use prix_core::parse_xpath;
/// let mut syms = SymbolTable::new();
/// let q = parse_xpath(r#"//Entry[./Org="Piroplasmida"][.//Author]//from"#, &mut syms).unwrap();
/// assert_eq!(q.display(&syms), r#"Entry(Org("Piroplasmida"),~Author,~from)"#);
/// ```
pub fn parse_xpath<S: InternSyms>(input: &str, syms: &mut S) -> Result<TwigQuery, XPathError> {
    let mut p = Lexer {
        input: input.as_bytes(),
        pos: 0,
    };
    // Leading axis.
    let absolute = match (p.eat("//"), p.eat("/")) {
        (true, _) => false,
        (false, true) => true,
        // A bare name is treated like "//name".
        (false, false) => false,
    };
    let (root_name, _) = p.parse_step_name()?;
    let mut b = TwigBuilder::new(syms, &root_name);
    if absolute {
        b.absolute();
    }
    // Depth of open nodes created along the *main path* below the root.
    let mut open_depth = 0usize;
    loop {
        // Predicates of the current step.
        while p.peek() == Some(b'[') {
            p.pos += 1;
            parse_predicate(&mut p, &mut b)?;
            p.expect("]")?;
        }
        if p.at_end() {
            break;
        }
        let edge = p.parse_axis_and_stars()?;
        let (name, is_text) = p.parse_step_name()?;
        if is_text {
            return Err(p.err("text() is only valid inside a predicate"));
        }
        b.child(&name, edge);
        open_depth += 1;
    }
    let _ = open_depth;
    Ok(b.finish())
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn err(&self, message: impl Into<String>) -> XPathError {
        XPathError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XPathError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Parses `/`, `//`, and any interleaved `*` steps, returning the
    /// resulting edge constraint for the next named step.
    ///
    /// `/a/*/b` → `Exactly(2)` on `b`; `//a` → `Descendant`;
    /// `/*//b` → `Descendant` (a `//` anywhere makes the distance
    /// unbounded).
    fn parse_axis_and_stars(&mut self) -> Result<EdgeKind, XPathError> {
        let mut descendant = false;
        let mut stars: u32 = 0;
        loop {
            if self.eat("//") {
                descendant = true;
            } else if self.eat("/") {
                // child axis: nothing extra
            } else {
                return Err(self.err("expected `/` or `//`"));
            }
            if self.peek() == Some(b'*') {
                self.pos += 1;
                stars += 1;
                continue; // another axis must follow
            }
            break;
        }
        Ok(if descendant {
            EdgeKind::Descendant
        } else if stars > 0 {
            EdgeKind::Exactly(stars + 1)
        } else {
            EdgeKind::Child
        })
    }

    /// Parses a step name: QName, `@name` (attribute = subelement), or
    /// `text()` (returned with the flag set).
    fn parse_step_name(&mut self) -> Result<(String, bool), XPathError> {
        if self.eat("text()") {
            return Ok((String::new(), true));
        }
        let start = self.pos;
        if self.peek() == Some(b'@') {
            self.pos += 1;
        }
        let name_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == name_start {
            return Err(XPathError {
                offset: start,
                message: "expected a step name".into(),
            });
        }
        let name = std::str::from_utf8(&self.input[name_start..self.pos])
            .map_err(|_| self.err("step name is not UTF-8"))?
            .to_owned();
        Ok((name, false))
    }

    fn parse_string(&mut self) -> Result<String, XPathError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted string")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("string is not UTF-8"))?
                    .to_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }
}

/// Parses one predicate body (after `[`):
///
/// * `text() = string` — structural text-leaf equality,
/// * `starts-with(path, string)` — string-prefix value predicate,
/// * `path (op literal)?` — existential path, structural equality
///   (dotted path, `=`, quoted string), or a value predicate (any
///   comparison against a number; `=` against a string on a bare path).
fn parse_predicate<S: InternSyms>(
    p: &mut Lexer<'_>,
    b: &mut TwigBuilder<'_, S>,
) -> Result<(), XPathError> {
    skip_ws(p);
    if p.eat("text()") {
        skip_ws(p);
        p.expect("=")?;
        skip_ws(p);
        let v = p.parse_string()?;
        b.value(&v);
        skip_ws(p);
        return Ok(());
    }
    if p.eat("starts-with(") {
        skip_ws(p);
        let (depth, is_text) = parse_pred_path(p, b)?;
        if is_text {
            return Err(p.err("text() cannot be the target of starts-with(); use the parent step"));
        }
        skip_ws(p);
        p.expect(",")?;
        skip_ws(p);
        let v = p.parse_string()?;
        skip_ws(p);
        p.expect(")")?;
        b.pred(PredOp::StartsWith, PredValue::Str(v));
        for _ in 0..depth {
            b.up();
        }
        skip_ws(p);
        return Ok(());
    }
    let dotted = p.peek() == Some(b'.');
    let (depth, is_text) = parse_pred_path(p, b)?;
    if is_text {
        // `./text() = "v"` (possibly after steps) — text-leaf value
        // directly under the node the path descended to.
        skip_ws(p);
        p.expect("=")?;
        skip_ws(p);
        let v = p.parse_string()?;
        b.value(&v);
        for _ in 0..depth {
            b.up();
        }
        skip_ws(p);
        return Ok(());
    }
    skip_ws(p);
    if let Some(op) = parse_pred_op(p) {
        skip_ws(p);
        if matches!(p.peek(), Some(b'"' | b'\'')) {
            let v = p.parse_string()?;
            match op {
                // Dotted `= "s"` keeps the paper's structural
                // text-leaf semantics; bare paths get a value
                // predicate so equality probes the valix.
                PredOp::Eq if dotted => {
                    b.value(&v);
                }
                PredOp::Eq => {
                    b.pred(PredOp::Eq, PredValue::Str(v));
                }
                _ => {
                    return Err(p.err(format!(
                        "operator `{}` is not supported on strings; use `=` or starts-with()",
                        op.token()
                    )))
                }
            }
        } else {
            let n = parse_number(p)?;
            b.pred(op, PredValue::Num(n));
        }
    }
    for _ in 0..depth {
        b.up();
    }
    skip_ws(p);
    Ok(())
}

/// Parses the path part of a predicate: `.` followed by steps, or a
/// bare `name`/`@name` first step (sugar for `./name`). Returns the
/// number of steps descended and whether the path ended in `text()`
/// (the builder is left positioned at the descended node either way;
/// the caller unwinds `depth` levels when done).
fn parse_pred_path<S: InternSyms>(
    p: &mut Lexer<'_>,
    b: &mut TwigBuilder<'_, S>,
) -> Result<(usize, bool), XPathError> {
    let mut depth = 0usize;
    if !p.eat(".") {
        let (name, is_text) = p.parse_step_name()?;
        if is_text {
            return Ok((0, true));
        }
        b.child(&name, EdgeKind::Child);
        depth = 1;
    }
    while matches!(p.peek(), Some(b'/')) {
        let edge = p.parse_axis_and_stars()?;
        let (name, is_text) = p.parse_step_name()?;
        if is_text {
            return Ok((depth, true));
        }
        b.child(&name, edge);
        depth += 1;
    }
    Ok((depth, false))
}

/// Parses a comparison operator, longest-match first.
fn parse_pred_op(p: &mut Lexer<'_>) -> Option<PredOp> {
    for (tok, op) in [
        ("!=", PredOp::Ne),
        ("<=", PredOp::Le),
        (">=", PredOp::Ge),
        ("<", PredOp::Lt),
        (">", PredOp::Gt),
        ("=", PredOp::Eq),
    ] {
        if p.eat(tok) {
            return Some(op);
        }
    }
    None
}

/// Parses an unquoted numeric literal: `-?digits(.digits)?([eE][+-]?digits)?`.
fn parse_number(p: &mut Lexer<'_>) -> Result<f64, XPathError> {
    let start = p.pos;
    if matches!(p.peek(), Some(b'-' | b'+')) {
        p.pos += 1;
    }
    let mut digits = false;
    while matches!(p.peek(), Some(b'0'..=b'9')) {
        p.pos += 1;
        digits = true;
    }
    if p.peek() == Some(b'.') {
        p.pos += 1;
        while matches!(p.peek(), Some(b'0'..=b'9')) {
            p.pos += 1;
            digits = true;
        }
    }
    if !digits {
        p.pos = start;
        return Err(p.err("expected a quoted string or numeric literal"));
    }
    if matches!(p.peek(), Some(b'e' | b'E')) {
        p.pos += 1;
        if matches!(p.peek(), Some(b'-' | b'+')) {
            p.pos += 1;
        }
        let mut exp_digits = false;
        while matches!(p.peek(), Some(b'0'..=b'9')) {
            p.pos += 1;
            exp_digits = true;
        }
        if !exp_digits {
            return Err(p.err("expected exponent digits"));
        }
    }
    std::str::from_utf8(&p.input[start..p.pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| !n.is_nan())
        .ok_or_else(|| p.err("invalid numeric literal"))
}

fn skip_ws(p: &mut Lexer<'_>) {
    while matches!(p.peek(), Some(b' ' | b'\t')) {
        p.pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_xml::{ScratchSyms, SymbolTable};

    fn show(xpath: &str) -> String {
        let mut syms = SymbolTable::new();
        let q = parse_xpath(xpath, &mut syms).unwrap();
        q.display(&syms)
    }

    #[test]
    fn paper_query_q1() {
        assert_eq!(
            show(r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#),
            r#"inproceedings(author("Jim Gray"),year("1990"))"#
        );
    }

    #[test]
    fn paper_query_q2() {
        assert_eq!(show("//www[./editor]/url"), "www(editor,url)");
    }

    #[test]
    fn paper_query_q3() {
        assert_eq!(
            show(r#"//title[text()="Semantic Analysis Patterns"]"#),
            r#"title("Semantic Analysis Patterns")"#
        );
    }

    #[test]
    fn paper_query_q4() {
        assert_eq!(
            show(r#"//Entry[./Keyword="Rhizomelic"]"#),
            r#"Entry(Keyword("Rhizomelic"))"#
        );
    }

    #[test]
    fn paper_query_q5() {
        assert_eq!(
            show(r#"//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]"#),
            r#"Entry(Ref(Author("Mueller P"),Author("Keller M")))"#
        );
    }

    #[test]
    fn paper_query_q6() {
        assert_eq!(
            show(r#"//Entry[./Org="Piroplasmida"][.//Author]//from"#),
            r#"Entry(Org("Piroplasmida"),~Author,~from)"#
        );
    }

    #[test]
    fn paper_query_q7() {
        assert_eq!(show("//S//NP/SYM"), "S(~NP(SYM))");
    }

    #[test]
    fn paper_query_q8() {
        assert_eq!(show("//NP[./RBR_OR_JJR]/PP"), "NP(RBR_OR_JJR,PP)");
    }

    #[test]
    fn paper_query_q9() {
        assert_eq!(
            show("//NP/PP/NP[./NNS_OR_NN][./NN]"),
            "NP(PP(NP(NNS_OR_NN,NN)))"
        );
    }

    #[test]
    fn star_steps_fold_into_distance() {
        assert_eq!(show("//a/*/b"), "a(^2b)");
        assert_eq!(show("//a/*/*/b"), "a(^3b)");
        assert_eq!(show("//a/*//b"), "a(~b)");
        // Stars inside predicates too.
        assert_eq!(show("//a[./*/c]"), "a(^2c)");
    }

    #[test]
    fn attribute_steps_are_subelements() {
        assert_eq!(show(r#"//Entry[./@id="P1"]"#), r#"Entry(id("P1"))"#);
        assert_eq!(show("//Entry/@id"), "Entry(id)");
    }

    #[test]
    fn absolute_paths_set_the_flag() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("/dblp/inproceedings", &mut syms).unwrap();
        assert!(q.is_absolute());
        let q2 = parse_xpath("//dblp/inproceedings", &mut syms).unwrap();
        assert!(!q2.is_absolute());
    }

    #[test]
    fn nested_predicates_restore_the_path_position() {
        // The step after the predicates continues from the predicate
        // host, not from inside the predicate.
        assert_eq!(show("//a[./b/c]/d"), "a(b(c),d)");
    }

    #[test]
    fn single_quotes_work() {
        assert_eq!(show("//a[./b='x']"), r#"a(b("x"))"#);
    }

    #[test]
    fn errors_are_reported() {
        let mut syms = SymbolTable::new();
        assert!(parse_xpath("//a[", &mut syms).is_err());
        assert!(parse_xpath("//a[./b=\"x]", &mut syms).is_err());
        assert!(parse_xpath("//", &mut syms).is_err());
        assert!(parse_xpath("//a//", &mut syms).is_err());
        assert!(parse_xpath("a/text()", &mut syms).is_err());
    }

    #[test]
    fn numeric_predicates_parse_on_all_operators() {
        assert_eq!(show("//book[price < 10]"), "book(price{< 10})");
        assert_eq!(show("//book[./price <= 10.5]"), "book(price{<= 10.5})");
        assert_eq!(show("//book[price>2]"), "book(price{> 2})");
        assert_eq!(show("//book[price >= -1.5]"), "book(price{>= -1.5})");
        assert_eq!(show("//book[price = 10]"), "book(price{= 10})");
        assert_eq!(show("//book[price != 1e3]"), "book(price{!= 1000})");
    }

    #[test]
    fn string_predicates_parse_on_bare_and_attribute_paths() {
        assert_eq!(show(r#"//person[@id = "x7"]"#), r#"person(id{= "x7"})"#);
        assert_eq!(show(r#"//person[id = "x7"]"#), r#"person(id{= "x7"})"#);
        assert_eq!(
            show(r#"//person[starts-with(@id, "x")]"#),
            r#"person(id{starts-with "x"})"#
        );
        assert_eq!(
            show(r#"//a[starts-with(./b/c, "pre")]/d"#),
            r#"a(b(c{starts-with "pre"}),d)"#
        );
    }

    #[test]
    fn dotted_string_equality_keeps_structural_semantics() {
        // `./path = "s"` is the paper's structural text-leaf match,
        // not a value predicate — display and preds() must show that.
        let mut syms = SymbolTable::new();
        let q = parse_xpath(r#"//a[./b = "x"]"#, &mut syms).unwrap();
        assert!(q.preds().is_empty());
        assert_eq!(q.display(&syms), r#"a(b("x"))"#);
        // Bare-path `=` on a string goes through the valix instead.
        let q2 = parse_xpath(r#"//a[b = "x"]"#, &mut syms).unwrap();
        assert_eq!(q2.preds().len(), 1);
    }

    #[test]
    fn bare_existential_predicates_are_sugar_for_dotted() {
        assert_eq!(show("//www[editor]/url"), show("//www[./editor]/url"));
        assert_eq!(show("//a[b/c]/d"), show("//a[./b/c]/d"));
    }

    #[test]
    fn predicate_errors_never_panic() {
        let mut syms = SymbolTable::new();
        for bad in [
            "//book[price <]",
            "//book[price < ]",
            "//book[price < abc]",
            "//book[price !< 3]",
            "//book[price < 1e]",
            "//book[price < 3",
            "//a[b != \"x\"]",
            "//a[b < \"x\"]",
            "//a[starts-with(b)]",
            "//a[starts-with(b, 3)]",
            "//a[starts-with(b, \"x\"]",
            "//a[starts-with(text(), \"x\")]",
            "//a[price < 1.2.3]",
            "//a[= 3]",
        ] {
            assert!(parse_xpath(bad, &mut syms).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn predicate_on_the_current_node_targets_the_host() {
        // `[. < 10]` anchors the predicate on the step itself.
        let mut syms = SymbolTable::new();
        let q = parse_xpath("//price[. < 10]", &mut syms).unwrap();
        assert_eq!(q.preds().len(), 1);
        assert_eq!(q.preds()[0].node, q.tree().root());
        assert_eq!(q.display(&syms), "price{< 10}");
    }

    #[test]
    fn bare_name_is_relative() {
        let mut syms = SymbolTable::new();
        let q = parse_xpath("book", &mut syms).unwrap();
        assert!(!q.is_absolute());
        assert_eq!(q.tree().len(), 1);
    }

    #[test]
    fn scratch_parse_matches_owned_parse_and_never_mutates() {
        let mut syms = SymbolTable::new();
        for n in ["inproceedings", "author", "Jim Gray", "year", "1990"] {
            syms.intern(n);
        }
        let frozen = syms.clone();
        let xp = r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#;
        let owned = parse_xpath(xp, &mut syms.clone()).unwrap();
        let mut scratch = ScratchSyms::new(&frozen);
        let ro = parse_xpath(xp, &mut scratch).unwrap();
        assert_eq!(scratch.unknown(), 0);
        assert_eq!(ro.display(&frozen), owned.display(&syms));
        // Unknown labels parse fine and land past the frozen table.
        let mut scratch = ScratchSyms::new(&frozen);
        let ghost = parse_xpath("//inproceedings/ghost", &mut scratch).unwrap();
        assert_eq!(scratch.unknown(), 1);
        assert_eq!(frozen.len(), 5, "shared table untouched");
        assert_eq!(ghost.tree().len(), 2);
    }
}
