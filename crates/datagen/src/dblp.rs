//! DBLP-like bibliography generator.
//!
//! Characteristics reproduced from Table 2 / §6.2: many small document
//! trees (one per bibliography record), *good structural similarity*
//! (few distinct shapes → heavy trie-path sharing, §6.4.2), shallow
//! (max depth ≤ 6 counting value leaves).
//!
//! Planted query answers (Table 3):
//! * Q1 `//inproceedings[./author="Jim Gray"][./year="1990"]` → **6**
//! * Q2 `//www[./editor]/url` → **21**
//! * Q3 `//title[text()="Semantic Analysis Patterns"]` → **1**

use prix_xml::{Collection, TreeBuilder};

use crate::rng::SplitMix64;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of bibliography records (documents).
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DblpConfig {
    /// Scales the paper's 328 858 sequences: `scale = 1.0` ≈ 20 000
    /// records.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        DblpConfig {
            records: ((20_000.0 * scale) as usize).max(400),
            seed,
        }
    }
}

const FIRST: &[&str] = &[
    "Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Hiro", "Ivan", "Judy", "Kamal",
    "Lena", "Marco", "Nadia", "Omar", "Priya", "Quentin", "Rosa", "Sven", "Tara",
];
const LAST: &[&str] = &[
    "Abiteboul",
    "Bernstein",
    "Codd",
    "DeWitt",
    "Eswaran",
    "Fagin",
    "Garcia",
    "Haas",
    "Ioannidis",
    "Jagadish",
    "Kim",
    "Lohman",
    "Mohan",
    "Naughton",
    "Olken",
    "Patel",
    "Ramakrishnan",
    "Stonebraker",
    "Traiger",
    "Ullman",
    "Valduriez",
    "Widom",
    "Yu",
    "Zaniolo",
];
const TITLE_WORDS: &[&str] = &[
    "Efficient",
    "Scalable",
    "Indexing",
    "Query",
    "Processing",
    "XML",
    "Databases",
    "Twig",
    "Patterns",
    "Joins",
    "Storage",
    "Semistructured",
    "Data",
    "Optimization",
    "Algorithms",
    "Structures",
    "Trees",
    "Sequences",
    "Holistic",
    "Matching",
    "Views",
    "Caching",
    "Systems",
];
const BOOKTITLES: &[&str] = &[
    "SIGMOD Conference",
    "VLDB",
    "ICDE",
    "EDBT",
    "PODS",
    "WebDB",
    "CIKM",
    "DASFAA",
];
const JOURNALS: &[&str] = &[
    "TODS",
    "VLDB Journal",
    "TKDE",
    "Information Systems",
    "SIGMOD Record",
];

fn author(r: &mut SplitMix64) -> String {
    format!("{} {}", r.pick(FIRST), r.pick(LAST))
}

fn title(r: &mut SplitMix64) -> String {
    let n = r.range(3, 7);
    let mut t = String::new();
    for i in 0..n {
        if i > 0 {
            t.push(' ');
        }
        t.push_str(TITLE_WORDS[r.skewed(TITLE_WORDS.len() as u64) as usize]);
    }
    t
}

fn year(r: &mut SplitMix64) -> String {
    r.range(1970, 2003).to_string()
}

/// Generates the collection.
pub fn generate(cfg: &DblpConfig) -> Collection {
    assert!(cfg.records >= 400, "DBLP generator needs >= 400 records");
    let mut c = Collection::new();
    let mut r = SplitMix64::new(cfg.seed ^ 0xD8_1B_70_05);
    let n = cfg.records;

    // Deterministic slots for planted records, spread over the file.
    // Slots must be pairwise distinct or one plant would absorb another;
    // claim them in priority order, shifting on clash.
    let slot = |k: usize, of: usize| -> usize { (n / (of + 1)) * (k + 1) };
    let mut taken = std::collections::HashSet::new();
    let mut claim = |mut s: usize| -> usize {
        while !taken.insert(s % n) {
            s += 1;
        }
        s % n
    };
    // Q1: 8 Jim Gray inproceedings, 6 with year 1990.
    let jim_slots: Vec<usize> = (0..8).map(|k| claim(slot(k, 8))).collect();
    // Q3: one exact title.
    let sap_slot = claim(slot(3, 8) + 1);
    // Q2: 21 www records with editor (+ ~0.9% www without editor below).
    let www_editor_slots: Vec<usize> = (0..21).map(|k| claim(slot(k, 21) + 2)).collect();

    let mut attr_count = 0u64;
    for i in 0..n {
        let mut b;
        if let Some(k) = jim_slots.iter().position(|&s| s == i) {
            b = TreeBuilder::new(c.symbols_mut(), "inproceedings");
            b.attribute("key", &format!("conf/ip/{i}"));
            attr_count += 1;
            b.leaf_element("author", "Jim Gray");
            if r.chance(0.5) {
                let coauthor = author(&mut r);
                b.leaf_element("author", &coauthor);
            }
            let t = title(&mut r);
            b.leaf_element("title", &t);
            b.leaf_element(
                "booktitle",
                BOOKTITLES[r.skewed(BOOKTITLES.len() as u64) as usize],
            );
            // Exactly 6 of the 8 get year 1990 (Table 3: Q1 = 6).
            let y = if k < 6 {
                "1990".to_string()
            } else {
                r.range(1991, 1995).to_string()
            };
            b.leaf_element("year", &y);
            b.leaf_element(
                "pages",
                &format!("{}-{}", r.range(1, 400), r.range(401, 800)),
            );
        } else if i == sap_slot {
            b = TreeBuilder::new(c.symbols_mut(), "article");
            b.attribute("key", &format!("journals/a/{i}"));
            attr_count += 1;
            let a = author(&mut r);
            b.leaf_element("author", &a);
            b.leaf_element("title", "Semantic Analysis Patterns");
            b.leaf_element(
                "journal",
                JOURNALS[r.skewed(JOURNALS.len() as u64) as usize],
            );
            b.leaf_element("year", &year(&mut r));
        } else if let Some(_k) = www_editor_slots.iter().position(|&s| s == i) {
            b = TreeBuilder::new(c.symbols_mut(), "www");
            b.attribute("key", &format!("www/e/{i}"));
            attr_count += 1;
            let e = author(&mut r);
            b.leaf_element("editor", &e);
            b.leaf_element("title", &title(&mut r));
            b.leaf_element("url", &format!("http://example.org/{i}"));
        } else {
            let kind = r.below(100);
            if kind < 55 {
                // inproceedings
                b = TreeBuilder::new(c.symbols_mut(), "inproceedings");
                b.attribute("key", &format!("conf/x/{i}"));
                attr_count += 1;
                let na = r.range(1, 3);
                for _ in 0..na {
                    let a = author(&mut r);
                    // The planted name never appears at random.
                    debug_assert_ne!(a, "Jim Gray");
                    b.leaf_element("author", &a);
                }
                b.leaf_element("title", &title(&mut r));
                b.leaf_element(
                    "booktitle",
                    BOOKTITLES[r.skewed(BOOKTITLES.len() as u64) as usize],
                );
                b.leaf_element("year", &year(&mut r));
                b.leaf_element(
                    "pages",
                    &format!("{}-{}", r.range(1, 400), r.range(401, 800)),
                );
                if r.chance(0.4) {
                    b.leaf_element("url", &format!("db/conf/{i}.html"));
                }
            } else if kind < 90 {
                // article
                b = TreeBuilder::new(c.symbols_mut(), "article");
                b.attribute("key", &format!("journals/x/{i}"));
                attr_count += 1;
                let na = r.range(1, 4);
                for _ in 0..na {
                    let a = author(&mut r);
                    b.leaf_element("author", &a);
                }
                b.leaf_element("title", &title(&mut r));
                // Editors are frequent outside www records too — the
                // distribution that forces TwigStackXB to drill down on
                // Q2 (§6.4.2: "editor and url occurred frequently ...
                // around the documents with www elements").
                if r.chance(0.18) {
                    let e = author(&mut r);
                    b.leaf_element("editor", &e);
                }
                b.leaf_element(
                    "journal",
                    JOURNALS[r.skewed(JOURNALS.len() as u64) as usize],
                );
                b.leaf_element("volume", &r.range(1, 30).to_string());
                b.leaf_element("year", &year(&mut r));
                if r.chance(0.5) {
                    b.leaf_element("url", &format!("db/journals/{i}.html"));
                }
            } else if kind < 99 {
                // phdthesis / book
                let root = if kind < 95 { "phdthesis" } else { "book" };
                b = TreeBuilder::new(c.symbols_mut(), root);
                b.attribute("key", &format!("{root}/x/{i}"));
                attr_count += 1;
                let a = author(&mut r);
                b.leaf_element("author", &a);
                let e = author(&mut r);
                b.leaf_element("editor", &e);
                b.leaf_element("title", &title(&mut r));
                b.leaf_element("year", &year(&mut r));
                b.leaf_element("publisher", "Imaginary Press");
            } else {
                // www WITHOUT editor (≈1%): the Q2 pain case — www is
                // scattered while editor/url are frequent nearby
                // (§6.4.2).
                b = TreeBuilder::new(c.symbols_mut(), "www");
                b.attribute("key", &format!("www/x/{i}"));
                attr_count += 1;
                b.leaf_element("title", &title(&mut r));
                b.leaf_element("url", &format!("http://example.org/x{i}"));
            }
        }
        let tree = b.finish();
        c.note_source_bytes(40 * tree.len() as u64); // rough serialized size
        c.add_tree(tree);
    }
    c.note_attributes(attr_count);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_xml::NodeKind;

    fn count_planted(c: &Collection) -> (usize, usize, usize) {
        let syms = c.symbols();
        let jim = syms.lookup("Jim Gray");
        let sap = syms.lookup("Semantic Analysis Patterns");
        let editor = syms.lookup("editor");
        let www = syms.lookup("www");
        let year90 = syms.lookup("1990");
        let inproc = syms.lookup("inproceedings");
        let mut q1 = 0;
        let mut q3 = 0;
        let mut q2 = 0;
        for (_, t) in c.iter() {
            let root_label = t.label(t.root());
            // Q1: inproceedings with author "Jim Gray" AND year "1990".
            if Some(root_label) == inproc {
                let mut has_jim = false;
                let mut has_90 = false;
                for node in t.nodes() {
                    if Some(t.label(node)) == jim && t.kind(node) == NodeKind::Text {
                        has_jim = true;
                    }
                    if Some(t.label(node)) == year90 && t.kind(node) == NodeKind::Text {
                        has_90 = true;
                    }
                }
                if has_jim && has_90 {
                    q1 += 1;
                }
            }
            if Some(root_label) == www {
                let has_editor = t.nodes().any(|nd| Some(t.label(nd)) == editor);
                if has_editor {
                    q2 += 1;
                }
            }
            if t.nodes().any(|nd| Some(t.label(nd)) == sap) {
                q3 += 1;
            }
        }
        (q1, q2, q3)
    }

    #[test]
    fn planted_counts_match_table3() {
        let c = generate(&DblpConfig {
            records: 1000,
            seed: 11,
        });
        let (q1, q2, q3) = count_planted(&c);
        assert_eq!(q1, 6, "Q1 = 6 twig matches");
        assert_eq!(q2, 21, "Q2 = 21 www-with-editor records");
        assert_eq!(q3, 1, "Q3 = 1 exact title");
    }

    #[test]
    fn planted_counts_are_scale_invariant() {
        for records in [500, 2000] {
            let c = generate(&DblpConfig { records, seed: 3 });
            let (q1, q2, q3) = count_planted(&c);
            assert_eq!((q1, q2, q3), (6, 21, 1), "at {records} records");
        }
    }

    #[test]
    fn records_are_shallow_and_similar() {
        let c = generate(&DblpConfig {
            records: 500,
            seed: 5,
        });
        assert_eq!(c.len(), 500);
        let s = c.stats();
        assert!(
            s.max_depth <= 4,
            "record trees are shallow (got {})",
            s.max_depth
        );
        assert!(s.attributes >= 500, "every record has a key attribute");
    }

    #[test]
    fn author_ordering_supports_ordered_q1() {
        // In every planted record, the Jim Gray author precedes the year
        // element (ordered twig matching needs document order to agree
        // with the query's branch order).
        let c = generate(&DblpConfig {
            records: 800,
            seed: 9,
        });
        let syms = c.symbols();
        let jim = syms.lookup("Jim Gray").unwrap();
        let year90 = syms.lookup("1990").unwrap();
        for (_, t) in c.iter() {
            let jim_pos = t
                .nodes()
                .find(|&n| t.label(n) == jim)
                .map(|n| t.postorder(n));
            let y_pos = t
                .nodes()
                .find(|&n| t.label(n) == year90)
                .map(|n| t.postorder(n));
            if let (Some(j), Some(y)) = (jim_pos, y_pos) {
                assert!(j < y, "author before year in postorder");
            }
        }
    }
}
