//! Synthetic dataset and workload generators for the PRIX evaluation.
//!
//! The paper evaluates on three UW-repository datasets (Table 2) that we
//! cannot redistribute; these generators produce collections with the
//! same *load-bearing characteristics* (see DESIGN.md §4):
//!
//! * [`dblp`] — many small, structurally similar, shallow bibliography
//!   records (drives trie-path sharing and value selectivity),
//! * [`swissprot`] — bushy, shallow, attribute-heavy protein entries
//!   with scattered rare values (drives TwigStackXB drill-downs and
//!   ViST's top-down blowup),
//! * [`treebank`] — skinny, deep parse trees with recursive tags and
//!   "encrypted" values (drives wildcard processing and parent-child
//!   sub-optimality).
//!
//! Each generator deterministically *plants* the occurrences that give
//! the paper's queries Q1–Q9 (Table 3) their published match counts,
//! and keeps the planted labels out of the random pools so the counts
//! are exact.

pub mod dblp;
pub mod queries;
pub mod rng;
pub mod swissprot;
pub mod treebank;
pub mod values;

pub use queries::{paper_queries, predicate_queries, PaperQuery, PredicateQuery};
pub use rng::SplitMix64;

use prix_xml::Collection;

/// The three datasets of the paper's evaluation (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Shallow, structurally similar bibliography records.
    Dblp,
    /// Bushy, shallow protein entries.
    Swissprot,
    /// Skinny, deep, recursive parse trees.
    Treebank,
}

impl Dataset {
    /// All datasets, in paper order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Dblp, Dataset::Swissprot, Dataset::Treebank]
    }

    /// Name as used in Table 2.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Dblp => "DBLP",
            Dataset::Swissprot => "SWISSPROT",
            Dataset::Treebank => "TREEBANK",
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates a dataset at the given scale.
///
/// `scale = 1.0` targets roughly 5–10% of the paper's element counts
/// (minutes per full experiment run instead of hours); the planted query
/// answers are scale-independent, so Table 3's match counts reproduce at
/// any scale ≥ the generators' minimum sizes.
pub fn generate(dataset: Dataset, scale: f64, seed: u64) -> Collection {
    match dataset {
        Dataset::Dblp => dblp::generate(&dblp::DblpConfig::scaled(scale, seed)),
        Dataset::Swissprot => swissprot::generate(&swissprot::SwissprotConfig::scaled(scale, seed)),
        Dataset::Treebank => treebank::generate(&treebank::TreebankConfig::scaled(scale, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_nonempty() {
        for ds in Dataset::all() {
            let c = generate(ds, 0.02, 42);
            assert!(!c.is_empty(), "{ds} empty");
            let stats = c.stats();
            assert!(stats.elements > 0);
            assert!(stats.sequences as usize == c.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Dataset::Dblp, 0.02, 7);
        let b = generate(Dataset::Dblp, 0.02, 7);
        assert_eq!(a.len(), b.len());
        for ((_, ta), (_, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta.len(), tb.len());
        }
    }

    #[test]
    fn seeds_change_content() {
        let a = generate(Dataset::Treebank, 0.02, 1);
        let b = generate(Dataset::Treebank, 0.02, 2);
        let na: usize = a.iter().map(|(_, t)| t.len()).sum();
        let nb: usize = b.iter().map(|(_, t)| t.len()).sum();
        assert_ne!(na, nb, "different seeds should differ in shape");
    }

    #[test]
    fn dataset_shapes_match_table2_characteristics() {
        let dblp = generate(Dataset::Dblp, 0.05, 3);
        let sp = generate(Dataset::Swissprot, 0.05, 3);
        let tb = generate(Dataset::Treebank, 0.05, 3);
        // DBLP: shallow.
        assert!(dblp.stats().max_depth <= 6, "DBLP is shallow");
        // TREEBANK: deep.
        assert!(
            tb.stats().max_depth >= 20,
            "TREEBANK is deep (got {})",
            tb.stats().max_depth
        );
        // SWISSPROT: bushy — more elements per document than DBLP.
        let sp_avg = sp.stats().total_nodes as f64 / sp.len() as f64;
        let dblp_avg = dblp.stats().total_nodes as f64 / dblp.len() as f64;
        assert!(sp_avg > dblp_avg, "SWISSPROT entries are bushier");
    }
}
