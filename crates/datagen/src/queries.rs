//! The paper's query workload (Table 3).

use crate::Dataset;

/// One of the paper's nine XPath queries.
#[derive(Debug, Clone, Copy)]
pub struct PaperQuery {
    /// Identifier, `"Q1"` .. `"Q9"`.
    pub id: &'static str,
    /// XPath text, exactly as in Table 3.
    pub xpath: &'static str,
    /// Dataset the query targets.
    pub dataset: Dataset,
    /// Twig-match count the paper reports (and the generators plant).
    pub expected_matches: u64,
    /// Whether the query contains value predicates (drives the §5.6
    /// RPIndex/EPIndex routing).
    pub has_values: bool,
}

/// Table 3, verbatim.
pub fn paper_queries() -> Vec<PaperQuery> {
    vec![
        PaperQuery {
            id: "Q1",
            xpath: r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#,
            dataset: Dataset::Dblp,
            expected_matches: 6,
            has_values: true,
        },
        PaperQuery {
            id: "Q2",
            xpath: "//www[./editor]/url",
            dataset: Dataset::Dblp,
            expected_matches: 21,
            has_values: false,
        },
        PaperQuery {
            id: "Q3",
            xpath: r#"//title[text()="Semantic Analysis Patterns"]"#,
            dataset: Dataset::Dblp,
            expected_matches: 1,
            has_values: true,
        },
        PaperQuery {
            id: "Q4",
            xpath: r#"//Entry[./Keyword="Rhizomelic"]"#,
            dataset: Dataset::Swissprot,
            expected_matches: 3,
            has_values: true,
        },
        PaperQuery {
            id: "Q5",
            xpath: r#"//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]"#,
            dataset: Dataset::Swissprot,
            expected_matches: 5,
            has_values: true,
        },
        PaperQuery {
            id: "Q6",
            xpath: r#"//Entry[./Org="Piroplasmida"][.//Author]//from"#,
            dataset: Dataset::Swissprot,
            expected_matches: 158,
            has_values: true,
        },
        PaperQuery {
            id: "Q7",
            xpath: "//S//NP/SYM",
            dataset: Dataset::Treebank,
            expected_matches: 9,
            has_values: false,
        },
        PaperQuery {
            id: "Q8",
            xpath: "//NP[./RBR_OR_JJR]/PP",
            dataset: Dataset::Treebank,
            expected_matches: 1,
            has_values: false,
        },
        PaperQuery {
            id: "Q9",
            xpath: "//NP/PP/NP[./NNS_OR_NN][./NN]",
            dataset: Dataset::Treebank,
            expected_matches: 6,
            has_values: false,
        },
    ]
}

/// One query of the value-predicate workload (QP1–QP8): analogues of
/// the paper's value queries recast in the `[path op literal]` predicate
/// syntax of DESIGN.md §14, all targeting the [`crate::values`] shop
/// scenario, which plants their match counts exactly.
#[derive(Debug, Clone, Copy)]
pub struct PredicateQuery {
    /// Identifier, `"QP1"` .. `"QP8"`.
    pub id: &'static str,
    /// XPath text, using comparison / starts-with predicates.
    pub xpath: &'static str,
    /// Planted twig-match count (scale- and seed-invariant).
    pub expected_matches: u64,
    /// Which Table 3 value query this is the analogue of, if any.
    pub analogue_of: Option<&'static str>,
}

/// The predicate workload over the shop scenario.
///
/// QP1–QP5 mirror the *shapes* of the paper's value queries (Q1's
/// conjunctive equality pair, Q3's unique exact match, Q4's rare
/// equality, Q5's repeated-sibling conjunction, Q6's predicate plus
/// descendant output); QP6–QP8 exercise what the old `text()=` path
/// could not express: numeric ranges and string prefixes.
pub fn predicate_queries() -> Vec<PredicateQuery> {
    vec![
        PredicateQuery {
            id: "QP1",
            xpath: r#"//item[id = "SKU-HOT"][quantity = 77]"#,
            expected_matches: 6,
            analogue_of: Some("Q1"),
        },
        PredicateQuery {
            id: "QP2",
            xpath: r#"//item[name = "One Of A Kind Widget"]"#,
            expected_matches: 1,
            analogue_of: Some("Q3"),
        },
        PredicateQuery {
            id: "QP3",
            xpath: r#"//item[category = "heirloom"]"#,
            expected_matches: 3,
            analogue_of: Some("Q4"),
        },
        PredicateQuery {
            id: "QP4",
            xpath: r#"//item[tag = "clearance"][tag = "vintage"]"#,
            expected_matches: 5,
            analogue_of: Some("Q5"),
        },
        PredicateQuery {
            id: "QP5",
            xpath: r#"//order[buyer = "ACME Corp"]//sku"#,
            expected_matches: 40,
            analogue_of: Some("Q6"),
        },
        PredicateQuery {
            id: "QP6",
            xpath: "//item[price < 10]",
            expected_matches: 7,
            analogue_of: None,
        },
        PredicateQuery {
            id: "QP7",
            xpath: "//item[quantity >= 500]",
            expected_matches: 4,
            analogue_of: None,
        },
        PredicateQuery {
            id: "QP8",
            xpath: r#"//item[starts-with(./id, "SKU-X")]"#,
            expected_matches: 9,
            analogue_of: None,
        },
    ]
}

/// The queries that target one dataset.
pub fn queries_for(dataset: Dataset) -> Vec<PaperQuery> {
    paper_queries()
        .into_iter()
        .filter(|q| q.dataset == dataset)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_queries_three_per_dataset() {
        let qs = paper_queries();
        assert_eq!(qs.len(), 9);
        for ds in Dataset::all() {
            assert_eq!(queries_for(ds).len(), 3, "{ds}");
        }
    }

    #[test]
    fn expected_counts_match_table3() {
        let counts: Vec<u64> = paper_queries().iter().map(|q| q.expected_matches).collect();
        assert_eq!(counts, vec![6, 21, 1, 3, 5, 158, 9, 1, 6]);
    }

    #[test]
    fn predicate_workload_counts_are_pinned() {
        let qs = predicate_queries();
        assert_eq!(qs.len(), 8);
        let counts: Vec<u64> = qs.iter().map(|q| q.expected_matches).collect();
        assert_eq!(counts, vec![6, 1, 3, 5, 40, 7, 4, 9]);
        // The five paper value queries each have exactly one analogue.
        let analogues: Vec<&str> = qs.iter().filter_map(|q| q.analogue_of).collect();
        assert_eq!(analogues, vec!["Q1", "Q3", "Q4", "Q5", "Q6"]);
    }

    #[test]
    fn value_flags() {
        let qs = paper_queries();
        let with_values: Vec<&str> = qs.iter().filter(|q| q.has_values).map(|q| q.id).collect();
        assert_eq!(with_values, vec!["Q1", "Q3", "Q4", "Q5", "Q6"]);
    }
}
