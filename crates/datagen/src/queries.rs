//! The paper's query workload (Table 3).

use crate::Dataset;

/// One of the paper's nine XPath queries.
#[derive(Debug, Clone, Copy)]
pub struct PaperQuery {
    /// Identifier, `"Q1"` .. `"Q9"`.
    pub id: &'static str,
    /// XPath text, exactly as in Table 3.
    pub xpath: &'static str,
    /// Dataset the query targets.
    pub dataset: Dataset,
    /// Twig-match count the paper reports (and the generators plant).
    pub expected_matches: u64,
    /// Whether the query contains value predicates (drives the §5.6
    /// RPIndex/EPIndex routing).
    pub has_values: bool,
}

/// Table 3, verbatim.
pub fn paper_queries() -> Vec<PaperQuery> {
    vec![
        PaperQuery {
            id: "Q1",
            xpath: r#"//inproceedings[./author="Jim Gray"][./year="1990"]"#,
            dataset: Dataset::Dblp,
            expected_matches: 6,
            has_values: true,
        },
        PaperQuery {
            id: "Q2",
            xpath: "//www[./editor]/url",
            dataset: Dataset::Dblp,
            expected_matches: 21,
            has_values: false,
        },
        PaperQuery {
            id: "Q3",
            xpath: r#"//title[text()="Semantic Analysis Patterns"]"#,
            dataset: Dataset::Dblp,
            expected_matches: 1,
            has_values: true,
        },
        PaperQuery {
            id: "Q4",
            xpath: r#"//Entry[./Keyword="Rhizomelic"]"#,
            dataset: Dataset::Swissprot,
            expected_matches: 3,
            has_values: true,
        },
        PaperQuery {
            id: "Q5",
            xpath: r#"//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]"#,
            dataset: Dataset::Swissprot,
            expected_matches: 5,
            has_values: true,
        },
        PaperQuery {
            id: "Q6",
            xpath: r#"//Entry[./Org="Piroplasmida"][.//Author]//from"#,
            dataset: Dataset::Swissprot,
            expected_matches: 158,
            has_values: true,
        },
        PaperQuery {
            id: "Q7",
            xpath: "//S//NP/SYM",
            dataset: Dataset::Treebank,
            expected_matches: 9,
            has_values: false,
        },
        PaperQuery {
            id: "Q8",
            xpath: "//NP[./RBR_OR_JJR]/PP",
            dataset: Dataset::Treebank,
            expected_matches: 1,
            has_values: false,
        },
        PaperQuery {
            id: "Q9",
            xpath: "//NP/PP/NP[./NNS_OR_NN][./NN]",
            dataset: Dataset::Treebank,
            expected_matches: 6,
            has_values: false,
        },
    ]
}

/// The queries that target one dataset.
pub fn queries_for(dataset: Dataset) -> Vec<PaperQuery> {
    paper_queries()
        .into_iter()
        .filter(|q| q.dataset == dataset)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_queries_three_per_dataset() {
        let qs = paper_queries();
        assert_eq!(qs.len(), 9);
        for ds in Dataset::all() {
            assert_eq!(queries_for(ds).len(), 3, "{ds}");
        }
    }

    #[test]
    fn expected_counts_match_table3() {
        let counts: Vec<u64> = paper_queries().iter().map(|q| q.expected_matches).collect();
        assert_eq!(counts, vec![6, 21, 1, 3, 5, 158, 9, 1, 6]);
    }

    #[test]
    fn value_flags() {
        let qs = paper_queries();
        let with_values: Vec<&str> = qs.iter().filter(|q| q.has_values).map(|q| q.id).collect();
        assert_eq!(with_values, vec!["Q1", "Q3", "Q4", "Q5", "Q6"]);
    }
}
