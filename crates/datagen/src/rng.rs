//! Deterministic pseudo-random numbers for reproducible datasets.
//!
//! A SplitMix64 generator: tiny, fast, and stable across platforms and
//! crate versions — dataset bytes never change under dependency bumps,
//! which keeps the planted Table 3 match counts exact.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping (slight bias is fine for
        // synthetic data).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }

    /// Picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Zipf-ish skewed index in `[0, n)`: low indexes are much more
    /// likely (square-of-uniform skew; cheap and adequate for tag/value
    /// frequency skew).
    pub fn skewed(&mut self, n: u64) -> u64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        ((u * u) * n as f64) as u64
    }

    /// Random lowercase "encrypted" token of the given length (used for
    /// TREEBANK's encrypted values).
    pub fn token(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SplitMix64::new(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(r.range(5, 7) - 5) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn skewed_prefers_low_indexes() {
        let mut r = SplitMix64::new(4);
        let mut low = 0;
        for _ in 0..1000 {
            if r.skewed(100) < 25 {
                low += 1;
            }
        }
        assert!(low > 400, "square-skew puts >40% below the first quartile");
    }

    #[test]
    fn token_shape() {
        let mut r = SplitMix64::new(5);
        let t = r.token(8);
        assert_eq!(t.len(), 8);
        assert!(t.bytes().all(|b| b.is_ascii_lowercase()));
    }
}
