//! SWISSPROT-like protein-entry generator.
//!
//! Characteristics reproduced from Table 2 / §6.2: 50 000 *bushy and
//! shallow* document trees with a very high attribute count (≈ 2.2M
//! attributes vs 3.0M elements in the paper).
//!
//! Planted query answers (Table 3):
//! * Q4 `//Entry[./Keyword="Rhizomelic"]` → **3**
//! * Q5 `//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]` → **5**
//! * Q6 `//Entry[./Org="Piroplasmida"][.//Author]//from` → **158**
//!
//! Q6's 158 occurrences are *embeddings*: ten planted entries whose
//! (#Author × #from) products sum to exactly 158 (9 × 16 + 1 × 14).
//! Entries carrying `Piroplasmida` are scattered and surrounded by
//! entries rich in `Author`/`from` tags, recreating the distribution
//! that forces TwigStackXB to drill down (§6.4.2).

use prix_xml::{Collection, TreeBuilder};

use crate::rng::SplitMix64;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SwissprotConfig {
    /// Number of Entry documents.
    pub entries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SwissprotConfig {
    /// `scale = 1.0` ≈ 4000 entries (the paper used 50 000).
    pub fn scaled(scale: f64, seed: u64) -> Self {
        SwissprotConfig {
            entries: ((4000.0 * scale) as usize).max(300),
            seed,
        }
    }
}

const ORGS: &[&str] = &[
    "Eukaryota",
    "Metazoa",
    "Chordata",
    "Mammalia",
    "Primates",
    "Hominidae",
    "Rodentia",
    "Bacteria",
    "Proteobacteria",
    "Firmicutes",
    "Fungi",
    "Viridiplantae",
];
const KEYWORDS: &[&str] = &[
    "Hydrolase",
    "Transferase",
    "Kinase",
    "Membrane",
    "Transmembrane",
    "Signal",
    "Repeat",
    "Zinc-finger",
    "DNA-binding",
    "Transport",
    "Glycoprotein",
    "Phosphorylation",
];
const AUTHORS: &[&str] = &[
    "Smith J",
    "Brown T",
    "Chen L",
    "Garcia M",
    "Kim S",
    "Patel R",
    "Nguyen H",
    "Sato K",
    "Ivanov P",
    "Rossi G",
    "Dubois C",
    "Hansen E",
    "Kowalski A",
    "Novak J",
    "Silva P",
];
const FEATURES: &[&str] = &[
    "DOMAIN", "CHAIN", "SIGNAL", "TRANSMEM", "BINDING", "ACT_SITE",
];

/// Generates the collection.
pub fn generate(cfg: &SwissprotConfig) -> Collection {
    assert!(
        cfg.entries >= 300,
        "SWISSPROT generator needs >= 300 entries"
    );
    let mut c = Collection::new();
    let mut r = SplitMix64::new(cfg.seed ^ 0x0005_7155);
    let n = cfg.entries;

    let slot = |k: usize, of: usize| -> usize { (n / (of + 1)) * (k + 1) };
    // Planted slots must be pairwise distinct (a collision would skew a
    // planted count): claim them in priority order, shifting on clash.
    let mut taken = std::collections::HashSet::new();
    let mut claim = |mut s: usize| -> usize {
        while !taken.insert(s % n) {
            s += 1;
        }
        s % n
    };
    // Q6: ten scattered Piroplasmida entries; (authors, froms) per entry
    // chosen so Σ authors × froms = 9*16 + 14 = 158.
    let piro_slots: Vec<usize> = (0..10).map(|k| claim(slot(k, 10) + 2)).collect();
    // Q4: three entries with the rare keyword.
    let rhizo_slots: Vec<usize> = (0..3).map(|k| claim(slot(k, 3))).collect();
    // Q5: five entries with the double-author Ref.
    let mueller_slots: Vec<usize> = (0..5).map(|k| claim(slot(k, 5) + 1)).collect();
    let piro_shape = |k: usize| -> (u64, u64) {
        if k < 9 {
            (4, 4)
        } else {
            (7, 2)
        }
    };

    let mut attr_count = 0u64;
    for i in 0..n {
        let mut b = TreeBuilder::new(c.symbols_mut(), "Entry");
        // Attribute-heavy header (SWISSPROT's hallmark).
        b.attribute("id", &format!("P{:05}", i));
        b.attribute(
            "class",
            if r.chance(0.8) {
                "STANDARD"
            } else {
                "PRELIMINARY"
            },
        );
        b.attribute("mtype", "PRT");
        b.attribute("seqlen", &r.range(60, 4000).to_string());
        attr_count += 4;
        b.leaf_element("AC", &format!("Q{:05}", r.below(100_000)));
        b.leaf_element(
            "Mod",
            &format!(
                "{:02}-{:02}-199{}",
                r.range(1, 28),
                r.range(1, 12),
                r.below(10)
            ),
        );
        b.leaf_element("Descr", "HYPOTHETICAL PROTEIN");
        b.leaf_element("Species", "Generic species");

        // Org lineage (1-4 entries, ordered general -> specific).
        let piro = piro_slots.iter().position(|&s| s == i);
        if piro.is_some() {
            b.leaf_element("Org", "Piroplasmida");
        } else {
            let norgs = r.range(1, 4);
            for _ in 0..norgs {
                b.leaf_element("Org", ORGS[r.skewed(ORGS.len() as u64) as usize]);
            }
        }

        // Keywords.
        if rhizo_slots.contains(&i) {
            b.leaf_element("Keyword", "Rhizomelic");
        }
        let nkw = r.below(4);
        for _ in 0..nkw {
            b.leaf_element(
                "Keyword",
                KEYWORDS[r.skewed(KEYWORDS.len() as u64) as usize],
            );
        }

        // References with authors (bushy!).
        if mueller_slots.contains(&i) {
            b.start_element("Ref");
            b.leaf_element("Author", "Mueller P");
            b.leaf_element("Author", "Keller M");
            b.leaf_element("Cite", "Planted reference");
            b.end_element();
        }
        let (nref, nauth_each) = if let Some(k) = piro.map(piro_shape) {
            (1u64, k.0)
        } else {
            (r.range(1, 4), r.range(1, 5))
        };
        for _ in 0..nref {
            b.start_element("Ref");
            for _ in 0..nauth_each {
                b.leaf_element("Author", AUTHORS[r.skewed(AUTHORS.len() as u64) as usize]);
            }
            b.leaf_element(
                "Cite",
                &format!("J. Mol. Biol. {}:{}", r.range(100, 300), r.range(1, 999)),
            );
            b.end_element();
        }

        // Features with from/to spans — `from` comes after all Refs so
        // ordered Q6 embeddings count every (Author, from) pair.
        let nfrom = if let Some(k) = piro.map(piro_shape) {
            k.1
        } else {
            r.range(0, 5)
        };
        for _ in 0..nfrom {
            b.start_element("Features");
            b.leaf_element("FtKey", FEATURES[r.skewed(FEATURES.len() as u64) as usize]);
            let lo = r.range(1, 500);
            b.leaf_element("from", &lo.to_string());
            b.leaf_element("to", &(lo + r.range(1, 200)).to_string());
            b.end_element();
        }

        let tree = b.finish();
        c.note_source_bytes(35 * tree.len() as u64);
        c.add_tree(tree);
    }
    c.note_attributes(attr_count);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_xml::NodeKind;

    #[test]
    fn planted_counts_match_table3() {
        let c = generate(&SwissprotConfig {
            entries: 600,
            seed: 21,
        });
        let syms = c.symbols();
        let rhizo = syms.lookup("Rhizomelic").unwrap();
        let mueller = syms.lookup("Mueller P").unwrap();
        let keller = syms.lookup("Keller M").unwrap();
        let piro = syms.lookup("Piroplasmida").unwrap();
        let author = syms.lookup("Author").unwrap();
        let from = syms.lookup("from").unwrap();

        let mut q4 = 0usize;
        let mut q5 = 0usize;
        let mut q6_embeddings = 0usize;
        for (_, t) in c.iter() {
            if t.nodes().any(|nd| t.label(nd) == rhizo) {
                q4 += 1;
            }
            // Q5: a Ref containing both planted authors in order.
            let has_pair = t.nodes().any(|nd| {
                t.label(nd) == mueller && t.kind(nd) == NodeKind::Text && {
                    // sibling Ref also holds Keller M
                    let ref_node = t.parent(t.parent(nd).unwrap()).unwrap();
                    t.children(ref_node)
                        .iter()
                        .any(|&a| t.children(a).first().is_some_and(|&v| t.label(v) == keller))
                }
            });
            if has_pair {
                q5 += 1;
            }
            if t.nodes().any(|nd| t.label(nd) == piro) {
                let n_auth = t.nodes().filter(|&nd| t.label(nd) == author).count();
                let n_from = t.nodes().filter(|&nd| t.label(nd) == from).count();
                q6_embeddings += n_auth * n_from;
            }
        }
        assert_eq!(q4, 3, "Q4 = 3");
        assert_eq!(q5, 5, "Q5 = 5");
        assert_eq!(q6_embeddings, 158, "Q6 = 158 embeddings");
    }

    #[test]
    fn entries_are_bushy_and_attribute_heavy() {
        let c = generate(&SwissprotConfig {
            entries: 400,
            seed: 2,
        });
        let s = c.stats();
        assert_eq!(s.sequences, 400);
        assert!(s.max_depth <= 5, "shallow (got {})", s.max_depth);
        assert!(s.attributes >= 1600, "4 attributes per entry");
        // Bushy: average fanout of the root is large.
        let avg_children: f64 = c
            .iter()
            .map(|(_, t)| t.children(t.root()).len() as f64)
            .sum::<f64>()
            / c.len() as f64;
        assert!(avg_children >= 8.0, "bushy entries (got {avg_children:.1})");
    }

    #[test]
    fn piroplasmida_is_scattered() {
        let c = generate(&SwissprotConfig {
            entries: 500,
            seed: 8,
        });
        let syms = c.symbols();
        let piro = syms.lookup("Piroplasmida").unwrap();
        let docs: Vec<u32> = c
            .iter()
            .filter(|(_, t)| t.nodes().any(|nd| t.label(nd) == piro))
            .map(|(d, _)| d)
            .collect();
        assert_eq!(docs.len(), 10);
        // Scattered: no two planted entries are adjacent.
        assert!(docs.windows(2).all(|w| w[1] - w[0] > 5));
    }
}
