//! TREEBANK-like parse-tree generator.
//!
//! Characteristics reproduced from Table 2 / §6.2: *skinny and deep*
//! document trees (max depth ≈ 36) with deep recursion of element names
//! (NP/VP/PP chains) and encrypted values (random tokens standing in
//! for the paper's encrypted character data).
//!
//! Planted query answers (Table 3):
//! * Q7 `//S//NP/SYM` → **9**
//! * Q8 `//NP[./RBR_OR_JJR]/PP` → **1**
//! * Q9 `//NP/PP/NP[./NNS_OR_NN][./NN]` → **6**
//!
//! Q8's distribution is the paper's §6.4.2 showcase: dozens of *near
//! misses* — sentences where `NP` is an ancestor but **not** the parent
//! of `RBR_OR_JJR` and `PP` — are scattered through the collection.
//! TwigStack's stack phase accepts them (its parent-child
//! sub-optimality) and discards them only during merge; PRIX prunes
//! them during subsequence matching because `MaxGap(RBR_OR_JJR) = 0`
//! (it always has exactly one child, its token).

use prix_xml::{Collection, TreeBuilder};

use crate::rng::SplitMix64;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// Number of sentences (documents).
    pub sentences: usize,
    /// RNG seed.
    pub seed: u64,
    /// Deepest recursion budget (paper: max depth 36).
    pub max_depth: usize,
    /// Number of Q8 near-miss sentences to scatter.
    pub near_misses: usize,
}

impl TreebankConfig {
    /// `scale = 1.0` ≈ 3000 sentences (the paper used 56 385).
    pub fn scaled(scale: f64, seed: u64) -> Self {
        TreebankConfig {
            sentences: ((3000.0 * scale) as usize).max(300),
            seed,
            max_depth: 33,
            near_misses: ((60.0 * scale) as usize).max(20),
        }
    }
}

/// Generates the collection.
pub fn generate(cfg: &TreebankConfig) -> Collection {
    assert!(
        cfg.sentences >= 300,
        "TREEBANK generator needs >= 300 sentences"
    );
    let mut c = Collection::new();
    let mut r = SplitMix64::new(cfg.seed ^ 0x7EE_BA0C);
    let n = cfg.sentences;

    let slot = |k: usize, of: usize| -> usize { (n / (of + 1)) * (k + 1) };
    let mut taken = std::collections::HashSet::new();
    let mut claim = |mut s: usize| -> usize {
        while !taken.insert(s % n) {
            s += 1;
        }
        s % n
    };
    let q7_slots: Vec<usize> = (0..9).map(|k| claim(slot(k, 9))).collect();
    let q8_slot = claim(slot(4, 9) + 1);
    let q9_slots: Vec<usize> = (0..6).map(|k| claim(slot(k, 6) + 2)).collect();
    let near_miss_slots: Vec<usize> = (0..cfg.near_misses)
        .map(|k| claim(slot(k, cfg.near_misses) + 3))
        .collect();

    for i in 0..n {
        let mut b = TreeBuilder::new(c.symbols_mut(), "S");
        // Depth budget: mostly shallow-ish, a tail of deep recursions.
        let budget = if r.chance(0.12) {
            cfg.max_depth
        } else {
            r.range(4, 14) as usize
        };

        // Leading noun phrase, possibly deeply recursive.
        gen_np(&mut b, &mut r, budget);

        // Plants hang off dedicated phrases so their structure is exact.
        if let Some(_k) = q7_slots.iter().position(|&s| s == i) {
            // //S//NP/SYM: an NP (below VP, so "//" is exercised) with a
            // SYM child. Exactly one S ancestor exists (the root).
            b.start_element("VP");
            b.start_element("NP");
            let t = r.token(6);
            b.leaf_element("SYM", &t);
            let t2 = r.token(5);
            b.leaf_element("NN", &t2);
            b.end_element();
            b.end_element();
        } else if i == q8_slot {
            // //NP[./RBR_OR_JJR]/PP: the one real occurrence.
            b.start_element("VP");
            b.start_element("NP");
            let t = r.token(6);
            b.leaf_element("RBR_OR_JJR", &t);
            b.start_element("PP");
            let t2 = r.token(4);
            b.leaf_element("IN", &t2);
            let t3 = r.token(5);
            b.leaf_element("NN", &t3);
            b.end_element();
            b.end_element();
            b.end_element();
        } else if q9_slots.contains(&i) {
            // //NP/PP/NP[./NNS_OR_NN][./NN].
            b.start_element("VP");
            b.start_element("NP");
            b.start_element("PP");
            let t = r.token(4);
            b.leaf_element("IN", &t);
            b.start_element("NP");
            let t2 = r.token(5);
            b.leaf_element("NNS_OR_NN", &t2);
            let t3 = r.token(5);
            b.leaf_element("NN", &t3);
            b.end_element();
            b.end_element();
            b.end_element();
            b.end_element();
        } else if near_miss_slots.contains(&i) {
            // Q8 near miss: NP is an ancestor but not the parent of both
            // RBR_OR_JJR and PP.
            b.start_element("VP");
            b.start_element("NP");
            b.start_element("ADJP");
            let t = r.token(6);
            b.leaf_element("RBR_OR_JJR", &t);
            b.end_element();
            b.start_element("VPX");
            b.start_element("PP");
            let t2 = r.token(4);
            b.leaf_element("IN", &t2);
            let t3 = r.token(5);
            b.leaf_element("NN", &t3);
            b.end_element();
            b.end_element();
            b.end_element();
            b.end_element();
        } else {
            // Ordinary verb phrase, with occasional SYM distractors that
            // are *not* under NP.
            b.start_element("VP");
            let t = r.token(5);
            b.leaf_element("VB", &t);
            if r.chance(0.15) {
                let t = r.token(6);
                b.leaf_element("SYM", &t);
            }
            if r.chance(0.5) {
                gen_np(&mut b, &mut r, budget.saturating_sub(2).max(2));
            }
            b.end_element();
        }

        let tree = b.finish();
        c.note_source_bytes(30 * tree.len() as u64);
        c.add_tree(tree);
    }
    c
}

/// Generates a (possibly deeply recursive) noun phrase. Never emits
/// SYM, RBR_OR_JJR, or NNS_OR_NN — those tags belong to plants.
fn gen_np(b: &mut TreeBuilder<'_>, r: &mut SplitMix64, budget: usize) {
    b.start_element("NP");
    // Recursion is forced while the budget is generous (that is what
    // makes the deep-budget sentences actually reach depth ~36) and
    // geometric once it runs low.
    if budget > 3 && (budget > 6 || r.chance(0.72)) {
        // Skinny recursion: NP -> NP (PP?).
        gen_np(b, r, budget - 1);
        if budget > 5 && r.chance(0.25) {
            b.start_element("PP");
            let t = r.token(4);
            b.leaf_element("IN", &t);
            // PP -> IN NP(flat): keep the inner NP free of NNS_OR_NN.
            b.start_element("NP");
            let t2 = r.token(5);
            b.leaf_element("NN", &t2);
            b.end_element();
            b.end_element();
        }
    } else {
        if r.chance(0.6) {
            let t = r.token(3);
            b.leaf_element("DT", &t);
        }
        if r.chance(0.3) {
            let t = r.token(6);
            b.leaf_element("JJ", &t);
        }
        let t = r.token(5);
        b.leaf_element("NN", &t);
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sentences: usize, seed: u64) -> TreebankConfig {
        TreebankConfig {
            sentences,
            seed,
            max_depth: 33,
            near_misses: 25,
        }
    }

    #[test]
    fn q7_plants_are_exact() {
        let c = generate(&cfg(600, 17));
        let syms = c.symbols();
        let sym = syms.lookup("SYM").unwrap();
        let np = syms.lookup("NP").unwrap();
        let mut sym_under_np = 0;
        for (_, t) in c.iter() {
            for node in t.nodes() {
                if t.label(node) == sym {
                    let parent = t.parent(node).unwrap();
                    if t.label(parent) == np {
                        sym_under_np += 1;
                    }
                }
            }
        }
        assert_eq!(sym_under_np, 9, "Q7 = 9");
    }

    #[test]
    fn q8_has_one_real_occurrence_and_many_near_misses() {
        let c = generate(&cfg(600, 17));
        let syms = c.symbols();
        let rbr = syms.lookup("RBR_OR_JJR").unwrap();
        let np = syms.lookup("NP").unwrap();
        let pp = syms.lookup("PP").unwrap();
        let mut real = 0;
        let mut docs_with_rbr = 0;
        for (_, t) in c.iter() {
            if t.nodes().any(|n| t.label(n) == rbr) {
                docs_with_rbr += 1;
            }
            for node in t.nodes() {
                if t.label(node) != np {
                    continue;
                }
                let kids = t.children(node);
                let rbr_pos = kids.iter().position(|&k| t.label(k) == rbr);
                let pp_pos = kids.iter().position(|&k| t.label(k) == pp);
                if let (Some(a), Some(b)) = (rbr_pos, pp_pos) {
                    if a < b {
                        real += 1;
                    }
                }
            }
        }
        assert_eq!(real, 1, "Q8 = 1");
        assert!(
            docs_with_rbr >= 20,
            "near misses are scattered (got {docs_with_rbr})"
        );
    }

    #[test]
    fn q9_plants_are_exact() {
        let c = generate(&cfg(600, 17));
        let syms = c.symbols();
        let nns = syms.lookup("NNS_OR_NN").unwrap();
        // NNS_OR_NN appears only in plants, once per plant.
        let count: usize = c
            .iter()
            .map(|(_, t)| t.nodes().filter(|&n| t.label(n) == nns).count())
            .sum();
        assert_eq!(count, 6, "Q9 = 6");
    }

    #[test]
    fn trees_are_deep_and_skinny() {
        let c = generate(&cfg(800, 4));
        let max_depth = c.iter().map(|(_, t)| t.max_depth()).max().unwrap();
        assert!(max_depth >= 30, "deep recursion (got {max_depth})");
        // Skinny: average fanout close to 1-2.
        let (nodes, leaves): (usize, usize) = c
            .iter()
            .fold((0, 0), |(n, l), (_, t)| (n + t.len(), l + t.leaves().len()));
        let fanout = nodes as f64 / (nodes - leaves) as f64;
        assert!(fanout < 3.0, "skinny trees (avg fanout {fanout:.2})");
    }

    #[test]
    fn maxgap_of_rbr_is_zero() {
        // RBR_OR_JJR always has exactly one child (its token), the
        // property §6.4.2 exploits.
        let c = generate(&cfg(600, 9));
        let syms = c.symbols();
        let rbr = syms.lookup("RBR_OR_JJR").unwrap();
        for (_, t) in c.iter() {
            for node in t.nodes() {
                if t.label(node) == rbr {
                    assert_eq!(t.children(node).len(), 1);
                }
            }
        }
    }
}
