//! Value-bearing "shop" scenario for the value-predicate index.
//!
//! The paper's datasets exercise *structure*; the value index (DESIGN.md
//! §14) needs a workload where selectivity lives in the *leaf values*.
//! This generator produces a catalog of `item` records (numeric `price`
//! and `quantity` leaves, Zipf-skewed `id` strings) plus a minority of
//! multi-line `order` records, and deterministically plants the match
//! counts for the predicate Q-analogues ([`crate::queries::predicate_queries`]):
//!
//! * QP1 `//item[id = "SKU-HOT"][quantity = 77]` → **6**
//! * QP2 `//item[name = "One Of A Kind Widget"]` → **1**
//! * QP3 `//item[category = "heirloom"]` → **3**
//! * QP4 `//item[tag = "clearance"][tag = "vintage"]` → **5**
//! * QP5 `//order[buyer = "ACME Corp"]//sku` → **40**
//! * QP6 `//item[price < 10]` → **7**
//! * QP7 `//item[quantity >= 500]` → **4**
//! * QP8 `//item[starts-with(./id, "SKU-X")]` → **9**
//!
//! Random records stay out of every planted value range: random prices
//! are uniform in [10, 1000), quantities in [0, 499] skipping 77, ids
//! avoid the `SKU-HOT` literal and the `SKU-X` prefix, and the planted
//! strings never appear in the random pools — so the counts are exact
//! at any scale.

use prix_xml::{Collection, TreeBuilder};

use crate::rng::SplitMix64;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ShopConfig {
    /// Number of records (documents); mostly `item`, ~1 in 8 `order`.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ShopConfig {
    /// `scale = 1.0` ≈ 12 000 records.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        ShopConfig {
            records: ((12_000.0 * scale) as usize).max(400),
            seed,
        }
    }
}

const ADJ: &[&str] = &[
    "Sturdy", "Compact", "Deluxe", "Basic", "Folding", "Electric", "Manual", "Ceramic", "Wooden",
    "Steel", "Portable", "Heavy",
];
const NOUN: &[&str] = &[
    "Widget", "Gadget", "Bracket", "Sprocket", "Fixture", "Crate", "Valve", "Gear", "Lamp",
    "Stool", "Kettle", "Anvil",
];
// `heirloom` is planted (QP3) and deliberately absent here.
const CATEGORIES: &[&str] = &[
    "hardware",
    "kitchen",
    "garden",
    "office",
    "outdoors",
    "electronics",
    "toys",
];
// `clearance` and `vintage` are planted (QP4) and deliberately absent.
const TAGS: &[&str] = &[
    "new", "sale", "popular", "fragile", "imported", "bulky", "seasonal",
];
// `X` is reserved for the planted `SKU-X` prefix (QP8); skewed draws
// over this pool give the hot-head/long-tail id distribution.
const ID_LETTERS: &[&str] = &[
    "A", "B", "C", "D", "E", "F", "G", "H", "J", "K", "L", "M", "N", "P", "Q", "R",
];
const BUYER_FIRST: &[&str] = &[
    "Northwind",
    "Contoso",
    "Globex",
    "Initech",
    "Umbrella",
    "Stark",
    "Wayne",
    "Tyrell",
];
const BUYER_LAST: &[&str] = &["Trading", "Industries", "Logistics", "Holdings", "Supply"];

fn name(r: &mut SplitMix64) -> String {
    // Always exactly two words, so the four-word planted name (QP2)
    // cannot collide.
    format!("{} {}", r.pick(ADJ), r.pick(NOUN))
}

fn random_id(r: &mut SplitMix64) -> String {
    let letter = ID_LETTERS[r.skewed(ID_LETTERS.len() as u64) as usize];
    format!("SKU-{letter}{:04}", r.below(10_000))
}

fn random_price(r: &mut SplitMix64) -> String {
    // Uniform in [10.00, 999.99]: never under the QP6 threshold.
    format!("{}.{:02}", r.range(10, 999), r.below(100))
}

fn random_quantity(r: &mut SplitMix64) -> u64 {
    // [0, 499], skipping the planted QP1 quantity 77.
    let q = r.range(0, 499);
    if q == 77 {
        78
    } else {
        q
    }
}

/// What (if anything) is planted in one record slot.
#[derive(Clone, Copy, PartialEq)]
enum Plant {
    None,
    /// QP1: id `SKU-HOT`; the flag marks the 6 that also get quantity 77.
    Hot {
        qty77: bool,
    },
    /// QP2: the unique four-word name.
    OneOfAKind,
    /// QP3: category `heirloom`.
    Heirloom,
    /// QP4: tags `clearance` then `vintage`.
    TagPair,
    /// QP5: an order bought by `ACME Corp` with exactly 4 sku lines.
    Acme,
    /// QP6: price under 10.
    Cheap(u64),
    /// QP7: quantity at or above 500.
    Bulk(u64),
    /// QP8: id with the `SKU-X` prefix.
    SkuX(u64),
}

/// Generates the collection.
pub fn generate(cfg: &ShopConfig) -> Collection {
    assert!(cfg.records >= 400, "shop generator needs >= 400 records");
    let mut c = Collection::new();
    let mut r = SplitMix64::new(cfg.seed ^ 0x5A0B_C0DE);
    let n = cfg.records;

    // Deterministic, pairwise-distinct slots for the planted records
    // (same claim-and-shift scheme as the DBLP generator).
    let slot = |k: usize, of: usize| -> usize { (n / (of + 1)) * (k + 1) };
    let mut taken = std::collections::HashSet::new();
    let mut claim = |mut s: usize| -> usize {
        while !taken.insert(s % n) {
            s += 1;
        }
        s % n
    };
    let mut plants = vec![Plant::None; n];
    for k in 0..12 {
        plants[claim(slot(k, 12))] = Plant::Hot { qty77: k < 6 };
    }
    plants[claim(slot(0, 2) + 1)] = Plant::OneOfAKind;
    for k in 0..3 {
        plants[claim(slot(k, 3) + 2)] = Plant::Heirloom;
    }
    for k in 0..5 {
        plants[claim(slot(k, 5) + 3)] = Plant::TagPair;
    }
    for k in 0..10 {
        plants[claim(slot(k, 10) + 4)] = Plant::Acme;
    }
    for k in 0..7 {
        plants[claim(slot(k, 7) + 5)] = Plant::Cheap(k as u64);
    }
    for k in 0..4 {
        plants[claim(slot(k, 4) + 6)] = Plant::Bulk(k as u64);
    }
    for k in 0..9 {
        plants[claim(slot(k, 9) + 7)] = Plant::SkuX(k as u64);
    }

    for &plant in &plants {
        let is_order = plant == Plant::Acme || (plant == Plant::None && r.below(8) == 0);
        let b = if is_order {
            let mut b = TreeBuilder::new(c.symbols_mut(), "order");
            // Buyer first: document order agrees with QP5's branch order.
            let buyer = if plant == Plant::Acme {
                "ACME Corp".to_string()
            } else {
                format!("{} {}", r.pick(BUYER_FIRST), r.pick(BUYER_LAST))
            };
            b.leaf_element("buyer", &buyer);
            let lines = if plant == Plant::Acme {
                4 // 10 planted orders × 4 lines = QP5's 40 sku matches
            } else {
                r.range(1, 5)
            };
            for _ in 0..lines {
                b.start_element("line");
                b.leaf_element("sku", &random_id(&mut r));
                b.leaf_element("count", &r.range(1, 40).to_string());
                b.end_element();
            }
            b
        } else {
            let mut b = TreeBuilder::new(c.symbols_mut(), "item");
            let id = match plant {
                Plant::Hot { .. } => "SKU-HOT".to_string(),
                Plant::SkuX(k) => format!("SKU-X{k:03}"),
                _ => random_id(&mut r),
            };
            b.leaf_element("id", &id);
            let nm = if plant == Plant::OneOfAKind {
                "One Of A Kind Widget".to_string()
            } else {
                name(&mut r)
            };
            b.leaf_element("name", &nm);
            let price = match plant {
                Plant::Cheap(k) => format!("{}.{:02}", k + 2, (17 * k) % 100), // 2.00 .. 8.02
                _ => random_price(&mut r),
            };
            b.leaf_element("price", &price);
            let qty = match plant {
                Plant::Hot { qty77: true } => 77,
                Plant::Bulk(k) => 500 + 125 * k,
                _ => random_quantity(&mut r),
            };
            b.leaf_element("quantity", &qty.to_string());
            if plant == Plant::TagPair {
                b.leaf_element("tag", "clearance");
                b.leaf_element("tag", "vintage");
            } else {
                for _ in 0..r.below(3) {
                    let tag = *r.pick(TAGS);
                    b.leaf_element("tag", tag);
                }
            }
            if plant == Plant::Heirloom {
                b.leaf_element("category", "heirloom");
            } else if r.chance(0.6) {
                let cat = *r.pick(CATEGORIES);
                b.leaf_element("category", cat);
            }
            b
        };
        let tree = b.finish();
        c.note_source_bytes(36 * tree.len() as u64);
        c.add_tree(tree);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_xml::{NodeId, SymbolTable, XmlTree};

    fn leaf_text<'a>(t: &XmlTree, syms: &'a SymbolTable, node: NodeId) -> Option<&'a str> {
        match t.children(node) {
            [text] if t.is_leaf(*text) => Some(syms.name(t.label(*text))),
            _ => None,
        }
    }

    /// Child elements of `node` named `tag`, as their leaf text.
    fn child_values<'a>(
        t: &'a XmlTree,
        syms: &'a SymbolTable,
        node: NodeId,
        tag: &str,
    ) -> Vec<&'a str> {
        let Some(sym) = syms.lookup(tag) else {
            return Vec::new();
        };
        t.children(node)
            .iter()
            .filter(|&&c| t.label(c) == sym)
            .filter_map(|&c| leaf_text(t, syms, c))
            .collect()
    }

    /// Structural oracle for the eight planted counts (walks the trees
    /// directly; the engine-level check lives in tests/predicate_workload.rs).
    fn planted_counts(c: &Collection) -> [u64; 8] {
        let syms = c.symbols();
        let mut out = [0u64; 8];
        for (_, t) in c.iter() {
            let root = t.root();
            let root_name = syms.name(t.label(root));
            if root_name == "item" {
                let ids = child_values(t, syms, root, "id");
                let qtys = child_values(t, syms, root, "quantity");
                if ids.contains(&"SKU-HOT") && qtys.contains(&"77") {
                    out[0] += 1;
                }
                if child_values(t, syms, root, "name").contains(&"One Of A Kind Widget") {
                    out[1] += 1;
                }
                if child_values(t, syms, root, "category").contains(&"heirloom") {
                    out[2] += 1;
                }
                let tags = child_values(t, syms, root, "tag");
                let clearance = tags.iter().position(|&v| v == "clearance");
                let vintage = tags.iter().rposition(|&v| v == "vintage");
                if let (Some(a), Some(b)) = (clearance, vintage) {
                    if a < b {
                        out[3] += 1;
                    }
                }
                let price_lt10 = child_values(t, syms, root, "price")
                    .iter()
                    .any(|v| v.parse::<f64>().unwrap() < 10.0);
                if price_lt10 {
                    out[5] += 1;
                }
                if qtys.iter().any(|v| v.parse::<f64>().unwrap() >= 500.0) {
                    out[6] += 1;
                }
                if ids.iter().any(|v| v.starts_with("SKU-X")) {
                    out[7] += 1;
                }
            } else if root_name == "order"
                && child_values(t, syms, root, "buyer").contains(&"ACME Corp")
            {
                // QP5 counts one match per descendant sku.
                let sku = syms.lookup("sku").unwrap();
                out[4] += t.nodes().filter(|&nd| t.label(nd) == sku).count() as u64;
            }
        }
        out
    }

    #[test]
    fn planted_counts_are_exact() {
        let c = generate(&ShopConfig {
            records: 900,
            seed: 17,
        });
        assert_eq!(planted_counts(&c), [6, 1, 3, 5, 40, 7, 4, 9]);
    }

    #[test]
    fn planted_counts_are_scale_and_seed_invariant() {
        for (records, seed) in [(400, 1), (2500, 99)] {
            let c = generate(&ShopConfig { records, seed });
            assert_eq!(
                planted_counts(&c),
                [6, 1, 3, 5, 40, 7, 4, 9],
                "at {records} records, seed {seed}"
            );
        }
    }

    #[test]
    fn ids_are_skewed() {
        // The Zipf-ish letter draw must make the hottest id initial far
        // more common than the coldest — that skew is what the value
        // index's string opclass is benchmarked against.
        let c = generate(&ShopConfig {
            records: 1500,
            seed: 5,
        });
        let syms = c.symbols();
        let mut by_letter = std::collections::HashMap::new();
        for (_, t) in c.iter() {
            if syms.name(t.label(t.root())) != "item" {
                continue;
            }
            for v in child_values(t, syms, t.root(), "id") {
                if let Some(rest) = v.strip_prefix("SKU-") {
                    *by_letter.entry(rest.as_bytes()[0]).or_insert(0u64) += 1;
                }
            }
        }
        let hot = by_letter.get(&b'A').copied().unwrap_or(0);
        let cold = by_letter.get(&b'R').copied().unwrap_or(0);
        assert!(hot > 4 * cold.max(1), "hot {hot} vs cold {cold}");
    }

    #[test]
    fn random_values_stay_out_of_planted_ranges() {
        let c = generate(&ShopConfig {
            records: 1200,
            seed: 23,
        });
        let syms = c.symbols();
        let (mut hot, mut qty77) = (0, 0);
        for (_, t) in c.iter() {
            if syms.name(t.label(t.root())) != "item" {
                continue;
            }
            for v in child_values(t, syms, t.root(), "quantity") {
                if v.parse::<f64>().unwrap() == 77.0 {
                    qty77 += 1;
                }
            }
            if child_values(t, syms, t.root(), "id").contains(&"SKU-HOT") {
                hot += 1;
            }
        }
        assert_eq!(hot, 12, "exactly the 12 planted SKU-HOT items");
        assert_eq!(qty77, 6, "quantity 77 appears only in the QP1 plants");
    }
}
