//! Prüfer sequence machinery — the algorithmic heart of PRIX.
//!
//! Prüfer (1918) constructed a one-to-one correspondence between labeled
//! trees and sequences by repeatedly deleting the leaf with the smallest
//! label and recording its parent. PRIX (paper §3.1) uses a *modified*
//! construction of length `n − 1` (deletion continues until one node is
//! left) over trees whose nodes are numbered `1..=n` in postorder, which
//! gives Lemma 1: *the node deleted the i-th time is the node numbered
//! i*. Consequently
//!
//! * `NPS[i]` = postorder number of the **parent** of node `i`
//!   (the *Numbered Prüfer Sequence*),
//! * `LPS[i]` = label of that parent (the *Labeled Prüfer Sequence*).
//!
//! This crate provides:
//!
//! * [`PruferSeq`] — LPS/NPS construction, both *Regular* (§3.1) and
//!   *Extended* (§5.6: a dummy child under every leaf pulls every label
//!   of the original tree into the LPS),
//! * [`reconstruct`] — the inverse transformation (tree from sequence),
//!   witnessing the one-to-one correspondence,
//! * [`refine`] — the refinement predicates of §4: connectedness
//!   (Theorem 2), gap consistency (Definition 3), frequency consistency
//!   (Definition 4), leaf matching (§4.4), and the wildcard relaxations
//!   of §4.5,
//! * [`maxgap`] — the MaxGap upper-bounding distance metric of §5.4
//!   (Definition 5 / Theorem 4),
//! * [`subseq`] — in-memory subsequence-match enumeration, used by the
//!   index-free reference matcher and the test oracle.

pub mod maxgap;
pub mod reconstruct;
pub mod refine;
pub mod seq;
pub mod subseq;

pub use maxgap::MaxGapTable;
pub use refine::{
    check_connectedness, check_frequency_consistency, check_gap_consistency, check_leaves,
    embedding, refine_match, EdgeKind, RefineCtx,
};
pub use seq::{ExtendedTree, PruferSeq};
pub use subseq::subsequence_positions;
