//! The MaxGap upper-bounding distance metric (paper §5.4, Definition 5).
//!
//! `MaxGap(e, Δ)` is the maximum, over all nodes labeled `e` in the
//! collection Δ, of the difference between the postorder numbers of the
//! node's first and last children; `0` when every occurrence of `e` has
//! at most one child. Theorem 4 turns it into a pruning rule on the
//! distance between adjacent match positions during subsequence
//! matching — the optimization that lets PRIX discard, e.g., the false
//! `NP` ancestors in query Q8 (§6.4.2).

use std::collections::HashMap;

use prix_xml::{PostNum, Sym, XmlTree};

/// Per-label MaxGap values for a document collection.
#[derive(Debug, Clone, Default)]
pub struct MaxGapTable {
    gaps: HashMap<Sym, PostNum>,
}

impl MaxGapTable {
    /// Empty table (every label reports 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one document into the table.
    pub fn add_tree(&mut self, tree: &XmlTree) {
        for node in tree.nodes() {
            let kids = tree.children(node);
            if kids.is_empty() {
                continue;
            }
            let first = tree.postorder(kids[0]);
            let last = tree.postorder(kids[kids.len() - 1]);
            debug_assert!(last >= first);
            let gap = last - first;
            let e = self.gaps.entry(tree.label(node)).or_insert(0);
            *e = (*e).max(gap);
        }
    }

    /// Builds a table over a whole collection.
    pub fn build<'a>(trees: impl IntoIterator<Item = &'a XmlTree>) -> Self {
        let mut t = Self::new();
        for tree in trees {
            t.add_tree(tree);
        }
        t
    }

    /// `MaxGap(label, Δ)`; `0` for labels never seen with children.
    pub fn get(&self, label: Sym) -> PostNum {
        self.gaps.get(&label).copied().unwrap_or(0)
    }

    /// Number of labels with a recorded (possibly zero) gap.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// `true` when no label has been recorded.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Serializes to `(label, gap)` pairs (for persistence in an index).
    pub fn entries(&self) -> impl Iterator<Item = (Sym, PostNum)> + '_ {
        self.gaps.iter().map(|(&s, &g)| (s, g))
    }

    /// Rebuilds from serialized entries.
    pub fn from_entries(entries: impl IntoIterator<Item = (Sym, PostNum)>) -> Self {
        MaxGapTable {
            gaps: entries.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_xml::{parse_document, SymbolTable};

    #[test]
    fn figure5_tree_p() {
        // Tree P of Figure 5: the difference between the postorder
        // numbers of the first and last children of node label A is
        // 14 - 8 = 6; we reproduce the shape A(root) with children
        // numbered 8 and 14 via: A( C(c,c,...), ..., x ) — build a tree
        // where A's first child is postorder 8 and last is 14.
        let mut syms = SymbolTable::new();
        // a has children: b (subtree of 8 nodes -> numbers 1..8) and
        // c (subtree e.g. 6 nodes -> 9..14), root a = 15.
        let t = parse_document(
            "<a><b><x/><x/><x/><x/><x/><x/><x/></b><c><y/><y/><y/><y/><y/></c></a>",
            &mut syms,
        )
        .unwrap();
        let a = syms.lookup("a").unwrap();
        let table = MaxGapTable::build([&t]);
        assert_eq!(table.get(a), 14 - 8);
    }

    #[test]
    fn max_is_taken_across_documents() {
        let mut syms = SymbolTable::new();
        let t1 = parse_document("<a><x/><y/></a>", &mut syms).unwrap(); // gap 1
        let t2 = parse_document("<a><x/><y/><z/><w/></a>", &mut syms).unwrap(); // gap 3
        let a = syms.lookup("a").unwrap();
        let table = MaxGapTable::build([&t1, &t2]);
        assert_eq!(table.get(a), 3);
    }

    #[test]
    fn unary_labels_report_zero() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/></b></a>", &mut syms).unwrap();
        let table = MaxGapTable::build([&t]);
        let b = syms.lookup("b").unwrap();
        let c = syms.lookup("c").unwrap();
        assert_eq!(table.get(b), 0, "b has one child");
        assert_eq!(table.get(c), 0, "c is a leaf (never seen with children)");
    }

    #[test]
    fn subtree_sizes_widen_the_gap() {
        let mut syms = SymbolTable::new();
        // a's children: b (postorder 3, subtree {1,2,3}) and c
        // (postorder 4): gap = 4 - 3 = 1... first child's number is 3.
        let t = parse_document("<a><b><u/><v/></b><c/></a>", &mut syms).unwrap();
        let a = syms.lookup("a").unwrap();
        let table = MaxGapTable::build([&t]);
        assert_eq!(table.get(a), 1);
        // With the big subtree on the right the gap widens: children of
        // a are b (1) and c (4): gap 3.
        let t2 = parse_document("<a><b/><c><u/><v/></c></a>", &mut syms).unwrap();
        let table2 = MaxGapTable::build([&t2]);
        assert_eq!(table2.get(a), 3);
    }

    #[test]
    fn entries_roundtrip() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><x/><y/><z/></a>", &mut syms).unwrap();
        let table = MaxGapTable::build([&t]);
        let rebuilt = MaxGapTable::from_entries(table.entries());
        let a = syms.lookup("a").unwrap();
        assert_eq!(rebuilt.get(a), table.get(a));
        assert_eq!(rebuilt.len(), table.len());
    }
}
