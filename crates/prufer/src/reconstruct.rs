//! Inverse Prüfer transformation (tree reconstruction).
//!
//! Prüfer's method is a bijection: "From the sequence (a₁, …), the
//! original tree Tₙ can be reconstructed" (paper §3.1). This module
//! implements both directions of that claim:
//!
//! * [`classical_parents`] — the textbook reconstruction that works for
//!   *any* node numbering, by maintaining the set of current leaves and
//!   repeatedly attaching the smallest one,
//! * [`shape_from_nps`] / [`tree_from_sequences`] — the direct
//!   reconstruction available under postorder numbering, where Lemma 1
//!   makes `NPS[i]` literally the parent of node `i + 1`.
//!
//! Property tests assert the two agree on postorder-numbered trees,
//! which is exactly Lemma 1.

use std::collections::BinaryHeap;

use prix_xml::{NodeKind, PostNum, Sym, XmlTree};

/// Error produced when a sequence does not describe a valid
/// postorder-numbered tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconstructError(pub String);

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid Prüfer sequence: {}", self.0)
    }
}

impl std::error::Error for ReconstructError {}

/// Classical (numbering-agnostic) reconstruction of the modified
/// length-`n − 1` Prüfer sequence: returns `parents[v - 1]` = parent of
/// node `v`, with the root's entry set to `0`.
///
/// The algorithm replays the construction: at each step the smallest
/// current leaf is deleted and attached to the next sequence element.
pub fn classical_parents(seq: &[PostNum]) -> Result<Vec<PostNum>, ReconstructError> {
    let n = seq.len() + 1;
    if n == 1 {
        return Ok(vec![0]);
    }
    let mut remaining = vec![0usize; n + 1]; // occurrences left in seq
    for &a in seq {
        if a < 1 || a as usize > n {
            return Err(ReconstructError(format!(
                "element {a} out of range 1..={n}"
            )));
        }
        remaining[a as usize] += 1;
    }
    // Min-heap of current leaves (nodes with no remaining occurrences).
    let mut heap: BinaryHeap<std::cmp::Reverse<PostNum>> = (1..=n as PostNum)
        .filter(|&v| remaining[v as usize] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut parents = vec![0 as PostNum; n];
    let mut deleted = vec![false; n + 1];
    for &a in seq {
        let std::cmp::Reverse(leaf) = heap
            .pop()
            .ok_or_else(|| ReconstructError("ran out of leaves".into()))?;
        deleted[leaf as usize] = true;
        parents[(leaf - 1) as usize] = a;
        remaining[a as usize] -= 1;
        if remaining[a as usize] == 0 && !deleted[a as usize] {
            heap.push(std::cmp::Reverse(a));
        }
    }
    // Exactly one node remains: the root.
    let std::cmp::Reverse(root) = heap
        .pop()
        .ok_or_else(|| ReconstructError("no root left".into()))?;
    if heap.pop().is_some() {
        return Err(ReconstructError("more than one node left".into()));
    }
    parents[(root - 1) as usize] = 0;
    Ok(parents)
}

/// Validates that `nps` is the NPS of a postorder-numbered tree and
/// returns the parent array (`parents[v - 1]` = parent of `v`, root
/// entry = 0).
///
/// Under postorder numbering Lemma 1 gives `parent(i) = NPS[i]`
/// directly; validation rebuilds the tree and checks that a postorder
/// traversal (children in ascending order) reproduces the numbering.
pub fn shape_from_nps(nps: &[PostNum]) -> Result<Vec<PostNum>, ReconstructError> {
    let n = nps.len() + 1;
    let root = n as PostNum;
    let mut parents = vec![0 as PostNum; n];
    let mut children: Vec<Vec<PostNum>> = vec![Vec::new(); n + 1];
    for (i, &p) in nps.iter().enumerate() {
        let v = (i + 1) as PostNum;
        if p <= v || p > root {
            return Err(ReconstructError(format!(
                "parent of node {v} is {p}, but postorder parents satisfy {v} < parent <= {root}"
            )));
        }
        parents[i] = p;
        children[p as usize].push(v); // ascending because i ascends
    }
    // Re-run a postorder traversal and check numbers match.
    let mut counter: PostNum = 0;
    let mut stack: Vec<(PostNum, usize)> = vec![(root, 0)];
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let kids = &children[v as usize];
        if *next < kids.len() {
            let c = kids[*next];
            *next += 1;
            stack.push((c, 0));
        } else {
            stack.pop();
            counter += 1;
            if counter != v {
                return Err(ReconstructError(format!(
                    "node {v} would receive postorder number {counter}"
                )));
            }
        }
    }
    if counter != root {
        return Err(ReconstructError(
            "sequence describes a forest, not a tree".into(),
        ));
    }
    Ok(parents)
}

/// Fully reconstructs a labeled tree from its Regular-Prüfer sequences
/// plus the leaf-label list the paper stores alongside them (§4.3).
///
/// `leaf_labels` must list `(label, postorder)` for every leaf.
pub fn tree_from_sequences(
    lps: &[Sym],
    nps: &[PostNum],
    leaf_labels: &[(Sym, PostNum)],
) -> Result<XmlTree, ReconstructError> {
    if lps.len() != nps.len() {
        return Err(ReconstructError("LPS and NPS lengths differ".into()));
    }
    let parents = shape_from_nps(nps)?;
    let n = parents.len();
    // Determine the label of every node: internal labels from the LPS
    // (label of node p appears wherever a child of p is deleted), leaf
    // labels from the supplied list.
    let mut labels: Vec<Option<Sym>> = vec![None; n + 1];
    for (i, &p) in nps.iter().enumerate() {
        if let Some(prev) = labels[p as usize] {
            if prev != lps[i] {
                return Err(ReconstructError(format!(
                    "node {p} labeled inconsistently in the LPS"
                )));
            }
        }
        labels[p as usize] = Some(lps[i]);
    }
    for &(sym, post) in leaf_labels {
        if post as usize > n || post == 0 {
            return Err(ReconstructError(format!(
                "leaf postorder {post} out of range"
            )));
        }
        labels[post as usize] = Some(sym);
    }
    let missing: Vec<usize> = (1..=n).filter(|&v| labels[v].is_none()).collect();
    if !missing.is_empty() {
        return Err(ReconstructError(format!(
            "no label known for node(s) {missing:?} (missing leaf labels?)"
        )));
    }
    // Build the XmlTree in preorder.
    let root = n as PostNum;
    let mut children: Vec<Vec<PostNum>> = vec![Vec::new(); n + 1];
    for (i, &p) in parents.iter().enumerate() {
        if p != 0 {
            children[p as usize].push((i + 1) as PostNum);
        }
    }
    let mut tree = XmlTree::with_root(labels[root as usize].unwrap(), NodeKind::Element);
    let mut id_of = vec![0u32; n + 1];
    id_of[root as usize] = tree.root();
    let mut stack: Vec<PostNum> = vec![root];
    let mut order: Vec<PostNum> = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        order.push(v);
        for &c in children[v as usize].iter().rev() {
            stack.push(c);
        }
    }
    for v in order {
        if v != root {
            let pid = id_of[parents[(v - 1) as usize] as usize];
            id_of[v as usize] = tree.add_child(pid, labels[v as usize].unwrap(), NodeKind::Element);
        }
    }
    tree.seal();
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::PruferSeq;
    use prix_xml::{parse_document, SymbolTable};

    #[test]
    fn classical_agrees_with_direct_on_postorder_trees() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/><d/></b><e><f><g/></f></e><h/></a>", &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        let classical = classical_parents(&s.nps).unwrap();
        let direct = shape_from_nps(&s.nps).unwrap();
        assert_eq!(classical, direct, "Lemma 1: deletion order is postorder");
    }

    #[test]
    fn shape_roundtrip() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/></b><d><e/><f/></d></a>", &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        let parents = shape_from_nps(&s.nps).unwrap();
        for node in t.nodes() {
            let num = t.postorder(node);
            let expected = t.parent_post(num).unwrap_or(0);
            assert_eq!(parents[(num - 1) as usize], expected);
        }
    }

    #[test]
    fn full_tree_roundtrip() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/></b><d><e/><f/></d></a>", &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        let rebuilt = tree_from_sequences(&s.lps, &s.nps, &t.leaves()).unwrap();
        assert_eq!(rebuilt.len(), t.len());
        for num in 1..=t.len() as PostNum {
            assert_eq!(
                rebuilt.label_at(num),
                t.label_at(num),
                "label of node {num}"
            );
            assert_eq!(
                rebuilt.parent_post(num),
                t.parent_post(num),
                "parent of node {num}"
            );
        }
    }

    #[test]
    fn invalid_parent_smaller_than_child_is_rejected() {
        // Node 2's parent would be node 1 (< 2): impossible in postorder.
        assert!(shape_from_nps(&[3, 1]).is_err());
    }

    #[test]
    fn out_of_range_parent_is_rejected() {
        assert!(shape_from_nps(&[5, 3]).is_err()); // n = 3, parent 5
        assert!(classical_parents(&[9]).is_err()); // n = 2, element 9
    }

    #[test]
    fn non_postorder_numbering_is_rejected() {
        // parents: 1->3, 2->4, 3->4 would give children(3)=[1],
        // children(4)=[2,3]; postorder traversal numbers 2 first... check
        // it is rejected (node numbered 1 would actually be 2).
        let res = shape_from_nps(&[3, 4, 4]);
        assert!(res.is_err(), "{res:?}");
    }

    #[test]
    fn missing_leaf_label_is_reported() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b/><c/></a>", &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        let err = tree_from_sequences(&s.lps, &s.nps, &[]).unwrap_err();
        assert!(err.0.contains("label"), "{err}");
    }

    #[test]
    fn single_node_classical() {
        assert_eq!(classical_parents(&[]).unwrap(), vec![0]);
    }

    #[test]
    fn unary_chain_roundtrip() {
        // The ViST worst case (§2): a unary tree. PRIX sequences stay
        // linear in n.
        let mut syms = SymbolTable::new();
        let mut src = String::new();
        for _ in 0..100 {
            src.push_str("<u>");
        }
        for _ in 0..100 {
            src.push_str("</u>");
        }
        let t = parse_document(&src, &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        assert_eq!(s.len(), 99, "linear in n, unlike ViST's O(n^2)");
        let rebuilt = tree_from_sequences(&s.lps, &s.nps, &t.leaves()).unwrap();
        assert_eq!(rebuilt.len(), 100);
    }
}
