//! Refinement predicates (paper §4.2–§4.5, Algorithm 2).
//!
//! After the filtering phase produces a candidate subsequence match `S`
//! (positions into a document's LPS), the match survives only if it
//! passes, in order:
//!
//! 1. **Connectedness** (Theorem 2): the data nodes behind the matched
//!    positions form a tree. At every position `i` holding the *last*
//!    occurrence of a postorder value `Nᵢ`, the next value `Nᵢ₊₁` must be
//!    the parent of node `Nᵢ` in the document — or, for wildcard query
//!    edges (§4.5), reachable from it by climbing the parent chain.
//! 2. **Gap consistency** (Definition 3): adjacent postorder gaps have
//!    equal signs and the query gap never exceeds the data gap.
//! 3. **Frequency consistency** (Definition 4): equal values occur at
//!    identical position sets in the query NPS and the matched data
//!    values.
//! 4. **Leaf matching** (§4.4): query leaf labels are verified against
//!    the document's leaf list (or its LPS/NPS for internal matches).
//!    Skipped for Extended-Prüfer matches (§5.6), where every label
//!    already participates in filtering.
//!
//! Positions are 1-based throughout, matching the paper: position `p`
//! in an LPS corresponds to the deletion of the data node with postorder
//! number `p` (Lemma 1).

use prix_xml::{PostNum, Sym};

/// Structural constraint on a query node's edge to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `/` — the node's parent in the data is the image of the query
    /// parent (one edge).
    Child,
    /// `//` — the image of the query parent is reachable by one or more
    /// edges.
    Descendant,
    /// `*` chains — exactly `k` edges (`A/*/B` gives `Exactly(2)` on B,
    /// per the paper's "we simply test whether the match is found at
    /// i = 2", §4.5).
    Exactly(u32),
}

/// Everything the refinement phases need to judge one candidate match.
#[derive(Debug, Clone, Copy)]
pub struct RefineCtx<'a> {
    /// NPS of the document: `doc_nps[k - 1]` = parent of data node `k`.
    pub doc_nps: &'a [PostNum],
    /// NPS of the query twig.
    pub query_nps: &'a [PostNum],
    /// Match positions `S` (1-based into the document LPS), one per
    /// query LPS element.
    pub positions: &'a [PostNum],
    /// `edges[q - 1]` = edge kind of query node `q` toward its parent.
    pub edges: &'a [EdgeKind],
    /// Query leaf list `(label, postorder)`.
    pub query_leaves: &'a [(Sym, PostNum)],
    /// Document leaf list, sorted by postorder.
    pub doc_leaves: &'a [(Sym, PostNum)],
    /// Document LPS (for verifying labels of internal data nodes during
    /// leaf matching).
    pub doc_lps: &'a [Sym],
    /// `true` for Extended-Prüfer matches: leaf matching is unnecessary
    /// because every label already took part in subsequence matching.
    pub skip_leaf_check: bool,
}

/// Parent of data node `k` (`None` for the root).
#[inline]
fn parent_of(doc_nps: &[PostNum], k: PostNum) -> Option<PostNum> {
    doc_nps.get((k - 1) as usize).copied()
}

/// Refinement by connectedness (Theorem 2), with the wildcard
/// relaxations of §4.5.
///
/// At a last-occurrence position `i` (1-based), the verified edge is the
/// one from query node `i + 1` to its parent (by Lemma 1 applied to the
/// query, the node deleted next is the parent whose occurrences just
/// ended).
pub fn check_connectedness(ctx: &RefineCtx<'_>) -> bool {
    let s = ctx.positions;
    let n: Vec<PostNum> = s.iter().map(|&p| ctx.doc_nps[(p - 1) as usize]).collect();
    let max_n = *n.iter().max().expect("positions must be non-empty");
    for i in 0..n.len() {
        if n[i] == max_n {
            continue;
        }
        if n[i + 1..].contains(&n[i]) {
            continue; // not the last occurrence
        }
        // Last occurrence of n[i], and it is not the subtree root of the
        // match: the next element must be (or lead to) its parent.
        let Some(&target) = n.get(i + 1) else {
            return false; // nothing follows a non-max value: disconnected
        };
        // Edge being verified: query node (i + 2) in 1-based numbering
        // would be wrong — the node deleted at query step i+1 (0-based i)
        // is query node i+1, whose deletion marks its own subtree
        // complete; the edge climbed belongs to query node i + 2?  No:
        // by Lemma 1 on the query, if position index i (0-based) holds
        // the last occurrence of value p = N_Q[i], then the node deleted
        // at the next step is p itself, i.e. p = i + 2 in 1-based terms.
        // The climb from n[i] to n[i+1] therefore verifies the edge of
        // query node p = i + 2 ... except p is exactly the query node
        // whose image is n[i]; its edge index is p - 1 = i + 1.
        let edge = ctx.edges.get(i + 1).copied().unwrap_or(EdgeKind::Child);
        if !climb_matches(ctx.doc_nps, n[i], target, edge) {
            return false;
        }
    }
    true
}

/// Does climbing the parent chain from `from` reach `target` under the
/// edge constraint?
fn climb_matches(doc_nps: &[PostNum], from: PostNum, target: PostNum, edge: EdgeKind) -> bool {
    match edge {
        EdgeKind::Child => parent_of(doc_nps, from) == Some(target),
        EdgeKind::Descendant => {
            let mut cur = from;
            loop {
                match parent_of(doc_nps, cur) {
                    Some(p) if p == target => return true,
                    // Parents have strictly larger postorder numbers, so
                    // overshooting means the target is not an ancestor.
                    Some(p) if p > target => return false,
                    Some(p) => cur = p,
                    None => return false,
                }
            }
        }
        EdgeKind::Exactly(k) => {
            let mut cur = from;
            for _ in 0..k {
                match parent_of(doc_nps, cur) {
                    Some(p) => cur = p,
                    None => return false,
                }
            }
            cur == target
        }
    }
}

/// Refinement by structure, part 1: gap consistency (Definition 3,
/// Algorithm 2 lines 5–11).
pub fn check_gap_consistency(ctx: &RefineCtx<'_>) -> bool {
    let s = ctx.positions;
    for i in 0..s.len().saturating_sub(1) {
        let data_gap =
            ctx.doc_nps[(s[i] - 1) as usize] as i64 - ctx.doc_nps[(s[i + 1] - 1) as usize] as i64;
        let query_gap = ctx.query_nps[i] as i64 - ctx.query_nps[i + 1] as i64;
        if (data_gap == 0) != (query_gap == 0) {
            return false;
        }
        if data_gap * query_gap < 0 {
            return false;
        }
        if query_gap.abs() > data_gap.abs() {
            return false;
        }
    }
    true
}

/// Refinement by structure, part 2: frequency consistency
/// (Definition 4). Implements the full *iff* — equal values must occur
/// at identical position sets in both sequences — via first-occurrence
/// fingerprints.
pub fn check_frequency_consistency(ctx: &RefineCtx<'_>) -> bool {
    let s = ctx.positions;
    let len = s.len();
    debug_assert_eq!(ctx.query_nps.len(), len);
    // first_q[i] = first index holding the same value as query_nps[i];
    // likewise for the matched data values. The sequences are frequency
    // consistent iff the fingerprints agree elementwise.
    let mut first_q: Vec<usize> = Vec::with_capacity(len);
    let mut first_d: Vec<usize> = Vec::with_capacity(len);
    let mut seen_q: std::collections::HashMap<PostNum, usize> = std::collections::HashMap::new();
    let mut seen_d: std::collections::HashMap<PostNum, usize> = std::collections::HashMap::new();
    for i in 0..len {
        let q = ctx.query_nps[i];
        let d = ctx.doc_nps[(s[i] - 1) as usize];
        first_q.push(*seen_q.entry(q).or_insert(i));
        first_d.push(*seen_d.entry(d).or_insert(i));
        if first_q[i] != first_d[i] {
            return false;
        }
    }
    true
}

/// Refinement by matching leaf nodes (§4.4, Example 6).
///
/// A query leaf `(l, q)` maps to data node `d = S_q`. The match holds if
/// the document's leaf list contains `(l, d)`, or — when `d` is an
/// internal node — some LPS position records `d` as a parent labeled
/// `l`.
pub fn check_leaves(ctx: &RefineCtx<'_>) -> bool {
    if ctx.skip_leaf_check {
        return true;
    }
    for &(label, q) in ctx.query_leaves {
        debug_assert!(
            (q as usize) <= ctx.positions.len(),
            "a query leaf is never the query root for multi-node queries"
        );
        let d = ctx.positions[(q - 1) as usize];
        // Leaf list is sorted by postorder: binary search.
        match ctx.doc_leaves.binary_search_by_key(&d, |&(_, p)| p) {
            Ok(idx) => {
                if ctx.doc_leaves[idx].0 != label {
                    return false;
                }
            }
            Err(_) => {
                // Internal data node: its label appears in the LPS at any
                // position whose NPS value is d (deletion of a child).
                let found = ctx
                    .doc_nps
                    .iter()
                    .zip(ctx.doc_lps.iter())
                    .any(|(&p, &l)| p == d && l == label);
                if !found {
                    return false;
                }
            }
        }
    }
    true
}

/// Runs all refinement phases in the paper's order (Algorithm 2).
pub fn refine_match(ctx: &RefineCtx<'_>) -> bool {
    check_connectedness(ctx)
        && check_gap_consistency(ctx)
        && check_frequency_consistency(ctx)
        && check_leaves(ctx)
}

/// Computes the embedding (query node → data node, both as postorder
/// numbers) witnessed by a refined match.
///
/// Internal query nodes map through the matched NPS values (all children
/// of a node agree by frequency consistency); leaves map to their match
/// positions directly.
pub fn embedding(
    query_nps: &[PostNum],
    positions: &[PostNum],
    doc_nps: &[PostNum],
) -> Vec<PostNum> {
    let m = query_nps.len() + 1;
    let mut img = vec![0 as PostNum; m];
    // Pass 1: every parent p = query_nps[j] maps to the data parent of
    // the match of its child j + 1.
    for (j, &p) in query_nps.iter().enumerate() {
        let d = doc_nps[(positions[j] - 1) as usize];
        img[(p - 1) as usize] = d;
    }
    // Pass 2: leaves (never parents) map to their own positions.
    for q in 1..m {
        if img[q - 1] == 0 {
            img[q - 1] = positions[q - 1];
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::PruferSeq;
    use prix_xml::{parse_document, SymbolTable, XmlTree};

    /// The Figure 2(a) tree (see seq.rs for the derivation).
    fn figure2() -> (XmlTree, SymbolTable, PruferSeq) {
        let mut syms = SymbolTable::new();
        let (a, b, c, d, e, f, g) = (
            syms.intern("A"),
            syms.intern("B"),
            syms.intern("C"),
            syms.intern("D"),
            syms.intern("E"),
            syms.intern("F"),
            syms.intern("G"),
        );
        use prix_xml::NodeKind::Element;
        let mut t = XmlTree::with_root(a, Element);
        let root = t.root();
        t.add_child(root, c, Element); // node 1
        let n7 = t.add_child(root, b, Element);
        let n3 = t.add_child(n7, c, Element);
        t.add_child(n3, d, Element); // 2
        let n6 = t.add_child(n7, c, Element);
        t.add_child(n6, d, Element); // 4
        t.add_child(n6, e, Element); // 5
        let n9 = t.add_child(root, c, Element);
        t.add_child(n9, c, Element); // 8
        let n14 = t.add_child(root, d, Element);
        let n13 = t.add_child(n14, e, Element);
        t.add_child(n13, g, Element); // 10
        t.add_child(n13, f, Element); // 11
        t.add_child(n13, f, Element); // 12
        t.seal();
        let seq = PruferSeq::regular(&t);
        let _ = (b, f, g);
        (t, syms, seq)
    }

    fn all_child_edges(n: usize) -> Vec<EdgeKind> {
        vec![EdgeKind::Child; n]
    }

    fn ctx<'a>(
        doc: &'a PruferSeq,
        query_nps: &'a [PostNum],
        positions: &'a [PostNum],
        edges: &'a [EdgeKind],
    ) -> RefineCtx<'a> {
        RefineCtx {
            doc_nps: &doc.nps,
            query_nps,
            positions,
            edges,
            query_leaves: &[],
            doc_leaves: &[],
            doc_lps: &doc.lps,
            skip_leaf_check: true,
        }
    }

    #[test]
    fn example3_disconnected_subsequence_fails() {
        let (_, _, seq) = figure2();
        // S_A = C B C E D at positions (2,3,8,10,13), N_A = 3 7 9 13 14.
        let positions = [2, 3, 8, 10, 13];
        let nvals: Vec<u32> = positions
            .iter()
            .map(|&p| seq.nps[(p - 1) as usize])
            .collect();
        assert_eq!(nvals, vec![3, 7, 9, 13, 14]);
        let q_nps = [0u32; 5]; // connectedness ignores the query NPS
        let edges = all_child_edges(5);
        assert!(!check_connectedness(&ctx(&seq, &q_nps, &positions, &edges)));
    }

    #[test]
    fn example3_connected_subsequence_passes() {
        let (_, _, seq) = figure2();
        // S_B = C B A C A E D A at positions (2,3,7,8,9,10,13,14),
        // N_B = 3 7 15 9 15 13 14 15.
        let positions = [2, 3, 7, 8, 9, 10, 13, 14];
        let nvals: Vec<u32> = positions
            .iter()
            .map(|&p| seq.nps[(p - 1) as usize])
            .collect();
        assert_eq!(nvals, vec![3, 7, 15, 9, 15, 13, 14, 15]);
        let q_nps = [0u32; 8];
        let edges = all_child_edges(8);
        assert!(check_connectedness(&ctx(&seq, &q_nps, &positions, &edges)));
    }

    #[test]
    fn example4_gap_consistency() {
        let (_, _, seq) = figure2();
        // S1 at positions (6,7,10,11,14): N_S1 = 7 15 13 13 15.
        let positions = [6u32, 7, 10, 11, 14];
        let nvals: Vec<u32> = positions
            .iter()
            .map(|&p| seq.nps[(p - 1) as usize])
            .collect();
        assert_eq!(nvals, vec![7, 15, 13, 13, 15]);
        // S2 (the query side) has N_S2 = 2 7 6 6 7.
        let q_nps = [2u32, 7, 6, 6, 7];
        let edges = all_child_edges(5);
        assert!(check_gap_consistency(&ctx(
            &seq, &q_nps, &positions, &edges
        )));
    }

    #[test]
    fn example5_frequency_consistency() {
        let (_, _, seq) = figure2();
        let positions = [6u32, 7, 10, 11, 14];
        let q_nps = [2u32, 7, 6, 6, 7];
        let edges = all_child_edges(5);
        assert!(check_frequency_consistency(&ctx(
            &seq, &q_nps, &positions, &edges
        )));
    }

    #[test]
    fn frequency_consistency_is_an_iff() {
        let (_, _, seq) = figure2();
        // Data values at (10, 11) are 13, 13 (equal); a query NPS with
        // distinct values there must fail even though the one-directional
        // check of Algorithm 2 lines 12-15 would pass.
        let positions = [10u32, 11];
        let q_nps = [2u32, 3];
        let edges = all_child_edges(2);
        assert!(!check_frequency_consistency(&ctx(
            &seq, &q_nps, &positions, &edges
        )));
    }

    #[test]
    fn gap_consistency_rejects_sign_flips_and_zero_mismatch() {
        let (_, _, seq) = figure2();
        let positions = [6u32, 7]; // data gap = 7 - 15 = -8
        let edges = all_child_edges(2);
        // Query gap positive: sign flip.
        assert!(!check_gap_consistency(&ctx(
            &seq,
            &[9, 2],
            &positions,
            &edges
        )));
        // Query gap zero vs data gap nonzero.
        assert!(!check_gap_consistency(&ctx(
            &seq,
            &[4, 4],
            &positions,
            &edges
        )));
        // Query gap larger in magnitude than data gap.
        assert!(!check_gap_consistency(&ctx(
            &seq,
            &[9, 0],
            &positions,
            &edges
        )));
        // |q| <= |d| with matching sign: fine (-8 vs -2).
        assert!(check_gap_consistency(&ctx(
            &seq,
            &[2, 4],
            &positions,
            &edges
        )));
    }

    #[test]
    fn example2_full_match_passes_refinement() {
        let (t, syms, seq) = figure2();
        // Query of Example 2: LPS(Q) = B A E D A, NPS(Q) = 2 6 4 5 6,
        // matched at positions (6,7,11,13,14) — wait, the paper's
        // Example 2 reports (6,7,11,13,14) while Example 6 uses
        // (3,7,11,13,14); both are genuine subsequence matches, but only
        // one survives refinement with the leaves of Q. We test the
        // positions from Example 6: P = (3,7,11,13,14) with
        // N = 7 15 13 14 15.
        let positions = [3u32, 7, 11, 13, 14];
        let nvals: Vec<u32> = positions
            .iter()
            .map(|&p| seq.nps[(p - 1) as usize])
            .collect();
        assert_eq!(nvals, vec![7, 15, 13, 14, 15]);
        let q_nps = [2u32, 6, 4, 5, 6];
        let edges = all_child_edges(5);
        let c = syms.lookup("C").unwrap();
        let f = syms.lookup("F").unwrap();
        let rctx = RefineCtx {
            doc_nps: &seq.nps,
            query_nps: &q_nps,
            positions: &positions,
            edges: &edges,
            // Example 6: query leaves are (C,1) and (F,3).
            query_leaves: &[(c, 1), (f, 3)],
            doc_leaves: &t.leaves(),
            doc_lps: &seq.lps,
            skip_leaf_check: false,
        };
        assert!(check_connectedness(&rctx));
        assert!(check_gap_consistency(&rctx));
        assert!(check_frequency_consistency(&rctx));
        assert!(
            check_leaves(&rctx),
            "leaf (F,11) and internal (C,3) both match"
        );
        assert!(refine_match(&rctx));
    }

    #[test]
    fn leaf_check_fails_on_wrong_label() {
        let (t, syms, seq) = figure2();
        let positions = [3u32, 7, 11, 13, 14];
        let q_nps = [2u32, 6, 4, 5, 6];
        let edges = all_child_edges(5);
        let g = syms.lookup("G").unwrap();
        let rctx = RefineCtx {
            doc_nps: &seq.nps,
            query_nps: &q_nps,
            positions: &positions,
            edges: &edges,
            // Query leaf demands (G, 3): data node 11 is (F, 11).
            query_leaves: &[(g, 3)],
            doc_leaves: &t.leaves(),
            doc_lps: &seq.lps,
            skip_leaf_check: false,
        };
        assert!(!check_leaves(&rctx));
    }

    #[test]
    fn example7_wildcard_climb() {
        let (_, _, seq) = figure2();
        // LPS(Q) = C A, NPS(Q) = 2 3; match S = C A at positions (2, 7);
        // N = 3 15. Under Child edges connectedness fails (parent of 3 is
        // 7, not 15); under a Descendant edge on query node 2 the climb
        // 3 -> 7 -> 15 succeeds at i = 2; Exactly(2) also succeeds while
        // Exactly(1) and Exactly(3) fail.
        let positions = [2u32, 7];
        let q_nps = [2u32, 3];
        let child_edges = all_child_edges(2);
        assert!(!check_connectedness(&ctx(
            &seq,
            &q_nps,
            &positions,
            &child_edges
        )));
        let desc = [EdgeKind::Child, EdgeKind::Descendant];
        assert!(check_connectedness(&ctx(&seq, &q_nps, &positions, &desc)));
        let star2 = [EdgeKind::Child, EdgeKind::Exactly(2)];
        assert!(check_connectedness(&ctx(&seq, &q_nps, &positions, &star2)));
        let star1 = [EdgeKind::Child, EdgeKind::Exactly(1)];
        assert!(!check_connectedness(&ctx(&seq, &q_nps, &positions, &star1)));
        let star3 = [EdgeKind::Child, EdgeKind::Exactly(3)];
        assert!(!check_connectedness(&ctx(&seq, &q_nps, &positions, &star3)));
    }

    #[test]
    fn embedding_of_example6_match() {
        let (_, _, seq) = figure2();
        let positions = [3u32, 7, 11, 13, 14];
        let q_nps = [2u32, 6, 4, 5, 6];
        let img = embedding(&q_nps, &positions, &seq.nps);
        // Query nodes: 1 (leaf C), 2 (B), 3 (leaf F), 4 (E), 5 (D),
        // 6 (root A). Expected images: 1->3, 2->7, 3->11, 4->13, 5->14,
        // 6->15.
        assert_eq!(img, vec![3, 7, 11, 13, 14, 15]);
    }

    #[test]
    fn trailing_non_max_value_is_disconnected() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/></b><d><e/></d></a>", &mut syms).unwrap();
        let seq = PruferSeq::regular(&t);
        // Positions (1, 3): N = (parent of 1, parent of 3) = (2, 4);
        // value 4 is max; value 2's last occurrence is followed by 4,
        // whose parent-of-2 check: parent of node 2 is 5 != 4 -> fail.
        let positions = [1u32, 3];
        let edges = all_child_edges(2);
        assert!(!check_connectedness(&ctx(
            &seq,
            &[0, 0],
            &positions,
            &edges
        )));
    }
}
