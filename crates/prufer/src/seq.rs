//! LPS / NPS construction (paper §3.1, §3.2, §5.6).

use prix_xml::{NodeKind, PostNum, Sym, XmlTree};

/// The Prüfer sequences of one tree: the Labeled Prüfer Sequence and the
/// Numbered Prüfer Sequence, both of length `n − 1` for an `n`-node tree
/// (the modified construction of §3.1).
///
/// By Lemma 1 the node deleted at step `i` (1-based) is the node with
/// postorder number `i`, so construction is a single scan: entry `i`
/// records the label / postorder number of the *parent* of node `i`.
///
/// ```
/// use prix_xml::{parse_document, SymbolTable};
/// use prix_prufer::PruferSeq;
/// let mut syms = SymbolTable::new();
/// // Paper Example 1 uses a 15-node tree; a small one here:
/// let t = parse_document("<A><B><C/></B><D/></A>", &mut syms).unwrap();
/// let s = PruferSeq::regular(&t);
/// // postorder: C=1 B=2 D=3 A=4 ; parents: C->B, B->A, D->A
/// assert_eq!(s.nps, vec![2, 4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruferSeq {
    /// Labeled Prüfer sequence: `lps[i]` = label of the parent of the
    /// node with postorder number `i + 1`.
    pub lps: Vec<Sym>,
    /// Numbered Prüfer sequence: `nps[i]` = postorder number of that
    /// parent.
    pub nps: Vec<PostNum>,
}

impl PruferSeq {
    /// Regular-Prüfer sequence (§3.1): only non-leaf labels appear in
    /// the LPS.
    pub fn regular(tree: &XmlTree) -> Self {
        let n = tree.len() as PostNum;
        let mut lps = Vec::with_capacity(n.saturating_sub(1) as usize);
        let mut nps = Vec::with_capacity(n.saturating_sub(1) as usize);
        for i in 1..n {
            let p = tree
                .parent_post(i)
                .expect("only the root (numbered n) lacks a parent");
            nps.push(p);
            lps.push(tree.label_at(p));
        }
        PruferSeq { lps, nps }
    }

    /// Extended-Prüfer sequence (§5.6): the sequence of the tree obtained
    /// by adding a dummy child under every leaf, so every label of the
    /// original tree appears in the LPS. Equivalent to
    /// `PruferSeq::regular(&ExtendedTree::build(tree, dummy).tree)`.
    pub fn extended(tree: &XmlTree, dummy: Sym) -> Self {
        Self::regular(&ExtendedTree::build(tree, dummy).tree)
    }

    /// Length of the sequences (`n − 1`).
    pub fn len(&self) -> usize {
        self.lps.len()
    }

    /// `true` for a single-node tree (empty sequence).
    pub fn is_empty(&self) -> bool {
        self.lps.is_empty()
    }
}

/// A tree with a dummy child added under every leaf (§5.6), together
/// with the mapping from extended postorder numbers back to original
/// postorder numbers.
#[derive(Debug, Clone)]
pub struct ExtendedTree {
    /// The extended tree (sealed, postorder-numbered).
    pub tree: XmlTree,
    /// `orig_post[e - 1]` = original postorder number of the extended
    /// node numbered `e`, or `0` if that node is a dummy.
    pub orig_post: Vec<PostNum>,
}

impl ExtendedTree {
    /// Builds the extension of `tree`, labeling dummies with `dummy`.
    ///
    /// The dummy label never appears in any LPS (dummies are always
    /// leaves), so its choice does not affect matching; it only
    /// participates in the numbering.
    pub fn build(tree: &XmlTree, dummy: Sym) -> Self {
        let n = tree.len();
        let mut ext = XmlTree::with_root(tree.label(tree.root()), tree.kind(tree.root()));
        // Map original node id -> extended node id; root is 0 in both.
        let mut id_map = vec![0u32; n];
        // Iterative preorder so parents are created before children
        // (XmlTree arena requires it) and child order is preserved.
        let mut stack: Vec<u32> = vec![tree.root()];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        while let Some(node) = stack.pop() {
            order.push(node);
            for &c in tree.children(node).iter().rev() {
                stack.push(c);
            }
        }
        for node in order {
            if node != tree.root() {
                let parent = tree.parent(node).expect("non-root has a parent");
                let ext_parent = id_map[parent as usize];
                id_map[node as usize] =
                    ext.add_child(ext_parent, tree.label(node), tree.kind(node));
            }
            if tree.is_leaf(node) {
                ext.add_child(id_map[node as usize], dummy, NodeKind::Element);
            }
        }
        ext.seal();
        let mut orig_post = vec![0 as PostNum; ext.len()];
        for node in tree.nodes() {
            let e = ext.postorder(id_map[node as usize]);
            orig_post[(e - 1) as usize] = tree.postorder(node);
        }
        ExtendedTree {
            tree: ext,
            orig_post,
        }
    }

    /// Maps an extended postorder number to the original one (`None` for
    /// dummies).
    pub fn to_original(&self, ext_post: PostNum) -> Option<PostNum> {
        let v = self.orig_post[(ext_post - 1) as usize];
        (v != 0).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prix_xml::{parse_document, SymbolTable};

    /// Builds the 15-node tree of paper Figure 2(a):
    ///
    /// ```text
    /// A15 ── C3(D1,D2) is wrong; the actual shape (derived from
    /// LPS/NPS in Example 1) is:
    ///   A(15) children: B(7), C(9), E(13), D(14)
    ///   B(7) children: C(3), B... (see below)
    /// ```
    ///
    /// Reconstructed from NPS(T) = 15 3 7 6 6 7 15 9 15 13 13 13 14 15:
    /// parent(1)=15, parent(2)=3, parent(3)=7, parent(4)=6, parent(5)=6,
    /// parent(6)=7, parent(7)=15, parent(8)=9, parent(9)=15,
    /// parent(10)=13, parent(11)=13, parent(12)=13, parent(13)=14,
    /// parent(14)=15.
    /// With LPS(T) = A C B C C B A C A E E E D A giving the labels of
    /// those parents, and leaves (from Example 6):
    /// (D,2) (D,4) (E,5) (G,10) (F,11) (F,12); node 1 = C, node 8 = C.
    pub(crate) fn figure2_tree() -> (XmlTree, SymbolTable) {
        let mut syms = SymbolTable::new();
        // Children lists derived from the parent array, in postorder:
        // 15: [1, 7, 9, 14]; 3: [2]; 7: [3, 6]; 6: [4, 5]; 9: [8];
        // 13: [10, 11, 12]; 14: [13].
        // Labels: 15=A, 3=C, 7=B, 6=C(label of parent of 4,5 is C),
        // 9=C, 13=E, 14=D, 1=C, 2=D, 4=D, 5=E, 8=C, 10=G, 11=F, 12=F.
        let xml = "<A><C1/><B><C><D/></C><Cb><D/><E1/></Cb></B>\
                   <Ca><Cc/></Ca><D1><E><G/><F/><F2/></E></D1></A>";
        // The generic XML above would not produce the right labels; build
        // the exact tree by hand instead.
        let _ = xml;
        let a = syms.intern("A");
        let b = syms.intern("B");
        let c = syms.intern("C");
        let d = syms.intern("D");
        let e = syms.intern("E");
        let f = syms.intern("F");
        let g = syms.intern("G");
        let mut t = XmlTree::with_root(a, NodeKind::Element);
        let root = t.root();
        // Subtree rooted at node 1 (C leaf, child of root).
        t.add_child(root, c, NodeKind::Element); // node 1
                                                 // Subtree rooted at node 7 (B): children node 3 (C) and node 6 (C).
        let n7 = t.add_child(root, b, NodeKind::Element);
        let n3 = t.add_child(n7, c, NodeKind::Element);
        t.add_child(n3, d, NodeKind::Element); // node 2 (D leaf)
        let n6 = t.add_child(n7, c, NodeKind::Element);
        t.add_child(n6, d, NodeKind::Element); // node 4 (D leaf)
        t.add_child(n6, e, NodeKind::Element); // node 5 (E leaf)
                                               // Subtree rooted at node 9 (C): child node 8 (C leaf).
        let n9 = t.add_child(root, c, NodeKind::Element);
        t.add_child(n9, c, NodeKind::Element); // node 8
                                               // Subtree rooted at node 14 (D): child node 13 (E) with leaves
                                               // G(10), F(11), F(12).
        let n14 = t.add_child(root, d, NodeKind::Element);
        let n13 = t.add_child(n14, e, NodeKind::Element);
        t.add_child(n13, g, NodeKind::Element); // node 10
        t.add_child(n13, f, NodeKind::Element); // node 11
        t.add_child(n13, f, NodeKind::Element); // node 12
        t.seal();
        (t, syms)
    }

    #[test]
    fn example1_lps_and_nps() {
        let (t, syms) = figure2_tree();
        assert_eq!(t.len(), 15);
        let s = PruferSeq::regular(&t);
        assert_eq!(
            s.nps,
            vec![15, 3, 7, 6, 6, 7, 15, 9, 15, 13, 13, 13, 14, 15],
            "NPS(T) from paper Example 1"
        );
        let lps: Vec<&str> = s.lps.iter().map(|&x| syms.name(x)).collect();
        assert_eq!(
            lps,
            vec!["A", "C", "B", "C", "C", "B", "A", "C", "A", "E", "E", "E", "D", "A"],
            "LPS(T) from paper Example 1"
        );
    }

    #[test]
    fn example1_leaves() {
        let (t, syms) = figure2_tree();
        let leaves: Vec<(String, u32)> = t
            .leaves()
            .iter()
            .map(|&(s, p)| (syms.name(s).to_string(), p))
            .collect();
        // Example 6: leaves of T are (D,2),(D,4),(E,5),(G,10),(F,11),(F,12)
        // plus node 1 (C) and node 8 (C), which the paper's Example 6
        // treats through the LPS/NPS search path.
        assert!(leaves.contains(&("D".into(), 2)));
        assert!(leaves.contains(&("D".into(), 4)));
        assert!(leaves.contains(&("E".into(), 5)));
        assert!(leaves.contains(&("G".into(), 10)));
        assert!(leaves.contains(&("F".into(), 11)));
        assert!(leaves.contains(&("F".into(), 12)));
    }

    #[test]
    fn query_twig_of_example2() {
        // Figure 2(b): query Q with LPS(Q) = B A E D A and
        // NPS(Q) = 2 6 4 5 6.
        // Parent array: p(1)=2, p(2)=6, p(3)=4, p(4)=5, p(5)=6.
        // Labels: 2=B, 6=A(root), 4=E, 5=D; leaves: 1 (C), 3 (F).
        let mut syms = SymbolTable::new();
        let a = syms.intern("A");
        let b = syms.intern("B");
        let c = syms.intern("C");
        let d = syms.intern("D");
        let e = syms.intern("E");
        let f = syms.intern("F");
        let mut q = XmlTree::with_root(a, NodeKind::Element);
        let n2 = q.add_child(q.root(), b, NodeKind::Element);
        q.add_child(n2, c, NodeKind::Element); // node 1
        let n5 = q.add_child(q.root(), d, NodeKind::Element);
        let n4 = q.add_child(n5, e, NodeKind::Element);
        q.add_child(n4, f, NodeKind::Element); // node 3
        q.seal();
        let s = PruferSeq::regular(&q);
        assert_eq!(s.nps, vec![2, 6, 4, 5, 6]);
        let lps: Vec<&str> = s.lps.iter().map(|&x| syms.name(x)).collect();
        assert_eq!(lps, vec!["B", "A", "E", "D", "A"]);
    }

    #[test]
    fn single_node_tree_has_empty_sequence() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a/>", &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn lps_contains_only_internal_labels() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><leaf1/></b><leaf2/></a>", &mut syms).unwrap();
        let s = PruferSeq::regular(&t);
        let leaf1 = syms.lookup("leaf1").unwrap();
        let leaf2 = syms.lookup("leaf2").unwrap();
        assert!(!s.lps.contains(&leaf1));
        assert!(!s.lps.contains(&leaf2));
    }

    #[test]
    fn extended_sequence_contains_all_labels() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/></b><d/></a>", &mut syms).unwrap();
        let dummy = syms.intern("\u{1}dummy");
        let s = PruferSeq::extended(&t, dummy);
        for name in ["a", "b", "c", "d"] {
            let sym = syms.lookup(name).unwrap();
            assert!(
                s.lps.contains(&sym),
                "label {name} missing from extended LPS"
            );
        }
        assert!(!s.lps.contains(&dummy), "dummy must never appear in an LPS");
        // Extension adds one node per leaf: n=4, leaves=2 -> 6 nodes -> len 5.
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn extended_tree_mapping_roundtrips() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/></b><d/></a>", &mut syms).unwrap();
        let dummy = syms.intern("\u{1}dummy");
        let ext = ExtendedTree::build(&t, dummy);
        assert_eq!(ext.tree.len(), t.len() + t.leaves().len());
        // Every original node appears exactly once in the mapping.
        let mut seen: Vec<PostNum> = ext.orig_post.iter().copied().filter(|&p| p != 0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..=t.len() as PostNum).collect::<Vec<_>>());
        // Mapped nodes keep their labels.
        for e in 1..=ext.tree.len() as PostNum {
            if let Some(orig) = ext.to_original(e) {
                assert_eq!(ext.tree.label_at(e), t.label_at(orig));
            } else {
                assert_eq!(ext.tree.label_at(e), dummy);
            }
        }
    }

    #[test]
    fn extended_preserves_relative_order_of_original_nodes() {
        let mut syms = SymbolTable::new();
        let t = parse_document("<a><b><c/><d/></b><e/></a>", &mut syms).unwrap();
        let dummy = syms.intern("\u{1}d");
        let ext = ExtendedTree::build(&t, dummy);
        // If orig u < orig v in postorder, their extended numbers keep
        // that order.
        let mut pairs: Vec<(PostNum, PostNum)> = Vec::new();
        for e in 1..=ext.tree.len() as PostNum {
            if let Some(o) = ext.to_original(e) {
                pairs.push((o, e));
            }
        }
        pairs.sort_unstable();
        assert!(pairs.windows(2).all(|w| w[0].1 < w[1].1));
    }
}
