//! In-memory subsequence-match enumeration (paper Definition 1, §4.1).
//!
//! The disk-based engine enumerates subsequences through the virtual
//! trie (Algorithm 1); this module provides the same enumeration over
//! plain label arrays. It backs the index-free reference matcher and the
//! property-test oracle, and is also what the engine uses when a
//! collection is small enough to scan.

use prix_xml::{PostNum, Sym};

/// Calls `f` with the (1-based) positions of every subsequence of `doc`
/// that matches `query`. `f` returns `false` to stop the enumeration
/// early; the function returns `false` iff it was stopped.
///
/// Positions are 1-based to match the paper (position `p` = deletion of
/// data node `p`, Lemma 1).
pub fn for_each_subsequence(
    query: &[Sym],
    doc: &[Sym],
    f: &mut impl FnMut(&[PostNum]) -> bool,
) -> bool {
    if query.is_empty() {
        return true;
    }
    // occ[k] = positions (0-based) in doc where query[k] occurs; the
    // standard candidate-list driven backtracking.
    let mut stack: Vec<usize> = Vec::with_capacity(query.len());
    let mut positions: Vec<PostNum> = Vec::with_capacity(query.len());
    // Quick infeasibility check: remaining[k] = last possible start.
    // (A simple greedy existence test prunes hopeless documents fast.)
    if !is_subsequence(query, doc) {
        return true;
    }
    // Iterative DFS: stack[d] = next doc index (0-based) to try at
    // query depth d.
    stack.push(0);
    while let Some(top) = stack.last_mut() {
        let d = positions.len();
        let start = *top;
        // Find the next occurrence of query[d] at or after `start`.
        let mut found = None;
        for (off, &sym) in doc[start..].iter().enumerate() {
            if sym == query[d] {
                found = Some(start + off);
                break;
            }
        }
        match found {
            None => {
                stack.pop();
                positions.pop();
            }
            Some(pos) => {
                *top = pos + 1; // on backtrack, resume after this match
                positions.push((pos + 1) as PostNum);
                if positions.len() == query.len() {
                    if !f(&positions) {
                        return false;
                    }
                    positions.pop();
                } else {
                    stack.push(pos + 1);
                }
            }
        }
    }
    true
}

/// Collects up to `limit` subsequence matches (see
/// [`for_each_subsequence`]).
pub fn subsequence_positions(query: &[Sym], doc: &[Sym], limit: usize) -> Vec<Vec<PostNum>> {
    let mut out = Vec::new();
    for_each_subsequence(query, doc, &mut |pos| {
        out.push(pos.to_vec());
        out.len() < limit
    });
    out
}

/// `true` iff `query` is a subsequence of `doc` (Definition 1).
pub fn is_subsequence(query: &[Sym], doc: &[Sym]) -> bool {
    let mut qi = 0;
    for &sym in doc {
        if qi == query.len() {
            return true;
        }
        if sym == query[qi] {
            qi += 1;
        }
    }
    qi == query.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<Sym> {
        s.chars().map(|c| Sym(c as u32)).collect()
    }

    #[test]
    fn greedy_subsequence_check() {
        assert!(is_subsequence(&syms("BAE"), &syms("BXAXXE")));
        assert!(!is_subsequence(&syms("BAE"), &syms("EAB")));
        assert!(is_subsequence(&syms(""), &syms("X")));
        assert!(!is_subsequence(&syms("X"), &syms("")));
    }

    #[test]
    fn enumerates_all_matches() {
        // "AB" in "AABB": positions (1,3),(1,4),(2,3),(2,4).
        let m = subsequence_positions(&syms("AB"), &syms("AABB"), usize::MAX);
        assert_eq!(m, vec![vec![1, 3], vec![1, 4], vec![2, 3], vec![2, 4]]);
    }

    #[test]
    fn positions_are_strictly_increasing() {
        let m = subsequence_positions(&syms("AA"), &syms("AAA"), usize::MAX);
        assert_eq!(m, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        for pos in m {
            assert!(pos.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn limit_caps_enumeration() {
        let m = subsequence_positions(&syms("AB"), &syms("AABB"), 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn no_match_yields_nothing() {
        assert!(subsequence_positions(&syms("Z"), &syms("AABB"), usize::MAX).is_empty());
    }

    #[test]
    fn paper_example2_has_a_match_at_the_reported_positions() {
        // LPS(T) = A C B C C B A C A E E E D A; LPS(Q) = B A E D A.
        let doc = syms("ACBCCBACAEEEDA");
        let query = syms("BAEDA");
        let all = subsequence_positions(&query, &doc, usize::MAX);
        assert!(all.contains(&vec![6, 7, 11, 13, 14]), "Example 2's match");
        assert!(all.contains(&vec![3, 7, 11, 13, 14]), "Example 6's match");
        // "Note that there may be more than one subsequence in LPS(T)
        // that matches LPS(Q)."
        assert!(all.len() > 1);
    }

    #[test]
    fn early_stop_works() {
        let mut count = 0;
        let stopped = !for_each_subsequence(&syms("AB"), &syms("AABB"), &mut |_| {
            count += 1;
            count < 3
        });
        assert!(stopped);
        assert_eq!(count, 3);
    }

    #[test]
    fn empty_query_matches_trivially() {
        let mut called = false;
        for_each_subsequence(&syms(""), &syms("ABC"), &mut |_| {
            called = true;
            true
        });
        assert!(!called, "empty query produces no position vectors");
    }
}
