//! Lazily-built alternative engines (ViST, TwigStack, TwigStackXB)
//! for the cost-based router, cached per snapshot epoch.
//!
//! The alternative engines read the *same data* as PRIX: the
//! collection is reconstructed out of the RP index (Prüfer-sequence
//! inversion), region-/structure-encoded, and indexed into in-memory
//! buffer pools. That build is expensive, so one [`AltCache`] lives in
//! the server's shared state and keeps the substrates of the most
//! recent epoch; an ingest publishing a new epoch simply makes the
//! cached entry unreachable and the next forced/routed alternative
//! query rebuilds against the new snapshot.

use std::sync::{Arc, Mutex};

use prix_core::index::{IndexError, Result};
use prix_core::plan::{AltProvider, EngineId, QueryEngine};
use prix_core::EngineSnapshot;
use prix_storage::{BufferPool, Pager};
use prix_twigstack::{Substrate, TwigStackEngine};
use prix_vist::VistEngine;

/// The per-epoch substrates, built once and shared by every request at
/// that epoch.
struct Built {
    epoch: u64,
    vist: Arc<dyn QueryEngine>,
    twigstack: Arc<dyn QueryEngine>,
    twigstack_xb: Arc<dyn QueryEngine>,
}

/// Epoch-keyed cache of alternative engines. One per server.
#[derive(Default)]
pub struct AltCache {
    inner: Mutex<Option<Arc<Built>>>,
}

impl AltCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn built_for(&self, snap: &EngineSnapshot) -> Result<Arc<Built>> {
        let epoch = snap.epoch();
        {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(b) = inner.as_ref() {
                if b.epoch == epoch {
                    return Ok(Arc::clone(b));
                }
            }
        }
        // Build outside the lock: reconstruction + indexing can take a
        // while and concurrent queries at the same epoch losing the
        // race just produce an identical substrate.
        let collection = Arc::new(snap.reconstruct_collection()?);
        let vist_pool = Arc::new(BufferPool::new(Pager::in_memory(), 4096));
        let vist =
            VistEngine::build(vist_pool, Arc::clone(&collection)).map_err(IndexError::Storage)?;
        let ts_pool = Arc::new(BufferPool::new(Pager::in_memory(), 4096));
        let sub = Arc::new(Substrate::build(ts_pool, &collection).map_err(IndexError::Storage)?);
        let built = Arc::new(Built {
            epoch,
            vist: Arc::new(vist),
            twigstack: Arc::new(TwigStackEngine::twigstack(Arc::clone(&sub))),
            twigstack_xb: Arc::new(TwigStackEngine::twigstack_xb(sub)),
        });
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = Some(Arc::clone(&built));
        Ok(built)
    }
}

/// [`AltProvider`] view of the cache for one request's snapshot.
pub struct SnapshotAlts<'a> {
    /// The epoch-pinned snapshot the request executes against.
    pub snap: &'a EngineSnapshot,
    /// The server's shared cache.
    pub cache: &'a AltCache,
}

impl AltProvider for SnapshotAlts<'_> {
    fn alt_engine(&self, id: EngineId) -> Result<Arc<dyn QueryEngine>> {
        let built = self.cache.built_for(self.snap)?;
        Ok(match id {
            EngineId::Vist => Arc::clone(&built.vist),
            EngineId::TwigStack => Arc::clone(&built.twigstack),
            EngineId::TwigStackXb => Arc::clone(&built.twigstack_xb),
            EngineId::PrixRp | EngineId::PrixEp => {
                return Err(IndexError::Unsupported(
                    "PRIX runs on its own indexes, not through the alt provider".into(),
                ))
            }
        })
    }
}
