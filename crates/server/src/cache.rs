//! Epoch-keyed query caches: the plan cache and the result cache.
//!
//! PR 6's snapshot isolation gives every committed ingest a published
//! *epoch*, and a query's answer is a pure function of
//! `(query text, options, epoch)`. That makes the epoch a free
//! cache-invalidation token: a result cached under one epoch is
//! bit-identical to a live evaluation until the next ingest publishes,
//! at which point its key simply never matches again. Two caches
//! exploit this:
//!
//! * [`PlanCache`] — XPath string → parsed [`TwigQuery`] (the label
//!   path sequence plus twig structure the executor plans from).
//!   Parsing is pure w.r.t. the symbol table, and the table is
//!   append-only, so a plan stays valid until the table *grows*; each
//!   entry remembers the table length it was parsed at and is lazily
//!   re-parsed when an ingest interned new labels.
//! * [`ResultCache`] — `(normalized query, options, epoch)` → the full
//!   serialized JSON response body. Hits return the exact bytes of the
//!   first evaluation; an epoch advance orphans every older entry, and
//!   [`ResultCache::purge_older_than`] (driven by the engine's publish
//!   hook) reclaims them eagerly so capacity is never squatted by dead
//!   epochs.
//!
//! Both caches are sharded (hash of the key picks a mutex-protected
//! LRU shard) so concurrent workers rarely contend, and both keep
//! lifetime hit/miss/eviction counters for `/metrics`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use prix_core::TwigQuery;

/// Shards per cache. Power of two; the low bits of the key hash pick
/// the shard. Sixteen keeps contention negligible at the worker-pool
/// sizes the server runs (≤ 16 threads) without bloating tiny caches.
const SHARDS: usize = 16;

/// `None` sentinel for the intrusive LRU links.
const NIL: usize = usize::MAX;

/// A doubly-linked LRU over a slab, O(1) for get/insert/evict.
///
/// `head` is the most recently used node, `tail` the least; eviction
/// pops the tail. Kept private — the caches wrap one per shard.
struct Lru<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

struct Node<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks `key` up and marks it most-recently-used.
    fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.nodes[idx].val)
    }

    /// Inserts (or replaces) `key`. Returns the number of entries
    /// evicted to make room (0 or 1).
    fn insert(&mut self, key: K, val: V) -> u64 {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].val = val;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            self.unlink(tail);
            let doomed_key = self.nodes[tail].key.clone();
            self.map.remove(&doomed_key);
            self.free.push(tail);
            evicted = 1;
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes every entry `pred` matches; returns how many went.
    fn retain(&mut self, mut pred: impl FnMut(&K) -> bool) -> u64 {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !pred(k))
            .map(|(_, &idx)| idx)
            .collect();
        let removed = doomed.len() as u64;
        for idx in doomed {
            self.unlink(idx);
            let doomed_key = self.nodes[idx].key.clone();
            self.map.remove(&doomed_key);
            self.free.push(idx);
        }
        removed
    }
}

/// Lifetime counters every cache keeps; `/metrics` renders them as
/// `prix_cache_{hits,misses,evictions}_total{cache="..."}`.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of one cache's counters plus its current size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a live evaluation.
    pub misses: u64,
    /// Entries removed by LRU pressure or epoch purges.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheSnapshot {
    /// Lifetime hit ratio in `[0, 1]`; 1.0 when idle (no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Counters {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn evicted(&self, n: u64) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn snapshot(&self, entries: u64) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// A parsed plan pinned to the symbol-table length it was parsed at.
struct CachedPlan {
    syms_len: usize,
    query: TwigQuery,
}

/// XPath string → parsed [`TwigQuery`], invalidated only by
/// symbol-table growth.
///
/// The symbol table is append-only: two tables of equal length are
/// byte-identical, so a plan parsed at length `L` is exact for every
/// snapshot whose table still has length `L`. When an ingest interns
/// new labels the length moves and the entry lazily re-parses — an
/// XPath naming a label the old table lacked must now resolve to the
/// real symbol instead of a match-nothing scratch overlay.
pub struct PlanCache {
    shards: Vec<Mutex<Lru<String, CachedPlan>>>,
    counters: Counters,
}

impl PlanCache {
    /// A plan cache holding up to `capacity` parsed queries.
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        PlanCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Lru::new(per_shard)))
                .collect(),
            counters: Counters::default(),
        }
    }

    /// The cached plan for `xpath`, if one was parsed at exactly
    /// `syms_len` interned symbols.
    pub fn get(&self, xpath: &str, syms_len: usize) -> Option<TwigQuery> {
        let key = xpath.to_string();
        let mut shard = self.shards[shard_of(&key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get(&key) {
            Some(plan) if plan.syms_len == syms_len => {
                let q = plan.query.clone();
                self.counters.hit();
                Some(q)
            }
            _ => {
                self.counters.miss();
                None
            }
        }
    }

    /// Stores the plan parsed for `xpath` at `syms_len` symbols.
    pub fn insert(&self, xpath: &str, syms_len: usize, query: TwigQuery) {
        let key = xpath.to_string();
        let mut shard = self.shards[shard_of(&key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let evicted = shard.insert(key, CachedPlan { syms_len, query });
        self.counters.evicted(evicted);
    }

    /// Counters + current size for `/metrics`.
    pub fn snapshot(&self) -> CacheSnapshot {
        let entries: usize = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        self.counters.snapshot(entries as u64)
    }
}

/// What identifies one cacheable result: the normalized query text,
/// the execution options that change the answer, and the epoch it was
/// evaluated at.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Whitespace-trimmed query text (one XPath for `/query`, the
    /// normalized line list for `/batch`).
    pub query: String,
    /// Unordered (§5.7 arrangements) vs ordered matching.
    pub unordered: bool,
    /// Effective match limit; `u64::MAX` encodes "unlimited".
    pub limit: u64,
    /// The snapshot epoch the result was computed at.
    pub epoch: u64,
    /// The `engine=` routing override (empty = cost-based routing).
    /// Forced and routed evaluations may legitimately differ in their
    /// reported stats, so they must not share cache entries.
    pub engine: String,
}

/// Sharded LRU of serialized `200` response bodies keyed by
/// [`ResultKey`]. Capacity 0 disables the cache entirely (every call
/// is a no-op that records nothing).
pub struct ResultCache {
    shards: Vec<Mutex<Lru<ResultKey, Arc<str>>>>,
    counters: Counters,
    enabled: bool,
}

impl ResultCache {
    /// A result cache holding up to `capacity` responses; 0 disables.
    pub fn new(capacity: usize) -> Self {
        let enabled = capacity > 0;
        let per_shard = (capacity / SHARDS).max(1);
        ResultCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Lru::new(per_shard)))
                .collect(),
            counters: Counters::default(),
            enabled,
        }
    }

    /// Whether a capacity was configured.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The cached body for `key`, counting a hit or miss.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<str>> {
        if !self.enabled {
            return None;
        }
        let mut shard = self.shards[shard_of(key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get(key) {
            Some(body) => {
                let body = Arc::clone(body);
                self.counters.hit();
                Some(body)
            }
            None => {
                self.counters.miss();
                None
            }
        }
    }

    /// Stores a freshly evaluated body under `key`.
    pub fn insert(&self, key: ResultKey, body: Arc<str>) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shards[shard_of(&key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let evicted = shard.insert(key, body);
        self.counters.evicted(evicted);
    }

    /// Drops every entry from an epoch older than `epoch`. Driven by
    /// the engine's publish hook, so stale results die the moment a new
    /// epoch becomes visible instead of lingering until LRU pressure.
    pub fn purge_older_than(&self, epoch: u64) {
        if !self.enabled {
            return;
        }
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let removed = shard.retain(|k| k.epoch >= epoch);
            self.counters.evicted(removed);
        }
    }

    /// Counters + current size for `/metrics`.
    pub fn snapshot(&self) -> CacheSnapshot {
        let entries: usize = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        self.counters.snapshot(entries as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str, epoch: u64) -> ResultKey {
        ResultKey {
            query: q.to_string(),
            unordered: false,
            limit: 1000,
            epoch,
            engine: String::new(),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        assert_eq!(lru.insert(1, 10), 0);
        assert_eq!(lru.insert(2, 20), 0);
        assert_eq!(lru.get(&1), Some(&10)); // 1 is now MRU
        assert_eq!(lru.insert(3, 30), 1); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&3), Some(&30));
        assert_eq!(lru.len(), 2);
        // Replacing an existing key never evicts.
        assert_eq!(lru.insert(3, 31), 0);
        assert_eq!(lru.get(&3), Some(&31));
    }

    #[test]
    fn lru_retain_unlinks_cleanly() {
        let mut lru: Lru<u32, u32> = Lru::new(8);
        for i in 0..6 {
            lru.insert(i, i);
        }
        assert_eq!(lru.retain(|k| k % 2 == 0), 3);
        assert_eq!(lru.len(), 3);
        for i in 0..6u32 {
            assert_eq!(lru.get(&i).is_some(), i % 2 == 0, "key {i}");
        }
        // The list is still consistent: fill back up and evict through it.
        for i in 10..18 {
            lru.insert(i, i);
        }
        assert_eq!(lru.len(), 8);
    }

    #[test]
    fn result_cache_hits_misses_and_epoch_purge() {
        let cache = ResultCache::new(64);
        assert!(cache.is_enabled());
        assert!(cache.get(&key("//a", 1)).is_none());
        cache.insert(key("//a", 1), Arc::from("body-a"));
        cache.insert(key("//b", 1), Arc::from("body-b"));
        assert_eq!(cache.get(&key("//a", 1)).as_deref(), Some("body-a"));
        // Same query at a newer epoch is a different key.
        assert!(cache.get(&key("//a", 2)).is_none());
        cache.insert(key("//a", 2), Arc::from("body-a2"));

        // Two misses so far: the cold //a@1 probe and the //a@2 probe.
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.entries), (1, 2, 3));

        // Publishing epoch 2 reclaims both epoch-1 entries.
        cache.purge_older_than(2);
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.evictions, 2);
        assert_eq!(cache.get(&key("//a", 2)).as_deref(), Some("body-a2"));
        assert!(cache.get(&key("//b", 1)).is_none());
    }

    #[test]
    fn disabled_result_cache_is_inert() {
        let cache = ResultCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(key("//a", 1), Arc::from("x"));
        assert!(cache.get(&key("//a", 1)).is_none());
        cache.purge_older_than(9);
        let snap = cache.snapshot();
        assert_eq!(snap, CacheSnapshot::default());
        assert_eq!(snap.hit_ratio(), 1.0);
    }

    #[test]
    fn hit_ratio_counts_only_real_lookups() {
        let cache = ResultCache::new(4);
        cache.insert(key("//a", 1), Arc::from("x"));
        for _ in 0..9 {
            assert!(cache.get(&key("//a", 1)).is_some());
        }
        assert!(cache.get(&key("//z", 1)).is_none());
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (9, 1));
        assert!((snap.hit_ratio() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn plan_cache_invalidates_on_symbol_table_growth() {
        use prix_xml::{ScratchSyms, SymbolTable};

        let mut syms = SymbolTable::new();
        syms.intern("a");
        syms.intern("b");
        let cache = PlanCache::new(32);
        let parse = |syms: &SymbolTable, xp: &str| {
            let mut scratch = ScratchSyms::new(syms);
            prix_core::parse_xpath(xp, &mut scratch).unwrap()
        };

        assert!(cache.get("/a/b", syms.len()).is_none());
        cache.insert("/a/b", syms.len(), parse(&syms, "/a/b"));
        let hit = cache.get("/a/b", syms.len()).expect("cached plan");
        assert_eq!(format!("{hit:?}"), format!("{:?}", parse(&syms, "/a/b")));

        // Growth: the same XPath at the longer table is a miss until
        // re-inserted — `c` might now be a real label.
        syms.intern("c");
        assert!(cache.get("/a/b", syms.len()).is_none());
        cache.insert("/a/b", syms.len(), parse(&syms, "/a/b"));
        assert!(cache.get("/a/b", syms.len()).is_some());

        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (2, 2));
    }
}
