//! Minimal HTTP/1.1 request parser and response writer.
//!
//! Hand-rolled on `std::io` because the workspace is hermetic (no
//! external crates). Supports exactly what [`crate::Server`] needs:
//! request line + headers + optional `Content-Length` body, a query
//! string with percent-decoding (path and form variants — `+` is a
//! space only in query strings), and responses that either keep the
//! connection alive or close it ([`Response::write_to_conn`]).
//! Everything a malicious or broken client can send maps to a typed
//! [`HttpError`] so the server can answer with the right status code
//! instead of panicking or hanging.

use std::io::{self, BufRead, Write};

/// Hard limit on the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard limit on the total size of all header lines.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard limit on a request body (`POST /batch` payloads).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read. Each variant corresponds to one
/// HTTP status code (see [`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (bad request line, bad header,
    /// bad `Content-Length`, ...). Status 400.
    BadRequest(String),
    /// Request line or headers exceed the fixed limits. Status 431.
    HeadersTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`]. Status 413.
    BodyTooLarge,
    /// The client stalled past the socket read timeout. Status 408.
    Timeout,
    /// Transfer-Encoding and other unimplemented mechanics. Status 501.
    Unsupported(String),
    /// The connection died mid-request; nothing can be sent back.
    Io(io::Error),
}

impl HttpError {
    /// The status code this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Timeout => 408,
            HttpError::Unsupported(_) => 501,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::HeadersTooLarge => "request line or headers too large".into(),
            HttpError::BodyTooLarge => "request body too large".into(),
            HttpError::Timeout => "timed out reading request".into(),
            HttpError::Unsupported(m) => m.clone(),
            HttpError::Io(e) => format!("i/o error: {e}"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.detail())
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, percent-decoded (`/query`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub params: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Minor HTTP version: `1` for HTTP/1.1, `0` for HTTP/1.0.
    pub minor_version: u8,
}

impl Request {
    /// Whether the client asked (or defaulted) to keep the connection
    /// open after this request: HTTP/1.1 keeps alive unless the
    /// `Connection` header lists `close`; HTTP/1.0 closes unless it
    /// lists `keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let tokens =
            |v: &str, wanted: &str| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(wanted));
        match self.header("connection") {
            Some(v) if self.minor_version == 0 => tokens(v, "keep-alive"),
            Some(v) => !tokens(v, "close"),
            None => self.minor_version == 1,
        }
    }
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn io_to_http(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads one line terminated by `\n`, enforcing `limit` bytes. Returns
/// the line without the trailing `\r\n`/`\n`, or `None` at clean EOF.
fn read_line(r: &mut impl BufRead, limit: usize) -> Result<Option<String>, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::BadRequest("connection closed mid-line".into()))
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let s = String::from_utf8(buf)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request line".into()))?;
                    return Ok(Some(s));
                }
                buf.push(byte[0]);
                if buf.len() > limit {
                    return Err(HttpError::HeadersTooLarge);
                }
            }
            Err(e) => return Err(io_to_http(e)),
        }
    }
}

/// Percent-decodes a *query-string* component; `+` becomes a space
/// (form encoding, which is what `curl --data-urlencode` and browsers
/// send in query strings).
pub fn percent_decode_form(s: &str) -> Result<String, HttpError> {
    percent_decode_impl(s, true)
}

/// Percent-decodes a *path* component. Per RFC 3986 `+` is an ordinary
/// character outside query strings, so `/a+b` stays `/a+b` — only
/// `%XX` escapes are rewritten.
pub fn percent_decode_path(s: &str) -> Result<String, HttpError> {
    percent_decode_impl(s, false)
}

fn percent_decode_impl(s: &str, plus_is_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| HttpError::BadRequest("truncated %-escape".into()))?;
                let hex = std::str::from_utf8(hex)
                    .map_err(|_| HttpError::BadRequest("bad %-escape".into()))?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::BadRequest(format!("bad %-escape `%{hex}`")))?;
                out.push(v);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("%-escape is not UTF-8".into()))
}

/// Splits a raw query string into decoded `(key, value)` pairs.
fn parse_query_string(qs: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut params = Vec::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.push((percent_decode_form(k)?, percent_decode_form(v)?));
    }
    Ok(params)
}

/// Reads and parses one request from `r`.
///
/// Returns `Ok(None)` if the client closed the connection before
/// sending anything (a normal way for keep-alive clients to go away).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let line = match read_line(r, MAX_REQUEST_LINE)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{}`",
                line.chars().take(80).collect::<String>()
            )))
        }
    };
    let minor_version = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        _ => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol `{version}`"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("bad method `{method}`")));
    }
    let (raw_path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    let path = percent_decode_path(raw_path)?;
    let params = parse_query_string(raw_query)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(r, MAX_HEADER_BYTES)?
            .ok_or_else(|| HttpError::BadRequest("connection closed in headers".into()))?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header without colon: `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Unsupported(
            "Transfer-Encoding is not supported; send Content-Length".into(),
        ));
    }
    let mut body = Vec::new();
    // Collect *every* Content-Length header. Taking the first and
    // ignoring the rest would let two differing values desynchronize
    // request framing on a kept-alive connection (request smuggling),
    // so repeated Content-Length is rejected outright — even when the
    // copies agree, a proxy in front of us may not be as strict.
    let mut lengths = headers.iter().filter(|(k, _)| k == "content-length");
    if let Some((_, v)) = lengths.next() {
        if lengths.next().is_some() {
            return Err(HttpError::BadRequest(
                "repeated Content-Length header".into(),
            ));
        }
        let len: usize = v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad Content-Length `{v}`")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        body = vec![0u8; len];
        r.read_exact(&mut body).map_err(io_to_http)?;
    }
    Ok(Some(Request {
        method: method.to_string(),
        path,
        params,
        headers,
        body,
        minor_version,
    }))
}

/// An HTTP/1.1 response under construction.
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

/// Standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

impl Response {
    /// A response with the given status and no body yet.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body and its content type.
    pub fn body(mut self, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self
    }

    /// A JSON body.
    pub fn json(self, body: impl Into<Vec<u8>>) -> Self {
        self.body("application/json", body)
    }

    /// A plain-text body.
    pub fn text(self, body: impl Into<String>) -> Self {
        self.body("text/plain; charset=utf-8", body.into().into_bytes())
    }

    /// Serializes the response with `Connection: close` (the shed path
    /// and one-shot replies). Kept-alive responses go through
    /// [`Response::write_to_conn`].
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        self.write_to_conn(w, false, false)
    }

    /// Serializes the response. `keep_alive` selects the `Connection`
    /// header; `head_only` answers a `HEAD` request — the status line,
    /// headers, and the `Content-Length` the body *would* have, but no
    /// body bytes (what load-balancer health checks expect).
    pub fn write_to_conn(
        &self,
        w: &mut impl Write,
        keep_alive: bool,
        head_only: bool,
    ) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        if !head_only {
            w.write_all(&self.body)?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_get_with_query_string() {
        let req = parse(b"GET /query?xp=%2F%2Fa%2Fb&limit=10 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("xp"), Some("//a/b"));
        assert_eq!(req.param("limit"), Some("10"));
        assert_eq!(req.param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn plus_decodes_to_space_in_params() {
        let req = parse(b"GET /query?xp=a+b HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.param("xp"), Some("a b"));
    }

    #[test]
    fn plus_in_path_is_not_a_space() {
        // RFC 3986: `+` is only form-encoded space in query strings; a
        // path containing `+` must survive verbatim.
        let req = parse(b"GET /a+b/c%20d?k=x+y HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/a+b/c d");
        assert_eq!(req.param("k"), Some("x y"));
    }

    #[test]
    fn repeated_content_length_is_rejected() {
        // Two differing values: the classic request-smuggling vector.
        let raw = b"POST /batch HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.detail().contains("Content-Length"), "{err}");
        // Even agreeing duplicates are refused: a lenient proxy ahead
        // of us may have folded or reordered them differently.
        let raw = b"POST /batch HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        assert_eq!(parse(raw).unwrap_err().status(), 400);
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.minor_version, 1);
        assert!(req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Upgrade\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.minor_version, 0);
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn parses_post_body_with_content_length() {
        let req = parse(b"POST /batch HTTP/1.1\r\nContent-Length: 9\r\n\r\n//a\n//b/c")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"//a\n//b/c");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x HTTP/1.1 extra HTTP/1.1\r\n\r\n"[..],
            &b"get /lowercase HTTP/1.1\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x?bad=%GG HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n"[..],
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} -> {err}");
        }
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_headers_are_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..20 {
            raw.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "v".repeat(1024)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST /batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(raw.as_bytes()).unwrap_err().status(), 413);
    }

    #[test]
    fn transfer_encoding_is_501() {
        let raw = b"POST /batch HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status(), 501);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST /batch HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(parse(raw).is_err());
    }

    #[test]
    fn percent_decode_roundtrips() {
        assert_eq!(percent_decode_form("a%2Fb%20c+d").unwrap(), "a/b c d");
        assert_eq!(percent_decode_form("plain").unwrap(), "plain");
        assert!(percent_decode_form("%2").is_err());
        assert!(percent_decode_form("%zz").is_err());
        // The path variant decodes escapes but leaves `+` alone.
        assert_eq!(percent_decode_path("a%2Fb%20c+d").unwrap(), "a/b c+d");
        assert!(percent_decode_path("%zz").is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::new(200)
            .header("Retry-After", "1")
            .text("ok\n")
            .write_to(&mut buf)
            .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 3\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
        assert!(s.contains("Retry-After: 1\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nok\n"), "{s}");
    }

    #[test]
    fn keep_alive_and_head_only_wire_formats() {
        let resp = Response::new(200).text("ok\n");
        let mut buf = Vec::new();
        resp.write_to_conn(&mut buf, true, false).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\nok\n"), "{s}");
        // HEAD: full headers, true Content-Length, zero body bytes.
        let mut buf = Vec::new();
        resp.write_to_conn(&mut buf, true, true).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Content-Length: 3\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n"), "{s}");
    }
}
