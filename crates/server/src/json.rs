//! A tiny JSON writer (the workspace has no serde).
//!
//! Write-only: the server never parses JSON, it only emits it. The
//! builder keeps track of whether a separating comma is due so call
//! sites read like the document they produce.

/// Escapes `s` into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An in-progress JSON document.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    comma_due: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if let Some(due) = self.comma_due.last_mut() {
            if *due {
                self.buf.push(',');
            }
            *due = true;
        }
    }

    /// Opens an object value (or an anonymous object at top level).
    pub fn obj(&mut self) -> &mut Self {
        self.sep();
        self.buf.push('{');
        self.comma_due.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.comma_due.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array value.
    pub fn arr(&mut self) -> &mut Self {
        self.sep();
        self.buf.push('[');
        self.comma_due.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.comma_due.pop();
        self.buf.push(']');
        self
    }

    /// Writes `"key":` inside an object; the next value call provides
    /// the value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&escape(k));
        self.buf.push(':');
        // The value that follows must not emit another comma.
        if let Some(due) = self.comma_due.last_mut() {
            *due = false;
        }
        self
    }

    /// Writes a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&escape(v));
        self
    }

    /// Writes an integer value.
    pub fn num(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Writes a float value (finite; NaN/inf become null).
    pub fn float(&mut self, v: f64) -> &mut Self {
        self.sep();
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.sep();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.obj();
        w.key("count").num(2);
        w.key("ok").bool_val(true);
        w.key("ratio").float(0.5);
        w.key("matches").arr();
        for doc in [7u64, 9] {
            w.obj();
            w.key("doc").num(doc);
            w.key("embedding").arr().num(1).num(2).end_arr();
            w.end_obj();
        }
        w.end_arr();
        w.key("xpath").str_val("//a[b=\"v\"]");
        w.end_obj();
        assert_eq!(
            w.finish(),
            r#"{"count":2,"ok":true,"ratio":0.5,"matches":[{"doc":7,"embedding":[1,2]},{"doc":9,"embedding":[1,2]}],"xpath":"//a[b=\"v\"]"}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.arr().float(f64::NAN).float(f64::INFINITY).end_arr();
        assert_eq!(w.finish(), "[null,null]");
    }
}
