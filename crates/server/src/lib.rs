//! `prix-server` — a zero-dependency HTTP/1.1 serving layer for the
//! PRIX engine.
//!
//! The paper's prototype ran one query per process; a production PRIX
//! amortizes its B⁺-tree/trie build cost across millions of queries,
//! which needs a long-lived server. This crate provides it without
//! adding a single external dependency: an HTTP parser ([`http`]), a
//! bounded worker pool with fail-fast admission control ([`workers`]),
//! epoch-keyed plan and result caches ([`cache`]), Prometheus-style
//! metrics ([`metrics`]), a JSON writer ([`json`]), and the server
//! itself ([`server`]).
//!
//! ```no_run
//! use prix_core::{EngineConfig, PrixEngine};
//! use prix_server::{Server, ServerConfig};
//!
//! let engine = PrixEngine::reopen("db.prix", 2000).unwrap();
//! let handle = Server::start(engine, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.wait().unwrap(); // until POST /shutdown
//! ```

pub mod alts;
pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod workers;

pub use alts::{AltCache, SnapshotAlts};
pub use cache::{CacheSnapshot, PlanCache, ResultCache, ResultKey};
pub use http::{Request, Response};
pub use metrics::{Endpoint, EngineGauges, Metrics, LATENCY_BUCKETS_US};
pub use server::{Server, ServerConfig, ServerHandle};
pub use workers::WorkerPool;
