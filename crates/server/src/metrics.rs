//! Server metrics: request counters, latency histograms, and the
//! Prometheus text exposition rendered by `GET /metrics`.
//!
//! Everything on the hot path is a plain atomic — a request records
//! its outcome with two `fetch_add`s and never takes a lock. Only the
//! per-(endpoint, status) counter table uses a mutex, and that table
//! is touched once per request and is tiny.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use prix_core::plan::EngineId;
use prix_storage::{IoSnapshot, RecoveryReport};

use crate::cache::CacheSnapshot;
use crate::json::escape;

/// Fixed latency-histogram bucket upper bounds, in microseconds.
/// Spanning 100 µs – 2.5 s covers both warm in-memory queries and cold
/// disk-bound twig joins; the exposition adds the implicit `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000,
];

/// The endpoints the server distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /query`
    Query,
    /// `POST /batch`
    Batch,
    /// `POST /documents`
    Documents,
    /// `GET /explain`
    Explain,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /shutdown`
    Shutdown,
    /// Anything else (404s, parse failures before routing, ...).
    Other,
}

/// The pipeline stages of the streaming query executor, as exposed in
/// the `prix_query_stage_duration_seconds` histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Algorithm 1 subsequence filtering (trie range queries + MaxGap
    /// pruning + docid scans).
    Filter,
    /// Algorithm 2 refinement (per-document record loads + phases).
    Refine,
    /// Embedding projection + dedup.
    Project,
}

impl Stage {
    /// All stages, in exposition order.
    pub const ALL: [Stage; 3] = [Stage::Filter, Stage::Refine, Stage::Project];

    /// The `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Filter => "filter",
            Stage::Refine => "refine",
            Stage::Project => "project",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).unwrap()
    }
}

impl Endpoint {
    /// All endpoints, in exposition order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Query,
        Endpoint::Batch,
        Endpoint::Documents,
        Endpoint::Explain,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Documents => "documents",
            Endpoint::Explain => "explain",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|e| *e == self).unwrap()
    }
}

/// A fixed-bucket cumulative histogram (Prometheus semantics).
#[derive(Debug, Default)]
struct Histogram {
    /// `counts[i]` = observations <= `LATENCY_BUCKETS_US[i]`; the
    /// per-bucket counts are *not* cumulative in storage, only in the
    /// exposition.
    counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Engine lifecycle gauges sampled at exposition time: the segment
/// tiering state of the published snapshot plus the reader-pin
/// pressure holding old epochs (and their pre-compaction buffer
/// pools) alive.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineGauges {
    /// Segment generation of the published manifest (0 = never
    /// segmented).
    pub generation: u64,
    /// Immutable segment tiers currently serving reads.
    pub segment_tiers: u64,
    /// Documents served from immutable segments.
    pub segment_docs: u64,
    /// Documents in the mutable delta (what a compaction would fold).
    pub mutable_docs: u64,
    /// Reader pins currently holding an epoch open, across the live
    /// pool and every pool retired by compaction.
    pub pinned_epochs: u64,
    /// `published_epoch - oldest_pinned_epoch` (0 when nothing is
    /// pinned): how far behind the slowest reader is.
    pub pinned_oldest_lag: u64,
    /// Segment blocks served (cache hits + fetches), engine lifetime.
    pub seg_block_reads: u64,
    /// Segment blocks actually read from disk, engine lifetime.
    pub seg_block_fetches: u64,
}

/// The server's metric registry. One instance lives in the shared
/// server state; every handler records into it.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `(endpoint, status) -> requests`. Status cardinality is tiny
    /// (the server emits ~8 distinct codes), so a locked Vec is fine.
    requests: Mutex<Vec<(usize, u16, u64)>>,
    latency: [Histogram; Endpoint::ALL.len()],
    /// Per-stage executor timings (`filter` / `refine` / `project`),
    /// one observation per executed query.
    stage: [Histogram; Stage::ALL.len()],
    /// Connections rejected with 503 by admission control.
    rejected: AtomicU64,
    /// Connections currently being handled (gauge).
    active: AtomicU64,
    /// Documents accepted and published by `POST /documents`.
    ingest_documents: AtomicU64,
    /// Ingest batches processed (each `POST /documents` that reached
    /// the writer, whether or not anything was accepted).
    ingest_batches: AtomicU64,
    /// Documents refused: per-document validation rejections plus one
    /// per request shed with 503 while the writer was busy.
    ingest_rejected: AtomicU64,
    /// Compactions published (mutable delta folded into a segment).
    compactions: AtomicU64,
    /// Queries the router executed, by chosen engine (indexed by
    /// [`EngineId::index`]).
    planner_chosen: [AtomicU64; EngineId::ALL.len()],
    /// Routed (not forced) queries whose observed wall clock blew
    /// through the planner's estimate.
    planner_mispredict: AtomicU64,
    /// Value-index probes issued by predicate queries.
    valix_probes: AtomicU64,
    /// Value-index postings scanned across all probes.
    valix_postings: AtomicU64,
    /// Structural candidates skipped by the value-index pre-filter.
    valix_pred_skipped: AtomicU64,
    /// Refined matches rejected by positional predicate verification.
    valix_pred_rejected: AtomicU64,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let mut table = self.requests.lock().unwrap_or_else(|e| e.into_inner());
        let idx = endpoint.index();
        match table.iter_mut().find(|(e, s, _)| *e == idx && *s == status) {
            Some((_, _, n)) => *n += 1,
            None => table.push((idx, status, 1)),
        }
        drop(table);
        self.latency[idx].observe(elapsed);
    }

    /// Records one executor stage's wall clock for one query.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage[stage.index()].observe(elapsed);
    }

    /// Records an admission-control rejection (503 before a worker was
    /// ever involved).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Total rejections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Records one ingest batch that reached the writer: `accepted`
    /// documents published, `rejected` documents refused by
    /// validation.
    pub fn record_ingest(&self, accepted: u64, rejected: u64) {
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.ingest_documents.fetch_add(accepted, Ordering::Relaxed);
        self.ingest_rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    /// Records an ingest request shed with 503 because the writer was
    /// busy (counts once into the rejected series, not as a batch).
    pub fn record_ingest_shed(&self) {
        self.ingest_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Documents accepted so far (for tests).
    pub fn ingest_documents(&self) -> u64 {
        self.ingest_documents.load(Ordering::Relaxed)
    }

    /// Ingest batches processed so far (for tests).
    pub fn ingest_batches(&self) -> u64 {
        self.ingest_batches.load(Ordering::Relaxed)
    }

    /// Documents/requests refused so far (for tests).
    pub fn ingest_rejected(&self) -> u64 {
        self.ingest_rejected.load(Ordering::Relaxed)
    }

    /// Records one published compaction.
    /// Records one routed query execution: which engine the planner
    /// chose, and whether the estimate turned out badly wrong.
    pub fn record_planner(&self, chosen: EngineId, mispredicted: bool) {
        self.planner_chosen[chosen.index()].fetch_add(1, Ordering::Relaxed);
        if mispredicted {
            self.planner_mispredict.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one executed query's value-index counters in (all zeros
    /// for predicate-free queries — recording those is free).
    pub fn record_valix(&self, probes: u64, postings: u64, skipped: u64, rejected: u64) {
        self.valix_probes.fetch_add(probes, Ordering::Relaxed);
        self.valix_postings.fetch_add(postings, Ordering::Relaxed);
        self.valix_pred_skipped
            .fetch_add(skipped, Ordering::Relaxed);
        self.valix_pred_rejected
            .fetch_add(rejected, Ordering::Relaxed);
    }

    /// Compactions published so far (for tests).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Marks a connection as being handled; decremented by the guard.
    pub fn connection_opened(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// Inverse of [`Metrics::connection_opened`].
    pub fn connection_closed(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests recorded for `(endpoint, status)` (for tests).
    pub fn requests_for(&self, endpoint: Endpoint, status: u16) -> u64 {
        let table = self.requests.lock().unwrap_or_else(|e| e.into_inner());
        let idx = endpoint.index();
        table
            .iter()
            .find(|(e, s, _)| *e == idx && *s == status)
            .map(|(_, _, n)| *n)
            .unwrap_or(0)
    }

    /// Renders the Prometheus text exposition (format 0.0.4).
    ///
    /// `io` is the engine buffer pool's lifetime counter snapshot;
    /// `resident`/`capacity` describe its current occupancy;
    /// `queue_depth` is the HTTP work queue's current length;
    /// `recovery` is what crash recovery did when the database was
    /// opened (`None` for legacy databases — the series still render,
    /// as zeros, so dashboards never see a metric vanish); `epoch` is
    /// the currently published snapshot epoch; `plan_cache` /
    /// `result_cache` are the query caches' counter snapshots;
    /// `engine` is the segment/pin gauge sample.
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        io: IoSnapshot,
        resident: usize,
        capacity: usize,
        queue_depth: usize,
        recovery: Option<RecoveryReport>,
        epoch: u64,
        plan_cache: CacheSnapshot,
        result_cache: CacheSnapshot,
        engine: EngineGauges,
    ) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str(
            "# HELP prix_http_requests_total Requests served, by endpoint and status code.\n",
        );
        out.push_str("# TYPE prix_http_requests_total counter\n");
        let mut table = {
            let t = self.requests.lock().unwrap_or_else(|e| e.into_inner());
            t.clone()
        };
        table.sort();
        for (idx, status, n) in &table {
            out.push_str(&format!(
                "prix_http_requests_total{{endpoint={},code=\"{status}\"}} {n}\n",
                escape(Endpoint::ALL[*idx].label()),
            ));
        }

        out.push_str(
            "# HELP prix_http_rejected_total Connections refused with 503 by admission control.\n",
        );
        out.push_str("# TYPE prix_http_rejected_total counter\n");
        out.push_str(&format!("prix_http_rejected_total {}\n", self.rejected()));

        out.push_str("# HELP prix_http_connections_active Connections currently being handled.\n");
        out.push_str("# TYPE prix_http_connections_active gauge\n");
        out.push_str(&format!(
            "prix_http_connections_active {}\n",
            self.active.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP prix_http_queue_depth Connections waiting in the worker queue.\n");
        out.push_str("# TYPE prix_http_queue_depth gauge\n");
        out.push_str(&format!("prix_http_queue_depth {queue_depth}\n"));

        out.push_str("# HELP prix_http_request_duration_seconds Request latency, by endpoint.\n");
        out.push_str("# TYPE prix_http_request_duration_seconds histogram\n");
        for ep in Endpoint::ALL {
            let h = &self.latency[ep.index()];
            if h.total() == 0 {
                continue;
            }
            let label = escape(ep.label());
            let mut cum = 0u64;
            for (i, &bound_us) in LATENCY_BUCKETS_US.iter().enumerate() {
                cum += h.counts[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "prix_http_request_duration_seconds_bucket{{endpoint={label},le=\"{}\"}} {cum}\n",
                    bound_us as f64 / 1e6
                ));
            }
            cum += h.counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "prix_http_request_duration_seconds_bucket{{endpoint={label},le=\"+Inf\"}} {cum}\n"
            ));
            out.push_str(&format!(
                "prix_http_request_duration_seconds_sum{{endpoint={label}}} {}\n",
                h.sum_us.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "prix_http_request_duration_seconds_count{{endpoint={label}}} {cum}\n"
            ));
        }

        out.push_str("# HELP prix_query_stage_duration_seconds Executor stage wall clock per query, by pipeline stage.\n");
        out.push_str("# TYPE prix_query_stage_duration_seconds histogram\n");
        for st in Stage::ALL {
            let h = &self.stage[st.index()];
            if h.total() == 0 {
                continue;
            }
            let label = escape(st.label());
            let mut cum = 0u64;
            for (i, &bound_us) in LATENCY_BUCKETS_US.iter().enumerate() {
                cum += h.counts[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "prix_query_stage_duration_seconds_bucket{{stage={label},le=\"{}\"}} {cum}\n",
                    bound_us as f64 / 1e6
                ));
            }
            cum += h.counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "prix_query_stage_duration_seconds_bucket{{stage={label},le=\"+Inf\"}} {cum}\n"
            ));
            out.push_str(&format!(
                "prix_query_stage_duration_seconds_sum{{stage={label}}} {}\n",
                h.sum_us.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "prix_query_stage_duration_seconds_count{{stage={label}}} {cum}\n"
            ));
        }

        out.push_str("# HELP prix_engine_epoch The currently published snapshot epoch (advances once per ingest batch).\n");
        out.push_str("# TYPE prix_engine_epoch gauge\n");
        out.push_str(&format!("prix_engine_epoch {epoch}\n"));

        // Segment lifecycle. Exact names are a dashboard contract:
        // the pin gauges say how many reader snapshots are holding an
        // epoch (and, after a compaction, its retired buffer pool)
        // alive, and how far the slowest one lags the published epoch.
        out.push_str("# HELP prix_engine_pinned_epochs Reader pins currently holding an epoch open, across the live and all retired buffer pools.\n");
        out.push_str("# TYPE prix_engine_pinned_epochs gauge\n");
        out.push_str(&format!(
            "prix_engine_pinned_epochs {}\n",
            engine.pinned_epochs
        ));
        out.push_str("# HELP prix_engine_pinned_oldest_lag Epochs between the published epoch and the oldest pinned reader (0 when nothing is pinned).\n");
        out.push_str("# TYPE prix_engine_pinned_oldest_lag gauge\n");
        out.push_str(&format!(
            "prix_engine_pinned_oldest_lag {}\n",
            engine.pinned_oldest_lag
        ));
        out.push_str("# HELP prix_engine_generation Segment generation of the published manifest (0 = never segmented).\n");
        out.push_str("# TYPE prix_engine_generation gauge\n");
        out.push_str(&format!("prix_engine_generation {}\n", engine.generation));
        out.push_str(
            "# HELP prix_segment_tiers Immutable segment tiers currently serving reads.\n",
        );
        out.push_str("# TYPE prix_segment_tiers gauge\n");
        out.push_str(&format!("prix_segment_tiers {}\n", engine.segment_tiers));
        out.push_str("# HELP prix_segment_docs Documents served from immutable segments.\n");
        out.push_str("# TYPE prix_segment_docs gauge\n");
        out.push_str(&format!("prix_segment_docs {}\n", engine.segment_docs));
        out.push_str("# HELP prix_engine_mutable_docs Documents in the mutable delta (what a compaction would fold into a segment).\n");
        out.push_str("# TYPE prix_engine_mutable_docs gauge\n");
        out.push_str(&format!(
            "prix_engine_mutable_docs {}\n",
            engine.mutable_docs
        ));
        out.push_str(
            "# HELP prix_segment_block_reads_total Segment blocks served (cache hits + fetches).\n",
        );
        out.push_str("# TYPE prix_segment_block_reads_total counter\n");
        out.push_str(&format!(
            "prix_segment_block_reads_total {}\n",
            engine.seg_block_reads
        ));
        out.push_str("# HELP prix_segment_block_fetches_total Segment blocks read from disk.\n");
        out.push_str("# TYPE prix_segment_block_fetches_total counter\n");
        out.push_str(&format!(
            "prix_segment_block_fetches_total {}\n",
            engine.seg_block_fetches
        ));
        out.push_str("# HELP prix_compactions_total Compactions published (mutable delta folded into a segment).\n");
        out.push_str("# TYPE prix_compactions_total counter\n");
        out.push_str(&format!("prix_compactions_total {}\n", self.compactions()));

        // Planner routing. Exact names are a dashboard contract:
        // every engine renders (as zero when never chosen) so a
        // dashboard never sees a series vanish.
        out.push_str("# HELP prix_planner_engine_chosen_total Routed queries executed, by the engine the cost-based planner chose.\n");
        out.push_str("# TYPE prix_planner_engine_chosen_total counter\n");
        for id in EngineId::ALL {
            out.push_str(&format!(
                "prix_planner_engine_chosen_total{{engine=\"{}\"}} {}\n",
                id.label(),
                self.planner_chosen[id.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP prix_planner_mispredict_total Routed queries whose observed latency exceeded the planner's estimate by the misprediction factor.\n");
        out.push_str("# TYPE prix_planner_mispredict_total counter\n");
        out.push_str(&format!(
            "prix_planner_mispredict_total {}\n",
            self.planner_mispredict.load(Ordering::Relaxed)
        ));

        // The value-predicate secondary index. Exact names are a
        // dashboard contract; all four render as zeros on databases
        // that never see a predicate query.
        out.push_str(
            "# HELP prix_valix_probes_total Value-index probes issued by predicate queries.\n",
        );
        out.push_str("# TYPE prix_valix_probes_total counter\n");
        out.push_str(&format!(
            "prix_valix_probes_total {}\n",
            self.valix_probes.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP prix_valix_postings_total Value-index postings scanned across all probes.\n",
        );
        out.push_str("# TYPE prix_valix_postings_total counter\n");
        out.push_str(&format!(
            "prix_valix_postings_total {}\n",
            self.valix_postings.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP prix_valix_pred_skipped_total Structural candidates skipped by the value-index pre-filter before refinement.\n");
        out.push_str("# TYPE prix_valix_pred_skipped_total counter\n");
        out.push_str(&format!(
            "prix_valix_pred_skipped_total {}\n",
            self.valix_pred_skipped.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP prix_valix_pred_rejected_total Refined matches rejected by positional predicate verification.\n");
        out.push_str("# TYPE prix_valix_pred_rejected_total counter\n");
        out.push_str(&format!(
            "prix_valix_pred_rejected_total {}\n",
            self.valix_pred_rejected.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP prix_ingest_documents_total Documents accepted and published by POST /documents.\n");
        out.push_str("# TYPE prix_ingest_documents_total counter\n");
        out.push_str(&format!(
            "prix_ingest_documents_total {}\n",
            self.ingest_documents()
        ));
        out.push_str("# HELP prix_ingest_batches_total Ingest batches processed by the writer.\n");
        out.push_str("# TYPE prix_ingest_batches_total counter\n");
        out.push_str(&format!(
            "prix_ingest_batches_total {}\n",
            self.ingest_batches()
        ));
        out.push_str("# HELP prix_ingest_rejected_total Documents refused by validation plus ingest requests shed while the writer was busy.\n");
        out.push_str("# TYPE prix_ingest_rejected_total counter\n");
        out.push_str(&format!(
            "prix_ingest_rejected_total {}\n",
            self.ingest_rejected()
        ));

        // The query caches. Exact names are a dashboard contract:
        // prix_cache_{hits,misses,evictions}_total{cache=...} plus the
        // derived hit-ratio and occupancy gauges.
        let caches = [("plan", plan_cache), ("result", result_cache)];
        out.push_str(
            "# HELP prix_cache_hits_total Cache lookups answered from the cache, by cache.\n",
        );
        out.push_str("# TYPE prix_cache_hits_total counter\n");
        for (name, c) in &caches {
            out.push_str(&format!(
                "prix_cache_hits_total{{cache=\"{name}\"}} {}\n",
                c.hits
            ));
        }
        out.push_str("# HELP prix_cache_misses_total Cache lookups that fell through to a live evaluation, by cache.\n");
        out.push_str("# TYPE prix_cache_misses_total counter\n");
        for (name, c) in &caches {
            out.push_str(&format!(
                "prix_cache_misses_total{{cache=\"{name}\"}} {}\n",
                c.misses
            ));
        }
        out.push_str("# HELP prix_cache_evictions_total Entries removed by LRU pressure or epoch purges, by cache.\n");
        out.push_str("# TYPE prix_cache_evictions_total counter\n");
        for (name, c) in &caches {
            out.push_str(&format!(
                "prix_cache_evictions_total{{cache=\"{name}\"}} {}\n",
                c.evictions
            ));
        }
        out.push_str("# HELP prix_cache_hit_ratio Lifetime cache hit ratio in [0,1], by cache.\n");
        out.push_str("# TYPE prix_cache_hit_ratio gauge\n");
        for (name, c) in &caches {
            out.push_str(&format!(
                "prix_cache_hit_ratio{{cache=\"{name}\"}} {}\n",
                c.hit_ratio()
            ));
        }
        out.push_str("# HELP prix_cache_entries Entries currently resident, by cache.\n");
        out.push_str("# TYPE prix_cache_entries gauge\n");
        for (name, c) in &caches {
            out.push_str(&format!(
                "prix_cache_entries{{cache=\"{name}\"}} {}\n",
                c.entries
            ));
        }

        out.push_str(
            "# HELP prix_bufferpool_logical_reads_total Pages requested from the buffer pool.\n",
        );
        out.push_str("# TYPE prix_bufferpool_logical_reads_total counter\n");
        out.push_str(&format!(
            "prix_bufferpool_logical_reads_total {}\n",
            io.logical_reads
        ));
        out.push_str("# HELP prix_bufferpool_physical_reads_total Pages read from disk (the paper's Disk IO).\n");
        out.push_str("# TYPE prix_bufferpool_physical_reads_total counter\n");
        out.push_str(&format!(
            "prix_bufferpool_physical_reads_total {}\n",
            io.physical_reads
        ));
        out.push_str("# HELP prix_bufferpool_physical_writes_total Pages written back to disk.\n");
        out.push_str("# TYPE prix_bufferpool_physical_writes_total counter\n");
        out.push_str(&format!(
            "prix_bufferpool_physical_writes_total {}\n",
            io.physical_writes
        ));
        out.push_str("# HELP prix_bufferpool_fsyncs_total fsync barriers issued (WAL group commits, page-file and sidecar syncs).\n");
        out.push_str("# TYPE prix_bufferpool_fsyncs_total counter\n");
        out.push_str(&format!("prix_bufferpool_fsyncs_total {}\n", io.fsyncs));
        out.push_str("# HELP prix_bufferpool_wal_appends_total Page images appended to the write-ahead log (spills + commits).\n");
        out.push_str("# TYPE prix_bufferpool_wal_appends_total counter\n");
        out.push_str(&format!(
            "prix_bufferpool_wal_appends_total {}\n",
            io.wal_appends
        ));
        out.push_str("# HELP prix_bufferpool_flush_errors_total Buffer-pool flushes that failed (including during drop).\n");
        out.push_str("# TYPE prix_bufferpool_flush_errors_total counter\n");
        out.push_str(&format!(
            "prix_bufferpool_flush_errors_total {}\n",
            io.flush_errors
        ));
        let rec = recovery.unwrap_or_default();
        out.push_str("# HELP prix_recovery_unclean_shutdown 1 if the database was opened after an unclean shutdown.\n");
        out.push_str("# TYPE prix_recovery_unclean_shutdown gauge\n");
        out.push_str(&format!(
            "prix_recovery_unclean_shutdown {}\n",
            u64::from(rec.unclean_shutdown)
        ));
        out.push_str("# HELP prix_recovery_replayed_frames WAL frames replayed when the database was opened.\n");
        out.push_str("# TYPE prix_recovery_replayed_frames gauge\n");
        out.push_str(&format!(
            "prix_recovery_replayed_frames {}\n",
            rec.replayed_frames
        ));
        out.push_str("# HELP prix_recovery_replayed_pages Distinct pages restored by recovery when the database was opened.\n");
        out.push_str("# TYPE prix_recovery_replayed_pages gauge\n");
        out.push_str(&format!(
            "prix_recovery_replayed_pages {}\n",
            rec.replayed_pages
        ));
        out.push_str("# HELP prix_recovery_wal_bytes Write-ahead-log bytes scanned by recovery when the database was opened.\n");
        out.push_str("# TYPE prix_recovery_wal_bytes gauge\n");
        out.push_str(&format!("prix_recovery_wal_bytes {}\n", rec.wal_bytes));
        out.push_str("# HELP prix_bufferpool_hit_ratio Lifetime buffer-pool hit ratio in [0,1].\n");
        out.push_str("# TYPE prix_bufferpool_hit_ratio gauge\n");
        out.push_str(&format!("prix_bufferpool_hit_ratio {}\n", io.hit_ratio()));
        out.push_str("# HELP prix_bufferpool_resident_pages Pages currently cached.\n");
        out.push_str("# TYPE prix_bufferpool_resident_pages gauge\n");
        out.push_str(&format!("prix_bufferpool_resident_pages {resident}\n"));
        out.push_str("# HELP prix_bufferpool_capacity_pages Configured buffer-pool capacity.\n");
        out.push_str("# TYPE prix_bufferpool_capacity_pages gauge\n");
        out.push_str(&format!("prix_bufferpool_capacity_pages {capacity}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_counters() {
        let m = Metrics::new();
        m.record(Endpoint::Query, 200, Duration::from_micros(300));
        m.record(Endpoint::Query, 200, Duration::from_micros(700));
        m.record(Endpoint::Query, 400, Duration::from_micros(50));
        m.record_rejected();
        assert_eq!(m.requests_for(Endpoint::Query, 200), 2);
        assert_eq!(m.requests_for(Endpoint::Query, 400), 1);
        assert_eq!(m.requests_for(Endpoint::Batch, 200), 0);

        let text = m.render(
            IoSnapshot::default(),
            3,
            16,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(
            text.contains(r#"prix_http_requests_total{endpoint="query",code="200"} 2"#),
            "{text}"
        );
        assert!(
            text.contains(r#"prix_http_requests_total{endpoint="query",code="400"} 1"#),
            "{text}"
        );
        assert!(text.contains("prix_http_rejected_total 1"), "{text}");
        assert!(text.contains("prix_bufferpool_hit_ratio 1"), "{text}");
        assert!(text.contains("prix_bufferpool_resident_pages 3"), "{text}");
        assert!(text.contains("prix_bufferpool_capacity_pages 16"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let m = Metrics::new();
        // 300 µs lands in the 500 µs bucket; 10 s overflows into +Inf.
        m.record(Endpoint::Query, 200, Duration::from_micros(300));
        m.record(Endpoint::Query, 200, Duration::from_secs(10));
        let text = m.render(
            IoSnapshot::default(),
            0,
            0,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(
            text.contains(r#"bucket{endpoint="query",le="0.00025"} 0"#),
            "{text}"
        );
        assert!(
            text.contains(r#"bucket{endpoint="query",le="0.0005"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"bucket{endpoint="query",le="2.5"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"bucket{endpoint="query",le="+Inf"} 2"#),
            "{text}"
        );
        assert!(
            text.contains(r#"duration_seconds_count{endpoint="query"} 2"#),
            "{text}"
        );
        // Endpoints with no traffic emit no histogram series.
        assert!(!text.contains(r#"bucket{endpoint="batch""#), "{text}");
    }

    #[test]
    fn ingest_series_render_with_pinned_names() {
        let m = Metrics::new();
        m.record_ingest(3, 1);
        m.record_ingest(0, 2);
        m.record_ingest_shed();
        assert_eq!(m.ingest_documents(), 3);
        assert_eq!(m.ingest_batches(), 2);
        assert_eq!(m.ingest_rejected(), 4);
        let text = m.render(
            IoSnapshot::default(),
            0,
            0,
            0,
            None,
            17,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(text.contains("prix_engine_epoch 17"), "{text}");
        assert!(text.contains("prix_ingest_documents_total 3"), "{text}");
        assert!(text.contains("prix_ingest_batches_total 2"), "{text}");
        assert!(text.contains("prix_ingest_rejected_total 4"), "{text}");
    }

    #[test]
    fn segment_series_render_with_pinned_names() {
        let m = Metrics::new();
        m.record_compaction();
        m.record_compaction();
        assert_eq!(m.compactions(), 2);
        let gauges = EngineGauges {
            generation: 3,
            segment_tiers: 2,
            segment_docs: 450,
            mutable_docs: 7,
            pinned_epochs: 4,
            pinned_oldest_lag: 2,
            seg_block_reads: 100,
            seg_block_fetches: 25,
        };
        let text = m.render(
            IoSnapshot::default(),
            0,
            0,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            gauges,
        );
        assert!(text.contains("prix_engine_pinned_epochs 4"), "{text}");
        assert!(text.contains("prix_engine_pinned_oldest_lag 2"), "{text}");
        assert!(text.contains("prix_engine_generation 3"), "{text}");
        assert!(text.contains("prix_segment_tiers 2"), "{text}");
        assert!(text.contains("prix_segment_docs 450"), "{text}");
        assert!(text.contains("prix_engine_mutable_docs 7"), "{text}");
        assert!(
            text.contains("prix_segment_block_reads_total 100"),
            "{text}"
        );
        assert!(
            text.contains("prix_segment_block_fetches_total 25"),
            "{text}"
        );
        assert!(text.contains("prix_compactions_total 2"), "{text}");
    }

    #[test]
    fn valix_series_render_with_pinned_names() {
        let m = Metrics::new();
        m.record_valix(2, 15, 9, 1);
        m.record_valix(1, 5, 0, 0);
        let text = m.render(
            IoSnapshot::default(),
            0,
            0,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(text.contains("prix_valix_probes_total 3"), "{text}");
        assert!(text.contains("prix_valix_postings_total 20"), "{text}");
        assert!(text.contains("prix_valix_pred_skipped_total 9"), "{text}");
        assert!(text.contains("prix_valix_pred_rejected_total 1"), "{text}");
        // Zero-valued series still render for predicate-free servers.
        let fresh = Metrics::new().render(
            IoSnapshot::default(),
            0,
            0,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(fresh.contains("prix_valix_probes_total 0"), "{fresh}");
    }

    #[test]
    fn hit_ratio_reflects_io_snapshot() {
        let m = Metrics::new();
        let io = IoSnapshot {
            logical_reads: 10,
            physical_reads: 2,
            ..IoSnapshot::default()
        };
        let text = m.render(
            io,
            0,
            0,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(text.contains("prix_bufferpool_hit_ratio 0.8"), "{text}");
        assert!(
            text.contains("prix_bufferpool_logical_reads_total 10"),
            "{text}"
        );
        assert!(
            text.contains("prix_bufferpool_physical_reads_total 2"),
            "{text}"
        );
    }

    #[test]
    fn durability_series_render_with_and_without_recovery() {
        let m = Metrics::new();
        let io = IoSnapshot {
            fsyncs: 7,
            wal_appends: 5,
            flush_errors: 1,
            ..IoSnapshot::default()
        };
        let rec = RecoveryReport {
            unclean_shutdown: true,
            replayed_frames: 12,
            replayed_pages: 9,
            wal_bytes: 4096,
        };
        let text = m.render(
            io,
            0,
            0,
            0,
            Some(rec),
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(text.contains("prix_bufferpool_fsyncs_total 7"), "{text}");
        assert!(
            text.contains("prix_bufferpool_wal_appends_total 5"),
            "{text}"
        );
        assert!(
            text.contains("prix_bufferpool_flush_errors_total 1"),
            "{text}"
        );
        assert!(text.contains("prix_recovery_unclean_shutdown 1"), "{text}");
        assert!(text.contains("prix_recovery_replayed_frames 12"), "{text}");
        assert!(text.contains("prix_recovery_replayed_pages 9"), "{text}");
        assert!(text.contains("prix_recovery_wal_bytes 4096"), "{text}");
        // Legacy databases (no recovery report) still emit every
        // series, as zeros — dashboards never see them vanish.
        let text = m.render(
            IoSnapshot::default(),
            0,
            0,
            0,
            None,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            EngineGauges::default(),
        );
        assert!(text.contains("prix_bufferpool_fsyncs_total 0"), "{text}");
        assert!(text.contains("prix_recovery_unclean_shutdown 0"), "{text}");
        assert!(text.contains("prix_recovery_replayed_frames 0"), "{text}");
    }
}
