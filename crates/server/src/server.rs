//! The PRIX HTTP query server.
//!
//! One [`Server`] owns a [`PrixEngine`] and serves it over hand-rolled
//! HTTP/1.1 (`std::net` only — the workspace is hermetic):
//!
//! | Endpoint          | Meaning                                        |
//! |-------------------|------------------------------------------------|
//! | `GET /query`      | one twig query (`xp=`, `unordered=1`, `limit=`)|
//! | `POST /batch`     | newline-delimited XPaths via `query_batch`     |
//! | `POST /documents` | online ingest (requires `ServerConfig::ingest`)|
//! | `GET /explain`    | the optimizer's plan for `xp=` (debug)         |
//! | `GET /healthz`    | liveness probe                                 |
//! | `GET /metrics`    | Prometheus text exposition                     |
//! | `POST /shutdown`  | request graceful shutdown                      |
//!
//! **Threading model.** A dedicated accept thread feeds accepted
//! connections into a bounded [`WorkerPool`] queue; each worker handles
//! one connection end to end, looping over requests (HTTP/1.1
//! keep-alive with pipelining) until the client closes, asks for
//! `Connection: close`, idles past [`ServerConfig::idle_timeout`], or
//! hits [`ServerConfig::max_requests_per_conn`]. Admission control is
//! fail-fast: a full queue or the connection cap turns into an
//! immediate `503` + `Retry-After`, never an unbounded backlog.
//!
//! **Caching.** Two epoch-keyed caches (see [`crate::cache`]) sit in
//! front of the executor: a plan cache (XPath → parsed twig,
//! invalidated only by symbol-table growth) and a sharded LRU result
//! cache keyed by `(query, options, epoch)` whose entries are purged
//! the moment an ingest publishes a new epoch — cached responses are
//! bit-identical to live evaluation and can never be stale.
//!
//! **Snapshot isolation.** The engine lives in a [`SharedEngine`]:
//! every request takes the current [`EngineSnapshot`] (an `Arc` clone)
//! and parses *and* executes against that frozen, epoch-pinned view —
//! no symbol-table lock, no torn reads while an ingest is in flight.
//! `POST /documents` goes through the shared writer: it validates the
//! batch, commits it with one WAL group commit, and atomically
//! publishes the next epoch; a second concurrent ingest is shed with
//! `503` instead of queueing. Responses report the `epoch` they
//! executed at so clients can reason about staleness.
//!
//! **Shutdown.** `POST /shutdown` (or [`ServerHandle::shutdown`]) only
//! *signals*; the thread blocked in [`ServerHandle::wait`] then stops
//! the accept loop, lets the workers drain every queued and in-flight
//! request, flushes the engine's buffer pool, and returns.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prix_core::plan::EngineChoice;
use prix_core::{EngineSnapshot, ExecOpts, PrixEngine, QueryOutcome, SharedEngine, TwigQuery};

use crate::alts::{AltCache, SnapshotAlts};
use crate::cache::{PlanCache, ResultCache, ResultKey};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::JsonWriter;
use crate::metrics::{Endpoint, EngineGauges, Metrics, Stage};
use crate::workers::{QueueProbe, WorkerPool};

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the CLI exposes the interesting ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads handling requests. Clamped to >= 1.
    pub threads: usize,
    /// Bounded queue of accepted-but-unserved connections. Clamped to
    /// >= 1; when full, new connections get `503`.
    pub queue_depth: usize,
    /// Cap on connections being handled at once (in a worker or in the
    /// queue). Beyond it, new connections get `503`.
    pub max_connections: usize,
    /// Threads used by `POST /batch` through `query_batch` (the `threads=`
    /// query parameter can lower it per request).
    pub batch_threads: usize,
    /// Socket read timeout (a stalled client gets `408` and is cut).
    pub read_timeout: Duration,
    /// Socket write timeout (a non-draining client is cut).
    pub write_timeout: Duration,
    /// Default cap on embeddings returned per query (`limit=` overrides,
    /// `limit=0` means unlimited). The total count is always reported.
    pub match_limit: usize,
    /// Whether `POST /documents` is enabled. Off by default: a serving
    /// replica should not silently accept writes.
    pub ingest: bool,
    /// How long a kept-alive connection may sit idle between requests
    /// before the worker closes it and moves on. Bounds how long a
    /// quiet client can pin a worker.
    pub idle_timeout: Duration,
    /// Requests served down one connection before the server forces
    /// `Connection: close`. Bounds pipelining and guarantees even a
    /// maximally chatty client periodically releases its worker.
    pub max_requests_per_conn: usize,
    /// Entries in the epoch-keyed result cache shared by `/query` and
    /// `/batch`. 0 disables result caching.
    pub result_cache_entries: usize,
    /// Entries in the plan cache (XPath string → parsed twig,
    /// invalidated only by symbol-table growth).
    pub plan_cache_entries: usize,
    /// Compact once the mutable delta reaches this many documents
    /// (checked after each ingest publish). `None` disables automatic
    /// compaction; `prix compact` always works offline.
    pub compact_after: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            queue_depth: 64,
            max_connections: 256,
            batch_threads: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            match_limit: 1000,
            ingest: false,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            result_cache_entries: 4096,
            plan_cache_entries: 1024,
            compact_after: None,
        }
    }
}

/// Level-triggered shutdown latch: request once, observed by the
/// accept loop and awaited by [`ServerHandle::wait`].
#[derive(Default)]
struct ShutdownSignal {
    requested: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownSignal {
    fn request(&self) {
        let mut r = self.requested.lock().unwrap_or_else(|e| e.into_inner());
        *r = true;
        self.cv.notify_all();
    }

    fn is_requested(&self) -> bool {
        *self.requested.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait(&self) {
        let mut r = self.requested.lock().unwrap_or_else(|e| e.into_inner());
        while !*r {
            r = self.cv.wait(r).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// State shared by the accept loop and every worker.
struct Shared {
    /// Snapshot-isolated engine: readers take the published snapshot,
    /// `POST /documents` goes through the single writer.
    engine: SharedEngine,
    metrics: Metrics,
    cfg: ServerConfig,
    shutdown: ShutdownSignal,
    /// Connections accepted and not yet finished (queued or in a worker).
    active_conns: AtomicUsize,
    queue: QueueProbe,
    /// XPath string → parsed twig, invalidated by symbol-table growth.
    plan_cache: PlanCache,
    /// `(query, opts, epoch)` → serialized 200 body; entries from
    /// superseded epochs are purged by the engine's publish hook.
    result_cache: Arc<ResultCache>,
    /// Per-epoch ViST/TwigStack substrates for the router's
    /// alternative engines.
    alt_cache: AltCache,
}

/// Decrements the accepted-connection count on drop, whatever path the
/// connection takes (served, rejected, errored).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The serving subsystem. See the module docs for the architecture.
pub struct Server;

/// A running server: its bound address plus the handles needed to wait
/// for and perform graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
    accept: Option<JoinHandle<()>>,
    shed: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept thread and worker pool, and
    /// returns immediately. The engine is consumed: the server is its
    /// sole owner for its lifetime.
    pub fn start(engine: PrixEngine, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::new(cfg.threads, cfg.queue_depth));
        let result_cache = Arc::new(ResultCache::new(cfg.result_cache_entries));
        let engine = SharedEngine::new(engine);
        // Every publish orphans all older-epoch results; purge them the
        // moment the new snapshot is visible so capacity is never
        // squatted by entries no key will ever match again.
        let hook_cache = Arc::clone(&result_cache);
        engine.set_on_publish(move |epoch| hook_cache.purge_older_than(epoch));
        let shared = Arc::new(Shared {
            engine,
            metrics: Metrics::new(),
            plan_cache: PlanCache::new(cfg.plan_cache_entries),
            result_cache,
            alt_cache: AltCache::new(),
            cfg,
            shutdown: ShutdownSignal::default(),
            active_conns: AtomicUsize::new(0),
            queue: pool.probe(),
        });
        // Rejected connections are answered off the accept thread so a
        // flood of them cannot stall `accept`; the bounded channel is
        // backpressure on the backpressure — when even the shed thread
        // is behind, excess connections are dropped outright.
        let (shed_tx, shed_rx) = mpsc::sync_channel::<TcpStream>(64);
        let shed = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("prix-http-shed".to_string())
                .spawn(move || shed_loop(&shed_rx, &shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("prix-http-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &pool, &shed_tx))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            pool,
            accept: Some(accept),
            shed: Some(shed),
        })
    }
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric registry (tests assert against it).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Signals shutdown without tearing down (what `POST /shutdown`
    /// does internally). A thread in [`ServerHandle::wait`] proceeds.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.request();
    }

    /// Blocks until shutdown is requested (by `POST /shutdown` or
    /// [`ServerHandle::request_shutdown`]), then tears down gracefully:
    /// stops accepting, drains queued and in-flight requests, flushes
    /// the engine's buffer pool.
    pub fn wait(mut self) -> io::Result<()> {
        self.shared.shutdown.wait();
        self.finish()
    }

    /// Requests shutdown and tears down gracefully (see
    /// [`ServerHandle::wait`]).
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shared.shutdown.request();
        self.finish()
    }

    fn finish(&mut self) -> io::Result<()> {
        // Wake the accept loop: it checks the shutdown flag after
        // every accept, so one throwaway connection unblocks it.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The accept thread owned the shed sender; with it gone the
        // shed thread drains its channel and exits.
        if let Some(t) = self.shed.take() {
            let _ = t.join();
        }
        self.pool.shutdown();
        self.shared
            .engine
            .pool()
            .flush()
            .map_err(|e| io::Error::new(io::ErrorKind::Other, e.to_string()))
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool>,
    shed_tx: &mpsc::SyncSender<TcpStream>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.is_requested() {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.is_requested() {
            return;
        }
        let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        let _ = stream.set_nodelay(true);

        shared.active_conns.fetch_add(1, Ordering::Relaxed);
        let guard = ConnGuard(Arc::clone(shared));
        let accepted = shared.active_conns.load(Ordering::Relaxed);

        // Admission control. The queue-fullness check is race-free
        // because this thread is the only producer: workers only ever
        // shrink the queue.
        if accepted > shared.cfg.max_connections || shared.queue.depth() >= pool.queue_capacity() {
            shared.metrics.record_rejected();
            // Best-effort 503 off-thread; a full shed channel means the
            // connection is simply dropped.
            let _ = shed_tx.try_send(stream);
            drop(guard);
            continue;
        }
        let job_shared = Arc::clone(shared);
        let enqueued = pool.try_execute(move || {
            handle_connection(stream, &job_shared);
            drop(guard);
        });
        // Only possible once shutdown flipped the queue closed;
        // dropping the job closes the connection, which is fine
        // mid-shutdown. (The guard inside the job decrements.)
        if enqueued.is_err() {
            return;
        }
    }
}

/// Answers admission-control rejections with `503` + `Retry-After`.
///
/// Runs on its own thread so the accept loop never does socket I/O.
/// The write-then-drain order matters: closing a socket with unread
/// data in its receive buffer sends RST, and Linux then discards the
/// client's receive buffer — the 503 would vanish. Writing first,
/// half-closing, and draining until the client's EOF (bounded by the
/// read timeout) delivers the response reliably.
fn shed_loop(rx: &mpsc::Receiver<TcpStream>, shared: &Arc<Shared>) {
    while let Ok(mut stream) = rx.recv() {
        let start = Instant::now();
        let resp = Response::new(503)
            .header("Retry-After", "1")
            .json(r#"{"error":"server saturated, retry later"}"#);
        if resp.write_to(&mut stream).is_ok() {
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            let mut sink = [0u8; 4096];
            let mut drained = 0usize;
            while let Ok(n) = stream.read(&mut sink) {
                if n == 0 {
                    break;
                }
                drained += n;
                if drained > 64 * 1024 {
                    break;
                }
            }
        }
        shared.metrics.record(Endpoint::Other, 503, start.elapsed());
    }
}

/// Serves one connection end to end: a keep-alive loop reading
/// requests off one socket until the client closes, asks for close,
/// errors, idles past [`ServerConfig::idle_timeout`], or hits the
/// per-connection request cap. Responses go back in request order, so
/// pipelined clients (several requests in flight on one socket) just
/// work — the loop reads the next request from the `BufReader`'s
/// buffered bytes without waiting for the previous response to be
/// acknowledged.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut served = 0usize;
    loop {
        // Wait for the next request's first byte under the idle
        // timeout (for the first request the accept loop's read
        // timeout is still in force — a fresh connection gets the
        // same grace it always did). An idle expiry between requests
        // is a normal keep-alive close, not an error.
        if served > 0 {
            let _ = reader
                .get_ref()
                .set_read_timeout(Some(shared.cfg.idle_timeout));
            match reader.fill_buf() {
                Ok([]) => break, // clean EOF between requests
                Ok(_) => {}      // next request has started
                Err(_) => break, // idle timeout or dead socket
            }
            let _ = reader
                .get_ref()
                .set_read_timeout(Some(shared.cfg.read_timeout));
        }
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                served += 1;
                let head_only = req.method == "HEAD";
                let start = Instant::now();
                let (endpoint, resp) = route(&req, shared);
                let elapsed = start.elapsed();
                shared.metrics.record(endpoint, resp.status(), elapsed);
                // The server closes when the client asks to, when the
                // per-connection cap is reached, and during shutdown —
                // checked *after* routing so `POST /shutdown` closes
                // its own connection instead of idling a worker.
                let keep_alive = req.wants_keep_alive()
                    && served < shared.cfg.max_requests_per_conn
                    && !shared.shutdown.is_requested();
                if resp
                    .write_to_conn(&mut writer, keep_alive, head_only)
                    .is_err()
                    || !keep_alive
                {
                    break;
                }
            }
            Ok(None) => break,              // client went away between requests
            Err(HttpError::Io(_)) => break, // connection died; nothing to answer
            Err(e) => {
                // A request we could not fully parse leaves the stream
                // in an unknown state (where does the next request
                // start?), so after answering, the connection must
                // close — keeping it alive would be a desync vector.
                let start = Instant::now();
                let resp = Response::new(e.status()).json(error_json(&e.detail()));
                shared
                    .metrics
                    .record(Endpoint::Other, e.status(), start.elapsed());
                let _ = resp.write_to(&mut writer);
                break;
            }
        }
    }
    let _ = writer.flush();
    // Half-close and drain leftover request bytes (e.g. the body we
    // refused with 413) before dropping: closing with unread data in
    // the receive buffer would RST the response away (see shed_loop).
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let _ = writer.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while let Ok(n) = reader.read(&mut sink) {
        if n == 0 {
            break;
        }
        drained += n;
        if drained > 64 * 1024 {
            break;
        }
    }
}

fn error_json(detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.obj().key("error").str_val(detail).end_obj();
    w.finish()
}

fn route(req: &Request, shared: &Arc<Shared>) -> (Endpoint, Response) {
    // HEAD is GET without the body: it routes identically and the
    // connection loop suppresses the body bytes (but not the true
    // Content-Length) when writing.
    let method = if req.method == "HEAD" {
        "GET"
    } else {
        req.method.as_str()
    };
    match (method, req.path.as_str()) {
        ("GET", "/healthz") => (Endpoint::Healthz, Response::new(200).text("ok\n")),
        ("GET", "/metrics") => (Endpoint::Metrics, handle_metrics(shared)),
        ("GET", "/query") => (Endpoint::Query, handle_query(req, shared)),
        ("GET", "/explain") => (Endpoint::Explain, handle_explain(req, shared)),
        ("POST", "/batch") => (Endpoint::Batch, handle_batch(req, shared)),
        ("POST", "/documents") => (Endpoint::Documents, handle_documents(req, shared)),
        ("POST", "/shutdown") => {
            shared.shutdown.request();
            (
                Endpoint::Shutdown,
                Response::new(200).text("shutting down\n"),
            )
        }
        (_, "/healthz" | "/metrics" | "/query" | "/explain") => (
            Endpoint::Other,
            Response::new(405)
                .header("Allow", "GET")
                .json(error_json("method not allowed")),
        ),
        (_, "/batch" | "/shutdown" | "/documents") => (
            Endpoint::Other,
            Response::new(405)
                .header("Allow", "POST")
                .json(error_json("method not allowed")),
        ),
        (_, path) => (
            Endpoint::Other,
            Response::new(404).json(error_json(&format!("no such endpoint: {path}"))),
        ),
    }
}

fn handle_metrics(shared: &Arc<Shared>) -> Response {
    let pool = shared.engine.pool();
    let snap = shared.engine.snapshot();
    let (pinned, oldest) = shared.engine.pinned_epochs();
    let seg_io = shared.engine.seg_io().snapshot();
    let gauges = EngineGauges {
        generation: snap.generation(),
        segment_tiers: snap.segment_tiers() as u64,
        segment_docs: snap.segment_docs(),
        mutable_docs: snap.mutable_docs() as u64,
        // This handler's own snapshot holds one pin; don't report it.
        pinned_epochs: (pinned as u64).saturating_sub(1),
        pinned_oldest_lag: oldest.map_or(0, |o| snap.epoch().saturating_sub(o)),
        seg_block_reads: seg_io.seg_block_reads,
        seg_block_fetches: seg_io.seg_block_fetches,
    };
    let body = shared.metrics.render(
        pool.snapshot(),
        pool.resident(),
        pool.capacity(),
        shared.queue.depth(),
        shared.engine.recovery(),
        snap.epoch(),
        shared.plan_cache.snapshot(),
        shared.result_cache.snapshot(),
        gauges,
    );
    Response::new(200).body(
        "text/plain; version=0.0.4; charset=utf-8",
        body.into_bytes(),
    )
}

/// Parses `xpath` against a snapshot's frozen symbol table, going
/// through the plan cache. The symbol table is append-only, so a plan
/// parsed at the same table length is identical to a fresh parse (see
/// [`PlanCache`]); parse errors are never cached — they are cheap and
/// would only pin garbage.
fn parse_plan(xpath: &str, snap: &EngineSnapshot, shared: &Shared) -> Result<TwigQuery, String> {
    let syms_len = snap.symbols().len();
    if let Some(q) = shared.plan_cache.get(xpath, syms_len) {
        return Ok(q);
    }
    match snap.parse_query(xpath) {
        Ok(q) => {
            shared.plan_cache.insert(xpath, syms_len, q.clone());
            Ok(q)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Extracts and parses `xp` (lock-free against the snapshot's frozen
/// symbol table; labels the snapshot has never seen simply match
/// nothing). `Err` is a ready `400` response.
fn parse_query_param(
    req: &Request,
    snap: &EngineSnapshot,
    shared: &Shared,
) -> Result<(String, TwigQuery), Response> {
    let xp = match req.param("xp") {
        Some(x) if !x.is_empty() => x.trim().to_string(),
        _ => {
            return Err(Response::new(400).json(error_json(
                "missing query parameter `xp` (the XPath expression)",
            )))
        }
    };
    match parse_plan(&xp, snap, shared) {
        Ok(q) => Ok((xp, q)),
        Err(e) => Err(Response::new(400).json(error_json(&format!("xpath error: {e}")))),
    }
}

/// Parses the `engine=` routing override. `Ok(None)` = cost-based
/// routing; `Err` is a ready `400`.
fn parse_engine_param(req: &Request) -> Result<Option<EngineChoice>, Response> {
    match req.param("engine") {
        None | Some("") => Ok(None),
        Some(s) => match EngineChoice::parse(s) {
            Some(c) => Ok(Some(c)),
            None => Err(Response::new(400).json(error_json(&format!(
                "bad `engine` parameter `{s}` (expected prix, prix_rp, prix_ep, vist, twigstack, or twigstackxb)"
            )))),
        },
    }
}

fn handle_query(req: &Request, shared: &Arc<Shared>) -> Response {
    let snap = shared.engine.snapshot();
    let (xp, q) = match parse_query_param(req, &snap, shared) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let unordered = matches!(req.param("unordered"), Some("1" | "true"));
    let forced = match parse_engine_param(req) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    if unordered && forced.is_some() {
        return Response::new(400).json(error_json(
            "`engine` cannot be combined with `unordered` (arrangement matching is PRIX-only)",
        ));
    }
    // The limit is pushed down into the executor: the trie descent
    // stops once enough distinct matches streamed out. `limit=0` asks
    // for everything; absent, the server's configured cap applies.
    let opts = match req.param("limit").map(str::parse::<usize>) {
        None => ExecOpts::new().with_limit(shared.cfg.match_limit),
        Some(Ok(0)) => ExecOpts::new(),
        Some(Ok(n)) => ExecOpts::new().with_limit(n),
        Some(Err(_)) => return Response::new(400).json(error_json("bad `limit` parameter")),
    };
    // The answer is a pure function of this key (the epoch pins the
    // snapshot), so a hit returns the exact bytes the first evaluation
    // produced — bit-identical to recomputing, including the epoch
    // reported inside the body.
    let key = ResultKey {
        query: xp.clone(),
        unordered,
        limit: opts.limit.map_or(u64::MAX, |n| n as u64),
        epoch: snap.epoch(),
        engine: req.param("engine").unwrap_or("").to_string(),
    };
    if let Some(body) = shared.result_cache.get(&key) {
        return Response::new(200).json(String::from(&*body));
    }
    if unordered {
        return match snap.query_unordered_opts(&q, &opts) {
            Ok(out) => {
                record_stage_timings(shared, &out);
                let mut w = JsonWriter::new();
                w.obj();
                w.key("epoch").num(snap.epoch());
                outcome_json(&mut w, &xp, &out, true);
                w.end_obj();
                let body = w.finish();
                shared.result_cache.insert(key, Arc::from(body.as_str()));
                Response::new(200).json(body)
            }
            Err(e) => Response::new(400).json(error_json(&format!("query error: {e}"))),
        };
    }
    let alts = SnapshotAlts {
        snap: &snap,
        cache: &shared.alt_cache,
    };
    match snap.query_routed(&q, &opts, forced, &alts) {
        Ok(routed) => {
            shared
                .metrics
                .record_planner(routed.report.chosen, routed.mispredicted);
            record_stage_timings(shared, &routed.outcome);
            let mut w = JsonWriter::new();
            w.obj();
            w.key("epoch").num(snap.epoch());
            outcome_json(&mut w, &xp, &routed.outcome, true);
            w.end_obj();
            let body = w.finish();
            shared.result_cache.insert(key, Arc::from(body.as_str()));
            Response::new(200).json(body)
        }
        Err(e) => Response::new(400).json(error_json(&format!("query error: {e}"))),
    }
}

/// Feeds one outcome's per-stage executor timings into the
/// `prix_query_stage_duration_seconds` histograms and its value-index
/// counters into the `prix_valix_*` series.
fn record_stage_timings(shared: &Arc<Shared>, out: &QueryOutcome) {
    shared
        .metrics
        .record_stage(Stage::Filter, out.stats.filter_time);
    shared
        .metrics
        .record_stage(Stage::Refine, out.stats.refine_time);
    shared
        .metrics
        .record_stage(Stage::Project, out.stats.project_time);
    shared.metrics.record_valix(
        out.stats.valix_probes,
        out.stats.valix_postings,
        out.stats.pred_skipped,
        out.stats.pred_rejected,
    );
}

fn handle_explain(req: &Request, shared: &Arc<Shared>) -> Response {
    let xp = match req.param("xp") {
        Some(x) if !x.is_empty() => x,
        _ => {
            return Response::new(400).json(error_json(
                "missing query parameter `xp` (the XPath expression)",
            ))
        }
    };
    match shared.engine.snapshot().explain(xp) {
        Ok(plan) => Response::new(200).text(plan),
        Err(e) => Response::new(400).json(error_json(&format!("explain error: {e}"))),
    }
}

fn handle_batch(req: &Request, shared: &Arc<Shared>) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Response::new(400).json(error_json("batch body is not UTF-8")),
    };
    let threads = match req.param("threads").map(str::parse::<usize>) {
        None => shared.cfg.batch_threads,
        Some(Ok(n)) => n.clamp(1, shared.cfg.batch_threads.max(1)),
        Some(Err(_)) => return Response::new(400).json(error_json("bad `threads` parameter")),
    };
    // Batches default to unlimited; `limit=N` pushes the same
    // per-query cap into every worker's executor.
    let opts = match req.param("limit").map(str::parse::<usize>) {
        None | Some(Ok(0)) => ExecOpts::new(),
        Some(Ok(n)) => ExecOpts::new().with_limit(n),
        Some(Err(_)) => return Response::new(400).json(error_json("bad `limit` parameter")),
    };
    let forced = match parse_engine_param(req) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    let lines: Vec<&str> = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    let snap = shared.engine.snapshot();
    // The normalized line list (trimmed, blanks dropped) is the batch's
    // cache identity: two bodies that normalize alike ask the same
    // questions in the same order.
    let key = ResultKey {
        query: lines.join("\n"),
        unordered: false,
        limit: opts.limit.map_or(u64::MAX, |n| n as u64),
        epoch: snap.epoch(),
        engine: req.param("engine").unwrap_or("").to_string(),
    };
    if let Some(cached) = shared.result_cache.get(&key) {
        return Response::new(200).json(String::from(&*cached));
    }
    let mut queries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse_plan(line, &snap, shared) {
            Ok(q) => queries.push(q),
            Err(e) => {
                return Response::new(400)
                    .json(error_json(&format!("xpath error on line {}: {e}", i + 1)))
            }
        }
    }
    // A forced engine runs each query through the router (sequentially:
    // the alternative substrates are shared and the point of forcing is
    // comparison, not throughput); the default batch path keeps the
    // multi-threaded PRIX executor.
    let result = match forced {
        Some(choice) => {
            let alts = SnapshotAlts {
                snap: &snap,
                cache: &shared.alt_cache,
            };
            let mut outs = Vec::with_capacity(queries.len());
            let mut routed_err = None;
            for q in &queries {
                match snap.query_routed(q, &opts, Some(choice), &alts) {
                    Ok(routed) => {
                        shared
                            .metrics
                            .record_planner(routed.report.chosen, routed.mispredicted);
                        outs.push(routed.outcome);
                    }
                    Err(e) => {
                        routed_err = Some(e);
                        break;
                    }
                }
            }
            match routed_err {
                Some(e) => Err(e),
                None => Ok(outs),
            }
        }
        None => snap.query_batch_opts(&queries, threads, &opts),
    };
    match result {
        Ok(outs) => {
            let mut w = JsonWriter::new();
            w.obj();
            w.key("epoch").num(snap.epoch());
            w.key("count").num(outs.len() as u64);
            w.key("results").arr();
            for (line, out) in lines.iter().zip(&outs) {
                record_stage_timings(shared, out);
                w.obj();
                // Batch responses report counts and costs per query;
                // embeddings are available one query at a time via
                // `GET /query`.
                outcome_json(&mut w, line, out, false);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
            let body = w.finish();
            shared.result_cache.insert(key, Arc::from(body.as_str()));
            Response::new(200).json(body)
        }
        Err(e) => Response::new(400).json(error_json(&format!("batch error: {e}"))),
    }
}

/// `POST /documents`: snapshot-isolated online ingest.
///
/// The body is one XML document, or — with `?split=1` — a wrapper
/// whose root's element children each become one document (the
/// batched form; one WAL group commit for the whole body). Disabled
/// servers answer `403`; a body arriving while another ingest holds
/// the writer is shed with `503` + `Retry-After` instead of queueing.
/// The response reports the published `epoch`, the accepted document
/// ids, and per-document rejections (which leave the epoch alone when
/// nothing was accepted).
fn handle_documents(req: &Request, shared: &Arc<Shared>) -> Response {
    if !shared.cfg.ingest {
        return Response::new(403).json(error_json(
            "ingest is disabled; start the server with --ingest",
        ));
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s,
        Ok(_) => return Response::new(400).json(error_json("empty request body")),
        Err(_) => return Response::new(400).json(error_json("document body is not UTF-8")),
    };
    let split = matches!(req.param("split"), Some("1" | "true"));
    let result = if split {
        shared.engine.try_ingest_split(body)
    } else {
        shared.engine.try_ingest(&[body.to_string()])
    };
    match result {
        None => {
            shared.metrics.record_ingest_shed();
            Response::new(503)
                .header("Retry-After", "1")
                .json(error_json("another ingest is in progress, retry later"))
        }
        Some(Err(e)) => Response::new(500).json(error_json(&format!("ingest error: {e}"))),
        Some(Ok(report)) => {
            shared
                .metrics
                .record_ingest(report.accepted.len() as u64, report.rejected.len() as u64);
            maybe_compact(shared);
            let status = if report.accepted.is_empty() && !report.rejected.is_empty() {
                400
            } else {
                200
            };
            let mut w = JsonWriter::new();
            w.obj();
            w.key("epoch").num(report.epoch);
            w.key("accepted").num(report.accepted.len() as u64);
            w.key("ids").arr();
            for id in &report.accepted {
                w.num(*id as u64);
            }
            w.end_arr();
            w.key("rejected").arr();
            for (i, reason) in &report.rejected {
                w.obj();
                w.key("index").num(*i as u64);
                w.key("error").str_val(reason);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
            Response::new(status).json(w.finish())
        }
    }
}

/// Folds the mutable delta into a new segment generation when
/// `ServerConfig::compact_after` is set and the published snapshot's
/// delta has reached it. Runs on the ingesting worker's thread, after
/// its publish: readers keep serving their pinned snapshots throughout,
/// and a compaction failure poisons the writer exactly like a failed
/// ingest (refusing to limp on a half-swapped engine), so it is only
/// *reported* here, not swallowed.
fn maybe_compact(shared: &Arc<Shared>) {
    let threshold = match shared.cfg.compact_after {
        Some(n) => n,
        None => return,
    };
    if shared.engine.snapshot().mutable_docs() < threshold {
        return;
    }
    match shared.engine.compact() {
        Ok(Some(_)) => shared.metrics.record_compaction(),
        // Raced with another worker's compaction (delta already empty)
        // or the engine has no indexes; nothing to record.
        Ok(None) => {}
        // The writer is now poisoned; subsequent ingests answer 500.
        Err(_) => {}
    }
}

/// Writes the shared per-query fields (and optionally the embeddings)
/// into an already-open JSON object. `count` is the number of matches
/// actually returned by the executor; `truncated` reports whether the
/// limit stopped the trie descent before it was drained.
fn outcome_json(w: &mut JsonWriter, xpath: &str, out: &QueryOutcome, with_matches: bool) {
    w.key("xpath").str_val(xpath);
    w.key("index").str_val(&out.index_used.to_string());
    w.key("engine").str_val(out.engine.label());
    w.key("count").num(out.matches.len() as u64);
    w.key("elapsed_us")
        .num(out.elapsed.as_micros().min(u64::MAX as u128) as u64);
    w.key("io").obj();
    w.key("logical_reads").num(out.io.logical_reads);
    w.key("physical_reads").num(out.io.physical_reads);
    w.key("physical_writes").num(out.io.physical_writes);
    w.key("fsyncs").num(out.io.fsyncs);
    w.key("seg_block_reads").num(out.io.seg_block_reads);
    w.key("seg_block_fetches").num(out.io.seg_block_fetches);
    w.end_obj();
    w.key("stats").obj();
    w.key("range_queries").num(out.stats.range_queries);
    w.key("nodes_scanned").num(out.stats.nodes_scanned);
    w.key("maxgap_pruned").num(out.stats.maxgap_pruned);
    w.key("candidates").num(out.stats.candidates);
    w.key("refined").num(out.stats.refined);
    w.key("valix_probes").num(out.stats.valix_probes);
    w.key("valix_postings").num(out.stats.valix_postings);
    w.key("pred_skipped").num(out.stats.pred_skipped);
    w.key("pred_rejected").num(out.stats.pred_rejected);
    w.key("filter_us")
        .num(out.stats.filter_time.as_micros().min(u64::MAX as u128) as u64);
    w.key("refine_us")
        .num(out.stats.refine_time.as_micros().min(u64::MAX as u128) as u64);
    w.key("project_us")
        .num(out.stats.project_time.as_micros().min(u64::MAX as u128) as u64);
    w.end_obj();
    w.key("truncated").bool_val(out.truncated);
    if with_matches {
        w.key("matches").arr();
        for m in &out.matches {
            w.obj();
            w.key("doc").num(m.doc as u64);
            w.key("embedding").arr();
            for &p in &m.embedding {
                w.num(p as u64);
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_arr();
    }
}
