//! A bounded worker thread pool with a bounded job queue.
//!
//! This is the server's backpressure mechanism: [`WorkerPool::try_execute`]
//! *fails fast* when the queue is full instead of blocking the caller,
//! so the accept loop can turn saturation into an immediate `503`
//! rather than an unbounded pile of parked connections.
//!
//! Shutdown is graceful by construction: [`WorkerPool::shutdown`] stops
//! accepting new jobs, lets the workers drain everything already
//! queued, and joins them.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<QueueState>,
    /// Signals workers that a job arrived or shutdown began.
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// Returned by [`WorkerPool::try_execute`] when the queue is at
/// capacity (the caller should shed load) or the pool is shutting
/// down; the rejected job is handed back.
pub struct Rejected(pub Job);

impl std::fmt::Debug for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Rejected(<job>)")
    }
}

/// A read-only view of the queue for gauges (`/metrics` reports the
/// current depth without holding a reference to the pool itself).
#[derive(Clone)]
pub struct QueueProbe(Arc<Queue>);

impl QueueProbe {
    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.0
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }
}

/// A fixed-size pool of worker threads fed by a bounded FIFO queue.
pub struct WorkerPool {
    queue: Arc<Queue>,
    capacity: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers behind a queue of `queue_depth` slots.
    /// Both are clamped to at least 1.
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        let threads = threads.max(1);
        let capacity = queue_depth.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                shutting_down: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("prix-http-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn http worker")
            })
            .collect();
        WorkerPool {
            queue,
            capacity,
            workers: Mutex::new(workers),
        }
    }

    /// Number of worker threads (0 once shut down).
    pub fn threads(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// A clonable handle that reports queue depth.
    pub fn probe(&self) -> QueueProbe {
        QueueProbe(Arc::clone(&self.queue))
    }

    /// Configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (not counting jobs being executed).
    pub fn queue_depth(&self) -> usize {
        self.queue
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }

    /// Enqueues `job` unless the queue is full or shutdown has begun.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Rejected> {
        let job: Job = Box::new(job);
        let mut state = self.queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutting_down || state.jobs.len() >= self.capacity {
            return Err(Rejected(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.queue.available.notify_one();
        Ok(())
    }

    /// Stops accepting jobs, drains the queue, and joins every worker.
    /// In-flight and already-queued jobs run to completion. Idempotent;
    /// must not be called from a worker thread (it would join itself).
    pub fn shutdown(&self) {
        {
            let mut state = self.queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
            state.shutting_down = true;
        }
        self.queue.available.notify_all();
        let workers: Vec<_> = {
            let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            w.drain(..).collect()
        };
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = queue
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_jobs_on_workers() {
        let pool = WorkerPool::new(4, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            loop {
                let done = Arc::clone(&done);
                if pool
                    .try_execute(move || {
                        done.fetch_add(1, Ordering::Relaxed);
                    })
                    .is_ok()
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let pool = WorkerPool::new(1, 2);
        // Block the single worker, then fill the 2 queue slots.
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap(); // worker is now occupied
        pool.try_execute(|| {}).unwrap();
        pool.try_execute(|| {}).unwrap();
        assert_eq!(pool.queue_depth(), 2);
        // Queue full: rejection is immediate, not blocking.
        assert!(pool.try_execute(|| {}).is_err());
        block_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1, 8);
        let done = Arc::new(AtomicUsize::new(0));
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        for _ in 0..5 {
            let done = Arc::clone(&done);
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        // Unblock the worker *after* shutdown begins on another thread:
        // the queued jobs must still all run.
        let unblock = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            block_tx.send(()).unwrap();
        });
        pool.shutdown();
        unblock.join().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_sizes_clamp_to_one() {
        let pool = WorkerPool::new(0, 0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.queue_capacity(), 1);
        let (tx, rx) = mpsc::channel();
        pool.try_execute(move || tx.send(7).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        pool.shutdown();
    }
}
