//! Disk-based B⁺-tree over byte-string keys.
//!
//! This is the index structure everything in the reproduction sits on,
//! standing in for the GiST B⁺-trees of the paper's evaluation (§6):
//! PRIX's Trie-Symbol and Docid indexes (§5.2.1), ViST's D-Ancestorship
//! index, and the XB-trees of TwigStackXB are all built over it.
//!
//! Properties:
//!
//! * keys and values are arbitrary byte strings; key order is `memcmp`
//!   order, so numeric keys must be encoded big-endian (see
//!   [`encode_u64_be`]),
//! * duplicate keys are supported (the Docid index maps one trie
//!   position to many documents),
//! * slotted-page layout over [`PAGE_SIZE`] pages accessed exclusively
//!   through the [`BufferPool`], so every traversal is I/O-accounted,
//! * point lookups, bounded range scans (the `RangeQuery` primitive of
//!   Algorithm 1), inserts with node splits, tombstone-free deletes
//!   (leaf-local, no eager merge — the PostgreSQL approach), and sorted
//!   bulk loading.

use std::ops::Bound;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::pager::{PageId, NIL_PAGE, PAGE_SIZE};

/// Maximum key length accepted by the tree.
pub const MAX_KEY: usize = 1024;
/// Maximum key+value length accepted by the tree.
pub const MAX_ENTRY: usize = 4000;

/// Encodes a `u64` so that `memcmp` order equals numeric order.
#[inline]
pub fn encode_u64_be(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decodes a key produced by [`encode_u64_be`].
///
/// # Panics
/// Panics if `b` is not exactly 8 bytes.
#[inline]
pub fn decode_u64_be(b: &[u8]) -> u64 {
    u64::from_be_bytes(b.try_into().expect("u64 key must be 8 bytes"))
}

const TYPE_LEAF: u8 = 1;
const TYPE_INTERNAL: u8 = 2;

// Page header:
//   [0]      u8  type
//   [1..3]   u16 nkeys
//   [3..11]  u64 link (leaf: next-leaf page; internal: leftmost child)
//   [11..13] u16 cell_start (lowest byte used by cell data)
// Slot array of u16 cell offsets begins at HDR.
const HDR: usize = 13;

type Page = [u8; PAGE_SIZE];

mod node {
    use super::*;

    #[inline]
    pub fn typ(p: &Page) -> u8 {
        p[0]
    }

    #[inline]
    pub fn nkeys(p: &Page) -> usize {
        u16::from_le_bytes([p[1], p[2]]) as usize
    }

    #[inline]
    pub fn set_nkeys(p: &mut Page, n: usize) {
        p[1..3].copy_from_slice(&(n as u16).to_le_bytes());
    }

    #[inline]
    pub fn link(p: &Page) -> PageId {
        u64::from_le_bytes(p[3..11].try_into().unwrap())
    }

    #[inline]
    pub fn set_link(p: &mut Page, id: PageId) {
        p[3..11].copy_from_slice(&id.to_le_bytes());
    }

    #[inline]
    pub fn cell_start(p: &Page) -> usize {
        u16::from_le_bytes([p[11], p[12]]) as usize
    }

    #[inline]
    pub fn set_cell_start(p: &mut Page, off: usize) {
        p[11..13].copy_from_slice(&(off as u16).to_le_bytes());
    }

    pub fn init(p: &mut Page, typ: u8, link: PageId) {
        p.fill(0);
        p[0] = typ;
        set_nkeys(p, 0);
        set_link(p, link);
        set_cell_start(p, PAGE_SIZE);
    }

    #[inline]
    pub fn slot(p: &Page, i: usize) -> usize {
        let off = HDR + 2 * i;
        u16::from_le_bytes([p[off], p[off + 1]]) as usize
    }

    #[inline]
    pub fn set_slot(p: &mut Page, i: usize, v: usize) {
        let off = HDR + 2 * i;
        p[off..off + 2].copy_from_slice(&(v as u16).to_le_bytes());
    }

    #[inline]
    pub fn free_space(p: &Page) -> usize {
        cell_start(p) - (HDR + 2 * nkeys(p))
    }

    /// Size of a leaf cell holding (key, val).
    #[inline]
    pub fn leaf_cell_size(klen: usize, vlen: usize) -> usize {
        4 + klen + vlen
    }

    /// Size of an internal cell holding (key, child).
    #[inline]
    pub fn internal_cell_size(klen: usize) -> usize {
        10 + klen
    }

    pub fn leaf_key(p: &Page, i: usize) -> &[u8] {
        let c = slot(p, i);
        let klen = u16::from_le_bytes([p[c], p[c + 1]]) as usize;
        &p[c + 4..c + 4 + klen]
    }

    pub fn leaf_val(p: &Page, i: usize) -> &[u8] {
        let c = slot(p, i);
        let klen = u16::from_le_bytes([p[c], p[c + 1]]) as usize;
        let vlen = u16::from_le_bytes([p[c + 2], p[c + 3]]) as usize;
        &p[c + 4 + klen..c + 4 + klen + vlen]
    }

    pub fn internal_key(p: &Page, i: usize) -> &[u8] {
        let c = slot(p, i);
        let klen = u16::from_le_bytes([p[c], p[c + 1]]) as usize;
        &p[c + 10..c + 10 + klen]
    }

    pub fn internal_child(p: &Page, i: usize) -> PageId {
        let c = slot(p, i);
        u64::from_le_bytes(p[c + 2..c + 10].try_into().unwrap())
    }

    /// Inserts (key, val) at slot index `i` in a leaf. Returns `false`
    /// when the page lacks contiguous free space (caller compacts or
    /// splits).
    pub fn leaf_insert(p: &mut Page, i: usize, key: &[u8], val: &[u8]) -> bool {
        let need = leaf_cell_size(key.len(), val.len()) + 2;
        if free_space(p) < need {
            return false;
        }
        let n = nkeys(p);
        let start = cell_start(p) - leaf_cell_size(key.len(), val.len());
        p[start..start + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        p[start + 2..start + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
        p[start + 4..start + 4 + key.len()].copy_from_slice(key);
        p[start + 4 + key.len()..start + 4 + key.len() + val.len()].copy_from_slice(val);
        set_cell_start(p, start);
        // Shift slots right of i.
        for j in (i..n).rev() {
            let v = slot(p, j);
            set_slot(p, j + 1, v);
        }
        set_slot(p, i, start);
        set_nkeys(p, n + 1);
        true
    }

    /// Inserts (key, child) at slot index `i` in an internal node.
    pub fn internal_insert(p: &mut Page, i: usize, key: &[u8], child: PageId) -> bool {
        let need = internal_cell_size(key.len()) + 2;
        if free_space(p) < need {
            return false;
        }
        let n = nkeys(p);
        let start = cell_start(p) - internal_cell_size(key.len());
        p[start..start + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        p[start + 2..start + 10].copy_from_slice(&child.to_le_bytes());
        p[start + 10..start + 10 + key.len()].copy_from_slice(key);
        set_cell_start(p, start);
        for j in (i..n).rev() {
            let v = slot(p, j);
            set_slot(p, j + 1, v);
        }
        set_slot(p, i, start);
        set_nkeys(p, n + 1);
        true
    }

    /// Removes the slot at index `i` (cell bytes become dead space).
    pub fn remove_slot(p: &mut Page, i: usize) {
        let n = nkeys(p);
        for j in i + 1..n {
            let v = slot(p, j);
            set_slot(p, j - 1, v);
        }
        set_nkeys(p, n - 1);
    }

    /// Rewrites all live cells contiguously, reclaiming dead space.
    pub fn compact(p: &mut Page) {
        let n = nkeys(p);
        let t = typ(p);
        let mut cells: Vec<(Vec<u8>, Vec<u8>, PageId)> = Vec::with_capacity(n);
        for i in 0..n {
            if t == TYPE_LEAF {
                cells.push((leaf_key(p, i).to_vec(), leaf_val(p, i).to_vec(), 0));
            } else {
                cells.push((
                    internal_key(p, i).to_vec(),
                    Vec::new(),
                    internal_child(p, i),
                ));
            }
        }
        let link = link(p);
        init(p, t, link);
        for (i, (k, v, c)) in cells.iter().enumerate() {
            let ok = if t == TYPE_LEAF {
                leaf_insert(p, i, k, v)
            } else {
                internal_insert(p, i, k, *c)
            };
            debug_assert!(ok, "compaction cannot run out of space");
        }
    }

    /// Number of separators strictly less than `key` — the child index
    /// used for lower-bound descents (duplicates may sit left of an
    /// equal separator).
    pub fn lower_child(p: &Page, key: &[u8]) -> usize {
        let n = nkeys(p);
        let mut lo = 0;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if internal_key(p, mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Number of separators `<= key` — the child index used for
    /// upper-bound (insert) descents.
    pub fn upper_child(p: &Page, key: &[u8]) -> usize {
        let n = nkeys(p);
        let mut lo = 0;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if internal_key(p, mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Child page for child-index `j` (0 = leftmost).
    pub fn child_at(p: &Page, j: usize) -> PageId {
        if j == 0 {
            link(p)
        } else {
            internal_child(p, j - 1)
        }
    }

    /// First slot in a leaf whose key is `>= key` (dup-stable).
    pub fn leaf_lower_bound(p: &Page, key: &[u8]) -> usize {
        let n = nkeys(p);
        let mut lo = 0;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if leaf_key(p, mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First slot in a leaf whose key is `> key`.
    pub fn leaf_upper_bound(p: &Page, key: &[u8]) -> usize {
        let n = nkeys(p);
        let mut lo = 0;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if leaf_key(p, mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// A B⁺-tree handle. Reads take `&self`; mutations take `&mut self`.
///
/// `Clone` duplicates the *handle* (pool reference + root id), not the
/// tree: clones share pages. A clone is a read-only view for snapshot
/// readers — inserting through one clone while another reads is only
/// sound under the pool's epoch-pin protocol.
#[derive(Clone)]
pub struct BPlusTree {
    pool: Arc<BufferPool>,
    root: PageId,
}

impl BPlusTree {
    /// Creates an empty tree whose pages live in `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let root = pool.allocate_page()?;
        pool.with_page_mut(root, |p| node::init(p, TYPE_LEAF, NIL_PAGE))?;
        Ok(BPlusTree { pool, root })
    }

    /// Reopens a tree from a previously obtained [`Self::root`].
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> Self {
        BPlusTree { pool, root }
    }

    /// The current root page (persist this to reopen the tree).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The buffer pool this tree reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn check_entry(key: &[u8], val: &[u8]) -> Result<()> {
        if key.len() > MAX_KEY || key.len() + val.len() > MAX_ENTRY {
            return Err(StorageError::TooLarge {
                size: key.len() + val.len(),
                max: MAX_ENTRY,
            });
        }
        Ok(())
    }

    /// Inserts `(key, value)`. Duplicate keys are kept (insertion order
    /// among equal keys is preserved).
    pub fn insert(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        Self::check_entry(key, val)?;
        if let Some((sep, right)) = self.insert_rec(self.root, key, val)? {
            let new_root = self.pool.allocate_page()?;
            let old_root = self.root;
            self.pool.with_page_mut(new_root, |p| {
                node::init(p, TYPE_INTERNAL, old_root);
                let ok = node::internal_insert(p, 0, &sep, right);
                debug_assert!(ok);
            })?;
            self.root = new_root;
        }
        Ok(())
    }

    fn insert_rec(
        &self,
        page: PageId,
        key: &[u8],
        val: &[u8],
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let typ = self.pool.with_page(page, node::typ)?;
        if typ == TYPE_LEAF {
            return self.leaf_insert(page, key, val);
        }
        let j = self.pool.with_page(page, |p| node::upper_child(p, key))?;
        let child = self.pool.with_page(page, |p| node::child_at(p, j))?;
        let Some((sep, right)) = self.insert_rec(child, key, val)? else {
            return Ok(None);
        };
        // Insert the new separator at child-index j -> cell index j.
        let inserted = self.pool.with_page_mut(page, |p| {
            if node::internal_insert(p, j, &sep, right) {
                return true;
            }
            node::compact(p);
            node::internal_insert(p, j, &sep, right)
        })?;
        if inserted {
            return Ok(None);
        }
        // Split the internal node, then retry the separator insert.
        let (up, right_page) = self.split_internal(page)?;
        let target = if sep.as_slice() <= up.as_slice() {
            page
        } else {
            right_page
        };
        // Recompute position in the target node.
        self.pool.with_page_mut(target, |p| {
            let pos = node::upper_child(p, &sep);
            let ok = node::internal_insert(p, pos, &sep, right);
            debug_assert!(ok, "post-split internal insert must fit");
        })?;
        Ok(Some((up, right_page)))
    }

    fn leaf_insert(
        &self,
        page: PageId,
        key: &[u8],
        val: &[u8],
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let done = self.pool.with_page_mut(page, |p| {
            let pos = node::leaf_upper_bound(p, key);
            if node::leaf_insert(p, pos, key, val) {
                return true;
            }
            node::compact(p);
            let pos = node::leaf_upper_bound(p, key);
            node::leaf_insert(p, pos, key, val)
        })?;
        if done {
            return Ok(None);
        }
        let (sep, right_page) = self.split_leaf(page)?;
        let target = if key <= sep.as_slice() {
            page
        } else {
            right_page
        };
        self.pool.with_page_mut(target, |p| {
            let pos = node::leaf_upper_bound(p, key);
            let ok = node::leaf_insert(p, pos, key, val);
            debug_assert!(ok, "post-split leaf insert must fit");
        })?;
        Ok(Some((sep, right_page)))
    }

    /// Splits a leaf; returns `(separator, right_page)`. The separator is
    /// the last key remaining in the left node (keys `<= sep` left,
    /// `>= first right key` right).
    fn split_leaf(&self, page: PageId) -> Result<(Vec<u8>, PageId)> {
        let right_page = self.pool.allocate_page()?;
        let (cells, old_next) = self.pool.with_page(page, |p| {
            let n = node::nkeys(p);
            let cells: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                .map(|i| (node::leaf_key(p, i).to_vec(), node::leaf_val(p, i).to_vec()))
                .collect();
            (cells, node::link(p))
        })?;
        let mid = cells.len() / 2;
        debug_assert!(mid >= 1, "splitting a leaf with < 2 cells");
        self.pool.with_page_mut(page, |p| {
            node::init(p, TYPE_LEAF, right_page);
            for (i, (k, v)) in cells[..mid].iter().enumerate() {
                let ok = node::leaf_insert(p, i, k, v);
                debug_assert!(ok);
            }
        })?;
        self.pool.with_page_mut(right_page, |p| {
            node::init(p, TYPE_LEAF, old_next);
            for (i, (k, v)) in cells[mid..].iter().enumerate() {
                let ok = node::leaf_insert(p, i, k, v);
                debug_assert!(ok);
            }
        })?;
        Ok((cells[mid - 1].0.clone(), right_page))
    }

    /// Splits an internal node; returns `(pushed_up_key, right_page)`.
    fn split_internal(&self, page: PageId) -> Result<(Vec<u8>, PageId)> {
        let right_page = self.pool.allocate_page()?;
        let (cells, leftmost) = self.pool.with_page(page, |p| {
            let n = node::nkeys(p);
            let cells: Vec<(Vec<u8>, PageId)> = (0..n)
                .map(|i| {
                    (
                        node::internal_key(p, i).to_vec(),
                        node::internal_child(p, i),
                    )
                })
                .collect();
            (cells, node::link(p))
        })?;
        let mid = cells.len() / 2;
        debug_assert!(mid >= 1 && mid < cells.len());
        let (up_key, up_child) = cells[mid].clone();
        self.pool.with_page_mut(page, |p| {
            node::init(p, TYPE_INTERNAL, leftmost);
            for (i, (k, c)) in cells[..mid].iter().enumerate() {
                let ok = node::internal_insert(p, i, k, *c);
                debug_assert!(ok);
            }
        })?;
        self.pool.with_page_mut(right_page, |p| {
            node::init(p, TYPE_INTERNAL, up_child);
            for (i, (k, c)) in cells[mid + 1..].iter().enumerate() {
                let ok = node::internal_insert(p, i, k, *c);
                debug_assert!(ok);
            }
        })?;
        Ok((up_key, right_page))
    }

    /// Returns the value of the first entry equal to `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut out = None;
        self.scan(Bound::Included(key), Bound::Included(key), |_, v| {
            out = Some(v.to_vec());
            false
        })?;
        Ok(out)
    }

    /// Collects all values whose key equals `key`.
    pub fn get_all(&self, key: &[u8]) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        self.scan(Bound::Included(key), Bound::Included(key), |_, v| {
            out.push(v.to_vec());
            true
        })?;
        Ok(out)
    }

    /// Range scan in key order. `f(key, value)` returns `false` to stop
    /// early. This is the `RangeQuery` primitive of Algorithm 1.
    pub fn scan(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        // Descend to the leftmost leaf that can contain the lower bound.
        let mut page = self.root;
        loop {
            let (typ, next) = self.pool.with_page(page, |p| {
                if node::typ(p) == TYPE_LEAF {
                    (TYPE_LEAF, NIL_PAGE)
                } else {
                    let j = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => node::lower_child(p, k),
                        // Keys > k may still live left of a separator == k.
                        Bound::Excluded(k) => node::lower_child(p, k),
                    };
                    (TYPE_INTERNAL, node::child_at(p, j))
                }
            })?;
            if typ == TYPE_LEAF {
                break;
            }
            page = next;
        }
        // Walk the leaf chain.
        loop {
            enum Step {
                Continue(PageId),
                Done,
            }
            let step = self.pool.with_page(page, |p| {
                let n = node::nkeys(p);
                let start = match lo {
                    Bound::Unbounded => 0,
                    Bound::Included(k) => node::leaf_lower_bound(p, k),
                    Bound::Excluded(k) => node::leaf_upper_bound(p, k),
                };
                for i in start..n {
                    let k = node::leaf_key(p, i);
                    match hi {
                        Bound::Included(h) if k > h => return Step::Done,
                        Bound::Excluded(h) if k >= h => return Step::Done,
                        _ => {}
                    }
                    if !f(k, node::leaf_val(p, i)) {
                        return Step::Done;
                    }
                }
                let next = node::link(p);
                if next == NIL_PAGE {
                    Step::Done
                } else {
                    Step::Continue(next)
                }
            })?;
            match step {
                Step::Done => return Ok(()),
                Step::Continue(next) => page = next,
            }
        }
    }

    /// Removes entries with key == `key`; when `val` is given only
    /// matching `(key, value)` pairs are removed. Returns the number of
    /// entries removed. Pages are never merged (lazy underflow).
    pub fn delete(&mut self, key: &[u8], val: Option<&[u8]>) -> Result<usize> {
        // Find the first leaf that can contain `key`.
        let mut page = self.root;
        loop {
            let (is_leaf, next) = self.pool.with_page(page, |p| {
                if node::typ(p) == TYPE_LEAF {
                    (true, NIL_PAGE)
                } else {
                    let j = node::lower_child(p, key);
                    (false, node::child_at(p, j))
                }
            })?;
            if is_leaf {
                break;
            }
            page = next;
        }
        let mut removed = 0;
        loop {
            enum Step {
                Continue(PageId),
                Done,
            }
            let step = self.pool.with_page_mut(page, |p| {
                let mut i = node::leaf_lower_bound(p, key);
                loop {
                    if i >= node::nkeys(p) {
                        break;
                    }
                    let k = node::leaf_key(p, i);
                    if k > key {
                        return Step::Done;
                    }
                    debug_assert_eq!(k, key);
                    let matches = val.map_or(true, |v| node::leaf_val(p, i) == v);
                    if matches {
                        node::remove_slot(p, i);
                        removed += 1;
                    } else {
                        i += 1;
                    }
                }
                let next = node::link(p);
                if next == NIL_PAGE {
                    Step::Done
                } else {
                    Step::Continue(next)
                }
            })?;
            match step {
                Step::Done => return Ok(removed),
                Step::Continue(next) => page = next,
            }
        }
    }

    /// Total number of entries (walks every leaf; intended for tests and
    /// stats, not the hot path).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        self.scan(Bound::Unbounded, Bound::Unbounded, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn height(&self) -> Result<usize> {
        let mut h = 1;
        let mut page = self.root;
        loop {
            let (is_leaf, next) = self.pool.with_page(page, |p| {
                if node::typ(p) == TYPE_LEAF {
                    (true, NIL_PAGE)
                } else {
                    (false, node::link(p))
                }
            })?;
            if is_leaf {
                return Ok(h);
            }
            h += 1;
            page = next;
        }
    }

    /// Bulk loads a tree from `entries`, which must be sorted by key
    /// (stable for duplicates). Roughly `fill` of each page is used
    /// (`0.0 < fill <= 1.0`).
    pub fn bulk_load<I>(pool: Arc<BufferPool>, entries: I, fill: f64) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor out of range");
        let budget = ((PAGE_SIZE - HDR) as f64 * fill) as usize;

        // Build the leaf level.
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
        let mut cur: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut cur_bytes = 0usize;
        let mut last_key: Option<Vec<u8>> = None;

        let flush_leaf = |cells: &mut Vec<(Vec<u8>, Vec<u8>)>,
                          leaves: &mut Vec<(Vec<u8>, PageId)>|
         -> Result<()> {
            if cells.is_empty() {
                return Ok(());
            }
            let page = pool.allocate_page()?;
            pool.with_page_mut(page, |p| {
                node::init(p, TYPE_LEAF, NIL_PAGE);
                for (i, (k, v)) in cells.iter().enumerate() {
                    let ok = node::leaf_insert(p, i, k, v);
                    debug_assert!(ok, "bulk leaf overflow");
                }
            })?;
            leaves.push((cells[0].0.clone(), page));
            cells.clear();
            Ok(())
        };

        for (k, v) in entries {
            Self::check_entry(&k, &v)?;
            if let Some(prev) = &last_key {
                assert!(prev <= &k, "bulk_load requires sorted input");
            }
            last_key = Some(k.clone());
            let sz = node::leaf_cell_size(k.len(), v.len()) + 2;
            if cur_bytes + sz > budget && !cur.is_empty() {
                flush_leaf(&mut cur, &mut leaves)?;
                cur_bytes = 0;
            }
            cur_bytes += sz;
            cur.push((k, v));
        }
        flush_leaf(&mut cur, &mut leaves)?;

        if leaves.is_empty() {
            return Self::create(pool);
        }
        // Chain the leaves.
        for w in leaves.windows(2) {
            let (_, left) = &w[0];
            let (_, right) = &w[1];
            let right = *right;
            pool.with_page_mut(*left, |p| node::set_link(p, right))?;
        }

        // Build internal levels bottom-up.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let page = pool.allocate_page()?;
                let first_key = level[i].0.clone();
                let mut used = 0usize;
                pool.with_page_mut(page, |p| {
                    node::init(p, TYPE_INTERNAL, level[i].1);
                    used = 1;
                    let mut bytes = 0usize;
                    let mut idx = 0usize;
                    while i + used < level.len() {
                        let (k, c) = &level[i + used];
                        let sz = node::internal_cell_size(k.len()) + 2;
                        if bytes + sz > budget {
                            break;
                        }
                        let ok = node::internal_insert(p, idx, k, *c);
                        debug_assert!(ok, "bulk internal overflow");
                        bytes += sz;
                        idx += 1;
                        used += 1;
                    }
                })?;
                next_level.push((first_key, page));
                i += used;
            }
            level = next_level;
        }
        Ok(BPlusTree {
            pool,
            root: level[0].1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn tree() -> BPlusTree {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 64));
        BPlusTree::create(pool).unwrap()
    }

    fn k(v: u64) -> [u8; 8] {
        encode_u64_be(v)
    }

    #[test]
    fn empty_tree_has_no_entries() {
        let t = tree();
        assert_eq!(t.len().unwrap(), 0);
        assert!(t.is_empty().unwrap());
        assert_eq!(t.get(&k(1)).unwrap(), None);
    }

    #[test]
    fn insert_then_get() {
        let mut t = tree();
        t.insert(&k(5), b"five").unwrap();
        t.insert(&k(3), b"three").unwrap();
        t.insert(&k(9), b"nine").unwrap();
        assert_eq!(t.get(&k(3)).unwrap().unwrap(), b"three");
        assert_eq!(t.get(&k(5)).unwrap().unwrap(), b"five");
        assert_eq!(t.get(&k(9)).unwrap().unwrap(), b"nine");
        assert_eq!(t.get(&k(4)).unwrap(), None);
    }

    #[test]
    fn thousands_of_inserts_stay_sorted() {
        let mut t = tree();
        // Insert in a scrambled order.
        let n: u64 = 5000;
        let mut x: u64 = 1;
        for _ in 0..n {
            x = (x * 48271) % 65537;
            t.insert(&k(x), &x.to_le_bytes()).unwrap();
        }
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        t.scan(Bound::Unbounded, Bound::Unbounded, |key, val| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= key);
            }
            assert_eq!(
                decode_u64_be(key),
                u64::from_le_bytes(val.try_into().unwrap())
            );
            prev = Some(key.to_vec());
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, n as usize);
        assert!(t.height().unwrap() >= 2, "5000 entries must split");
    }

    #[test]
    fn duplicate_keys_are_all_returned() {
        let mut t = tree();
        for i in 0..100u64 {
            t.insert(&k(7), &i.to_le_bytes()).unwrap();
        }
        t.insert(&k(6), b"a").unwrap();
        t.insert(&k(8), b"b").unwrap();
        let vals = t.get_all(&k(7)).unwrap();
        assert_eq!(vals.len(), 100);
    }

    #[test]
    fn duplicates_spanning_splits_are_found() {
        let mut t = tree();
        // Enough duplicates to force multiple leaf splits.
        for i in 0..2000u64 {
            t.insert(&k(42), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.get_all(&k(42)).unwrap().len(), 2000);
        assert!(t.height().unwrap() >= 2);
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = tree();
        for i in 0..100u64 {
            t.insert(&k(i), &[]).unwrap();
        }
        let collect = |lo: Bound<&[u8]>, hi: Bound<&[u8]>| {
            let mut v = Vec::new();
            t.scan(lo, hi, |key, _| {
                v.push(decode_u64_be(key));
                true
            })
            .unwrap();
            v
        };
        assert_eq!(
            collect(Bound::Included(&k(10)), Bound::Included(&k(13))),
            vec![10, 11, 12, 13]
        );
        assert_eq!(
            collect(Bound::Excluded(&k(10)), Bound::Excluded(&k(13))),
            vec![11, 12]
        );
        assert_eq!(
            collect(Bound::Unbounded, Bound::Included(&k(2))),
            vec![0, 1, 2]
        );
        assert_eq!(
            collect(Bound::Included(&k(97)), Bound::Unbounded),
            vec![97, 98, 99]
        );
    }

    #[test]
    fn scan_early_stop() {
        let mut t = tree();
        for i in 0..100u64 {
            t.insert(&k(i), &[]).unwrap();
        }
        let mut seen = 0;
        t.scan(Bound::Unbounded, Bound::Unbounded, |_, _| {
            seen += 1;
            seen < 5
        })
        .unwrap();
        assert_eq!(seen, 5);
    }

    #[test]
    fn delete_removes_matching_entries() {
        let mut t = tree();
        for i in 0..50u64 {
            t.insert(&k(i % 10), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.delete(&k(3), None).unwrap(), 5);
        assert!(t.get_all(&k(3)).unwrap().is_empty());
        assert_eq!(t.len().unwrap(), 45);
    }

    #[test]
    fn delete_by_value() {
        let mut t = tree();
        t.insert(&k(1), b"a").unwrap();
        t.insert(&k(1), b"b").unwrap();
        t.insert(&k(1), b"a").unwrap();
        assert_eq!(t.delete(&k(1), Some(b"a")).unwrap(), 2);
        assert_eq!(t.get_all(&k(1)).unwrap(), vec![b"b".to_vec()]);
    }

    #[test]
    fn delete_across_leaf_boundaries() {
        let mut t = tree();
        for i in 0..3000u64 {
            t.insert(&k(5), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.delete(&k(5), None).unwrap(), 3000);
        assert_eq!(t.len().unwrap(), 0);
    }

    #[test]
    fn insert_after_delete_reuses_space() {
        let mut t = tree();
        for i in 0..500u64 {
            t.insert(&k(i), &[0u8; 64]).unwrap();
        }
        for i in 0..500u64 {
            t.delete(&k(i), None).unwrap();
        }
        for i in 0..500u64 {
            t.insert(&k(i), &[1u8; 64]).unwrap();
        }
        assert_eq!(t.len().unwrap(), 500);
        assert_eq!(t.get(&k(123)).unwrap().unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut t = tree();
        let big_key = vec![0u8; MAX_KEY + 1];
        assert!(matches!(
            t.insert(&big_key, b""),
            Err(StorageError::TooLarge { .. })
        ));
        let big_val = vec![0u8; MAX_ENTRY];
        assert!(t.insert(&k(1), &big_val).is_err());
    }

    #[test]
    fn variable_length_string_keys() {
        let mut t = tree();
        let words = ["b", "aa", "abc", "a", "zzz", "ab"];
        for (i, w) in words.iter().enumerate() {
            t.insert(w.as_bytes(), &[i as u8]).unwrap();
        }
        let mut got = Vec::new();
        t.scan(Bound::Unbounded, Bound::Unbounded, |key, _| {
            got.push(String::from_utf8(key.to_vec()).unwrap());
            true
        })
        .unwrap();
        assert_eq!(got, vec!["a", "aa", "ab", "abc", "b", "zzz"]);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 64));
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..10_000u64)
            .map(|i| (k(i).to_vec(), i.to_le_bytes().to_vec()))
            .collect();
        let t = BPlusTree::bulk_load(Arc::clone(&pool), entries.clone(), 0.9).unwrap();
        assert_eq!(t.len().unwrap(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), i.to_le_bytes());
        }
        let mut scanned = Vec::new();
        t.scan(
            Bound::Included(&k(500)),
            Bound::Excluded(&k(505)),
            |key, _| {
                scanned.push(decode_u64_be(key));
                true
            },
        )
        .unwrap();
        assert_eq!(scanned, vec![500, 501, 502, 503, 504]);
    }

    #[test]
    fn bulk_load_empty_gives_empty_tree() {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 8));
        let t = BPlusTree::bulk_load(pool, Vec::new(), 0.9).unwrap();
        assert_eq!(t.len().unwrap(), 0);
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts() {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 64));
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..1000u64)
            .map(|i| (k(i * 2).to_vec(), Vec::new()))
            .collect();
        let mut t = BPlusTree::bulk_load(pool, entries, 0.8).unwrap();
        for i in 0..1000u64 {
            t.insert(&k(i * 2 + 1), &[]).unwrap();
        }
        assert_eq!(t.len().unwrap(), 2000);
    }

    #[test]
    fn reopen_by_root_page() {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 64));
        let mut t = BPlusTree::create(Arc::clone(&pool)).unwrap();
        t.insert(&k(11), b"x").unwrap();
        let root = t.root();
        drop(t);
        let t2 = BPlusTree::open(pool, root);
        assert_eq!(t2.get(&k(11)).unwrap().unwrap(), b"x");
    }

    #[test]
    fn io_is_counted_through_the_pool() {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 4));
        let mut t = BPlusTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..5000u64 {
            t.insert(&k(i), &[0u8; 32]).unwrap();
        }
        pool.clear().unwrap();
        let before = pool.snapshot();
        t.get(&k(2500)).unwrap().unwrap();
        let d = pool.snapshot().since(&before);
        assert!(d.physical_reads >= 2, "cold lookup must read root + leaf");
        assert!(
            d.physical_reads <= 6,
            "lookup reads at most the root-to-leaf path"
        );
    }
}
