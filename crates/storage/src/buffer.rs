//! Fixed-capacity LRU buffer pool.
//!
//! Mirrors the paper's experimental setup (§6.1): a pool of 2000 pages of
//! 8 KiB each. Every page request goes through the pool; misses are
//! *physical reads* — the "Disk IO" metric of Tables 4–9. Benchmarks call
//! [`BufferPool::clear`] before each query to measure from a cold cache,
//! which is what the paper's direct-I/O configuration achieves.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::Result;
use crate::pager::{PageId, Pager, PAGE_SIZE};
use crate::stats::{IoSnapshot, IoStats};
use crate::sync::Mutex;

/// Default pool capacity, matching the paper's 2000-page configuration.
pub const DEFAULT_CAPACITY: usize = 2000;

const NIL: usize = usize::MAX;

struct Frame {
    page_id: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    prev: usize,
    next: usize,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    /// Most recently used frame index.
    head: usize,
    /// Least recently used frame index.
    tail: usize,
    capacity: usize,
}

impl Inner {
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A shared LRU cache of pages over a [`Pager`].
///
/// All methods take `&self`; the pool is internally synchronized and is
/// typically wrapped in an [`Arc`] shared by every index of a database.
pub struct BufferPool {
    pager: Pager,
    stats: Arc<IoStats>,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool over `pager` holding at most `capacity` pages.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let stats = pager.stats();
        BufferPool {
            pager,
            stats,
            inner: Mutex::new(Inner {
                frames: Vec::new(),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                capacity,
            }),
        }
    }

    /// Pool with the paper's default 2000-page capacity.
    pub fn with_default_capacity(pager: Pager) -> Self {
        Self::new(pager, DEFAULT_CAPACITY)
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// The shared I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    /// Convenience snapshot of the I/O counters.
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Allocates a fresh zeroed page, resident and dirty.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.pager.allocate()?;
        let mut inner = self.inner.lock();
        let idx = self.take_frame(&mut inner)?;
        inner.frames[idx].page_id = id;
        inner.frames[idx].data.fill(0);
        inner.frames[idx].dirty = true;
        inner.map.insert(id, idx);
        inner.push_front(idx);
        Ok(id)
    }

    /// Runs `f` over an immutable view of page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.fetch(&mut inner, id)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Runs `f` over a mutable view of page `id`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.fetch(&mut inner, id)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Writes all dirty pages back to the pager.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let dirty: Vec<usize> = (0..inner.frames.len())
            .filter(|&i| inner.frames[i].dirty)
            .collect();
        for i in dirty {
            self.pager
                .write_page(inner.frames[i].page_id, &inner.frames[i].data)?;
            inner.frames[i].dirty = false;
        }
        Ok(())
    }

    /// Flushes and then drops every resident page, so the next accesses
    /// are physical reads (cold-cache measurement, cf. direct I/O §6.1).
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.map.clear();
        inner.head = NIL;
        inner.tail = NIL;
        Ok(())
    }

    /// Number of pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Loads page `id` into a frame (hit or miss) and returns its index,
    /// moving it to the MRU position.
    fn fetch(&self, inner: &mut Inner, id: PageId) -> Result<usize> {
        self.stats.record_logical_read();
        if let Some(&idx) = inner.map.get(&id) {
            inner.detach(idx);
            inner.push_front(idx);
            return Ok(idx);
        }
        let idx = self.take_frame(inner)?;
        self.pager.read_page(id, &mut inner.frames[idx].data)?;
        inner.frames[idx].page_id = id;
        inner.frames[idx].dirty = false;
        inner.map.insert(id, idx);
        inner.push_front(idx);
        Ok(idx)
    }

    /// Produces a detached frame index: grows the pool if below capacity,
    /// otherwise evicts the LRU frame (writing it back if dirty).
    fn take_frame(&self, inner: &mut Inner) -> Result<usize> {
        if inner.frames.len() < inner.capacity {
            inner.frames.push(Frame {
                page_id: PageId::MAX,
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            return Ok(inner.frames.len() - 1);
        }
        let victim = inner.tail;
        debug_assert_ne!(victim, NIL, "capacity >= 1 guarantees a victim");
        inner.detach(victim);
        let old_id = inner.frames[victim].page_id;
        inner.map.remove(&old_id);
        if inner.frames[victim].dirty {
            self.pager.write_page(old_id, &inner.frames[victim].data)?;
            inner.frames[victim].dirty = false;
        }
        Ok(victim)
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_pool(cap: usize) -> BufferPool {
        BufferPool::new(Pager::in_memory(), cap)
    }

    #[test]
    fn allocate_then_read_back() {
        let pool = mem_pool(4);
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |d| d[10] = 99).unwrap();
        let v = pool.with_page(p, |d| d[10]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn hits_do_not_cause_physical_reads() {
        let pool = mem_pool(4);
        let p = pool.allocate_page().unwrap();
        let before = pool.snapshot();
        for _ in 0..10 {
            pool.with_page(p, |_| ()).unwrap();
        }
        let d = pool.snapshot().since(&before);
        assert_eq!(d.logical_reads, 10);
        assert_eq!(d.physical_reads, 0);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let pool = mem_pool(2);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        let c = pool.allocate_page().unwrap(); // evicts a (LRU)
        let before = pool.snapshot();
        pool.with_page(b, |_| ()).unwrap(); // hit
        pool.with_page(c, |_| ()).unwrap(); // hit
        assert_eq!(pool.snapshot().since(&before).physical_reads, 0);
        pool.with_page(a, |_| ()).unwrap(); // miss
        assert_eq!(pool.snapshot().since(&before).physical_reads, 1);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let pool = mem_pool(1);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[0] = 7).unwrap();
        let b = pool.allocate_page().unwrap(); // evicts a, must write it
        pool.with_page_mut(b, |d| d[0] = 8).unwrap();
        let va = pool.with_page(a, |d| d[0]).unwrap(); // evicts b
        assert_eq!(va, 7);
        let vb = pool.with_page(b, |d| d[0]).unwrap();
        assert_eq!(vb, 8);
    }

    #[test]
    fn clear_forces_cold_reads() {
        let pool = mem_pool(8);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[3] = 5).unwrap();
        pool.clear().unwrap();
        assert_eq!(pool.resident(), 0);
        let before = pool.snapshot();
        let v = pool.with_page(a, |d| d[3]).unwrap();
        assert_eq!(v, 5);
        assert_eq!(pool.snapshot().since(&before).physical_reads, 1);
    }

    #[test]
    fn many_pages_under_small_pool() {
        let pool = mem_pool(3);
        let ids: Vec<_> = (0..50).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |d| d[0] = i as u8).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            let v = pool.with_page(id, |d| d[0]).unwrap();
            assert_eq!(v, i as u8);
        }
        assert!(pool.resident() <= 3);
    }
}
