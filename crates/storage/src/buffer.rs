//! Fixed-capacity sharded LRU buffer pool.
//!
//! Mirrors the paper's experimental setup (§6.1): a pool of 2000 pages of
//! 8 KiB each. Every page request goes through the pool; misses are
//! *physical reads* — the "Disk IO" metric of Tables 4–9. Benchmarks call
//! [`BufferPool::clear`] before each query to measure from a cold cache,
//! which is what the paper's direct-I/O configuration achieves.
//!
//! # Sharding
//!
//! The pool is split into a power-of-two number of **shards** (default:
//! `min(16, available cores)` rounded down to a power of two), each with
//! its own mutex, LRU list, and page map. Pages are assigned to shards by
//! the low bits of their [`PageId`]; since pagers allocate ids
//! sequentially, adjacent pages — which tend to be accessed together by
//! B⁺-tree descents and record scans — land on *different* shards, so
//! concurrent queries rarely contend on one lock. Per-shard capacities
//! sum exactly to the configured total, preserving the paper's 2000-page
//! budget.
//!
//! Sharding does not change the I/O accounting: a physical read is still
//! one fetch of a non-resident page, and as long as the working set
//! mapped to each shard fits its capacity (always true for the paper's
//! workloads under the 2000-page budget), eviction never fires and the
//! cold-cache `physical_reads` counts are identical to a single global
//! LRU. Only under eviction pressure do the per-shard LRU decisions
//! diverge from a global LRU — correctness is unaffected either way.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::Result;
use crate::pager::{PageId, Pager, PAGE_SIZE};
use crate::stats::{IoSnapshot, IoStats};
use crate::sync::Mutex;
use crate::wal::Wal;

/// Default pool capacity, matching the paper's 2000-page configuration.
pub const DEFAULT_CAPACITY: usize = 2000;

/// Upper bound on the default shard count (`min(16, cores)`).
pub const MAX_DEFAULT_SHARDS: usize = 16;

const NIL: usize = usize::MAX;

struct Frame {
    page_id: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// One shard: an independently locked LRU list + page map over a slice
/// of the total capacity.
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    /// Most recently used frame index.
    head: usize,
    /// Least recently used frame index.
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            frames: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Default shard count for a pool of `capacity` pages: `min(16, cores)`
/// rounded down to a power of two, and never more than `capacity` so
/// every shard owns at least one frame.
fn default_shards(capacity: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let want = MAX_DEFAULT_SHARDS.min(cores).min(capacity).max(1);
    // Largest power of two <= want.
    let mut shards = 1;
    while shards * 2 <= want {
        shards *= 2;
    }
    shards
}

/// A shared sharded LRU cache of pages over a [`Pager`].
///
/// All methods take `&self`; the pool is internally synchronized (one
/// mutex per shard) and is typically wrapped in an [`Arc`] shared by
/// every index of a database.
/// WAL attachment of a durable pool: the log plus the spill map
/// (evicted dirty pages -> their frame offset in the log).
struct WalState {
    wal: Wal,
    spilled: HashMap<PageId, u64>,
}

/// A retained pre-image of one page: the bytes the page held when some
/// still-pinned epoch was published, kept alive until no pin at or
/// below `valid_through` remains.
struct Version {
    /// Highest pinned epoch this image serves: a reader pinned at
    /// `p <= valid_through` reads this image (or an older chain entry).
    valid_through: u64,
    image: Box<[u8; PAGE_SIZE]>,
}

/// Epoch bookkeeping for snapshot isolation: active pins and per-page
/// pre-image chains. One mutex guards both so pin registration can
/// never race chain pruning. Lock order: a shard lock may be held while
/// taking this lock; never the reverse.
#[derive(Default)]
struct VersionState {
    /// Active pin count per pinned epoch.
    pins: BTreeMap<u64, usize>,
    /// Pre-image chains, ascending by `valid_through` (at most one
    /// entry per page per published epoch).
    chains: HashMap<PageId, Vec<Version>>,
    /// Pages allocated during the in-flight ingest: invisible to every
    /// pinned snapshot (no pre-existing root can reach them), so they
    /// need no pre-image.
    new_pages: HashSet<PageId>,
}

thread_local! {
    /// The epoch the current thread's reads are pinned to, set by
    /// [`PinGuard`] for the duration of a snapshot query. `None` (the
    /// default everywhere, including the ingest writer) reads the live
    /// frames.
    static PINNED_EPOCH: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII registration of one reader pinned at a published epoch.
///
/// Holding the pin keeps every pre-image chain entry with
/// `valid_through >= epoch` alive; dropping it releases the epoch and
/// prunes chains nobody can read anymore. The pin itself does not
/// redirect reads — wrap the reading code in [`EpochPin::guard`] on
/// each thread that executes a pinned query.
pub struct EpochPin {
    pool: Arc<BufferPool>,
    epoch: u64,
}

impl EpochPin {
    /// The published epoch this pin holds.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Routes this thread's page reads to the pinned epoch until the
    /// guard drops. Nestable; the previous pin (if any) is restored.
    pub fn guard(&self) -> PinGuard {
        let prev = PINNED_EPOCH.with(|c| c.replace(Some(self.epoch)));
        PinGuard { prev }
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.pool.release_pin(self.epoch);
    }
}

/// Thread-local scope during which page reads resolve against a pinned
/// epoch (see [`EpochPin::guard`]).
pub struct PinGuard {
    prev: Option<u64>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        PINNED_EPOCH.with(|c| c.set(self.prev));
    }
}

pub struct BufferPool {
    pager: Pager,
    stats: Arc<IoStats>,
    shards: Box<[Mutex<Shard>]>,
    capacity: usize,
    /// Present in durable (WAL) mode. Lock order: a shard lock may be
    /// held while taking this lock (eviction spill, spill re-read);
    /// never the reverse — [`BufferPool::commit`] collects under shard
    /// locks *before* taking it and cleans dirty bits *after* releasing
    /// it.
    wal: Option<Mutex<WalState>>,
    /// Latest epoch visible to new snapshots. Durable pools initialize
    /// it from the pager's commit token and re-sync it on
    /// [`BufferPool::publish_ingest`]; in-memory pools count publishes.
    /// It deliberately lags the pager epoch between the commit barrier
    /// and publish, so readers never pin state whose catalog they have
    /// not been handed yet.
    published: AtomicU64,
    /// Pins + pre-image chains (see [`VersionState`] for lock order).
    vstate: Mutex<VersionState>,
    /// Number of chain entries; gates the pinned-read lookup so the
    /// unversioned hot path costs one atomic load.
    versioned: AtomicUsize,
    /// Set between [`BufferPool::begin_ingest`] and publish/abort:
    /// `with_page_mut` captures a pre-image before the first
    /// modification of each pre-existing page.
    ingest_active: AtomicBool,
}

impl BufferPool {
    /// Creates a pool over `pager` holding at most `capacity` pages,
    /// with the default shard count (`min(16, cores)` as a power of
    /// two, clamped to `capacity`).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let shards = default_shards(capacity);
        Self::with_shards(pager, capacity, shards)
    }

    /// Creates a pool with an explicit shard count. `shards` must be a
    /// power of two and no larger than `capacity`, so every shard owns
    /// at least one frame. `with_shards(pager, cap, 1)` behaves exactly
    /// like the classic single-mutex global-LRU pool.
    pub fn with_shards(pager: Pager, capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        assert!(
            shards >= 1 && shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(
            shards <= capacity,
            "shard count {shards} exceeds capacity {capacity}: every shard needs a frame"
        );
        let stats = pager.stats();
        // Split the capacity so the per-shard budgets sum exactly to the
        // configured total: the first `capacity % shards` shards take
        // one extra frame.
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards: Vec<Mutex<Shard>> = (0..shards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
            .collect();
        let published = AtomicU64::new(if pager.has_checksums() {
            pager.epoch()
        } else {
            0
        });
        BufferPool {
            pager,
            stats,
            shards: shards.into_boxed_slice(),
            capacity,
            wal: None,
            published,
            vstate: Mutex::new(VersionState::default()),
            versioned: AtomicUsize::new(0),
            ingest_active: AtomicBool::new(false),
        }
    }

    /// Pool with the paper's default 2000-page capacity.
    pub fn with_default_capacity(pager: Pager) -> Self {
        Self::new(pager, DEFAULT_CAPACITY)
    }

    /// Creates a **durable** pool: dirty pages never reach the pager
    /// outside [`BufferPool::commit`]. Evicted dirty pages spill into
    /// `wal` instead of being stolen into the page file (a crash would
    /// otherwise persist half-applied tree mutations under the old
    /// catalog), and [`BufferPool::flush`] becomes a commit: WAL
    /// append + fsync first, pages second, log truncation last.
    ///
    /// `pager` must be durable ([`Pager::create_durable`] /
    /// [`Pager::open_durable`]) so the commit protocol has an epoch to
    /// advance; `wal` is typically the log [`crate::wal::recover`]
    /// returned.
    pub fn with_wal(pager: Pager, capacity: usize, wal: Wal) -> Self {
        assert!(
            pager.has_checksums(),
            "a WAL pool requires a durable pager (epoch + checksums)"
        );
        let mut pool = Self::new(pager, capacity);
        pool.wal = Some(Mutex::new(WalState {
            wal,
            spilled: HashMap::new(),
        }));
        pool
    }

    /// `true` when the pool runs the durable commit protocol.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The underlying pager (epoch and checksum access for recovery
    /// tooling such as `prix fsck`).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Maximum number of resident pages (summed over all shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning page `id`. Sequential ids round-robin across
    /// shards (low-bit assignment), spreading adjacent pages over
    /// different locks.
    #[inline]
    fn shard_of(&self, id: PageId) -> &Mutex<Shard> {
        &self.shards[(id as usize) & (self.shards.len() - 1)]
    }

    /// The shared I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    /// Convenience snapshot of the I/O counters.
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// The latest *published* epoch: what a new snapshot pins. Lags the
    /// pager's commit token between a commit barrier and
    /// [`BufferPool::publish_ingest`].
    pub fn published_epoch(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// The engine-visible commit epoch: the pager's durable token when
    /// there is one, else the in-memory publish counter. What `prix
    /// add`-style offline writers report after a save.
    pub fn current_epoch(&self) -> u64 {
        if self.pager.has_checksums() {
            self.pager.epoch()
        } else {
            self.published.load(Ordering::Acquire)
        }
    }

    /// Observability for long-held reader pins: the number of active
    /// [`EpochPin`] registrations and the oldest epoch any of them
    /// holds (`None` when nothing is pinned). `/metrics` derives the
    /// pinned-epoch lag (`published - oldest`) from this.
    pub fn pinned_epochs(&self) -> (usize, Option<u64>) {
        let vs = self.vstate.lock();
        let count = vs.pins.values().sum();
        let oldest = vs.pins.keys().next().copied();
        (count, oldest)
    }

    /// Re-seeds the epoch clock of a freshly built pool so it continues
    /// a predecessor's sequence. Compaction swaps in a brand-new
    /// mutable database whose pager restarts at epoch 1; snapshots,
    /// epoch-keyed caches, and `/metrics` all require the published
    /// epoch to be monotone across that swap, so the new pool jumps
    /// forward before it is ever published. Only valid outside ingest
    /// mode and only forward.
    pub fn reseed_epoch(&self, epoch: u64) -> Result<()> {
        assert!(
            !self.ingest_active.load(Ordering::Acquire),
            "reseed_epoch during an ingest round"
        );
        let vs = self.vstate.lock();
        assert!(
            vs.pins.is_empty(),
            "reseed_epoch with readers pinned on the old clock"
        );
        if self.pager.has_checksums() && epoch > self.pager.epoch() {
            self.pager.set_epoch(epoch)?;
            self.pager.sync_meta()?;
        }
        let cur = self.published.load(Ordering::Acquire);
        self.published.store(cur.max(epoch), Ordering::Release);
        drop(vs);
        Ok(())
    }

    /// Pins the currently published epoch for a new reader. Registration
    /// shares the chain lock, so a concurrent publish either sees this
    /// pin (and retains its pre-images) or has not yet bumped
    /// `published` (and the pin lands on the new epoch).
    pub fn pin_epoch(self: &Arc<Self>) -> EpochPin {
        let mut vs = self.vstate.lock();
        let epoch = self.published.load(Ordering::Acquire);
        *vs.pins.entry(epoch).or_insert(0) += 1;
        drop(vs);
        EpochPin {
            pool: Arc::clone(self),
            epoch,
        }
    }

    fn release_pin(&self, epoch: u64) {
        let mut vs = self.vstate.lock();
        if let Some(n) = vs.pins.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                vs.pins.remove(&epoch);
            }
        }
        self.prune_locked(&mut vs);
    }

    /// Drops every chain entry no active pin can read. With an ingest
    /// in flight, the current round's captures (`valid_through ==
    /// published`) are always retained: `abort_ingest` needs them even
    /// if no reader does.
    fn prune_locked(&self, vs: &mut VersionState) {
        let min_pin = vs.pins.keys().next().copied();
        let floor = if self.ingest_active.load(Ordering::Acquire) {
            Some(self.published.load(Ordering::Acquire))
        } else {
            None
        };
        let mut dropped = 0usize;
        vs.chains.retain(|_, chain| {
            chain.retain(|v| {
                let keep = min_pin.map_or(false, |m| v.valid_through >= m)
                    || floor.map_or(false, |f| v.valid_through >= f);
                if !keep {
                    dropped += 1;
                }
                keep
            });
            !chain.is_empty()
        });
        if dropped > 0 {
            self.versioned.fetch_sub(dropped, Ordering::Release);
        }
    }

    /// Enters ingest mode: until [`BufferPool::publish_ingest`] or
    /// [`BufferPool::abort_ingest`], the first write to each
    /// pre-existing page captures its pre-image for pinned readers.
    ///
    /// Single-writer protocol: the caller must serialize ingests
    /// externally (the engine's shared wrapper holds its writer lock
    /// across begin → publish).
    pub fn begin_ingest(&self) {
        let already = self.ingest_active.swap(true, Ordering::AcqRel);
        assert!(!already, "nested ingest: the writer must be serialized");
    }

    /// Publishes the committed ingest: re-syncs the published epoch to
    /// the pager's token (in-memory pools count up), leaves ingest
    /// mode, and prunes pre-images nobody pins. Call after the dirty
    /// set is durable (`flush`/`commit`); returns the new epoch.
    pub fn publish_ingest(&self) -> u64 {
        let mut vs = self.vstate.lock();
        let next = if self.pager.has_checksums() {
            self.pager.epoch()
        } else {
            self.published.load(Ordering::Acquire) + 1
        };
        self.published.store(next, Ordering::Release);
        self.ingest_active.store(false, Ordering::Release);
        vs.new_pages.clear();
        self.prune_locked(&mut vs);
        next
    }

    /// Rolls the in-flight ingest back: every page captured this round
    /// is restored to its pre-image (and its WAL spill forgotten), the
    /// published epoch stays put, and ingest mode ends. Pages allocated
    /// during the round leak until the next vacuum — they are
    /// unreferenced, never committed into a catalog.
    pub fn abort_ingest(&self) -> Result<()> {
        let published = self.published.load(Ordering::Acquire);
        let pages: Vec<PageId> = {
            let vs = self.vstate.lock();
            vs.chains
                .iter()
                .filter(|(_, c)| c.last().map_or(false, |v| v.valid_through == published))
                .map(|(&id, _)| id)
                .collect()
        };
        for id in pages {
            let mut shard = self.shard_of(id).lock();
            let idx = self.fetch(&mut shard, id)?;
            let mut vs = self.vstate.lock();
            let restored = match vs.chains.get_mut(&id) {
                Some(chain) if chain.last().map_or(false, |v| v.valid_through == published) => {
                    let v = chain.pop().expect("checked non-empty");
                    shard.frames[idx].data.copy_from_slice(&v.image[..]);
                    // Keep the frame dirty unless it was clean *and*
                    // nothing of this round reached the backing store:
                    // a legacy pool may have stolen the junk image into
                    // the page file, so force a write-back of the
                    // restored bytes.
                    shard.frames[idx].dirty = true;
                    if chain.is_empty() {
                        vs.chains.remove(&id);
                    }
                    true
                }
                _ => false,
            };
            drop(vs);
            if restored {
                self.versioned.fetch_sub(1, Ordering::Release);
                if let Some(walm) = &self.wal {
                    walm.lock().spilled.remove(&id);
                }
            }
        }
        let mut vs = self.vstate.lock();
        vs.new_pages.clear();
        self.ingest_active.store(false, Ordering::Release);
        self.prune_locked(&mut vs);
        Ok(())
    }

    /// Allocates a fresh zeroed page, resident and dirty.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.pager.allocate()?;
        if self.ingest_active.load(Ordering::Acquire) {
            self.vstate.lock().new_pages.insert(id);
        }
        let mut shard = self.shard_of(id).lock();
        let idx = self.take_frame(&mut shard)?;
        shard.frames[idx].page_id = id;
        shard.frames[idx].data.fill(0);
        shard.frames[idx].dirty = true;
        shard.map.insert(id, idx);
        shard.push_front(idx);
        Ok(id)
    }

    /// Runs `f` over an immutable view of page `id`.
    ///
    /// `f` runs under the page's shard lock; accesses to pages on other
    /// shards proceed concurrently. A thread inside a [`PinGuard`]
    /// scope reads the pre-image retained for its pinned epoch when the
    /// page has been modified by a later ingest.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let mut shard = self.shard_of(id).lock();
        if self.versioned.load(Ordering::Acquire) > 0 {
            if let Some(p) = PINNED_EPOCH.with(|c| c.get()) {
                let vs = self.vstate.lock();
                if let Some(chain) = vs.chains.get(&id) {
                    if let Some(v) = chain.iter().find(|v| v.valid_through >= p) {
                        self.stats.record_logical_read();
                        return Ok(f(&v.image));
                    }
                }
            }
        }
        let idx = self.fetch(&mut shard, id)?;
        Ok(f(&shard.frames[idx].data))
    }

    /// Runs `f` over a mutable view of page `id`, marking it dirty.
    ///
    /// During an ingest (between [`BufferPool::begin_ingest`] and
    /// publish/abort) the first modification of each pre-existing page
    /// captures its pre-image, so readers pinned at the still-published
    /// epoch keep seeing the bytes they pinned.
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let mut shard = self.shard_of(id).lock();
        let idx = self.fetch(&mut shard, id)?;
        if self.ingest_active.load(Ordering::Acquire) {
            let mut vs = self.vstate.lock();
            let published = self.published.load(Ordering::Relaxed);
            if !vs.new_pages.contains(&id) {
                let chain = vs.chains.entry(id).or_default();
                if chain.last().map_or(true, |v| v.valid_through != published) {
                    chain.push(Version {
                        valid_through: published,
                        image: shard.frames[idx].data.clone(),
                    });
                    self.versioned.fetch_add(1, Ordering::Release);
                }
            }
        }
        shard.frames[idx].dirty = true;
        Ok(f(&mut shard.frames[idx].data))
    }

    /// Makes all dirty pages durable. In a legacy pool this writes
    /// them straight to the pager (no sync, no atomicity promise); in a
    /// durable pool it delegates to [`BufferPool::commit`].
    ///
    /// Durable pools require external serialization against writers
    /// (`with_page_mut`/`allocate_page`) for the commit to be a
    /// consistent cut — the engine's `save()` takes `&mut self`, which
    /// provides exactly that. Concurrent *readers* are always fine.
    pub fn flush(&self) -> Result<()> {
        if self.wal.is_some() {
            self.commit()
        } else {
            for shard in self.shards.iter() {
                let mut shard = shard.lock();
                self.flush_shard(&mut shard)?;
            }
            Ok(())
        }
    }

    /// [`BufferPool::commit`], under the name recovery literature uses
    /// for "force the dirty set and truncate the log".
    pub fn checkpoint(&self) -> Result<()> {
        self.flush()
    }

    /// Atomically commits the dirty set (durable pools).
    ///
    /// Protocol — the WAL-before-page write ordering:
    ///
    /// 1. collect every dirty page image (pool frames + WAL spills);
    /// 2. append all of them plus a commit record to the WAL as one
    ///    group write, then `fsync` the WAL — from this instant the
    ///    batch is durable, redoable by [`crate::wal::recover`];
    /// 3. write the pages (and their sidecar checksums) to the pager
    ///    and `fsync` both — pages durable, epoch still old;
    /// 4. advance the epoch and `fsync` the sidecar — only now does the
    ///    database claim the batch;
    /// 5. truncate the WAL back to a bare header at the new epoch.
    ///
    /// A crash before step 2's fsync loses the whole batch (the old
    /// epoch's pages were never touched); a crash after it replays the
    /// whole batch on reopen. Nothing in between is observable. Steps
    /// 3 and 4 must be separate barriers: inside one shared barrier a
    /// crash could persist the new epoch over torn pages, and recovery
    /// would discard the very log that could repair them as stale.
    pub fn commit(&self) -> Result<()> {
        let walm = match &self.wal {
            Some(w) => w,
            None => return self.flush(),
        };
        // Phase A: collect dirty images shard by shard. Writers are
        // externally serialized (see `flush`), so this is a consistent
        // cut; readers racing us at worst evict a page we already
        // copied, which re-spills an identical image — harmless.
        let mut images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for f in shard.frames.iter() {
                if f.dirty {
                    images.push((f.page_id, f.data.clone()));
                }
            }
        }
        // Phase B: the durable dance, under the WAL lock (no shard
        // locks held — see the lock-order note on the `wal` field).
        {
            let mut ws = walm.lock();
            let in_pool: HashSet<PageId> = images.iter().map(|(id, _)| *id).collect();
            // Dirty pages evicted earlier this epoch live only in the
            // log; they are part of the write set too.
            let spill_reads: Vec<(PageId, u64)> = ws
                .spilled
                .iter()
                .filter(|(id, _)| !in_pool.contains(id))
                .map(|(&id, &off)| (id, off))
                .collect();
            for (id, off) in spill_reads {
                let rec = ws.wal.read_frame(off)?;
                let mut data = Box::new([0u8; PAGE_SIZE]);
                data.copy_from_slice(&rec.payload);
                images.push((id, data));
            }
            if images.is_empty() {
                return Ok(()); // nothing dirty anywhere: no fsyncs
            }
            let next_epoch = self.pager.epoch() + 1;
            ws.wal.append_commit_batch(&images, next_epoch)?;
            ws.wal.sync()?;
            // WAL-before-page: every image is durable in the log
            // before any of them touches the page file.
            debug_assert!(ws.wal.is_fully_durable());
            for (id, data) in &images {
                self.pager.write_page(*id, data)?;
            }
            // Page-before-epoch: the pages (and their checksums) must
            // be durable before the epoch advance becomes durable. In
            // one shared barrier a crash could persist the new epoch
            // over torn pages — and recovery would discard the very
            // log that could repair them as stale.
            self.pager.sync()?;
            self.pager.set_epoch(next_epoch)?;
            self.pager.sync_meta()?;
            ws.wal.reset(next_epoch)?;
            ws.spilled.clear();
        }
        // Phase C: mark the committed frames clean.
        let committed: HashSet<PageId> = images.iter().map(|(id, _)| *id).collect();
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            for f in shard.frames.iter_mut() {
                if f.dirty && committed.contains(&f.page_id) {
                    f.dirty = false;
                }
            }
        }
        Ok(())
    }

    fn flush_shard(&self, shard: &mut Shard) -> Result<()> {
        let dirty: Vec<usize> = (0..shard.frames.len())
            .filter(|&i| shard.frames[i].dirty)
            .collect();
        for i in dirty {
            self.pager
                .write_page(shard.frames[i].page_id, &shard.frames[i].data)?;
            shard.frames[i].dirty = false;
        }
        Ok(())
    }

    /// Flushes and then drops every resident page, so the next accesses
    /// are physical reads (cold-cache measurement, cf. direct I/O §6.1).
    ///
    /// Each shard is flushed and emptied under its own lock, so readers
    /// racing a `clear` always see either the cached bytes or the
    /// flushed bytes re-read from the pager — never a torn state.
    pub fn clear(&self) -> Result<()> {
        // Durable pools commit first (dirty pages may not bypass the
        // WAL), then drop the now-clean frames.
        if self.wal.is_some() {
            self.commit()?;
        }
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            if self.wal.is_none() {
                self.flush_shard(&mut shard)?;
            }
            shard.frames.clear();
            shard.map.clear();
            shard.head = NIL;
            shard.tail = NIL;
        }
        Ok(())
    }

    /// Number of pages currently resident (summed over all shards).
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Loads page `id` into a frame of its shard (hit or miss) and
    /// returns its index, moving it to the shard's MRU position.
    fn fetch(&self, shard: &mut Shard, id: PageId) -> Result<usize> {
        self.stats.record_logical_read();
        if let Some(&idx) = shard.map.get(&id) {
            shard.detach(idx);
            shard.push_front(idx);
            return Ok(idx);
        }
        let idx = self.take_frame(shard)?;
        // A dirty page evicted earlier this epoch lives in the WAL,
        // not the page file; its spilled image stays dirty (it has not
        // been committed).
        let mut dirty = false;
        match self.spilled_frame(id)? {
            Some(payload) => {
                self.stats.record_physical_read();
                shard.frames[idx].data.copy_from_slice(&payload);
                dirty = true;
            }
            None => self.pager.read_page(id, &mut shard.frames[idx].data)?,
        }
        shard.frames[idx].page_id = id;
        shard.frames[idx].dirty = dirty;
        shard.map.insert(id, idx);
        shard.push_front(idx);
        Ok(idx)
    }

    /// Looks up `id` in the WAL spill map and reads its image back, or
    /// `None` when the page is not spilled (or the pool is legacy).
    fn spilled_frame(&self, id: PageId) -> Result<Option<Vec<u8>>> {
        let walm = match &self.wal {
            Some(w) => w,
            None => return Ok(None),
        };
        let ws = walm.lock();
        match ws.spilled.get(&id) {
            Some(&off) => Ok(Some(ws.wal.read_frame(off)?.payload)),
            None => Ok(None),
        }
    }

    /// Produces a detached frame index: grows the shard if below its
    /// capacity, otherwise evicts its LRU frame (writing it back if
    /// dirty).
    fn take_frame(&self, shard: &mut Shard) -> Result<usize> {
        if shard.frames.len() < shard.capacity {
            shard.frames.push(Frame {
                page_id: PageId::MAX,
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            return Ok(shard.frames.len() - 1);
        }
        let victim = shard.tail;
        debug_assert_ne!(victim, NIL, "capacity >= 1 guarantees a victim");
        shard.detach(victim);
        let old_id = shard.frames[victim].page_id;
        shard.map.remove(&old_id);
        if shard.frames[victim].dirty {
            match &self.wal {
                // Durable pools never steal a dirty page into the page
                // file mid-epoch: spill its image to the WAL instead
                // (un-synced — it carries no durability promise, it
                // just has to be re-readable until the next commit).
                Some(walm) => {
                    let mut ws = walm.lock();
                    let off = ws.wal.append_page(old_id, &shard.frames[victim].data)?;
                    ws.spilled.insert(old_id, off);
                }
                None => self.pager.write_page(old_id, &shard.frames[victim].data)?,
            }
            shard.frames[victim].dirty = false;
        }
        Ok(victim)
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // A failed flush here has no caller to report to, but it must
        // not vanish: pages may not have reached the backing store.
        // Count it (surfaced as `flush_errors` in /metrics) and say so
        // on stderr.
        if let Err(e) = self.flush() {
            self.stats.record_flush_error();
            eprintln!("prix-storage: buffer pool flush failed during drop: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_pool(cap: usize) -> BufferPool {
        BufferPool::new(Pager::in_memory(), cap)
    }

    #[test]
    fn allocate_then_read_back() {
        let pool = mem_pool(4);
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |d| d[10] = 99).unwrap();
        let v = pool.with_page(p, |d| d[10]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn hits_do_not_cause_physical_reads() {
        let pool = mem_pool(4);
        let p = pool.allocate_page().unwrap();
        let before = pool.snapshot();
        for _ in 0..10 {
            pool.with_page(p, |_| ()).unwrap();
        }
        let d = pool.snapshot().since(&before);
        assert_eq!(d.logical_reads, 10);
        assert_eq!(d.physical_reads, 0);
    }

    #[test]
    fn eviction_respects_lru_order() {
        // One shard makes eviction order globally deterministic, like
        // the classic single-mutex pool.
        let pool = BufferPool::with_shards(Pager::in_memory(), 2, 1);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        let c = pool.allocate_page().unwrap(); // evicts a (LRU)
        let before = pool.snapshot();
        pool.with_page(b, |_| ()).unwrap(); // hit
        pool.with_page(c, |_| ()).unwrap(); // hit
        assert_eq!(pool.snapshot().since(&before).physical_reads, 0);
        pool.with_page(a, |_| ()).unwrap(); // miss
        assert_eq!(pool.snapshot().since(&before).physical_reads, 1);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let pool = mem_pool(1);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[0] = 7).unwrap();
        let b = pool.allocate_page().unwrap(); // evicts a, must write it
        pool.with_page_mut(b, |d| d[0] = 8).unwrap();
        let va = pool.with_page(a, |d| d[0]).unwrap(); // evicts b
        assert_eq!(va, 7);
        let vb = pool.with_page(b, |d| d[0]).unwrap();
        assert_eq!(vb, 8);
    }

    #[test]
    fn clear_forces_cold_reads() {
        let pool = mem_pool(8);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[3] = 5).unwrap();
        pool.clear().unwrap();
        assert_eq!(pool.resident(), 0);
        let before = pool.snapshot();
        let v = pool.with_page(a, |d| d[3]).unwrap();
        assert_eq!(v, 5);
        assert_eq!(pool.snapshot().since(&before).physical_reads, 1);
    }

    #[test]
    fn many_pages_under_small_pool() {
        let pool = mem_pool(3);
        let ids: Vec<_> = (0..50).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |d| d[0] = i as u8).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            let v = pool.with_page(id, |d| d[0]).unwrap();
            assert_eq!(v, i as u8);
        }
        assert!(pool.resident() <= 3);
    }

    #[test]
    fn default_shard_count_is_power_of_two_and_capped() {
        for cap in [1, 2, 3, 7, 8, 100, DEFAULT_CAPACITY] {
            let pool = mem_pool(cap);
            let n = pool.shard_count();
            assert!(n.is_power_of_two(), "cap {cap}: {n} shards");
            assert!(n <= cap, "cap {cap}: {n} shards");
            assert!(n <= MAX_DEFAULT_SHARDS, "cap {cap}: {n} shards");
            assert_eq!(pool.capacity(), cap);
        }
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        // Capacity 5 over 4 shards: 2+1+1+1. Fill with far more pages
        // than capacity; residency never exceeds the configured total.
        let pool = BufferPool::with_shards(Pager::in_memory(), 5, 4);
        let ids: Vec<_> = (0..64).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |d| d[1] = i as u8).unwrap();
        }
        assert!(pool.resident() <= 5);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(id, |d| d[1]).unwrap(), i as u8);
        }
        assert!(pool.resident() <= 5);
    }

    #[test]
    fn sharded_and_global_pools_agree_on_cold_misses() {
        // Without eviction pressure, cold-cache physical reads are one
        // per distinct page regardless of sharding — the invariant that
        // keeps the paper's Disk-IO columns stable.
        for shards in [1usize, 2, 4, 8] {
            let pool = BufferPool::with_shards(Pager::in_memory(), 64, shards);
            let ids: Vec<_> = (0..32).map(|_| pool.allocate_page().unwrap()).collect();
            pool.clear().unwrap();
            let before = pool.snapshot();
            for &id in &ids {
                pool.with_page(id, |_| ()).unwrap();
                pool.with_page(id, |_| ()).unwrap(); // hit
            }
            let d = pool.snapshot().since(&before);
            assert_eq!(d.physical_reads, 32, "{shards} shards");
            assert_eq!(d.logical_reads, 64, "{shards} shards");
        }
    }

    fn durable_pool(cap: usize) -> (BufferPool, crate::store::MemStore) {
        use crate::store::MemStore;
        let db = MemStore::new();
        let sum = MemStore::new();
        let wal_store = MemStore::new();
        let pager = Pager::create_durable(Box::new(db.clone()), Box::new(sum)).unwrap();
        let stats = pager.stats();
        let wal = Wal::create(Box::new(wal_store), pager.epoch(), stats).unwrap();
        (BufferPool::with_wal(pager, cap, wal), db)
    }

    #[test]
    fn durable_pool_spills_evicted_dirty_pages_to_wal() {
        // Capacity 1 forces an eviction per access; the page file must
        // stay untouched until commit (no stealing mid-epoch), yet
        // every page reads back correctly via the WAL spill path.
        let (pool, db) = durable_pool(1);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[0] = 7).unwrap();
        let b = pool.allocate_page().unwrap(); // evicts a -> WAL spill
        pool.with_page_mut(b, |d| d[0] = 8).unwrap();
        let page_a_on_disk = db.snapshot()[a as usize * PAGE_SIZE];
        assert_eq!(page_a_on_disk, 0, "dirty page must not reach the page file");
        assert!(pool.snapshot().wal_appends >= 1);
        assert_eq!(pool.with_page(a, |d| d[0]).unwrap(), 7, "spill re-read");
        assert_eq!(pool.with_page(b, |d| d[0]).unwrap(), 8);
        pool.commit().unwrap();
        assert_eq!(db.snapshot()[a as usize * PAGE_SIZE], 7, "committed");
        assert_eq!(db.snapshot()[b as usize * PAGE_SIZE], 8);
        assert_eq!(pool.pager().epoch(), 2);
    }

    #[test]
    fn durable_pool_many_pages_under_small_pool() {
        // The durable twin of `many_pages_under_small_pool`: spilling
        // must respect the residency budget, and a commit + cold
        // re-read round-trips every page with checksums verified.
        let (pool, _db) = durable_pool(3);
        let ids: Vec<_> = (0..50).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |d| d[0] = i as u8).unwrap();
        }
        assert!(pool.resident() <= 3);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(id, |d| d[0]).unwrap(), i as u8);
        }
        pool.clear().unwrap();
        assert_eq!(pool.resident(), 0);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(id, |d| d[0]).unwrap(), i as u8, "cold");
        }
        pool.pager().verify_checksums().unwrap();
    }

    #[test]
    fn commit_fsync_budget_and_empty_commit_is_free() {
        let (pool, _db) = durable_pool(8);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[1] = 1).unwrap();
        let before = pool.snapshot();
        pool.commit().unwrap();
        let d = pool.snapshot().since(&before);
        // WAL group sync + page file + sidecar + epoch advance + WAL
        // truncation sync.
        assert_eq!(d.fsyncs, 5, "group commit costs a fixed fsync budget");
        assert_eq!(d.wal_appends, 1);
        let before = pool.snapshot();
        pool.commit().unwrap(); // nothing dirty
        assert_eq!(pool.snapshot().since(&before).fsyncs, 0);
        pool.checkpoint().unwrap(); // alias, also clean
        assert_eq!(pool.snapshot().since(&before).fsyncs, 0);
    }

    #[test]
    fn pinned_reader_sees_pre_ingest_image() {
        let pool = Arc::new(mem_pool(4));
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |d| d[0] = 1).unwrap();
        let pin = pool.pin_epoch();
        assert_eq!(pin.epoch(), 0);
        pool.begin_ingest();
        pool.with_page_mut(p, |d| d[0] = 2).unwrap();
        // Unpinned (writer-side) reads see the in-flight bytes...
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 2);
        // ...pinned reads keep the pre-image, before and after publish.
        {
            let _g = pin.guard();
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 1);
        }
        assert_eq!(pool.publish_ingest(), 1);
        assert_eq!(pool.published_epoch(), 1);
        {
            let _g = pin.guard();
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 1);
        }
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 2);
        // Dropping the pin prunes the chain; fresh pins read live bytes.
        drop(pin);
        assert_eq!(pool.versioned.load(Ordering::Acquire), 0);
        let pin2 = pool.pin_epoch();
        assert_eq!(pin2.epoch(), 1);
        let _g = pin2.guard();
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 2);
    }

    #[test]
    fn version_chain_serves_multiple_pinned_epochs() {
        let pool = Arc::new(mem_pool(4));
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |d| d[0] = 10).unwrap();
        let pin0 = pool.pin_epoch();
        pool.begin_ingest();
        pool.with_page_mut(p, |d| d[0] = 11).unwrap();
        pool.publish_ingest();
        let pin1 = pool.pin_epoch();
        pool.begin_ingest();
        pool.with_page_mut(p, |d| d[0] = 12).unwrap();
        pool.publish_ingest();
        {
            let _g = pin0.guard();
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 10, "epoch 0 view");
        }
        {
            let _g = pin1.guard();
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 11, "epoch 1 view");
        }
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 12, "live view");
        // Releasing the oldest pin prunes only its entry.
        drop(pin0);
        assert_eq!(pool.versioned.load(Ordering::Acquire), 1);
        drop(pin1);
        assert_eq!(pool.versioned.load(Ordering::Acquire), 0);
    }

    #[test]
    fn pinned_view_survives_eviction_pressure() {
        // Capacity 1: every access evicts. Pre-images live outside the
        // frame budget, so pinned reads stay correct under churn.
        let pool = Arc::new(BufferPool::with_shards(Pager::in_memory(), 1, 1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[0] = 1).unwrap();
        pool.with_page_mut(b, |d| d[0] = 2).unwrap();
        let pin = pool.pin_epoch();
        pool.begin_ingest();
        pool.with_page_mut(a, |d| d[0] = 101).unwrap();
        pool.with_page_mut(b, |d| d[0] = 102).unwrap();
        pool.publish_ingest();
        let _g = pin.guard();
        for _ in 0..3 {
            assert_eq!(pool.with_page(a, |d| d[0]).unwrap(), 1);
            assert_eq!(pool.with_page(b, |d| d[0]).unwrap(), 2);
        }
    }

    #[test]
    fn abort_ingest_restores_pre_images() {
        let pool = Arc::new(mem_pool(4));
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |d| d[0] = 5).unwrap();
        pool.begin_ingest();
        pool.with_page_mut(p, |d| d[0] = 99).unwrap();
        let junk = pool.allocate_page().unwrap();
        pool.with_page_mut(junk, |d| d[0] = 77).unwrap();
        pool.abort_ingest().unwrap();
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 5, "rolled back");
        assert_eq!(pool.published_epoch(), 0, "no publish happened");
        // A later ingest starts from the restored state.
        pool.begin_ingest();
        pool.with_page_mut(p, |d| d[0] = 6).unwrap();
        assert_eq!(pool.publish_ingest(), 1);
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 6);
    }

    #[test]
    fn durable_publish_tracks_pager_epoch() {
        let (pool, _db) = durable_pool(8);
        let pool = Arc::new(pool);
        assert_eq!(pool.published_epoch(), pool.pager().epoch());
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |d| d[0] = 3).unwrap();
        let pin = pool.pin_epoch();
        pool.begin_ingest();
        pool.with_page_mut(p, |d| d[0] = 4).unwrap();
        pool.commit().unwrap();
        // Between the commit barrier and publish, the published epoch
        // lags the pager token — readers keep the old pin target.
        assert_eq!(pool.pager().epoch(), pool.published_epoch() + 1);
        let published = pool.publish_ingest();
        assert_eq!(published, pool.pager().epoch());
        let _g = pin.guard();
        assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), 3, "pinned view");
        assert_eq!(pool.current_epoch(), published);
    }

    #[test]
    fn concurrent_access_across_shards() {
        let pool = std::sync::Arc::new(BufferPool::with_shards(Pager::in_memory(), 64, 8));
        let ids: Vec<_> = (0..48).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |d| d[2] = i as u8).unwrap();
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = &pool;
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..50 {
                        for (i, &id) in ids.iter().enumerate() {
                            if (i + round) % 3 == 0 {
                                continue;
                            }
                            assert_eq!(pool.with_page(id, |d| d[2]).unwrap(), i as u8);
                        }
                    }
                });
            }
        });
    }
}
