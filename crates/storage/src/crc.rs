//! CRC-32 (IEEE 802.3), implemented in-repo to keep the workspace
//! hermetic.
//!
//! Used by the durability layer for two independent jobs:
//!
//! * **WAL frames** — a torn tail (partial append at the crash point)
//!   must be distinguishable from a complete record, so every frame
//!   carries a CRC over its header fields and payload.
//! * **Page checksums** — every page write records a CRC in the
//!   checksum sidecar; cold reads verify it, turning a torn 512-byte
//!   sector into a hard [`crate::StorageError::Corrupt`] instead of a
//!   silently wrong query answer.
//!
//! Standard reflected CRC-32 with polynomial `0xEDB88320` (the
//! zlib/Ethernet one), byte-at-a-time with a 256-entry table built at
//! compile time. Throughput is a non-issue here: the hot path hashes 8 KiB
//! pages, and table lookup runs at roughly a byte per cycle — far below
//! the cost of the `fsync` that accompanies every durable write.

const TABLE: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continues a CRC-32 computation: `crc32_update(crc32(a), b)` equals
/// `crc32(a ++ b)`, so multi-part records hash without concatenation.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values (zlib, Ethernet, PNG).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn update_matches_concatenation() {
        let (a, b) = (&b"hello "[..], &b"world"[..]);
        let whole = crc32(b"hello world");
        assert_eq!(crc32_update(crc32(a), b), whole);
        // Splitting anywhere gives the same digest.
        let data = b"0123456789abcdef";
        for split in 0..=data.len() {
            assert_eq!(
                crc32_update(crc32(&data[..split]), &data[split..]),
                crc32(data)
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let mut page = vec![0xA5u8; 512];
        let clean = crc32(&page);
        for bit in [0usize, 7, 1000, 4095] {
            page[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&page), clean, "bit {bit}");
            page[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&page), clean);
    }
}
