//! Storage error type.

use std::fmt;
use std::io;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page contained data that does not decode as expected.
    Corrupt {
        /// Offending page.
        page: u64,
        /// What went wrong.
        reason: String,
    },
    /// A key or record exceeds what a page layout can hold.
    TooLarge {
        /// Payload size that was attempted.
        size: usize,
        /// Maximum size the layout supports.
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { page, reason } => {
                write!(f, "corrupt page {page}: {reason}")
            }
            StorageError::TooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds layout maximum {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = StorageError::TooLarge {
            size: 9000,
            max: 8000,
        };
        assert!(e.to_string().contains("9000"));
        let e = StorageError::Corrupt {
            page: 7,
            reason: "bad type".into(),
        };
        assert!(e.to_string().contains("page 7"));
    }

    #[test]
    fn io_error_converts() {
        let e: StorageError = io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
