//! Disk-based storage substrate for the PRIX reproduction.
//!
//! The paper's evaluation (§6.1) runs every index on GiST B⁺-trees over
//! 8 KiB pages with a 2000-page buffer pool and direct I/O, and reports
//! cost as *pages read from disk*. This crate rebuilds that substrate:
//!
//! * [`Pager`] — a page-granular backing store (file or in-memory),
//! * [`BufferPool`] — a fixed-capacity *sharded* LRU cache over a pager
//!   (one lock per shard, so concurrent queries don't serialize on a
//!   global mutex) that counts logical and physical page accesses
//!   ([`IoStats`]); clearing the pool ([`BufferPool::clear`]) gives the
//!   cold-cache runs the paper measures with direct I/O,
//! * [`BPlusTree`] — a B⁺-tree over byte-string keys (memcmp order) with
//!   duplicate-key support, point/range scans, and sorted bulk loading,
//! * [`RecordStore`] — a heap file for variable-length records (NPS
//!   arrays, leaf-node lists, positional streams) with overflow chains.
//!
//! All components of one database share a single buffer pool, so the
//! "Disk IO (pages)" columns of Tables 4–9 fall out of
//! [`IoStats::physical_reads`].

pub mod bptree;
pub mod buffer;
pub mod crc;
pub mod error;
pub mod pager;
pub mod record;
pub mod segment;
pub mod stats;
pub mod store;
pub mod sync;
pub mod wal;

pub use bptree::BPlusTree;
pub use buffer::{BufferPool, EpochPin, PinGuard};
pub use crc::crc32;
pub use error::{Result, StorageError};
pub use pager::{PageId, Pager, NIL_PAGE, PAGE_SIZE};
pub use record::{RecordId, RecordStore};
pub use segment::{
    env_temp_factory, FileSegEnv, Manifest, ManifestSegment, MemSegEnv, SegTrieStats,
    SegmentBuilder, SegmentCheck, SegmentEnv, SegmentReader, SEG_KIND_EP, SEG_KIND_RP,
};
pub use stats::{IoScope, IoSnapshot, IoStats};
pub use store::{FileStore, MemStore, RawStore};
pub use wal::{recover, LogRecord, RecoveryReport, Wal};
