//! Page-granular backing store.
//!
//! A [`Pager`] owns a flat array of fixed-size pages, either in a file
//! (the realistic configuration, matching the paper's on-disk indexes) or
//! in memory (hermetic tests). Page 0 is reserved at creation so that
//! [`NIL_PAGE`] (= 0) can serve as a null pointer in page layouts.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::Result;
use crate::sync::Mutex;
use crate::stats::IoStats;

/// Size of every page, matching the paper's 8 K page configuration §6.1.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a pager.
pub type PageId = u64;

/// Null page pointer (page 0 is reserved and never handed out).
pub const NIL_PAGE: PageId = 0;

enum Backend {
    File(File),
    Memory(Mutex<Vec<Box<[u8; PAGE_SIZE]>>>),
}

/// A fixed-page-size backing store with atomic page allocation.
///
/// The pager itself performs raw reads/writes; the [`crate::BufferPool`]
/// layers caching and I/O accounting on top. All methods take `&self` and
/// are thread-safe.
pub struct Pager {
    backend: Backend,
    next_page: AtomicU64,
    stats: Arc<IoStats>,
}

impl Pager {
    /// Creates (truncating) a file-backed pager at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let pager = Pager {
            backend: Backend::File(file),
            next_page: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        };
        pager.reserve_meta_page()?;
        Ok(pager)
    }

    /// Opens an existing file-backed pager, preserving its pages.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = len / PAGE_SIZE as u64;
        if pages == 0 {
            return Err(crate::error::StorageError::Corrupt {
                page: 0,
                reason: "file too small to be a pager database".into(),
            });
        }
        Ok(Pager {
            backend: Backend::File(file),
            next_page: AtomicU64::new(pages),
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Creates an in-memory pager (tests, micro-benches).
    pub fn in_memory() -> Self {
        let pager = Pager {
            backend: Backend::Memory(Mutex::new(Vec::new())),
            next_page: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        };
        pager
            .reserve_meta_page()
            .expect("in-memory allocation cannot fail");
        pager
    }

    fn reserve_meta_page(&self) -> Result<()> {
        let id = self.allocate()?;
        debug_assert_eq!(id, 0);
        Ok(())
    }

    /// The I/O counters shared with buffer pools over this pager.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Allocates a fresh zeroed page and returns its id.
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.next_page.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::File(file) => {
                // Extend the file eagerly so reads of fresh pages succeed.
                file.set_len((id + 1) * PAGE_SIZE as u64)?;
            }
            Backend::Memory(pages) => {
                pages.lock().push(Box::new([0u8; PAGE_SIZE]));
            }
        }
        Ok(id)
    }

    /// Number of allocated pages (including the reserved page 0).
    pub fn num_pages(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Reads page `id` into `buf`. Counts as a physical read.
    pub fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        debug_assert!(id < self.num_pages(), "read of unallocated page {id}");
        self.stats.record_physical_read();
        match &self.backend {
            Backend::File(file) => {
                use std::os::unix::fs::FileExt;
                file.read_exact_at(buf, id * PAGE_SIZE as u64)?;
            }
            Backend::Memory(pages) => {
                buf.copy_from_slice(&pages.lock()[id as usize][..]);
            }
        }
        Ok(())
    }

    /// Writes `buf` to page `id`. Counts as a physical write.
    pub fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        debug_assert!(id < self.num_pages(), "write of unallocated page {id}");
        self.stats.record_physical_write();
        match &self.backend {
            Backend::File(file) => {
                use std::os::unix::fs::FileExt;
                file.write_all_at(buf, id * PAGE_SIZE as u64)?;
            }
            Backend::Memory(pages) => {
                pages.lock()[id as usize].copy_from_slice(buf);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pager_roundtrip() {
        let p = Pager::in_memory();
        let a = p.allocate().unwrap();
        assert_eq!(a, 1, "page 0 is reserved");
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        p.write_page(a, &page).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn file_pager_roundtrip() {
        let dir = std::env::temp_dir().join(format!("prix-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let p = Pager::create(&path).unwrap();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let mut pa = [1u8; PAGE_SIZE];
        pa[7] = 42;
        p.write_page(a, &pa).unwrap();
        let pb = [2u8; PAGE_SIZE];
        p.write_page(b, &pb).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        assert_eq!(back[7], 42);
        p.read_page(b, &mut back).unwrap();
        assert_eq!(back[0], 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_pages_read_as_zero() {
        let p = Pager::in_memory();
        let a = p.allocate().unwrap();
        let mut buf = [9u8; PAGE_SIZE];
        p.read_page(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn stats_count_physical_io() {
        let p = Pager::in_memory();
        let a = p.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        p.write_page(a, &buf).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        p.read_page(a, &mut back).unwrap();
        let s = p.stats().snapshot();
        assert_eq!(s.physical_writes, 1);
        assert_eq!(s.physical_reads, 2);
    }
}
