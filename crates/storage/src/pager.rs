//! Page-granular backing store.
//!
//! A [`Pager`] owns a flat array of fixed-size pages over a
//! [`RawStore`], either a file (the realistic configuration, matching
//! the paper's on-disk indexes) or memory (hermetic tests). Page 0 is
//! reserved at creation so that [`NIL_PAGE`] (= 0) can serve as a null
//! pointer in page layouts.
//!
//! # Durable mode: checksum sidecar + epoch
//!
//! A pager opened through [`Pager::create_durable`]/[`Pager::open_durable`]
//! additionally maintains a **checksum sidecar** (`<db>.sum` on disk):
//! a 16-byte header (magic + the database **epoch**) followed by one
//! CRC-32 entry per page. Every page write updates its entry; every
//! page read verifies it, so a torn sector or bit rot surfaces as
//! [`StorageError::Corrupt`] instead of a silently wrong answer. The
//! page file's own layout is byte-identical to legacy mode — page `i`
//! lives at offset `i * PAGE_SIZE` — so legacy databases stay readable.
//!
//! The epoch counts committed write batches. The write-ahead log
//! ([`crate::wal`]) stamps its frames with the epoch they extend;
//! comparing the two on open is how recovery tells "crashed before the
//! commit hit the page file — replay" from "stale log left behind by a
//! crash after the pages were durable — discard".
//!
//! A checksum entry of 0 means "never written, skip verification"
//! (fresh pages read as zeroes before first write). A real CRC of 0 is
//! stored as 1, trading a 2⁻³² sliver of detection strength for an
//! unambiguous sentinel.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::crc::crc32;
use crate::error::{Result, StorageError};
use crate::stats::IoStats;
use crate::store::{FileStore, MemStore, RawStore};

/// Size of every page, matching the paper's 8 K page configuration §6.1.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a pager.
pub type PageId = u64;

/// Null page pointer (page 0 is reserved and never handed out).
pub const NIL_PAGE: PageId = 0;

/// Magic prefix of a checksum sidecar.
pub const SUM_MAGIC: &[u8; 8] = b"PRIXSUM\0";

/// Sidecar header: magic (8 bytes) + epoch (u64 LE).
const SUM_HEADER: u64 = 16;

/// Checksum sidecar: per-page CRC entries plus the database epoch.
struct SumFile {
    store: Box<dyn RawStore>,
    epoch: AtomicU64,
}

/// Maps a page CRC to its stored entry: 0 is reserved for "never
/// written", so a genuine CRC of 0 is stored as 1.
fn encode_crc(crc: u32) -> u32 {
    crc.max(1)
}

impl SumFile {
    fn create(store: Box<dyn RawStore>, epoch: u64) -> Result<Self> {
        store.set_len(0)?;
        let mut header = [0u8; SUM_HEADER as usize];
        header[..8].copy_from_slice(SUM_MAGIC);
        header[8..16].copy_from_slice(&epoch.to_le_bytes());
        store.write_at(0, &header)?;
        Ok(SumFile {
            store,
            epoch: AtomicU64::new(epoch),
        })
    }

    fn open(store: Box<dyn RawStore>) -> Result<Self> {
        let mut header = [0u8; SUM_HEADER as usize];
        if store.len()? < SUM_HEADER {
            return Err(StorageError::Corrupt {
                page: 0,
                reason: "checksum sidecar too small for its header".into(),
            });
        }
        store.read_at(0, &mut header)?;
        if &header[..8] != SUM_MAGIC {
            return Err(StorageError::Corrupt {
                page: 0,
                reason: "checksum sidecar has bad magic".into(),
            });
        }
        let epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());
        Ok(SumFile {
            store,
            epoch: AtomicU64::new(epoch),
        })
    }

    /// Stored entry for `page`, or 0 ("unknown") when the sidecar has
    /// not grown past it yet.
    fn entry(&self, page: PageId) -> Result<u32> {
        let off = SUM_HEADER + page * 4;
        if self.store.len()? < off + 4 {
            return Ok(0);
        }
        let mut buf = [0u8; 4];
        self.store.read_at(off, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn set_entry(&self, page: PageId, value: u32) -> Result<()> {
        self.store
            .write_at(SUM_HEADER + page * 4, &value.to_le_bytes())
    }

    fn set_epoch(&self, epoch: u64) -> Result<()> {
        self.store.write_at(8, &epoch.to_le_bytes())?;
        self.epoch.store(epoch, Ordering::Relaxed);
        Ok(())
    }
}

/// A fixed-page-size backing store with atomic page allocation.
///
/// The pager itself performs raw reads/writes; the [`crate::BufferPool`]
/// layers caching and I/O accounting on top. All methods take `&self` and
/// are thread-safe.
pub struct Pager {
    store: Box<dyn RawStore>,
    sum: Option<SumFile>,
    next_page: AtomicU64,
    stats: Arc<IoStats>,
}

impl Pager {
    /// Creates (truncating) a file-backed pager at `path` in legacy
    /// mode: no checksums, no epoch. Durable databases use
    /// [`Pager::create_durable`].
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::create_on(Box::new(FileStore::create(path)?))
    }

    /// Creates a legacy-mode pager over an arbitrary store (truncated).
    pub fn create_on(store: Box<dyn RawStore>) -> Result<Self> {
        store.set_len(0)?;
        let pager = Pager {
            store,
            sum: None,
            next_page: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        };
        pager.reserve_meta_page()?;
        Ok(pager)
    }

    /// Opens an existing file-backed pager, preserving its pages
    /// (legacy mode: reads are not checksum-verified).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_on(Box::new(FileStore::open(path)?))
    }

    /// Opens a legacy-mode pager over an arbitrary store.
    pub fn open_on(store: Box<dyn RawStore>) -> Result<Self> {
        let pages = store.len()? / PAGE_SIZE as u64;
        if pages == 0 {
            return Err(StorageError::Corrupt {
                page: 0,
                reason: "file too small to be a pager database".into(),
            });
        }
        Ok(Pager {
            store,
            sum: None,
            next_page: AtomicU64::new(pages),
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Creates (truncating) a durable pager: `db` holds the pages,
    /// `sum` the checksum sidecar. The epoch starts at 1.
    pub fn create_durable(db: Box<dyn RawStore>, sum: Box<dyn RawStore>) -> Result<Self> {
        db.set_len(0)?;
        let sum = SumFile::create(sum, 1)?;
        let pager = Pager {
            store: db,
            sum: Some(sum),
            next_page: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        };
        pager.reserve_meta_page()?;
        Ok(pager)
    }

    /// Opens a durable pager over existing `db` + `sum` stores. Cold
    /// reads verify page checksums from here on. Run
    /// [`crate::wal::recover`] before trusting the contents.
    pub fn open_durable(db: Box<dyn RawStore>, sum: Box<dyn RawStore>) -> Result<Self> {
        let pages = db.len()? / PAGE_SIZE as u64;
        if pages == 0 {
            return Err(StorageError::Corrupt {
                page: 0,
                reason: "file too small to be a pager database".into(),
            });
        }
        let sum = SumFile::open(sum)?;
        Ok(Pager {
            store: db,
            sum: Some(sum),
            next_page: AtomicU64::new(pages),
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Creates an in-memory pager (tests, micro-benches).
    pub fn in_memory() -> Self {
        let pager = Pager {
            store: Box::new(MemStore::new()),
            sum: None,
            next_page: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        };
        pager
            .reserve_meta_page()
            .expect("in-memory allocation cannot fail");
        pager
    }

    fn reserve_meta_page(&self) -> Result<()> {
        let id = self.allocate()?;
        debug_assert_eq!(id, 0);
        Ok(())
    }

    /// The I/O counters shared with buffer pools over this pager.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// `true` when reads are checksum-verified (durable mode).
    pub fn has_checksums(&self) -> bool {
        self.sum.is_some()
    }

    /// The database epoch (committed batch count). Panics on a legacy
    /// pager, which has no epoch.
    pub fn epoch(&self) -> u64 {
        self.sum
            .as_ref()
            .expect("epoch requires a durable pager")
            .epoch
            .load(Ordering::Relaxed)
    }

    /// Advances the database epoch (not durable until [`Pager::sync`]).
    pub fn set_epoch(&self, epoch: u64) -> Result<()> {
        self.sum
            .as_ref()
            .expect("epoch requires a durable pager")
            .set_epoch(epoch)
    }

    /// Durability barrier over the checksum sidecar only. The commit
    /// protocol uses this for the epoch advance: the epoch may only
    /// become durable *after* a full [`Pager::sync`] has landed the
    /// pages, never in the same barrier — a crash inside one shared
    /// barrier could persist the new epoch over torn pages, and
    /// recovery would then discard the log that could repair them.
    pub fn sync_meta(&self) -> Result<()> {
        if let Some(sum) = &self.sum {
            sum.store.sync()?;
            self.stats.record_fsync();
        }
        Ok(())
    }

    /// Durability barrier over the page file and the checksum sidecar.
    pub fn sync(&self) -> Result<()> {
        self.store.sync()?;
        self.stats.record_fsync();
        if let Some(sum) = &self.sum {
            sum.store.sync()?;
            self.stats.record_fsync();
        }
        Ok(())
    }

    /// Allocates a fresh zeroed page and returns its id.
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.next_page.fetch_add(1, Ordering::Relaxed);
        // Extend the store eagerly so reads of fresh pages succeed.
        self.store.set_len((id + 1) * PAGE_SIZE as u64)?;
        Ok(id)
    }

    /// Number of allocated pages (including the reserved page 0).
    pub fn num_pages(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Grows the pager to cover page `id` if it does not already
    /// (recovery replays pages whose length extension a crash lost).
    pub fn ensure_allocated(&self, id: PageId) -> Result<()> {
        let mut cur = self.next_page.load(Ordering::Relaxed);
        while cur <= id {
            match self
                .next_page
                .compare_exchange(cur, id + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        if self.store.len()? < (id + 1) * PAGE_SIZE as u64 {
            self.store.set_len((id + 1) * PAGE_SIZE as u64)?;
        }
        Ok(())
    }

    /// Reads page `id` into `buf`. Counts as a physical read. In
    /// durable mode the page is verified against its sidecar checksum;
    /// a mismatch (torn write, bit rot) is [`StorageError::Corrupt`].
    pub fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        debug_assert!(id < self.num_pages(), "read of unallocated page {id}");
        self.stats.record_physical_read();
        self.store.read_at(id * PAGE_SIZE as u64, buf)?;
        if let Some(sum) = &self.sum {
            let want = sum.entry(id)?;
            if want != 0 && want != encode_crc(crc32(buf)) {
                return Err(StorageError::Corrupt {
                    page: id,
                    reason: "checksum mismatch (torn or corrupted page)".into(),
                });
            }
        }
        Ok(())
    }

    /// Writes `buf` to page `id`. Counts as a physical write. In
    /// durable mode the sidecar checksum entry is updated in the same
    /// call. **Not durable** until [`Pager::sync`].
    pub fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        debug_assert!(id < self.num_pages(), "write of unallocated page {id}");
        self.stats.record_physical_write();
        self.store.write_at(id * PAGE_SIZE as u64, buf)?;
        if let Some(sum) = &self.sum {
            sum.set_entry(id, encode_crc(crc32(buf)))?;
        }
        Ok(())
    }

    /// Verifies every allocated page against its sidecar checksum
    /// (`prix fsck`). Returns `(verified, skipped)` — skipped pages
    /// have no recorded checksum (never written, e.g. freshly
    /// allocated). Errors on the first mismatch. Panics on a legacy
    /// pager.
    pub fn verify_checksums(&self) -> Result<(u64, u64)> {
        assert!(
            self.sum.is_some(),
            "verify_checksums requires a durable pager"
        );
        let sum = self.sum.as_ref().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        let (mut verified, mut skipped) = (0u64, 0u64);
        for id in 0..self.num_pages() {
            if sum.entry(id)? == 0 {
                skipped += 1;
                continue;
            }
            self.read_page(id, &mut buf)?;
            verified += 1;
        }
        Ok((verified, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pager_roundtrip() {
        let p = Pager::in_memory();
        let a = p.allocate().unwrap();
        assert_eq!(a, 1, "page 0 is reserved");
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        p.write_page(a, &page).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn file_pager_roundtrip() {
        let dir = std::env::temp_dir().join(format!("prix-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let p = Pager::create(&path).unwrap();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let mut pa = [1u8; PAGE_SIZE];
        pa[7] = 42;
        p.write_page(a, &pa).unwrap();
        let pb = [2u8; PAGE_SIZE];
        p.write_page(b, &pb).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        assert_eq!(back[7], 42);
        p.read_page(b, &mut back).unwrap();
        assert_eq!(back[0], 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_pages_read_as_zero() {
        let p = Pager::in_memory();
        let a = p.allocate().unwrap();
        let mut buf = [9u8; PAGE_SIZE];
        p.read_page(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn stats_count_physical_io() {
        let p = Pager::in_memory();
        let a = p.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        p.write_page(a, &buf).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        p.read_page(a, &mut back).unwrap();
        let s = p.stats().snapshot();
        assert_eq!(s.physical_writes, 1);
        assert_eq!(s.physical_reads, 2);
    }

    fn durable_mem_pager() -> (Pager, MemStore, MemStore) {
        let db = MemStore::new();
        let sum = MemStore::new();
        let p = Pager::create_durable(Box::new(db.clone()), Box::new(sum.clone())).unwrap();
        (p, db, sum)
    }

    #[test]
    fn durable_pager_roundtrip_and_epoch_persist() {
        let (p, db, sum) = durable_mem_pager();
        assert!(p.has_checksums());
        assert_eq!(p.epoch(), 1);
        let a = p.allocate().unwrap();
        let mut page = [7u8; PAGE_SIZE];
        page[100] = 1;
        p.write_page(a, &page).unwrap();
        p.set_epoch(5).unwrap();
        p.sync().unwrap();
        drop(p);
        let p = Pager::open_durable(Box::new(db), Box::new(sum)).unwrap();
        assert_eq!(p.epoch(), 5);
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        assert_eq!(back[100], 1);
        assert_eq!(
            p.verify_checksums().unwrap(),
            (1, 1),
            "page 0 never written"
        );
    }

    #[test]
    fn checksum_catches_torn_page() {
        let (p, db, sum) = durable_mem_pager();
        let a = p.allocate().unwrap();
        p.write_page(a, &[3u8; PAGE_SIZE]).unwrap();
        drop(p);
        // Tear one sector of the page behind the pager's back.
        let mut bytes = db.snapshot();
        let off = a as usize * PAGE_SIZE + 512;
        bytes[off..off + 512].fill(0);
        let p = Pager::open_durable(Box::new(MemStore::from_bytes(bytes)), Box::new(sum)).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        let err = p.read_page(a, &mut back).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { page, .. } if page == a),
            "{err}"
        );
        assert!(p.verify_checksums().is_err());
    }

    #[test]
    fn legacy_pager_skips_verification() {
        // The same torn write goes unnoticed without the sidecar —
        // exactly why durable mode exists.
        let db = MemStore::new();
        let p = Pager::create_on(Box::new(db.clone())).unwrap();
        let a = p.allocate().unwrap();
        p.write_page(a, &[3u8; PAGE_SIZE]).unwrap();
        drop(p);
        let mut bytes = db.snapshot();
        bytes[a as usize * PAGE_SIZE] ^= 0xFF;
        let p = Pager::open_on(Box::new(MemStore::from_bytes(bytes))).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        p.read_page(a, &mut back).unwrap();
        assert_eq!(back[0], 3 ^ 0xFF);
    }

    #[test]
    fn sync_counts_fsyncs() {
        let (p, _db, _sum) = durable_mem_pager();
        p.sync().unwrap();
        assert_eq!(p.stats().fsyncs(), 2, "page file + sidecar");
        let legacy = Pager::in_memory();
        legacy.sync().unwrap();
        assert_eq!(legacy.stats().fsyncs(), 1);
    }
}
