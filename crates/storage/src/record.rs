//! Heap file for variable-length records.
//!
//! PRIX stores, per document, its NPS (postorder number array) and its
//! leaf-node list (§4.3); the TwigStack baseline stores per-tag
//! positional streams. Both are variable-length blobs addressed by a
//! stable [`RecordId`] and read through the buffer pool so their page
//! fetches count toward the Disk-IO metric.
//!
//! Small records are packed into slotted data pages; records larger than
//! [`OVERFLOW_THRESHOLD`] are stored in a chain of dedicated overflow
//! pages.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::pager::{PageId, NIL_PAGE, PAGE_SIZE};

/// Identifier of a record: `page << 16 | slot`. Slot `0xFFFF` marks an
/// overflow-chain record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

impl RecordId {
    fn new(page: PageId, slot: u16) -> Self {
        RecordId(page << 16 | slot as u64)
    }

    fn page(self) -> PageId {
        self.0 >> 16
    }

    fn slot(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Raw value, for embedding into index payloads.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a `RecordId` from [`Self::raw`].
    pub fn from_raw(v: u64) -> Self {
        RecordId(v)
    }
}

const TYPE_DATA: u8 = 3;
const TYPE_OVERFLOW: u8 = 4;
const OVERFLOW_SLOT: u16 = 0xFFFF;

// Data page: [0] type, [1..3] u16 nslots, [3..5] u16 cell_start,
// slot array of u16 offsets from byte 5; cells grow from the page end,
// each cell = u16 len + bytes.
const DATA_HDR: usize = 5;

// Overflow page: [0] type, [1..9] u64 next, [9..11] u16 chunk_len, data.
const OVF_HDR: usize = 11;
const OVF_CAP: usize = PAGE_SIZE - OVF_HDR;

/// Records at most this large go into shared data pages.
pub const OVERFLOW_THRESHOLD: usize = PAGE_SIZE / 2;

/// An append-only heap of byte records over a shared [`BufferPool`].
///
/// `Clone` duplicates the handle, sharing pages: existing records stay
/// readable by id through either handle. Appending through more than
/// one clone of the same store corrupts the shared fill page — treat
/// clones as read-only snapshot views (the engine's single-writer
/// ingest is the only appender).
#[derive(Clone)]
pub struct RecordStore {
    pool: Arc<BufferPool>,
    /// Data page currently being filled.
    current: PageId,
}

impl RecordStore {
    /// Creates an empty store.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let current = pool.allocate_page()?;
        pool.with_page_mut(current, init_data_page)?;
        Ok(RecordStore { pool, current })
    }

    /// Re-attaches to a pool whose pages already contain records
    /// (reopening a database). Appends go to a fresh page; existing
    /// records stay readable by id.
    pub fn open(pool: Arc<BufferPool>) -> Result<Self> {
        Self::create(pool)
    }

    /// Appends `data`, returning its id.
    pub fn append(&mut self, data: &[u8]) -> Result<RecordId> {
        if data.len() > OVERFLOW_THRESHOLD {
            return self.append_overflow(data);
        }
        let need = 2 + data.len() + 2; // cell + slot entry
        let fits = self
            .pool
            .with_page(self.current, |p| data_free(p) >= need)?;
        if !fits {
            let page = self.pool.allocate_page()?;
            self.pool.with_page_mut(page, init_data_page)?;
            self.current = page;
        }
        let page = self.current;
        let slot = self.pool.with_page_mut(page, |p| {
            let n = u16::from_le_bytes([p[1], p[2]]) as usize;
            let cell_start = u16::from_le_bytes([p[3], p[4]]) as usize;
            let start = cell_start - (2 + data.len());
            p[start..start + 2].copy_from_slice(&(data.len() as u16).to_le_bytes());
            p[start + 2..start + 2 + data.len()].copy_from_slice(data);
            let off = DATA_HDR + 2 * n;
            p[off..off + 2].copy_from_slice(&(start as u16).to_le_bytes());
            p[1..3].copy_from_slice(&((n + 1) as u16).to_le_bytes());
            p[3..5].copy_from_slice(&(start as u16).to_le_bytes());
            n as u16
        })?;
        Ok(RecordId::new(page, slot))
    }

    fn append_overflow(&mut self, data: &[u8]) -> Result<RecordId> {
        let chunks: Vec<&[u8]> = data.chunks(OVF_CAP).collect();
        let mut pages = Vec::with_capacity(chunks.len());
        for _ in &chunks {
            pages.push(self.pool.allocate_page()?);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let next = pages.get(i + 1).copied().unwrap_or(NIL_PAGE);
            self.pool.with_page_mut(pages[i], |p| {
                p[0] = TYPE_OVERFLOW;
                p[1..9].copy_from_slice(&next.to_le_bytes());
                p[9..11].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                p[OVF_HDR..OVF_HDR + chunk.len()].copy_from_slice(chunk);
            })?;
        }
        Ok(RecordId::new(pages[0], OVERFLOW_SLOT))
    }

    /// Reads the record back.
    pub fn read(&self, id: RecordId) -> Result<Vec<u8>> {
        if id.slot() == OVERFLOW_SLOT {
            return self.read_overflow(id.page());
        }
        self.pool.with_page(id.page(), |p| {
            if p[0] != TYPE_DATA {
                return Err(StorageError::Corrupt {
                    page: id.page(),
                    reason: format!("expected data page, found type {}", p[0]),
                });
            }
            let n = u16::from_le_bytes([p[1], p[2]]) as usize;
            let slot = id.slot() as usize;
            if slot >= n {
                return Err(StorageError::Corrupt {
                    page: id.page(),
                    reason: format!("slot {slot} out of range ({n} slots)"),
                });
            }
            let off = DATA_HDR + 2 * slot;
            let start = u16::from_le_bytes([p[off], p[off + 1]]) as usize;
            let len = u16::from_le_bytes([p[start], p[start + 1]]) as usize;
            Ok(p[start + 2..start + 2 + len].to_vec())
        })?
    }

    fn read_overflow(&self, mut page: PageId) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        while page != NIL_PAGE {
            page = self.pool.with_page(page, |p| {
                if p[0] != TYPE_OVERFLOW {
                    return Err(StorageError::Corrupt {
                        page,
                        reason: format!("expected overflow page, found type {}", p[0]),
                    });
                }
                let next = u64::from_le_bytes(p[1..9].try_into().unwrap());
                let len = u16::from_le_bytes([p[9], p[10]]) as usize;
                out.extend_from_slice(&p[OVF_HDR..OVF_HDR + len]);
                Ok(next)
            })??;
        }
        Ok(out)
    }
}

fn init_data_page(p: &mut [u8; PAGE_SIZE]) {
    p.fill(0);
    p[0] = TYPE_DATA;
    p[3..5].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
}

fn data_free(p: &[u8; PAGE_SIZE]) -> usize {
    let n = u16::from_le_bytes([p[1], p[2]]) as usize;
    let cell_start = u16::from_le_bytes([p[3], p[4]]) as usize;
    cell_start - (DATA_HDR + 2 * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn store() -> RecordStore {
        let pool = Arc::new(BufferPool::new(Pager::in_memory(), 32));
        RecordStore::create(pool).unwrap()
    }

    #[test]
    fn small_records_roundtrip() {
        let mut s = store();
        let a = s.append(b"hello").unwrap();
        let b = s.append(b"").unwrap();
        let c = s.append(&[7u8; 100]).unwrap();
        assert_eq!(s.read(a).unwrap(), b"hello");
        assert_eq!(s.read(b).unwrap(), b"");
        assert_eq!(s.read(c).unwrap(), vec![7u8; 100]);
    }

    #[test]
    fn many_records_spill_to_new_pages() {
        let mut s = store();
        let ids: Vec<RecordId> = (0..2000u32)
            .map(|i| s.append(&i.to_le_bytes()).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(s.read(*id).unwrap(), (i as u32).to_le_bytes());
        }
        // 2000 records of 6+2 bytes cannot fit in one 8K page.
        let pages: std::collections::HashSet<u64> = ids.iter().map(|r| r.page()).collect();
        assert!(pages.len() > 1);
    }

    #[test]
    fn large_record_uses_overflow_chain() {
        let mut s = store();
        let data: Vec<u8> = (0..40_000usize).map(|i| (i % 251) as u8).collect();
        let id = s.append(&data).unwrap();
        assert_eq!(id.slot(), OVERFLOW_SLOT);
        assert_eq!(s.read(id).unwrap(), data);
    }

    #[test]
    fn boundary_sizes() {
        let mut s = store();
        for sz in [
            OVERFLOW_THRESHOLD - 1,
            OVERFLOW_THRESHOLD,
            OVERFLOW_THRESHOLD + 1,
            OVF_CAP,
            OVF_CAP + 1,
            2 * OVF_CAP,
        ] {
            let data = vec![0xA5u8; sz];
            let id = s.append(&data).unwrap();
            assert_eq!(s.read(id).unwrap(), data, "size {sz}");
        }
    }

    #[test]
    fn raw_roundtrip() {
        let mut s = store();
        let id = s.append(b"x").unwrap();
        assert_eq!(RecordId::from_raw(id.raw()), id);
    }

    #[test]
    fn interleaved_small_and_large() {
        let mut s = store();
        let mut ids = Vec::new();
        for i in 0..50usize {
            if i % 7 == 0 {
                ids.push((s.append(&vec![i as u8; 9000]).unwrap(), 9000, i as u8));
            } else {
                ids.push((s.append(&vec![i as u8; i]).unwrap(), i, i as u8));
            }
        }
        for (id, len, fill) in ids {
            assert_eq!(s.read(id).unwrap(), vec![fill; len]);
        }
    }

    #[test]
    fn bad_slot_is_corrupt() {
        let mut s = store();
        let id = s.append(b"x").unwrap();
        let bogus = RecordId::new(id.page(), 99);
        assert!(matches!(s.read(bogus), Err(StorageError::Corrupt { .. })));
    }
}
