//! Immutable index segments: external-merge-sort bulk loading into
//! implicit B⁺-tree files (the LSM-flavored half of the index
//! lifecycle).
//!
//! The incremental path indexes one document at a time through the
//! WAL'd buffer pool — the right shape for trickle inserts, the wrong
//! one for loading millions of documents: every trie node becomes a
//! B⁺-tree insert, and cold scans churn the pool because pages carry no
//! key locality. A *segment* is the bulk alternative, following the
//! read-only bstree design (cds-bstree-file-readonly): sort everything
//! once with bounded memory, then write an **implicit** tree — entries
//! packed back-to-back in key order with no per-node pointers and zero
//! unused bytes, plus a small fence array (first key of every
//! entry group) and an in-memory super-fence array (every
//! [`FENCES_PER_SUPER`]-th fence). A point lookup is two bounded binary
//! searches and at most two block fetches; a range scan is a seek plus
//! a sequential read.
//!
//! One segment file holds one index flavor (RP or EP) for a contiguous
//! range of document ids (`doc_base .. doc_base + n_docs`):
//!
//! ```text
//! +--------+----------+---------+-------------+------------+----------+-----------+------+-----------+
//! | header | rec data | rec idx | tag entries | tag fences | doc ends | doc fences| meta | CRC table |
//! +--------+----------+---------+-------------+------------+----------+-----------+------+-----------+
//! ```
//!
//! * **header** — fixed 128 bytes, magic `PRIXSEG\0`, section offsets,
//!   its own CRC-32.
//! * **rec data / rec idx** — per-document refinement records (opaque
//!   blobs) and their `n_docs + 1` offsets.
//! * **tag entries** — the Trie-Symbol index: 28-byte
//!   `(sym, left, right, level, fine_gap)` rows sorted by `(sym, left)`.
//! * **doc ends** — the Docid index: 12-byte `(left, doc)` rows sorted
//!   by `(left, doc)`.
//! * **meta** — an opaque blob (the core layer stores MaxGap table,
//!   childless set, build stats).
//! * **CRC table** — one CRC-32 per [`SEG_BLOCK`]-sized block of
//!   everything before it, so `fsck` can verify the file without
//!   trusting any of it.
//!
//! Readers bypass the buffer pool entirely: direct [`RawStore`] reads
//! through a per-segment block cache of [`CACHE_BLOCKS`] blocks,
//! counted separately in [`IoStats`] (`seg_block_reads` /
//! `seg_block_fetches`) so benchmarks can compare segment I/O against
//! buffer-pool I/O.
//!
//! The [`Manifest`] (double-slot, generation-stamped, CRC'd) is the
//! atomic commit point for the whole index lifecycle: a crash anywhere
//! during a bulk build or compaction leaves the previous manifest
//! serving the previous files.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::crc::crc32;
use crate::error::{Result, StorageError};
use crate::stats::IoStats;
use crate::store::{FileStore, MemStore, RawStore};
use crate::sync::Mutex;

/// Segment file magic (first 8 bytes).
pub const SEG_MAGIC: [u8; 8] = *b"PRIXSEG\0";
/// Segment format version.
pub const SEG_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const SEG_HEADER_LEN: u64 = 128;
/// Block granularity for the reader cache and the CRC table.
pub const SEG_BLOCK: usize = 4096;
/// Blocks held by one segment's read cache (256 KiB).
pub const CACHE_BLOCKS: usize = 64;
/// Tag entries per fence group (one group ≈ one block).
pub const TAG_GROUP: u64 = 146;
/// Doc-end entries per fence group.
pub const DOC_GROUP: u64 = 341;
/// Fences per in-memory super-fence (one super-fence spans ~256 KiB of
/// entries — the disk-cache-sized outer blocking level).
pub const FENCES_PER_SUPER: u64 = 64;
/// Encoded tag entry size: sym(4) left(8) right(8) level(4) fine(4).
pub const TAG_ENTRY_LEN: u64 = 28;
/// Encoded tag fence size: sym(4) left(8).
pub const TAG_FENCE_LEN: u64 = 12;
/// Encoded doc-end entry size: left(8) doc(4).
pub const DOC_ENTRY_LEN: u64 = 12;
/// Encoded doc fence size: left(8).
pub const DOC_FENCE_LEN: u64 = 8;
/// `kind` byte for a Regular-Prüfer segment.
pub const SEG_KIND_RP: u8 = 0;
/// `kind` byte for an Extended-Prüfer segment.
pub const SEG_KIND_EP: u8 = 1;

fn corrupt(reason: String) -> StorageError {
    StorageError::Corrupt { page: 0, reason }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    (a + b - 1) / b
}

// ---------------------------------------------------------------------------
// External merge sort
// ---------------------------------------------------------------------------

/// Buffered sequential reader over one spilled run.
pub struct RunBuf {
    store: Box<dyn RawStore>,
    pos: u64,
    end: u64,
    buf: Vec<u8>,
    off: usize,
}

impl RunBuf {
    const CHUNK: usize = 256 * 1024;

    fn new(store: Box<dyn RawStore>, end: u64) -> Self {
        RunBuf {
            store,
            pos: 0,
            end,
            buf: Vec::new(),
            off: 0,
        }
    }

    fn remaining(&self) -> u64 {
        (self.end - self.pos) + (self.buf.len() - self.off) as u64
    }

    /// Fills `dst` from the run, refilling the chunk buffer as needed.
    pub fn take(&mut self, dst: &mut [u8]) -> Result<()> {
        let mut done = 0;
        while done < dst.len() {
            if self.off == self.buf.len() {
                let want = Self::CHUNK.min((self.end - self.pos) as usize);
                if want == 0 {
                    return Err(corrupt("spill run truncated".into()));
                }
                self.buf.resize(want, 0);
                self.store.read_at(self.pos, &mut self.buf)?;
                self.pos += want as u64;
                self.off = 0;
            }
            let n = (dst.len() - done).min(self.buf.len() - self.off);
            dst[done..done + n].copy_from_slice(&self.buf[self.off..self.off + n]);
            self.off += n;
            done += n;
        }
        Ok(())
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
}

/// An item an [`ExternalSorter`] can spill and re-read.
pub trait SortItem: Ord + Sized {
    /// Appends a self-framing encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one item from a spill run.
    fn decode(r: &mut RunBuf) -> Result<Self>;
    /// Approximate in-memory footprint, for the run budget.
    fn mem_size(&self) -> usize;
}

/// Factory for spill-run scratch stores (anonymous temp files on disk,
/// [`MemStore`]s in tests).
pub type TempFactory = Box<dyn FnMut() -> Result<Box<dyn RawStore>> + Send>;

/// Bounded-memory sorter: buffers items up to a budget, spills sorted
/// runs to scratch stores, and k-way-merges the runs on drain.
pub struct ExternalSorter<T: SortItem> {
    budget: usize,
    mem: usize,
    items: Vec<T>,
    runs: Vec<(Box<dyn RawStore>, u64)>,
    temp: TempFactory,
    count: u64,
}

impl<T: SortItem> ExternalSorter<T> {
    /// A sorter holding at most ~`budget` bytes of items in memory.
    pub fn new(budget: usize, temp: TempFactory) -> Self {
        ExternalSorter {
            budget: budget.max(64 * 1024),
            mem: 0,
            items: Vec::new(),
            runs: Vec::new(),
            temp,
            count: 0,
        }
    }

    /// Number of items pushed so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of runs spilled so far (observability / tests).
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Adds one item, spilling a sorted run if the budget is exceeded.
    pub fn push(&mut self, item: T) -> Result<()> {
        self.mem += item.mem_size();
        self.items.push(item);
        self.count += 1;
        if self.mem >= self.budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.items.is_empty() {
            return Ok(());
        }
        self.items.sort_unstable();
        let store = (self.temp)()?;
        let mut buf = Vec::with_capacity(256 * 1024);
        let mut off = 0u64;
        for item in self.items.drain(..) {
            item.encode(&mut buf);
            if buf.len() >= 256 * 1024 {
                store.write_at(off, &buf)?;
                off += buf.len() as u64;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            store.write_at(off, &buf)?;
            off += buf.len() as u64;
        }
        self.runs.push((store, off));
        self.mem = 0;
        Ok(())
    }

    /// Drains every item in ascending order through `f`.
    pub fn drain(mut self, mut f: impl FnMut(T) -> Result<()>) -> Result<()> {
        if self.runs.is_empty() {
            self.items.sort_unstable();
            for item in self.items.drain(..) {
                f(item)?;
            }
            return Ok(());
        }
        self.spill()?;
        let mut readers: Vec<RunBuf> = self
            .runs
            .drain(..)
            .map(|(store, end)| RunBuf::new(store, end))
            .collect();
        // Min-heap keyed on (item, run); the run index breaks ties
        // deterministically (items are unique in practice).
        let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();
        for (i, r) in readers.iter_mut().enumerate() {
            if r.remaining() > 0 {
                heap.push(Reverse((T::decode(r)?, i)));
            }
        }
        while let Some(Reverse((item, i))) = heap.pop() {
            f(item)?;
            if readers[i].remaining() > 0 {
                heap.push(Reverse((T::decode(&mut readers[i])?, i)));
            }
        }
        Ok(())
    }
}

/// One Prüfer sequence headed for a segment: its label path through the
/// virtual trie, the per-position fine gaps, and the (local) document
/// id. Ordered by `(path, doc)` — the gaps are payload, not key — so a
/// sort puts every sequence in trie DFS order with ends per node in
/// ascending doc order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEntry {
    /// Label path (the LPS symbols).
    pub path: Vec<u32>,
    /// Per-position fine gaps (same length as `path`).
    pub gaps: Vec<u32>,
    /// Local document id within the segment.
    pub doc: u32,
}

impl Ord for PathEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.path, self.doc).cmp(&(&other.path, other.doc))
    }
}

impl PartialOrd for PathEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SortItem for PathEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.path.len() as u32).to_le_bytes());
        for &s in &self.path {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for &g in &self.gaps {
            out.extend_from_slice(&g.to_le_bytes());
        }
        out.extend_from_slice(&self.doc.to_le_bytes());
    }

    fn decode(r: &mut RunBuf) -> Result<Self> {
        let len = r.u32()? as usize;
        let mut raw = vec![0u8; len * 8 + 4];
        r.take(&mut raw)?;
        let word = |i: usize| u32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
        Ok(PathEntry {
            path: (0..len).map(word).collect(),
            gaps: (len..2 * len).map(word).collect(),
            doc: word(2 * len),
        })
    }

    fn mem_size(&self) -> usize {
        std::mem::size_of::<PathEntry>() + self.path.len() * 8
    }
}

/// One Trie-Symbol row of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TagEntry {
    /// Trie symbol.
    pub sym: u32,
    /// LeftPos of the containment range.
    pub left: u64,
    /// RightPos of the containment range.
    pub right: u64,
    /// 1-based LPS position.
    pub level: u32,
    /// Per-node fine MaxGap (`u32::MAX` = unknown).
    pub fine_gap: u32,
}

impl TagEntry {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.sym.to_le_bytes());
        out.extend_from_slice(&self.left.to_le_bytes());
        out.extend_from_slice(&self.right.to_le_bytes());
        out.extend_from_slice(&self.level.to_le_bytes());
        out.extend_from_slice(&self.fine_gap.to_le_bytes());
    }

    fn read(b: &[u8]) -> TagEntry {
        TagEntry {
            sym: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            left: u64::from_le_bytes(b[4..12].try_into().unwrap()),
            right: u64::from_le_bytes(b[12..20].try_into().unwrap()),
            level: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            fine_gap: u32::from_le_bytes(b[24..28].try_into().unwrap()),
        }
    }

    fn key(&self) -> (u32, u64) {
        (self.sym, self.left)
    }
}

impl SortItem for TagEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.write(out);
    }

    fn decode(r: &mut RunBuf) -> Result<Self> {
        let mut b = [0u8; TAG_ENTRY_LEN as usize];
        r.take(&mut b)?;
        Ok(TagEntry::read(&b))
    }

    fn mem_size(&self) -> usize {
        std::mem::size_of::<TagEntry>()
    }
}

/// One Docid row of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DocEnd {
    /// LeftPos of the trie node where the sequence ends.
    pub left: u64,
    /// Local document id.
    pub doc: u32,
}

// ---------------------------------------------------------------------------
// Streaming trie labeler
// ---------------------------------------------------------------------------

/// Statistics of the virtual trie a segment build streamed through,
/// bit-compatible with the in-memory `VirtualTrie` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegTrieStats {
    /// Labeled (non-root) trie nodes.
    pub nodes: u64,
    /// Distinct root-to-leaf paths.
    pub leaves: u64,
    /// Sequences inserted.
    pub sequences: u64,
    /// Largest number of sequences sharing one leaf path.
    pub max_path_sharing: u64,
    /// Total length of all sequences.
    pub total_path_len: u64,
}

struct TrieFrame {
    sym: u32,
    level: u32,
    left: u64,
    fine_gap: u32,
    weight: u64,
    has_child: bool,
}

/// Streams `(path, doc)` entries — which **must** arrive in ascending
/// `(path, doc)` order — through a virtual-trie DFS, assigning the same
/// exact labels a bulk `VirtualTrie::assign_ranges(Exact)` would:
/// `left` = DFS first-visit rank (children in symbol order), `right` =
/// max `left` in the subtree, per-node fine gaps max-folded across the
/// sequences passing through. Emits finished tag rows at node pop and
/// doc-end rows in `(left, doc)` order.
struct StreamTrie {
    stack: Vec<TrieFrame>,
    prev_path: Vec<u32>,
    counter: u64,
    stats: SegTrieStats,
}

impl StreamTrie {
    fn new() -> Self {
        StreamTrie {
            stack: Vec::new(),
            prev_path: Vec::new(),
            counter: 0,
            stats: SegTrieStats::default(),
        }
    }

    fn pop(&mut self, emit_tag: &mut impl FnMut(TagEntry) -> Result<()>) -> Result<()> {
        let f = self.stack.pop().expect("pop on empty trie stack");
        if !f.has_child {
            self.stats.leaves += 1;
            if f.weight > self.stats.max_path_sharing {
                self.stats.max_path_sharing = f.weight;
            }
        }
        emit_tag(TagEntry {
            sym: f.sym,
            left: f.left,
            right: self.counter.max(f.left),
            level: f.level,
            fine_gap: f.fine_gap,
        })
    }

    fn insert(
        &mut self,
        e: &PathEntry,
        emit_tag: &mut impl FnMut(TagEntry) -> Result<()>,
        emit_doc: &mut impl FnMut(DocEnd) -> Result<()>,
    ) -> Result<()> {
        debug_assert!(
            (e.path.as_slice(), e.doc) >= (self.prev_path.as_slice(), 0),
            "path entries must arrive sorted"
        );
        self.stats.sequences += 1;
        self.stats.total_path_len += e.path.len() as u64;
        let common = self
            .prev_path
            .iter()
            .zip(e.path.iter())
            .take_while(|(a, b)| a == b)
            .count();
        while self.stack.len() > common {
            self.pop(emit_tag)?;
        }
        // Shared prefix: every sequence through a node folds its gap
        // and counts toward the node's weight.
        for (i, f) in self.stack.iter_mut().enumerate() {
            f.weight += 1;
            if f.fine_gap == u32::MAX {
                f.fine_gap = e.gaps[i];
            } else {
                f.fine_gap = f.fine_gap.max(e.gaps[i]);
            }
        }
        for i in common..e.path.len() {
            if let Some(parent) = self.stack.last_mut() {
                parent.has_child = true;
            }
            self.counter += 1;
            self.stack.push(TrieFrame {
                sym: e.path[i],
                level: (i + 1) as u32,
                left: self.counter,
                fine_gap: e.gaps[i],
                weight: 1,
                has_child: false,
            });
            self.stats.nodes += 1;
        }
        let end_left = self.stack.last().map_or(0, |f| f.left);
        emit_doc(DocEnd {
            left: end_left,
            doc: e.doc,
        })?;
        self.prev_path.clear();
        self.prev_path.extend_from_slice(&e.path);
        Ok(())
    }

    fn finish(mut self, emit_tag: &mut impl FnMut(TagEntry) -> Result<()>) -> Result<SegTrieStats> {
        while !self.stack.is_empty() {
            self.pop(emit_tag)?;
        }
        Ok(self.stats)
    }
}

// ---------------------------------------------------------------------------
// Segment writer
// ---------------------------------------------------------------------------

struct Header {
    kind: u8,
    doc_base: u32,
    n_docs: u32,
    n_tag: u64,
    n_doc: u64,
    rec_data_off: u64,
    rec_idx_off: u64,
    tag_off: u64,
    tag_fence_off: u64,
    doc_off: u64,
    doc_fence_off: u64,
    meta_off: u64,
    meta_len: u64,
    crc_off: u64,
    file_len: u64,
}

impl Header {
    fn encode(&self) -> [u8; SEG_HEADER_LEN as usize] {
        let mut h = [0u8; SEG_HEADER_LEN as usize];
        h[0..8].copy_from_slice(&SEG_MAGIC);
        h[8..12].copy_from_slice(&SEG_VERSION.to_le_bytes());
        h[12] = self.kind;
        h[16..20].copy_from_slice(&self.doc_base.to_le_bytes());
        h[20..24].copy_from_slice(&self.n_docs.to_le_bytes());
        h[24..32].copy_from_slice(&self.n_tag.to_le_bytes());
        h[32..40].copy_from_slice(&self.n_doc.to_le_bytes());
        h[40..48].copy_from_slice(&self.rec_idx_off.to_le_bytes());
        h[48..56].copy_from_slice(&self.rec_data_off.to_le_bytes());
        h[56..64].copy_from_slice(&self.tag_off.to_le_bytes());
        h[64..72].copy_from_slice(&self.tag_fence_off.to_le_bytes());
        h[72..80].copy_from_slice(&self.doc_off.to_le_bytes());
        h[80..88].copy_from_slice(&self.doc_fence_off.to_le_bytes());
        h[88..96].copy_from_slice(&self.meta_off.to_le_bytes());
        h[96..104].copy_from_slice(&self.meta_len.to_le_bytes());
        h[104..112].copy_from_slice(&self.crc_off.to_le_bytes());
        h[112..120].copy_from_slice(&self.file_len.to_le_bytes());
        let crc = crc32(&h[..120]);
        h[120..124].copy_from_slice(&crc.to_le_bytes());
        h
    }

    fn decode(h: &[u8]) -> Result<Header> {
        if h[0..8] != SEG_MAGIC {
            return Err(corrupt("bad segment magic".into()));
        }
        let version = u32::from_le_bytes(h[8..12].try_into().unwrap());
        if version != SEG_VERSION {
            return Err(corrupt(format!("unsupported segment version {version}")));
        }
        let stored = u32::from_le_bytes(h[120..124].try_into().unwrap());
        if crc32(&h[..120]) != stored {
            return Err(corrupt("segment header CRC mismatch".into()));
        }
        let u64_at = |i: usize| u64::from_le_bytes(h[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(h[i..i + 4].try_into().unwrap());
        Ok(Header {
            kind: h[12],
            doc_base: u32_at(16),
            n_docs: u32_at(20),
            n_tag: u64_at(24),
            n_doc: u64_at(32),
            rec_idx_off: u64_at(40),
            rec_data_off: u64_at(48),
            tag_off: u64_at(56),
            tag_fence_off: u64_at(64),
            doc_off: u64_at(72),
            doc_fence_off: u64_at(80),
            meta_off: u64_at(88),
            meta_len: u64_at(96),
            crc_off: u64_at(104),
            file_len: u64_at(112),
        })
    }
}

/// Buffered sequential section writer over a [`RawStore`].
struct SectionWriter<'a> {
    store: &'a dyn RawStore,
    off: u64,
    buf: Vec<u8>,
}

impl<'a> SectionWriter<'a> {
    fn new(store: &'a dyn RawStore, off: u64) -> Self {
        SectionWriter {
            store,
            off,
            buf: Vec::with_capacity(256 * 1024),
        }
    }

    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= 256 * 1024 {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.store.write_at(self.off, &self.buf)?;
            self.off += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(mut self) -> Result<u64> {
        self.flush()?;
        Ok(self.off)
    }
}

/// Writes one immutable segment: stream documents in (records go
/// straight to the output file, label paths to the external sorter),
/// then [`SegmentBuilder::finish`] merges the runs through the
/// streaming trie and lays out the remaining sections.
pub struct SegmentBuilder {
    out: Box<dyn RawStore>,
    temp: Arc<Mutex<TempFactory>>,
    kind: u8,
    doc_base: u32,
    run_budget: usize,
    sorter: ExternalSorter<PathEntry>,
    rec_offsets: Vec<u64>,
    rec_writer_off: u64,
    rec_buf: Vec<u8>,
}

/// Forwards a shared temp factory (the builder's two sort phases run
/// strictly in sequence but each sorter owns its own handle).
fn fwd_temp(shared: &Arc<Mutex<TempFactory>>) -> TempFactory {
    let s = Arc::clone(shared);
    Box::new(move || (s.lock())())
}

impl SegmentBuilder {
    /// A builder writing to `out`, spilling sort runs via `temp`, with
    /// roughly `run_mem_bytes` of in-memory sort buffer per phase.
    pub fn new(
        out: Box<dyn RawStore>,
        temp: TempFactory,
        kind: u8,
        doc_base: u32,
        run_mem_bytes: usize,
    ) -> Self {
        let temp = Arc::new(Mutex::new(temp));
        let sorter = ExternalSorter::new(run_mem_bytes, fwd_temp(&temp));
        SegmentBuilder {
            out,
            temp,
            kind,
            doc_base,
            run_budget: run_mem_bytes,
            sorter,
            rec_offsets: vec![0],
            rec_writer_off: SEG_HEADER_LEN,
            rec_buf: Vec::with_capacity(256 * 1024),
        }
    }

    /// Adds one document: its opaque refinement record and its label
    /// path + fine gaps. Returns the local document id.
    pub fn add_doc(&mut self, record: &[u8], path: Vec<u32>, gaps: Vec<u32>) -> Result<u32> {
        debug_assert_eq!(path.len(), gaps.len());
        let doc = (self.rec_offsets.len() - 1) as u32;
        self.rec_buf.extend_from_slice(record);
        if self.rec_buf.len() >= 256 * 1024 {
            self.out.write_at(self.rec_writer_off, &self.rec_buf)?;
            self.rec_writer_off += self.rec_buf.len() as u64;
            self.rec_buf.clear();
        }
        let last = *self.rec_offsets.last().unwrap();
        self.rec_offsets.push(last + record.len() as u64);
        self.sorter.push(PathEntry { path, gaps, doc })?;
        Ok(doc)
    }

    /// Number of documents added so far.
    pub fn doc_count(&self) -> u32 {
        (self.rec_offsets.len() - 1) as u32
    }

    /// Merges the runs, labels the trie, writes every section, the
    /// header, and the CRC table, then syncs. `make_meta` receives the
    /// trie statistics and returns the opaque meta blob.
    pub fn finish(
        mut self,
        make_meta: impl FnOnce(&SegTrieStats) -> Vec<u8>,
    ) -> Result<SegTrieStats> {
        // Flush the record tail, then the record index.
        if !self.rec_buf.is_empty() {
            self.out.write_at(self.rec_writer_off, &self.rec_buf)?;
            self.rec_writer_off += self.rec_buf.len() as u64;
            self.rec_buf.clear();
        }
        let n_docs = (self.rec_offsets.len() - 1) as u32;
        let rec_data_off = SEG_HEADER_LEN;
        let rec_idx_off = self.rec_writer_off;
        let mut w = SectionWriter::new(&*self.out, rec_idx_off);
        for &o in &self.rec_offsets {
            w.push(&o.to_le_bytes())?;
        }
        let tag_off = w.finish()?;

        // Merge path runs through the streaming trie. Tag rows come out
        // in pop (postorder) order and need a second sort by
        // (sym, left); doc ends come out already sorted and are tiny
        // (one per document), so they stay in memory.
        let mut tag_sorter: ExternalSorter<TagEntry> =
            ExternalSorter::new(self.run_budget, fwd_temp(&self.temp));
        let mut doc_ends: Vec<DocEnd> = Vec::with_capacity(n_docs as usize);
        let mut trie = StreamTrie::new();
        {
            let mut emit_tag = |t: TagEntry| tag_sorter.push(t);
            let mut emit_doc = |d: DocEnd| {
                debug_assert!(doc_ends.last().map_or(true, |p| *p < d));
                doc_ends.push(d);
                Ok(())
            };
            self.sorter
                .drain(|e| trie.insert(&e, &mut emit_tag, &mut emit_doc))?;
        }
        let mut emit_tag = |t: TagEntry| tag_sorter.push(t);
        let stats = trie.finish(&mut emit_tag)?;

        // Tag entries + fences.
        let n_tag = tag_sorter.len();
        let mut w = SectionWriter::new(&*self.out, tag_off);
        let mut tag_fences: Vec<u8> = Vec::new();
        let mut i = 0u64;
        let mut row = Vec::with_capacity(TAG_ENTRY_LEN as usize);
        let mut prev_key: Option<(u32, u64)> = None;
        tag_sorter.drain(|t| {
            debug_assert!(prev_key.map_or(true, |p| p < t.key()), "duplicate tag key");
            prev_key = Some(t.key());
            if i % TAG_GROUP == 0 {
                tag_fences.extend_from_slice(&t.sym.to_le_bytes());
                tag_fences.extend_from_slice(&t.left.to_le_bytes());
            }
            i += 1;
            row.clear();
            t.write(&mut row);
            w.push(&row)
        })?;
        let tag_fence_off = w.finish()?;
        self.out.write_at(tag_fence_off, &tag_fences)?;
        let doc_off = tag_fence_off + tag_fences.len() as u64;

        // Doc ends + fences.
        let n_doc = doc_ends.len() as u64;
        let mut w = SectionWriter::new(&*self.out, doc_off);
        let mut doc_fences: Vec<u8> = Vec::new();
        for (i, d) in doc_ends.iter().enumerate() {
            if i as u64 % DOC_GROUP == 0 {
                doc_fences.extend_from_slice(&d.left.to_le_bytes());
            }
            let mut row = [0u8; DOC_ENTRY_LEN as usize];
            row[0..8].copy_from_slice(&d.left.to_le_bytes());
            row[8..12].copy_from_slice(&d.doc.to_le_bytes());
            w.push(&row)?;
        }
        let doc_fence_off = w.finish()?;
        self.out.write_at(doc_fence_off, &doc_fences)?;
        let meta_off = doc_fence_off + doc_fences.len() as u64;

        // Meta, header, CRC table.
        let meta = make_meta(&stats);
        self.out.write_at(meta_off, &meta)?;
        let crc_off = meta_off + meta.len() as u64;
        let n_blocks = div_ceil(crc_off, SEG_BLOCK as u64);
        let file_len = crc_off + n_blocks * 4;
        let header = Header {
            kind: self.kind,
            doc_base: self.doc_base,
            n_docs,
            n_tag,
            n_doc,
            rec_data_off,
            rec_idx_off,
            tag_off,
            tag_fence_off,
            doc_off,
            doc_fence_off,
            meta_off,
            meta_len: meta.len() as u64,
            crc_off,
            file_len,
        };
        self.out.write_at(0, &header.encode())?;

        // Sequential CRC pass over everything written so far (the
        // header included), one CRC-32 per SEG_BLOCK.
        let mut w = SectionWriter::new(&*self.out, crc_off);
        let mut pos = 0u64;
        let mut chunk = vec![0u8; 64 * SEG_BLOCK];
        while pos < crc_off {
            let want = (crc_off - pos).min(chunk.len() as u64) as usize;
            self.out.read_at(pos, &mut chunk[..want])?;
            for block in chunk[..want].chunks(SEG_BLOCK) {
                w.push(&crc32(block).to_le_bytes())?;
            }
            pos += want as u64;
        }
        w.finish()?;
        self.out.set_len(file_len)?;
        self.out.sync()?;
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Segment reader
// ---------------------------------------------------------------------------

struct Cache {
    blocks: HashMap<u64, (u64, Arc<Vec<u8>>)>,
    tick: u64,
}

/// Summary returned by [`SegmentReader::verify`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCheck {
    /// Content blocks whose CRC was verified.
    pub blocks: u64,
    /// Tag rows checked for strict `(sym, left)` order.
    pub tag_entries: u64,
    /// Doc-end rows checked for strict `(left, doc)` order.
    pub doc_entries: u64,
    /// Per-document records with consistent offsets.
    pub records: u64,
}

/// Read handle over one immutable segment file: direct [`RawStore`]
/// reads through a tiny per-segment block cache, never touching the
/// buffer pool. All lookups run over the implicit layout — in-memory
/// super-fences, then one fence group, then one entry group.
pub struct SegmentReader {
    store: Box<dyn RawStore>,
    stats: Arc<IoStats>,
    hdr: Header,
    cache: Mutex<Cache>,
    tag_supers: Vec<(u32, u64)>,
    doc_supers: Vec<u64>,
    n_tag_groups: u64,
    n_doc_groups: u64,
}

impl SegmentReader {
    /// Opens a segment, validating the header and priming the
    /// super-fence arrays with one sequential pass over the (small)
    /// fence sections. Segment block reads are recorded into `stats`.
    pub fn open(store: Box<dyn RawStore>, stats: Arc<IoStats>) -> Result<SegmentReader> {
        let len = store.len()?;
        if len < SEG_HEADER_LEN {
            return Err(corrupt(format!("segment file too short ({len} bytes)")));
        }
        let mut h = [0u8; SEG_HEADER_LEN as usize];
        store.read_at(0, &mut h)?;
        let hdr = Header::decode(&h)?;
        if hdr.file_len != len {
            return Err(corrupt(format!(
                "segment length mismatch: header says {}, file has {len}",
                hdr.file_len
            )));
        }
        let n_tag_groups = div_ceil(hdr.n_tag, TAG_GROUP);
        let n_doc_groups = div_ceil(hdr.n_doc, DOC_GROUP);
        let mut reader = SegmentReader {
            store,
            stats,
            hdr,
            cache: Mutex::new(Cache {
                blocks: HashMap::new(),
                tick: 0,
            }),
            tag_supers: Vec::new(),
            doc_supers: Vec::new(),
            n_tag_groups,
            n_doc_groups,
        };
        // Super-fences: every FENCES_PER_SUPER-th fence, via one
        // sequential chunked pass over each fence section.
        let mut off = reader.hdr.tag_fence_off;
        for _ in 0..div_ceil(n_tag_groups, FENCES_PER_SUPER) {
            let mut b = [0u8; TAG_FENCE_LEN as usize];
            reader.store.read_at(off, &mut b)?;
            reader.tag_supers.push((
                u32::from_le_bytes(b[0..4].try_into().unwrap()),
                u64::from_le_bytes(b[4..12].try_into().unwrap()),
            ));
            off += FENCES_PER_SUPER * TAG_FENCE_LEN;
        }
        let mut off = reader.hdr.doc_fence_off;
        for _ in 0..div_ceil(n_doc_groups, FENCES_PER_SUPER) {
            let mut b = [0u8; DOC_FENCE_LEN as usize];
            reader.store.read_at(off, &mut b)?;
            reader.doc_supers.push(u64::from_le_bytes(b));
            off += FENCES_PER_SUPER * DOC_FENCE_LEN;
        }
        Ok(reader)
    }

    /// Segment flavor byte ([`SEG_KIND_RP`] / [`SEG_KIND_EP`]).
    pub fn kind(&self) -> u8 {
        self.hdr.kind
    }

    /// First global document id covered by this segment.
    pub fn doc_base(&self) -> u32 {
        self.hdr.doc_base
    }

    /// Number of documents in this segment.
    pub fn n_docs(&self) -> u32 {
        self.hdr.n_docs
    }

    /// Number of Trie-Symbol rows.
    pub fn n_tag_entries(&self) -> u64 {
        self.hdr.n_tag
    }

    /// Number of Docid rows.
    pub fn n_doc_entries(&self) -> u64 {
        self.hdr.n_doc
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.hdr.file_len
    }

    /// Reads `len` bytes at `off` through the block cache, counting one
    /// logical segment read per block touched and one fetch per miss.
    fn read_bytes(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        let mut out = vec![0u8; len];
        if len == 0 {
            return Ok(out);
        }
        let first = off / SEG_BLOCK as u64;
        let last = (off + len as u64 - 1) / SEG_BLOCK as u64;
        let mut done = 0usize;
        for b in first..=last {
            let block = self.block(b)?;
            let b_start = b * SEG_BLOCK as u64;
            let lo = if b == first {
                (off - b_start) as usize
            } else {
                0
            };
            let want = (len - done).min(block.len() - lo);
            out[done..done + want].copy_from_slice(&block[lo..lo + want]);
            done += want;
        }
        debug_assert_eq!(done, len);
        Ok(out)
    }

    fn block(&self, idx: u64) -> Result<Arc<Vec<u8>>> {
        self.stats.record_seg_block_read();
        let mut c = self.cache.lock();
        c.tick += 1;
        let tick = c.tick;
        if let Some((t, block)) = c.blocks.get_mut(&idx) {
            *t = tick;
            return Ok(Arc::clone(block));
        }
        drop(c);
        self.stats.record_seg_block_fetch();
        let start = idx * SEG_BLOCK as u64;
        let len = (SEG_BLOCK as u64).min(self.hdr.file_len.saturating_sub(start)) as usize;
        if len == 0 {
            return Err(corrupt(format!("segment block {idx} out of range")));
        }
        let mut buf = vec![0u8; len];
        self.store.read_at(start, &mut buf)?;
        let block = Arc::new(buf);
        let mut c = self.cache.lock();
        if c.blocks.len() >= CACHE_BLOCKS {
            if let Some((&victim, _)) = c.blocks.iter().min_by_key(|(_, (t, _))| *t) {
                c.blocks.remove(&victim);
            }
        }
        c.blocks.insert(idx, (tick, Arc::clone(&block)));
        Ok(block)
    }

    fn tag_entry_range(&self, start: u64, end: u64) -> Result<Vec<TagEntry>> {
        let bytes = self.read_bytes(
            self.hdr.tag_off + start * TAG_ENTRY_LEN,
            ((end - start) * TAG_ENTRY_LEN) as usize,
        )?;
        Ok(bytes
            .chunks_exact(TAG_ENTRY_LEN as usize)
            .map(TagEntry::read)
            .collect())
    }

    fn doc_entry_range(&self, start: u64, end: u64) -> Result<Vec<DocEnd>> {
        let bytes = self.read_bytes(
            self.hdr.doc_off + start * DOC_ENTRY_LEN,
            ((end - start) * DOC_ENTRY_LEN) as usize,
        )?;
        Ok(bytes
            .chunks_exact(DOC_ENTRY_LEN as usize)
            .map(|b| DocEnd {
                left: u64::from_le_bytes(b[0..8].try_into().unwrap()),
                doc: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            })
            .collect())
    }

    /// First tag index whose key is strictly greater than `key`:
    /// in-memory super-fences, one fence-group read, one entry-group
    /// read.
    fn tag_first_gt(&self, key: (u32, u64)) -> Result<u64> {
        if self.hdr.n_tag == 0 {
            return Ok(0);
        }
        let sj = self.tag_supers.partition_point(|k| *k <= key);
        if sj == 0 {
            return Ok(0);
        }
        let gstart = (sj as u64 - 1) * FENCES_PER_SUPER;
        let gend = (gstart + FENCES_PER_SUPER).min(self.n_tag_groups);
        let fences = self.read_bytes(
            self.hdr.tag_fence_off + gstart * TAG_FENCE_LEN,
            ((gend - gstart) * TAG_FENCE_LEN) as usize,
        )?;
        let keys: Vec<(u32, u64)> = fences
            .chunks_exact(TAG_FENCE_LEN as usize)
            .map(|b| {
                (
                    u32::from_le_bytes(b[0..4].try_into().unwrap()),
                    u64::from_le_bytes(b[4..12].try_into().unwrap()),
                )
            })
            .collect();
        let rel = keys.partition_point(|k| *k <= key);
        debug_assert!(rel >= 1, "super-fence said this range starts <= key");
        let g = gstart + rel as u64 - 1;
        let estart = g * TAG_GROUP;
        let eend = (estart + TAG_GROUP).min(self.hdr.n_tag);
        let entries = self.tag_entry_range(estart, eend)?;
        let local = entries.partition_point(|e| e.key() <= key);
        Ok(estart + local as u64)
    }

    /// First doc-end index whose left is `>= left`.
    fn doc_first_ge(&self, left: u64) -> Result<u64> {
        if self.hdr.n_doc == 0 {
            return Ok(0);
        }
        let sj = self.doc_supers.partition_point(|&k| k < left);
        if sj == 0 {
            return Ok(0);
        }
        let gstart = (sj as u64 - 1) * FENCES_PER_SUPER;
        let gend = (gstart + FENCES_PER_SUPER).min(self.n_doc_groups);
        let fences = self.read_bytes(
            self.hdr.doc_fence_off + gstart * DOC_FENCE_LEN,
            ((gend - gstart) * DOC_FENCE_LEN) as usize,
        )?;
        let keys: Vec<u64> = fences
            .chunks_exact(DOC_FENCE_LEN as usize)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let rel = keys.partition_point(|&k| k < left);
        debug_assert!(rel >= 1);
        let g = gstart + rel as u64 - 1;
        let estart = g * DOC_GROUP;
        let eend = (estart + DOC_GROUP).min(self.hdr.n_doc);
        let entries = self.doc_entry_range(estart, eend)?;
        let local = entries.partition_point(|e| e.left < left);
        Ok(estart + local as u64)
    }

    /// Range query on the Trie-Symbol section: rows with this `sym` and
    /// `left` in `(ql, qr]`, in key order — the segment-side mirror of
    /// the B⁺-tree `scan_tag_range`.
    pub fn scan_tag_range(&self, sym: u32, ql: u64, qr: u64) -> Result<Vec<(u64, u64, u32, u32)>> {
        let mut hits = Vec::new();
        let mut i = self.tag_first_gt((sym, ql))?;
        'outer: while i < self.hdr.n_tag {
            let end = (i + TAG_GROUP).min(self.hdr.n_tag);
            for e in self.tag_entry_range(i, end)? {
                if e.key() > (sym, qr) {
                    break 'outer;
                }
                hits.push((e.left, e.right, e.level, e.fine_gap));
            }
            i = end;
        }
        Ok(hits)
    }

    /// Range query on the Docid section: local doc ids whose end-node
    /// left is in `[left, right]`, in `(left, doc)` order.
    pub fn scan_docids(&self, left: u64, right: u64, out: &mut impl FnMut(u32)) -> Result<()> {
        let mut i = self.doc_first_ge(left)?;
        'outer: while i < self.hdr.n_doc {
            let end = (i + DOC_GROUP).min(self.hdr.n_doc);
            for e in self.doc_entry_range(i, end)? {
                if e.left > right {
                    break 'outer;
                }
                out(e.doc);
            }
            i = end;
        }
        Ok(())
    }

    /// Reads the refinement record of local document `doc`.
    pub fn record(&self, doc: u32) -> Result<Vec<u8>> {
        if doc >= self.hdr.n_docs {
            return Err(corrupt(format!(
                "record {doc} out of range (segment holds {})",
                self.hdr.n_docs
            )));
        }
        let idx = self.read_bytes(self.hdr.rec_idx_off + doc as u64 * 8, 16)?;
        let a = u64::from_le_bytes(idx[0..8].try_into().unwrap());
        let b = u64::from_le_bytes(idx[8..16].try_into().unwrap());
        if b < a || self.hdr.rec_data_off + b > self.hdr.rec_idx_off {
            return Err(corrupt(format!("record {doc} has corrupt offsets")));
        }
        self.read_bytes(self.hdr.rec_data_off + a, (b - a) as usize)
    }

    /// The opaque meta blob.
    pub fn meta(&self) -> Result<Vec<u8>> {
        self.read_bytes(self.hdr.meta_off, self.hdr.meta_len as usize)
    }

    /// Full integrity check: header CRC (already validated at open),
    /// every content block against the CRC table, strict sort order of
    /// both entry sections, fence consistency, and record-index
    /// monotonicity. Reads bypass the cache (sequential, one pass).
    pub fn verify(&self) -> Result<SegmentCheck> {
        let mut check = SegmentCheck::default();
        // CRC table.
        let n_blocks = div_ceil(self.hdr.crc_off, SEG_BLOCK as u64);
        let mut table = vec![0u8; (n_blocks * 4) as usize];
        self.store.read_at(self.hdr.crc_off, &mut table)?;
        let mut chunk = vec![0u8; 64 * SEG_BLOCK];
        let mut pos = 0u64;
        let mut b = 0usize;
        while pos < self.hdr.crc_off {
            let want = (self.hdr.crc_off - pos).min(chunk.len() as u64) as usize;
            self.store.read_at(pos, &mut chunk[..want])?;
            for block in chunk[..want].chunks(SEG_BLOCK) {
                let stored = u32::from_le_bytes(table[b * 4..b * 4 + 4].try_into().unwrap());
                if crc32(block) != stored {
                    return Err(corrupt(format!("segment block {b} CRC mismatch")));
                }
                b += 1;
            }
            pos += want as u64;
        }
        check.blocks = b as u64;
        // Record index monotone and bounded.
        let idx_bytes = self.store_read(
            self.hdr.rec_idx_off,
            ((self.hdr.n_docs as u64 + 1) * 8) as usize,
        )?;
        let mut prev = 0u64;
        for (i, c) in idx_bytes.chunks_exact(8).enumerate() {
            let o = u64::from_le_bytes(c.try_into().unwrap());
            if o < prev || self.hdr.rec_data_off + o > self.hdr.rec_idx_off {
                return Err(corrupt(format!("record index entry {i} out of order")));
            }
            prev = o;
        }
        if self.hdr.rec_data_off + prev != self.hdr.rec_idx_off {
            return Err(corrupt(
                "record data length disagrees with record index".into(),
            ));
        }
        check.records = self.hdr.n_docs as u64;
        // Tag section: strict (sym, left) ascending + fences match.
        let mut prev_key: Option<(u32, u64)> = None;
        let mut i = 0u64;
        while i < self.hdr.n_tag {
            let end = (i + 4 * TAG_GROUP).min(self.hdr.n_tag);
            let bytes = self.store_read(
                self.hdr.tag_off + i * TAG_ENTRY_LEN,
                ((end - i) * TAG_ENTRY_LEN) as usize,
            )?;
            for (j, row) in bytes.chunks_exact(TAG_ENTRY_LEN as usize).enumerate() {
                let e = TagEntry::read(row);
                let n = i + j as u64;
                if let Some(p) = prev_key {
                    if e.key() <= p {
                        return Err(corrupt(format!("tag entry {n} out of order")));
                    }
                }
                if n % TAG_GROUP == 0 {
                    let f = self.store_read(
                        self.hdr.tag_fence_off + (n / TAG_GROUP) * TAG_FENCE_LEN,
                        TAG_FENCE_LEN as usize,
                    )?;
                    let fk = (
                        u32::from_le_bytes(f[0..4].try_into().unwrap()),
                        u64::from_le_bytes(f[4..12].try_into().unwrap()),
                    );
                    if fk != e.key() {
                        return Err(corrupt(format!("tag fence {} disagrees", n / TAG_GROUP)));
                    }
                }
                prev_key = Some(e.key());
            }
            i = end;
        }
        check.tag_entries = self.hdr.n_tag;
        // Doc section: strict (left, doc) ascending + fences match.
        let mut prev_doc: Option<(u64, u32)> = None;
        let mut i = 0u64;
        while i < self.hdr.n_doc {
            let end = (i + 4 * DOC_GROUP).min(self.hdr.n_doc);
            let bytes = self.store_read(
                self.hdr.doc_off + i * DOC_ENTRY_LEN,
                ((end - i) * DOC_ENTRY_LEN) as usize,
            )?;
            for (j, row) in bytes.chunks_exact(DOC_ENTRY_LEN as usize).enumerate() {
                let left = u64::from_le_bytes(row[0..8].try_into().unwrap());
                let doc = u32::from_le_bytes(row[8..12].try_into().unwrap());
                let n = i + j as u64;
                if let Some(p) = prev_doc {
                    if (left, doc) <= p {
                        return Err(corrupt(format!("doc entry {n} out of order")));
                    }
                }
                if doc >= self.hdr.n_docs {
                    return Err(corrupt(format!("doc entry {n} references document {doc}")));
                }
                if n % DOC_GROUP == 0 {
                    let f = self.store_read(
                        self.hdr.doc_fence_off + (n / DOC_GROUP) * DOC_FENCE_LEN,
                        DOC_FENCE_LEN as usize,
                    )?;
                    if u64::from_le_bytes(f.as_slice().try_into().unwrap()) != left {
                        return Err(corrupt(format!("doc fence {} disagrees", n / DOC_GROUP)));
                    }
                }
                prev_doc = Some((left, doc));
            }
            i = end;
        }
        check.doc_entries = self.hdr.n_doc;
        Ok(check)
    }

    fn store_read(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.store.read_at(off, &mut buf)?;
        Ok(buf)
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One segment referenced by a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSegment {
    /// Flavor byte ([`SEG_KIND_RP`] / [`SEG_KIND_EP`]).
    pub kind: u8,
    /// File suffix relative to the database path (e.g. `.g1.rp.seg`).
    pub suffix: String,
    /// First global document id in the segment.
    pub doc_base: u32,
    /// Number of documents in the segment.
    pub n_docs: u32,
}

/// The atomic commit point of the segmented index: names the current
/// mutable generation and every live segment file. Two fixed slots;
/// a write goes to slot `generation % 2` and a torn write leaves the
/// other slot's older-but-valid manifest in charge, so publishing a
/// bulk build or compaction is a single `write + fsync`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone generation counter (slot selector).
    pub generation: u64,
    /// Suffix of the current mutable engine's files (`""` = the plain
    /// database path, `.g2` = sibling files of generation 2, ...).
    pub mutable_suffix: String,
    /// Live segments, ascending by `doc_base` within each kind.
    pub segments: Vec<ManifestSegment>,
}

/// Byte offset of manifest slot `i` (`i` in 0..2).
const MANIFEST_SLOT: [u64; 2] = [0, 16384];
const MANIFEST_MAGIC: u32 = 0x5052_4D4E; // "PRMN"

impl Manifest {
    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        p.extend_from_slice(&(self.mutable_suffix.len() as u32).to_le_bytes());
        p.extend_from_slice(self.mutable_suffix.as_bytes());
        p.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            p.push(s.kind);
            p.extend_from_slice(&(s.suffix.len() as u32).to_le_bytes());
            p.extend_from_slice(s.suffix.as_bytes());
            p.extend_from_slice(&s.doc_base.to_le_bytes());
            p.extend_from_slice(&s.n_docs.to_le_bytes());
        }
        p
    }

    /// Writes this manifest to its generation's slot and syncs.
    pub fn write_to(&self, store: &dyn RawStore) -> Result<()> {
        let payload = self.payload();
        let mut frame = Vec::with_capacity(payload.len() + 16);
        frame.extend_from_slice(&self.generation.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let slot = MANIFEST_SLOT[(self.generation % 2) as usize];
        assert!(
            frame.len() as u64 <= MANIFEST_SLOT[1],
            "manifest payload exceeds slot size"
        );
        store.write_at(slot, &frame)?;
        // Keep the file covering both slots so a slot-0 write after a
        // slot-1 write never truncates it away.
        if store.len()? < MANIFEST_SLOT[1] {
            store.set_len(MANIFEST_SLOT[1])?;
        }
        store.sync()?;
        Ok(())
    }

    fn read_slot(store: &dyn RawStore, slot: u64) -> Option<Manifest> {
        let len = store.len().ok()?;
        if len < slot + 16 {
            return None;
        }
        let mut head = [0u8; 16];
        store.read_at(slot, &mut head).ok()?;
        let generation = u64::from_le_bytes(head[0..8].try_into().unwrap());
        let plen = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(head[12..16].try_into().unwrap());
        if plen < 8 || plen as u64 > MANIFEST_SLOT[1] || slot + 16 + plen as u64 > len {
            return None;
        }
        let mut payload = vec![0u8; plen];
        store.read_at(slot + 16, &mut payload).ok()?;
        if crc32(&payload) != crc {
            return None;
        }
        let mut r = &payload[..];
        let u32_next = |r: &mut &[u8]| -> Option<u32> {
            if r.len() < 4 {
                return None;
            }
            let v = u32::from_le_bytes(r[..4].try_into().unwrap());
            *r = &r[4..];
            Some(v)
        };
        if u32_next(&mut r)? != MANIFEST_MAGIC {
            return None;
        }
        let slen = u32_next(&mut r)? as usize;
        if r.len() < slen {
            return None;
        }
        let mutable_suffix = String::from_utf8(r[..slen].to_vec()).ok()?;
        r = &r[slen..];
        let n = u32_next(&mut r)? as usize;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            if r.is_empty() {
                return None;
            }
            let kind = r[0];
            r = &r[1..];
            let slen = u32_next(&mut r)? as usize;
            if r.len() < slen {
                return None;
            }
            let suffix = String::from_utf8(r[..slen].to_vec()).ok()?;
            r = &r[slen..];
            let doc_base = u32_next(&mut r)?;
            let n_docs = u32_next(&mut r)?;
            segments.push(ManifestSegment {
                kind,
                suffix,
                doc_base,
                n_docs,
            });
        }
        Some(Manifest {
            generation,
            mutable_suffix,
            segments,
        })
    }

    /// Reads the newest valid manifest, or `None` when neither slot
    /// holds one (fresh database, or torn first write).
    pub fn read_from(store: &dyn RawStore) -> Result<Option<Manifest>> {
        let a = Self::read_slot(store, MANIFEST_SLOT[0]);
        let b = Self::read_slot(store, MANIFEST_SLOT[1]);
        Ok(match (a, b) {
            (Some(a), Some(b)) => Some(if a.generation >= b.generation { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        })
    }
}

// ---------------------------------------------------------------------------
// Segment environments
// ---------------------------------------------------------------------------

/// Where a segmented database keeps its files: one store per suffix
/// (`""` = the database itself, `.seg` = the manifest, `.g1.rp.seg` =
/// a segment, ...) plus anonymous scratch stores for sort spills.
/// Production uses [`FileSegEnv`]; tests use [`MemSegEnv`] or a
/// fault-injecting wrapper.
pub trait SegmentEnv: Send + Sync {
    /// Creates (truncating) the store for `suffix`.
    fn create(&self, suffix: &str) -> Result<Box<dyn RawStore>>;
    /// Opens the existing store for `suffix`.
    fn open(&self, suffix: &str) -> Result<Box<dyn RawStore>>;
    /// Whether a store for `suffix` exists.
    fn exists(&self, suffix: &str) -> Result<bool>;
    /// Removes the store for `suffix` (idempotent).
    fn remove(&self, suffix: &str) -> Result<()>;
    /// A fresh anonymous scratch store for sort spills.
    fn temp(&self) -> Result<Box<dyn RawStore>>;
}

/// [`SegmentEnv`] over real files: suffix `s` lives at `<base><s>`,
/// scratch stores are unlinked-on-open temp files next to the database.
pub struct FileSegEnv {
    base: std::path::PathBuf,
    tmp_seq: AtomicU64,
}

impl FileSegEnv {
    /// An environment rooted at database path `base`.
    pub fn new<P: Into<std::path::PathBuf>>(base: P) -> Self {
        FileSegEnv {
            base: base.into(),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The path for `suffix`.
    pub fn path(&self, suffix: &str) -> std::path::PathBuf {
        if suffix.is_empty() {
            self.base.clone()
        } else {
            let mut os = self.base.clone().into_os_string();
            os.push(suffix);
            std::path::PathBuf::from(os)
        }
    }
}

impl SegmentEnv for FileSegEnv {
    fn create(&self, suffix: &str) -> Result<Box<dyn RawStore>> {
        Ok(Box::new(FileStore::create(self.path(suffix))?))
    }

    fn open(&self, suffix: &str) -> Result<Box<dyn RawStore>> {
        Ok(Box::new(FileStore::open(self.path(suffix))?))
    }

    fn exists(&self, suffix: &str) -> Result<bool> {
        Ok(self.path(suffix).exists())
    }

    fn remove(&self, suffix: &str) -> Result<()> {
        match std::fs::remove_file(self.path(suffix)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn temp(&self) -> Result<Box<dyn RawStore>> {
        let n = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.path(&format!(".tmp{}-{n}", std::process::id()));
        let store = FileStore::create(&path)?;
        // Unlink immediately: the open handle keeps the bytes alive and
        // the kernel reclaims them when the sorter drops the store.
        let _ = std::fs::remove_file(&path);
        Ok(Box::new(store))
    }
}

/// In-memory [`SegmentEnv`] for tests: suffixes map to shared
/// [`MemStore`]s, so "reopening" sees the same bytes.
#[derive(Default)]
pub struct MemSegEnv {
    files: Mutex<HashMap<String, MemStore>>,
}

impl MemSegEnv {
    /// An empty in-memory environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct handle to the named store (tests corrupt bytes this way).
    pub fn store(&self, suffix: &str) -> Option<MemStore> {
        self.files.lock().get(suffix).cloned()
    }
}

impl SegmentEnv for MemSegEnv {
    fn create(&self, suffix: &str) -> Result<Box<dyn RawStore>> {
        let store = MemStore::new();
        self.files.lock().insert(suffix.to_string(), store.clone());
        Ok(Box::new(store))
    }

    fn open(&self, suffix: &str) -> Result<Box<dyn RawStore>> {
        self.files
            .lock()
            .get(suffix)
            .cloned()
            .map(|s| Box::new(s) as Box<dyn RawStore>)
            .ok_or_else(|| corrupt(format!("no such store: {suffix:?}")))
    }

    fn exists(&self, suffix: &str) -> Result<bool> {
        Ok(self.files.lock().contains_key(suffix))
    }

    fn remove(&self, suffix: &str) -> Result<()> {
        self.files.lock().remove(suffix);
        Ok(())
    }

    fn temp(&self) -> Result<Box<dyn RawStore>> {
        Ok(Box::new(MemStore::new()))
    }
}

/// A temp factory over any shared [`SegmentEnv`].
pub fn env_temp_factory(env: &Arc<dyn SegmentEnv>) -> TempFactory {
    let env = Arc::clone(env);
    Box::new(move || env.temp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// (sym, level, children, fine_gap, doc_ends) of one oracle node.
    type RefNode = (u32, u32, BTreeMap<u32, usize>, u32, Vec<u32>);

    /// Reference trie with the exact-labeling semantics of
    /// `VirtualTrie::assign_ranges(Exact)`, used as the oracle.
    #[derive(Default)]
    struct RefTrie {
        nodes: Vec<RefNode>,
    }

    impl RefTrie {
        fn new() -> Self {
            RefTrie {
                nodes: vec![(u32::MAX, 0, BTreeMap::new(), u32::MAX, Vec::new())],
            }
        }

        fn insert(&mut self, path: &[u32], gaps: &[u32], doc: u32) {
            let mut cur = 0usize;
            for (i, &sym) in path.iter().enumerate() {
                let next = match self.nodes[cur].2.get(&sym) {
                    Some(&n) => n,
                    None => {
                        let id = self.nodes.len();
                        self.nodes.push((
                            sym,
                            (i + 1) as u32,
                            BTreeMap::new(),
                            u32::MAX,
                            Vec::new(),
                        ));
                        self.nodes[cur].2.insert(sym, id);
                        id
                    }
                };
                let f = &mut self.nodes[next].3;
                *f = if *f == u32::MAX {
                    gaps[i]
                } else {
                    (*f).max(gaps[i])
                };
                cur = next;
            }
            self.nodes[cur].4.push(doc);
        }

        fn label(&self) -> (Vec<TagEntry>, Vec<DocEnd>) {
            let mut tags = Vec::new();
            let mut ends = Vec::new();
            let mut counter = 0u64;
            // (node, child iterator index, left)
            let mut lefts = vec![0u64; self.nodes.len()];
            let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            let root_kids: Vec<usize> = self.nodes[0].2.values().copied().collect();
            stack.push((0, root_kids, 0));
            while let Some((id, kids, next)) = stack.last_mut() {
                let id = *id;
                if *next < kids.len() {
                    let c = kids[*next];
                    *next += 1;
                    counter += 1;
                    lefts[c] = counter;
                    let ckids: Vec<usize> = self.nodes[c].2.values().copied().collect();
                    stack.push((c, ckids, 0));
                } else {
                    stack.pop();
                    if id != 0 {
                        tags.push(TagEntry {
                            sym: self.nodes[id].0,
                            left: lefts[id],
                            right: counter.max(lefts[id]),
                            level: self.nodes[id].1,
                            fine_gap: self.nodes[id].3,
                        });
                    }
                }
            }
            for (id, n) in self.nodes.iter().enumerate() {
                for &d in &n.4 {
                    ends.push(DocEnd {
                        left: lefts[id],
                        doc: d,
                    });
                }
            }
            tags.sort();
            ends.sort();
            (tags, ends)
        }
    }

    /// Pseudo-random collection of (path, gaps) pairs with shared
    /// prefixes, duplicates, and one empty path.
    fn sample_paths(n: usize, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut s = seed;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i == 3 {
                out.push((Vec::new(), Vec::new()));
                continue;
            }
            let len = (lcg(&mut s) % 8) as usize + (i % 2);
            let path: Vec<u32> = (0..len).map(|_| (lcg(&mut s) % 6) as u32).collect();
            let gaps: Vec<u32> = (0..len).map(|_| (lcg(&mut s) % 50) as u32).collect();
            out.push((path, gaps));
        }
        out
    }

    fn build_segment(
        paths: &[(Vec<u32>, Vec<u32>)],
        run_mem: usize,
    ) -> (Arc<MemSegEnv>, SegTrieStats) {
        let env = Arc::new(MemSegEnv::new());
        let out = env.create(".t.seg").unwrap();
        let env_dyn: Arc<dyn SegmentEnv> = Arc::<MemSegEnv>::clone(&env);
        let mut b = SegmentBuilder::new(out, env_temp_factory(&env_dyn), SEG_KIND_RP, 0, run_mem);
        for (i, (path, gaps)) in paths.iter().enumerate() {
            let rec = vec![i as u8; i % 7 + 1];
            b.add_doc(&rec, path.clone(), gaps.clone()).unwrap();
        }
        let stats = b
            .finish(|st| format!("meta:{}", st.nodes).into_bytes())
            .unwrap();
        (env, stats)
    }

    fn open_reader(env: &MemSegEnv) -> SegmentReader {
        let store = env.open(".t.seg").unwrap();
        SegmentReader::open(store, Arc::new(IoStats::default())).unwrap()
    }

    #[test]
    fn segment_matches_reference_trie_labeling() {
        let paths = sample_paths(200, 42);
        let mut oracle = RefTrie::new();
        for (doc, (p, g)) in paths.iter().enumerate() {
            oracle.insert(p, g, doc as u32);
        }
        let (exp_tags, exp_ends) = oracle.label();
        let (env, stats) = build_segment(&paths, 1 << 20);
        let r = open_reader(&env);
        assert_eq!(r.n_tag_entries(), exp_tags.len() as u64);
        assert_eq!(r.n_doc_entries(), exp_ends.len() as u64);
        assert_eq!(stats.sequences, paths.len() as u64);
        // Full-range scans per symbol reproduce the oracle rows.
        for sym in 0..6u32 {
            let got = r.scan_tag_range(sym, 0, u64::MAX).unwrap();
            let want: Vec<(u64, u64, u32, u32)> = exp_tags
                .iter()
                .filter(|t| t.sym == sym)
                .map(|t| (t.left, t.right, t.level, t.fine_gap))
                .collect();
            assert_eq!(got, want, "sym {sym}");
        }
        let mut got_ends = Vec::new();
        r.scan_docids(0, u64::MAX, &mut |d| got_ends.push(d))
            .unwrap();
        let want_ends: Vec<u32> = exp_ends.iter().map(|e| e.doc).collect();
        assert_eq!(got_ends, want_ends);
    }

    #[test]
    fn range_scans_match_filtered_oracle() {
        let paths = sample_paths(300, 7);
        let mut oracle = RefTrie::new();
        for (doc, (p, g)) in paths.iter().enumerate() {
            oracle.insert(p, g, doc as u32);
        }
        let (exp_tags, exp_ends) = oracle.label();
        let (env, _) = build_segment(&paths, 1 << 20);
        let r = open_reader(&env);
        let mut s = 99u64;
        for _ in 0..50 {
            let sym = (lcg(&mut s) % 6) as u32;
            let a = lcg(&mut s) % 400;
            let b = a + lcg(&mut s) % 400;
            // Tag range: (a, b], exclusive low like the B+-tree scan.
            let got = r.scan_tag_range(sym, a, b).unwrap();
            let want: Vec<(u64, u64, u32, u32)> = exp_tags
                .iter()
                .filter(|t| t.sym == sym && t.left > a && t.left <= b)
                .map(|t| (t.left, t.right, t.level, t.fine_gap))
                .collect();
            assert_eq!(got, want, "sym {sym} range ({a}, {b}]");
            // Doc range: [a, b] inclusive.
            let mut got = Vec::new();
            r.scan_docids(a, b, &mut |d| got.push(d)).unwrap();
            let want: Vec<u32> = exp_ends
                .iter()
                .filter(|e| e.left >= a && e.left <= b)
                .map(|e| e.doc)
                .collect();
            assert_eq!(got, want, "docs [{a}, {b}]");
        }
    }

    #[test]
    fn external_sorter_spills_and_merges_in_order() {
        let mut s = 17u64;
        let mut sorter: ExternalSorter<TagEntry> = ExternalSorter::new(
            1,
            Box::new(|| Ok(Box::new(MemStore::new()) as Box<dyn RawStore>)),
        );
        let n = 5000u64;
        for _ in 0..n {
            sorter
                .push(TagEntry {
                    sym: (lcg(&mut s) % 16) as u32,
                    left: lcg(&mut s),
                    right: 0,
                    level: 1,
                    fine_gap: 0,
                })
                .unwrap();
        }
        assert!(sorter.spilled_runs() >= 2, "tiny budget must spill runs");
        assert_eq!(sorter.len(), n);
        let mut prev: Option<(u32, u64)> = None;
        let mut count = 0u64;
        sorter
            .drain(|t| {
                assert!(prev.map_or(true, |p| p <= t.key()), "merge out of order");
                prev = Some(t.key());
                count += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(count, n);
    }

    #[test]
    fn tiny_run_budget_spills_and_produces_identical_files() {
        let paths = sample_paths(2000, 11);
        let (env_big, _) = build_segment(&paths, 16 << 20);
        let (env_small, _) = build_segment(&paths, 1); // clamped to 64 KiB: forces spills
        assert_eq!(
            env_big.store(".t.seg").unwrap().snapshot(),
            env_small.store(".t.seg").unwrap().snapshot(),
            "spilled and in-memory builds must be byte-identical"
        );
    }

    #[test]
    fn records_and_meta_roundtrip() {
        let paths = sample_paths(50, 3);
        let (env, stats) = build_segment(&paths, 1 << 20);
        let r = open_reader(&env);
        assert_eq!(r.n_docs(), 50);
        for i in 0..50usize {
            assert_eq!(r.record(i as u32).unwrap(), vec![i as u8; i % 7 + 1]);
        }
        assert!(r.record(50).is_err());
        assert_eq!(
            r.meta().unwrap(),
            format!("meta:{}", stats.nodes).into_bytes()
        );
    }

    #[test]
    fn verify_passes_clean_and_catches_corruption() {
        let paths = sample_paths(120, 5);
        let (env, _) = build_segment(&paths, 1 << 20);
        let r = open_reader(&env);
        let check = r.verify().unwrap();
        assert!(check.blocks > 0 && check.tag_entries > 0);
        // Flip one byte in the middle of the tag section.
        let store = env.store(".t.seg").unwrap();
        let mut bytes = store.snapshot();
        let victim = bytes.len() / 2;
        bytes[victim] ^= 0x40;
        store.set_len(0).unwrap();
        store.write_at(0, &bytes).unwrap();
        let r = open_reader(&env);
        assert!(r.verify().is_err(), "bit flip must fail verification");
    }

    #[test]
    fn open_rejects_bad_magic_and_truncation() {
        let paths = sample_paths(20, 9);
        let (env, _) = build_segment(&paths, 1 << 20);
        let store = env.store(".t.seg").unwrap();
        let good = store.snapshot();
        store.write_at(0, b"NOTASEG!").unwrap();
        assert!(
            SegmentReader::open(env.open(".t.seg").unwrap(), Arc::new(IoStats::default())).is_err()
        );
        store.set_len(0).unwrap();
        store.write_at(0, &good[..good.len() - 10]).unwrap();
        assert!(
            SegmentReader::open(env.open(".t.seg").unwrap(), Arc::new(IoStats::default())).is_err(),
            "length mismatch must be rejected"
        );
    }

    #[test]
    fn block_cache_counts_logical_reads_and_fetches() {
        let paths = sample_paths(400, 13);
        let (env, _) = build_segment(&paths, 1 << 20);
        let stats = Arc::new(IoStats::default());
        let r = SegmentReader::open(env.open(".t.seg").unwrap(), Arc::clone(&stats)).unwrap();
        let before = stats.snapshot();
        for sym in 0..6u32 {
            r.scan_tag_range(sym, 0, u64::MAX).unwrap();
        }
        let warm = stats.snapshot();
        assert!(warm.seg_block_reads > before.seg_block_reads);
        assert!(warm.seg_block_fetches > before.seg_block_fetches);
        for sym in 0..6u32 {
            r.scan_tag_range(sym, 0, u64::MAX).unwrap();
        }
        let hot = stats.snapshot();
        assert!(hot.seg_block_reads > warm.seg_block_reads);
        assert_eq!(
            hot.seg_block_fetches, warm.seg_block_fetches,
            "second pass over a small segment must be all cache hits"
        );
    }

    #[test]
    fn manifest_roundtrips_and_survives_torn_writes() {
        let store = MemStore::new();
        assert!(Manifest::read_from(&store).unwrap().is_none());
        let m1 = Manifest {
            generation: 1,
            mutable_suffix: "".into(),
            segments: vec![ManifestSegment {
                kind: SEG_KIND_RP,
                suffix: ".g1.rp.seg".into(),
                doc_base: 0,
                n_docs: 10,
            }],
        };
        m1.write_to(&store).unwrap();
        assert_eq!(Manifest::read_from(&store).unwrap().unwrap(), m1);
        let mut m2 = m1.clone();
        m2.generation = 2;
        m2.mutable_suffix = ".g2".into();
        m2.write_to(&store).unwrap();
        assert_eq!(Manifest::read_from(&store).unwrap().unwrap(), m2);
        // Tear generation 2's slot (slot 0): generation 1 takes over.
        store.write_at(20, &[0xFF; 8]).unwrap();
        assert_eq!(Manifest::read_from(&store).unwrap().unwrap(), m1);
    }

    #[test]
    fn empty_segment_is_valid() {
        let env = Arc::new(MemSegEnv::new());
        let env_dyn: Arc<dyn SegmentEnv> = Arc::<MemSegEnv>::clone(&env);
        let b = SegmentBuilder::new(
            env.create(".t.seg").unwrap(),
            env_temp_factory(&env_dyn),
            SEG_KIND_EP,
            7,
            1 << 20,
        );
        b.finish(|_| b"m".to_vec()).unwrap();
        let r = open_reader(&env);
        assert_eq!(r.kind(), SEG_KIND_EP);
        assert_eq!(r.doc_base(), 7);
        assert_eq!(r.n_docs(), 0);
        assert_eq!(r.scan_tag_range(0, 0, u64::MAX).unwrap(), vec![]);
        r.verify().unwrap();
    }
}
