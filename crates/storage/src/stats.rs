//! I/O accounting.
//!
//! The paper reports query cost as "Disk IO (pages read from disk)" under
//! direct I/O (§6.1). [`IoStats`] counts exactly that: a *physical read*
//! is a page fetched from the pager because it was not resident in the
//! buffer pool.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe I/O counters. One instance is attached to each
/// [`crate::Pager`] and observed through its [`crate::BufferPool`].
/// The counters are plain atomics, so they stay exact when the sharded
/// buffer pool serves page requests from many threads at once — no lock
/// is held while recording.
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a buffer-pool page request (hit or miss).
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page fetched from the backing store.
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page written back to the backing store.
    #[inline]
    pub fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Pages requested from the buffer pool.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Pages read from the backing store — the paper's "Disk IO" metric.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Pages written to the backing store.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads(),
            physical_reads: self.physical_reads(),
            physical_writes: self.physical_writes(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`]. Subtract two snapshots to get
/// per-query costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages requested from the buffer pool.
    pub logical_reads: u64,
    /// Pages read from the backing store.
    pub physical_reads: u64,
    /// Pages written to the backing store.
    pub physical_writes: u64,
}

impl IoSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
        }
    }

    /// Buffer-pool hit ratio in `[0, 1]`; `1.0` when nothing was read.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            return 1.0;
        }
        1.0 - (self.physical_reads as f64 / self.logical_reads as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_logical_read();
        s.record_logical_read();
        s.record_physical_read();
        s.record_physical_write();
        assert_eq!(s.logical_reads(), 2);
        assert_eq!(s.physical_reads(), 1);
        assert_eq!(s.physical_writes(), 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_logical_read();
        let a = s.snapshot();
        s.record_logical_read();
        s.record_physical_read();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.logical_reads, 1);
        assert_eq!(d.physical_reads, 1);
    }

    #[test]
    fn hit_ratio() {
        let snap = IoSnapshot {
            logical_reads: 10,
            physical_reads: 2,
            physical_writes: 0,
        };
        assert!((snap.hit_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(IoSnapshot::default().hit_ratio(), 1.0);
    }
}
